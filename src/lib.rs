//! # Quickstrom
//!
//! A from-scratch Rust reproduction of *"Quickstrom: Property-based
//! Acceptance Testing with LTL Specifications"* (O'Connor & Wickström,
//! PLDI 2022).
//!
//! Quickstrom tests interactive applications against temporal-logic
//! specifications: engineers describe the allowable behaviours of their
//! user interface in [Specstrom](specstrom), a small terminating language
//! embedding the [QuickLTL](quickltl) dialect of Linear Temporal Logic,
//! and the [checker](quickstrom_checker) automatically explores the
//! application with hundreds of generated interactions, evaluating the
//! formula by progression over the observed trace.
//!
//! This facade crate re-exports the whole stack and bundles the
//! specifications and applications used by the paper's evaluation:
//!
//! * [`quickltl`] — the temporal logic: syntax, four-valued verdicts,
//!   formula progression, baseline logics.
//! * [`specstrom`] — the specification language: parser, sort system,
//!   interpreter, dependency analysis.
//! * [`quickstrom_protocol`] / [`quickstrom_checker`] /
//!   [`quickstrom_executor`] — the checker⟷executor split of §3.4.
//! * [`quickstrom_explore`] — coverage-guided exploration: state
//!   fingerprints, pluggable selection strategies, the trace corpus.
//! * [`webdom`] — the virtual browser substrate (see DESIGN.md).
//! * [`ccs`] — the CCS executor mentioned in §3.4.
//! * [`quickstrom_apps`] — egg timer, TodoMVC (+ fault taxonomy), and the
//!   43-implementation registry of Table 1.
//! * [`specs`] — the bundled Specstrom sources.
//!
//! ## Quickstart
//!
//! Check the counter app against its specification (see the root
//! `README.md` for the full tour):
//!
//! ```
//! use quickstrom::prelude::*;
//!
//! let spec = specstrom::load(quickstrom::specs::COUNTER).unwrap();
//! let options = CheckOptions::default()
//!     .with_tests(5)
//!     .with_max_actions(20)
//!     .with_default_demand(10);
//! let report = check_spec(&spec, &options, &|| {
//!     Box::new(WebExecutor::new(quickstrom_apps::Counter::new))
//! })
//! .unwrap();
//! assert!(report.passed(), "{report}");
//! ```
//!
//! Checks parallelise without changing their outcome: add
//! `.with_jobs(4)` to the options and the runs fan out over four worker
//! threads, producing a report identical to the sequential one (per-run
//! seeds derive from `(master seed, run index)`; see
//! [`quickstrom_checker::derive_run_seed`] and DESIGN.md's *Parallel
//! runtime* section).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use ccs;
pub use quickltl;
pub use quickstrom_apps;
pub use quickstrom_checker;
pub use quickstrom_executor;
pub use quickstrom_explore;
pub use quickstrom_obs;
pub use quickstrom_protocol;
pub use specstrom;
pub use webdom;

/// The bundled Specstrom specifications.
pub mod specs {
    /// The formal TodoMVC specification (§4.1).
    pub const TODOMVC: &str = include_str!("../specs/todomvc.strom");
    /// The egg timer specification (Figure 8).
    pub const EGG_TIMER: &str = include_str!("../specs/egg_timer.strom");
    /// The quickstart counter specification.
    pub const COUNTER: &str = include_str!("../specs/counter.strom");
    /// The §2.1 menu liveness specification.
    pub const MENU: &str = include_str!("../specs/menu.strom");
    /// The BigTable data-grid specification — the large-DOM stress
    /// workload for the incremental snapshot pipeline.
    pub const BIGTABLE: &str = include_str!("../specs/bigtable.strom");
    /// The Wizard checkout-corridor specification — the deep-state
    /// workload for the coverage-guided exploration engine.
    pub const WIZARD: &str = include_str!("../specs/wizard.strom");
}

/// The working set for writing and running checks.
pub mod prelude {
    pub use crate::specs;
    pub use quickltl::{Formula, Outcome, Verdict};
    pub use quickstrom_checker::{
        check_property, check_spec, check_spec_observed, AtomCacheMode, CheckOptions, EvalMode,
        FingerprintMode, ObsArtifacts, PipelineMode, Report, SelectionStrategy,
    };
    pub use quickstrom_executor::{LatencyExecutor, WebExecutor, WebExecutorConfig};
    pub use quickstrom_explore::{CoverageStats, StateFingerprint};
    pub use quickstrom_obs::{FailureExplanation, MetricsRegistry, ObsOptions, TraceOptions};
    pub use quickstrom_protocol::{
        Executor, Selector, SnapshotDelta, StateSnapshot, StateUpdate, TransportStats,
    };
    pub use specstrom::{load, CompiledSpec};
}
