//! Per-run state: trace recording, formula progression and action
//! selection.
//!
//! A [`Run`] is the pure half of a test run — it owns the formula
//! progression engine (a table-driven automaton or the plain stepper,
//! see [`EvalMode`]), the recorded trace, the coverage observations and
//! the action-selection state, but never talks to an executor itself. The I/O half lives in
//! [`crate::session::Session`], which couples a `Run` with an executor
//! and drives it to completion.
//!
//! Action selection is delegated to a pluggable
//! [`Strategy`](quickstrom_explore::Strategy) built from
//! [`CheckOptions::strategy`]; the run feeds it the current state's
//! fingerprint and its per-`(state, action)` history, maintained
//! incrementally from the snapshot pipeline's deltas (see DESIGN.md,
//! *Exploration engine*).

use crate::options::{AtomCacheMode, CheckOptions, EvalMode, FingerprintMode};
use crate::report::{Counterexample, RunResult, TraceEntry};
use crate::runner::CheckError;
use quickltl::automaton::for_each_live_atom;
use quickltl::{
    AtomId, Evaluator, Formula, Observation, Outcome, StateId, StepReport, TableStep,
    TransitionTable, Verdict,
};
use quickstrom_explore::{
    target_index, Candidate, Fingerprinter, ProjectionTermCache, RunCoverage, Strategy, StrategyCtx,
};
use quickstrom_obs::{AttrValue, MetricsRecorder, SpanKind, TraceSink};
use quickstrom_protocol::{
    masked_query_term, ActionInstance, ActionKind, ExecutorMsg, FieldMask, ProjectionHash,
    Selector, StateFingerprint, StateSnapshot, StateUpdate, Symbol,
};
use rand::rngs::StdRng;
use specstrom::{
    eval_guard, expand_thunk, footprint_of_thunk, ActionValue, AtomFootprint, AtomKeyer, AtomMemo,
    CheckDef, CompiledAtom, CompiledSpec, EvalCtx, MemoEntry, StepEntry, StepMemo, StepNext, Thunk,
};
use std::cell::Cell;
use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::{Arc, Mutex};

/// One cached atom expansion, keyed by [`Thunk::identity`].
///
/// Holding the `atom` itself keeps its `Arc`s alive, so the raw pointers
/// in the cache key can never be reused by a different thunk while the
/// entry exists — a lookup that matches the key *and* `atom == *thunk`
/// (pointer equality on both halves) is guaranteed to be the same atom.
struct CachedAtom {
    /// The atom whose expansion is cached (pins the identity pointers).
    atom: Thunk,
    /// Its expansion in the previous state.
    expansion: Formula<Thunk>,
    /// The static over-approximation of what the expansion read: the
    /// selectors (with fields) plus whether `happened` was consulted.
    /// Entries are evicted as soon as a delta touches any of it.
    footprint: AtomFootprint,
}

/// Per-run semantic record for one distinct atom (keyed by
/// [`Thunk::identity`]): its cross-run semantic key, static footprint and
/// compiled evaluator, computed once on first sight. Holding `atom` pins
/// the pointers both the identity key and the semantic key hashed, so
/// neither can be reused by a different thunk while the record lives.
struct AtomRecord {
    /// The atom this record describes (pins its pointers).
    #[allow(dead_code)] // held for the pinning guarantee above
    atom: Thunk,
    /// Cross-run semantic key: IR address plus content-hashed environment
    /// ([`AtomKeyer`]); equal for the "same" atom across runs, workers and
    /// shrink replays even when runtime frames differ by address.
    key: u64,
    /// The static over-approximation of what the atom can read, shared
    /// through the property-level memo ([`AtomMemo::compile_info`]): one
    /// analysis per distinct semantic atom, not per thunk identity.
    footprint: Arc<AtomFootprint>,
    /// The atom's specialized evaluator (or the generic-walk fallback),
    /// shared the same way.
    compiled: Arc<CompiledAtom>,
}

/// What the expansion closure served: a concrete formula (fresh, or from
/// the footprint cache), or a shared memo entry whose pre-abstracted
/// shape the automaton path consumes without re-walking any IR.
enum Served {
    /// A concrete expansion.
    Formula(Formula<Thunk>),
    /// A value-keyed memo hit.
    Memo(Arc<MemoEntry>),
}

impl Served {
    /// The concrete expansion, for stepper-style consumers.
    fn into_formula(self) -> Formula<Thunk> {
        match self {
            Served::Formula(f) => f,
            Served::Memo(entry) => entry.expansion.clone(),
        }
    }
}

/// The value key of an atom at a state: an order-sensitive hash over the
/// masked projection of every selector in the atom's footprint, plus the
/// `happened` names when the footprint reads them. Selector terms come
/// from the O(changed) [`ProjectionTermCache`] whenever the spec-level
/// merged mask covers the atom's own (the common case — the analysis
/// masks are the union of all footprints); otherwise the term is computed
/// directly with the atom's own mask, which is always sound: hashing at
/// least the fields the atom can read means equal hashes imply equal
/// visible values (modulo 64-bit collision, guarded by the debug
/// verify-on-hit).
fn projection_hash(
    footprint: &AtomFootprint,
    state: &StateSnapshot,
    masks: &BTreeMap<Selector, FieldMask>,
    terms: &mut ProjectionTermCache,
) -> u64 {
    let mut hash = ProjectionHash::new();
    for (selector, usage) in &footprint.selectors {
        let own = usage.field_mask();
        let elements = state.matches(selector);
        let term = match masks.get(selector) {
            Some(&merged) if merged.covers(own) => terms.term(selector, elements, merged),
            _ => masked_query_term(selector, elements, own),
        };
        hash.term(term);
    }
    if footprint.reads_happened {
        hash.flag(true);
        for name in &state.happened {
            hash.text(name.as_str());
        }
    }
    hash.finish()
}

/// The signature of an automaton state's atom bindings: an
/// order-sensitive hash over each thunk's cross-run semantic key
/// ([`AtomKeyer`]) *and* the vector's pointer-aliasing pattern (each
/// position's first identity-equal occurrence). Keys are equal for thunks
/// with the same code and content-equal environments, so equal signatures
/// mean the bindings denote the same atoms; the aliasing pattern is
/// hashed too because the observation builder dedups atoms by thunk
/// identity — content-equal bindings with different sharing would
/// abstract to *structurally* different observations (and so different
/// transition-table keys), which the step memo's exact counter replay
/// must distinguish. Together the two halves pin the whole abstracted
/// observation, making replays structurally — not just semantically —
/// exact.
///
/// The key cache stores the thunk alongside its key: holding the `Arc`s
/// keeps the identity pointers alive, so a cache hit can never serve the
/// key of a dead thunk whose addresses were reused (the same pinning
/// discipline as the atom records).
fn bindings_sig(
    keyer: &mut AtomKeyer,
    keys: &mut HashMap<(usize, usize), (Thunk, u64)>,
    bindings: &[Thunk],
) -> u64 {
    let mut hash = ProjectionHash::new();
    let mut first_seen: HashMap<(usize, usize), u64> = HashMap::with_capacity(bindings.len());
    for (i, thunk) in bindings.iter().enumerate() {
        let key = keys
            .entry(thunk.identity())
            .or_insert_with(|| (thunk.clone(), keyer.key(thunk)))
            .1;
        hash.term(key);
        hash.term(*first_seen.entry(thunk.identity()).or_insert(i as u64));
    }
    hash.finish()
}

/// Where the next action comes from: fresh randomness (optionally seeded
/// with a corpus prefix to replay-then-extend) or a recorded script (for
/// counterexample replay and shrinking).
#[allow(clippy::large_enum_variant)] // StdRng is big; sources are stack-local
pub(crate) enum ActionSource<'a> {
    /// Strategy-driven selection with a per-run generator. When `prefix`
    /// is non-empty the run first replays it action by action (a corpus
    /// seed leading back to a novel state), then extends with fresh
    /// strategy-chosen actions; a prefix action whose guard no longer
    /// holds abandons the rest of the prefix.
    Random {
        /// The per-run generator (seeded from `(master seed, run index)`).
        rng: StdRng,
        /// The corpus prefix to replay first (empty for fresh runs).
        prefix: &'a [ActionInstance],
        /// Position of the next prefix action to replay.
        pos: usize,
    },
    /// Replay of a recorded action script.
    Script {
        /// The recorded actions.
        actions: &'a [ActionInstance],
        /// Position of the next action to replay.
        pos: usize,
    },
}

/// The text pool for generated inputs. Includes the empty string and
/// whitespace-only entries deliberately: several TodoMVC faults (blank
/// items, empty-edit deletion) only surface on degenerate input. Widened
/// beyond ASCII with multibyte, combining-mark, emoji and very long
/// samples — all still drawn deterministically from the run RNG.
const INPUT_POOL: &[&str] = &[
    "",
    " ",
    "a",
    "buy milk",
    "walk the dog",
    "  trim me  ",
    "x",
    "déjà vu",
    "meditate",
    "日本語のテキスト",
    "🦀 crabs 🦀",
    "emoji\u{200d}zwj\u{200d}seq",
    "Ω≈ç√∫ µ≤≥÷",
    "a deliberately long entry that overflows typical list layouts, wraps \
     across several lines, and exercises truncation and measurement paths \
     that short inputs never reach (0123456789 0123456789 0123456789)",
];

fn generate_text(rng: &mut StdRng) -> String {
    use rand::Rng;
    let i = rng.gen_range(0..INPUT_POOL.len());
    INPUT_POOL[i].to_owned()
}

/// What [`Run::next_action`] chose, and from where — consumed by the
/// acceptance bookkeeping ([`Run::note_accepted`]/[`Run::note_effect`]).
#[derive(Debug, Clone, Copy)]
struct Choice {
    /// Fingerprint of the state the choice was made in.
    fp: StateFingerprint,
    /// Interned action name.
    name: Symbol,
    /// Target element index (0 for untargeted actions).
    target_index: u32,
}

impl Default for Choice {
    fn default() -> Self {
        Choice {
            fp: StateFingerprint::EMPTY,
            name: Symbol::intern("noop!"),
            target_index: 0,
        }
    }
}

/// How this run progresses its formula (see [`EvalMode`]).
enum Engine {
    /// Plain formula progression: the residual lives in the evaluator.
    Stepper(Evaluator<Thunk>),
    /// Table-driven progression against the property's shared
    /// [`TransitionTable`]: the run only carries its current state id and
    /// the concrete thunks bound to that state's abstract atoms. Falls
    /// back to [`Engine::Stepper`] mid-run (via [`Evaluator::resume`])
    /// when the table reports its state cap exceeded.
    Automaton {
        /// The property's table, shared across runs (and worker threads).
        table: Arc<Mutex<TransitionTable>>,
        /// Where in the automaton this run is.
        pos: AutomatonPos,
        /// States observed so far (mirrors [`Evaluator::states_seen`], so
        /// a fallback resumes with the right forced-verdict gating).
        states_seen: usize,
    },
}

/// The automaton-mode position of one run.
enum AutomatonPos {
    /// At `id`, with `bindings[i]` the concrete thunk behind abstract
    /// atom `i` of the state formula.
    Running {
        /// Current table state.
        id: StateId,
        /// Concrete thunk for each abstract atom id, indexed by id.
        bindings: Vec<Thunk>,
        /// Content signature of `bindings` (see [`bindings_sig`]) — one
        /// half of the step-memo key. 0 when the step memo is inactive.
        sig: u64,
    },
    /// A definitive verdict was reached; latched like the evaluator.
    Done(bool),
}

/// What one eval step decided before the engine is (possibly) replaced —
/// split out so the stepper fallback can re-observe the current state
/// *after* the borrow of the automaton fields ends.
enum StepPlan {
    Report(StepReport),
    Fallback(Evaluator<Thunk>),
}

/// The per-run machinery shared by random runs and scripted replays.
///
/// A `Run` plays one of two roles. The *evaluator* role (the default,
/// [`Run::new`]) is the full machine: formula progression, trace
/// recording, coverage. The *observer* role ([`Run::observer`]) is the
/// driver half of the pipelined runtime ([`crate::pipeline`]): it mirrors
/// only what action selection needs — the resolved state, the action
/// bookkeeping, and (when the strategy reads it) the coverage fingerprint
/// — and never expands an atom or steps the formula, so
/// [`Run::definitive`] stays `None` and the driver's stop signal comes
/// from the evaluator stage instead.
pub(crate) struct Run<'a> {
    pub(crate) spec: &'a CompiledSpec,
    pub(crate) check: &'a CheckDef,
    pub(crate) options: &'a CheckOptions,
    /// Evaluator role: progress the formula and record the trace. The
    /// observer role leaves both alone.
    evaluate: bool,
    /// Maintain coverage fingerprints? Always in the evaluator role; in
    /// the observer role only when the strategy reads coverage
    /// ([`SelectionStrategy::needs_coverage`](quickstrom_explore::SelectionStrategy)).
    track_coverage: bool,
    /// States ingested so far. Equal to `trace.len()` in the evaluator
    /// role; the observer role records no trace, so protocol versions and
    /// delta checks key off this counter instead.
    pub(crate) states_count: usize,
    engine: Engine,
    /// The automaton table, kept even after a mid-run fallback so the
    /// `ltl_states` counter can still be read at session end. `None` in
    /// stepper mode.
    ltl_table: Option<Arc<Mutex<TransitionTable>>>,
    /// Steps answered by a memoized table transition (no pipeline work).
    pub(crate) ltl_table_hits: u64,
    /// Event name lookup: selector → declared `…?` event names.
    pub(crate) events_by_selector: BTreeMap<Selector, Vec<Symbol>>,
    /// Event-declared timeouts: event name → ms.
    pub(crate) event_timeouts: BTreeMap<Symbol, u64>,
    /// The check's action names, interned once and aligned with
    /// `check.actions` — the enabled-action enumeration runs every step
    /// and must not hit the global interner per candidate set.
    action_syms: Vec<Symbol>,
    /// Pre-interned `"timeout?"` (per-message `happened` filling).
    sym_timeout: Symbol,
    /// Pre-interned `"loaded?"` (per-message `happened` filling).
    sym_loaded: Symbol,
    pub(crate) trace: Vec<TraceEntry>,
    pub(crate) script: Vec<ActionInstance>,
    pub(crate) actions_done: usize,
    /// Per-action-name acceptance counts (the LeastTried signal, §5.1).
    pub(crate) action_counts: BTreeMap<Symbol, usize>,
    /// The pluggable action picker built from [`CheckOptions::strategy`].
    pub(crate) strategy: Box<dyn Strategy>,
    /// Coverage observations: fingerprints, transitions, first visits and
    /// per-`(state, action)` counts, maintained incrementally per step.
    pub(crate) coverage: RunCoverage,
    /// Where and what the last returned action was: the choice-time
    /// fingerprint plus the action's interned name and target index —
    /// captured at selection so acceptance bookkeeping never re-interns
    /// or re-derives them.
    last_choice: Choice,
    pub(crate) last_state: Option<StateSnapshot>,
    pub(crate) last_report: Option<StepReport>,
    pub(crate) pending_wait: Option<u64>,
    /// Wall-clock time spent in specification evaluation — formula
    /// progression plus guard evaluation (the per-phase attribution behind
    /// [`crate::report::PhaseTimings::eval_s`]).
    pub(crate) eval_time: std::time::Duration,
    /// The atom-cache mode in effect for this run
    /// ([`CheckOptions::effective_atom_cache`], resolved once).
    atom_cache_mode: AtomCacheMode,
    /// [`AtomCacheMode::Footprint`] only: per-run expansions reused across
    /// steps while no delta touches their footprint. Cleared on full
    /// snapshots; pruned per delta.
    atom_cache: HashMap<(usize, usize), CachedAtom>,
    /// [`AtomCacheMode::Value`] only: the property-level expansion memo,
    /// shared across runs, workers and shrink replays.
    atom_memo: Option<Arc<AtomMemo>>,
    /// Per-run semantic records for distinct atoms, filled lazily on
    /// first expansion request.
    atom_records: HashMap<(usize, usize), AtomRecord>,
    /// The cross-run semantic keyer (content-hashes environment chains,
    /// memoized per frame address).
    atom_keyer: AtomKeyer,
    /// O(changed) cache of per-selector masked projection terms, fed by
    /// the same deltas as the coverage fingerprinter.
    projection_terms: ProjectionTermCache,
    /// Atom expansions requested by the evaluator over the whole run.
    pub(crate) atoms_total: u64,
    /// Of those, how many actually re-evaluated (cache misses). With the
    /// cache off the two counters are equal.
    pub(crate) atoms_reevaluated: u64,
    /// Value-mode memo lookups served without re-evaluation.
    pub(crate) atom_memo_hits: u64,
    /// Value-mode memo lookups that had to expand the atom.
    pub(crate) atom_memo_misses: u64,
    /// Memo entries this run's insertions evicted (FIFO, capacity bound).
    pub(crate) atom_memo_evictions: u64,
    /// Whole-transition step memo, shared per property like the automaton
    /// table (automaton mode with the footprint cache off; see
    /// [`StepMemo`] for the soundness contract and
    /// [`CheckOptions::step_memo`] for the switch).
    step_memo: Option<Arc<StepMemo>>,
    /// Steps answered entirely by the step memo (no expansion, no
    /// observation, no table step).
    pub(crate) step_memo_hits: u64,
    /// Semantic keyer for bindings signatures. Separate from
    /// `atom_keyer` so the engine match can key successor bindings while
    /// the expansion closure holds `atom_keyer`; keys are content-based,
    /// so the two keyers agree.
    binding_keyer: AtomKeyer,
    /// Identity-keyed cache of binding thunk keys (the same thunks recur
    /// every step while a residual is stable). Each entry pins its thunk
    /// so the identity pointers stay valid — see [`bindings_sig`].
    binding_keys: HashMap<(usize, usize), (Thunk, u64)>,
    /// Structured-tracing sink for this run's spans (disabled by default;
    /// never influences control flow — see DESIGN.md, *Observability*).
    pub(crate) sink: TraceSink,
    /// Metrics recorder for this run's latency/depth histograms (disabled
    /// by default, same contract as the sink).
    pub(crate) metrics: MetricsRecorder,
}

/// The outcome of one run, before aggregation.
pub(crate) enum RunOutcome {
    /// The run concluded with a result.
    Result(RunResult),
    /// A scripted replay found the script no longer applicable (an action's
    /// guard was false or its target disappeared) — only used by shrinking.
    ScriptInvalid,
}

impl<'a> Run<'a> {
    pub(crate) fn new(
        spec: &'a CompiledSpec,
        check: &'a CheckDef,
        property_name: &str,
        property: &Thunk,
        options: &'a CheckOptions,
    ) -> Self {
        Self::with_role(spec, check, property_name, property, options, true, true)
    }

    /// An observer-role run for the pipelined driver stage: no formula
    /// progression, no trace, no atom machinery — just state resolution
    /// and the action-selection bookkeeping, with coverage fingerprinting
    /// only when the strategy actually reads it.
    pub(crate) fn observer(
        spec: &'a CompiledSpec,
        check: &'a CheckDef,
        property_name: &str,
        property: &Thunk,
        options: &'a CheckOptions,
    ) -> Self {
        Self::with_role(
            spec,
            check,
            property_name,
            property,
            options,
            false,
            options.strategy.needs_coverage(),
        )
    }

    fn with_role(
        spec: &'a CompiledSpec,
        check: &'a CheckDef,
        property_name: &str,
        property: &Thunk,
        options: &'a CheckOptions,
        evaluate: bool,
        track_coverage: bool,
    ) -> Self {
        // Pick the progression engine. The automaton table is looked up by
        // property *name* (plus the option knobs baked into residuals):
        // `property_thunk` builds a fresh thunk per call, so the name is
        // the stable cross-run key, while the thunk itself becomes the
        // binding of the start state's single abstract atom. The observer
        // role never steps an engine: it carries an inert stepper so
        // `definitive()` stays `None` and no table or memo is touched.
        let eval_mode = if evaluate {
            options.eval_mode
        } else {
            EvalMode::Stepper
        };
        // Value mode shares one expansion memo per property (keyed like
        // the automata registry, by name plus the option knobs baked into
        // expansions), so runs, workers and shrink replays all warm the
        // same memo. The observer role expands nothing, so it carries no
        // cache at all.
        let atom_cache_mode = if evaluate {
            options.effective_atom_cache()
        } else {
            AtomCacheMode::Off
        };
        // The step memo piggybacks on the automaton engine and replays
        // Off/Value-mode counter deltas exactly; the footprint cache's
        // re-evaluation count depends on per-run cache warmth, which a
        // shared memo cannot replay, so that mode opts out.
        let step_memo = (matches!(eval_mode, EvalMode::Automaton)
            && atom_cache_mode != AtomCacheMode::Footprint
            && options.step_memo)
            .then(|| {
                spec.step_memos.memo(
                    property_name,
                    options.default_demand,
                    options.automaton_state_cap,
                    &spec.analysis,
                )
            });
        let mut binding_keyer = AtomKeyer::new();
        let mut binding_keys = HashMap::new();
        let (engine, ltl_table) = match eval_mode {
            EvalMode::Stepper => (
                Engine::Stepper(Evaluator::new(Formula::Atom(property.clone()))),
                None,
            ),
            EvalMode::Automaton => {
                let table = spec.automata.table(
                    property_name,
                    options.default_demand,
                    options.automaton_state_cap,
                );
                let start = table.lock().expect("automaton table poisoned").start();
                let sig = if step_memo.is_some() {
                    bindings_sig(
                        &mut binding_keyer,
                        &mut binding_keys,
                        std::slice::from_ref(property),
                    )
                } else {
                    0
                };
                (
                    Engine::Automaton {
                        table: Arc::clone(&table),
                        pos: AutomatonPos::Running {
                            id: start,
                            bindings: vec![property.clone()],
                            sig,
                        },
                        states_seen: 0,
                    },
                    Some(table),
                )
            }
        };
        let atom_memo = (atom_cache_mode == AtomCacheMode::Value).then(|| {
            spec.atom_memos.memo(
                property_name,
                options.default_demand,
                options.atom_memo_capacity,
            )
        });
        let mut events_by_selector: BTreeMap<Selector, Vec<Symbol>> = BTreeMap::new();
        let mut event_timeouts = BTreeMap::new();
        for name in &check.events {
            if let Some(av) = spec.action(name) {
                let sym = Symbol::intern(name);
                if let Some(sel) = &av.selector {
                    events_by_selector.entry(*sel).or_default().push(sym);
                }
                if let Some(t) = av.timeout_ms {
                    event_timeouts.insert(sym, t);
                }
            }
        }
        Run {
            spec,
            check,
            options,
            evaluate,
            track_coverage,
            states_count: 0,
            engine,
            ltl_table,
            ltl_table_hits: 0,
            events_by_selector,
            event_timeouts,
            action_syms: check.actions.iter().map(|n| Symbol::intern(n)).collect(),
            sym_timeout: Symbol::intern("timeout?"),
            sym_loaded: Symbol::intern("loaded?"),
            trace: Vec::new(),
            script: Vec::new(),
            actions_done: 0,
            action_counts: BTreeMap::new(),
            strategy: options.strategy.build(),
            coverage: match options.fingerprint {
                FingerprintMode::Shape => RunCoverage::new(),
                FingerprintMode::SpecAware => RunCoverage::with_fingerprinter(
                    Fingerprinter::spec_aware(Arc::clone(&spec.analysis.masks)),
                ),
            },
            last_choice: Choice::default(),
            last_state: None,
            last_report: None,
            pending_wait: None,
            eval_time: std::time::Duration::ZERO,
            atom_cache_mode,
            atom_cache: HashMap::new(),
            atom_memo,
            atom_records: HashMap::new(),
            atom_keyer: AtomKeyer::new(),
            projection_terms: ProjectionTermCache::new(),
            atoms_total: 0,
            atoms_reevaluated: 0,
            atom_memo_hits: 0,
            atom_memo_misses: 0,
            atom_memo_evictions: 0,
            step_memo,
            step_memo_hits: 0,
            binding_keyer,
            binding_keys,
            sink: TraceSink::disabled(),
            metrics: MetricsRecorder::disabled(),
        }
    }

    /// Attaches an observability sink and metrics recorder (both disabled
    /// by default). Instrumentation only *observes* — spans and histogram
    /// samples never branch the run's control flow, so reports are
    /// bit-identical with tracing on or off.
    pub(crate) fn with_obs(mut self, sink: TraceSink, metrics: MetricsRecorder) -> Self {
        self.sink = sink;
        self.metrics = metrics;
        self
    }

    /// The `happened` names for an executor message (§3.2: "all events or
    /// actions that occurred immediately prior to the current state").
    /// Interned end to end: no string is cloned per step.
    fn happened_for(&self, msg: &ExecutorMsg, action: Option<&ActionInstance>) -> Vec<Symbol> {
        match msg {
            ExecutorMsg::Acted { .. } => action
                .map(|a| vec![Symbol::intern(&a.name)])
                .unwrap_or_default(),
            ExecutorMsg::Timeout { .. } => vec![self.sym_timeout],
            ExecutorMsg::Event { event, detail, .. } => {
                if event == "loaded?" {
                    return vec![self.sym_loaded];
                }
                let mut mapped: Vec<Symbol> = detail
                    .iter()
                    .filter_map(|sel| self.events_by_selector.get(sel))
                    .flatten()
                    .copied()
                    .collect();
                // Sort by *text* (symbol order is interning order), so
                // the recorded `happened` lists keep the alphabetical
                // order reports and traces have always had.
                mapped.sort_unstable_by_key(|s| s.as_str());
                mapped.dedup();
                if mapped.is_empty() {
                    vec![Symbol::intern(event)]
                } else {
                    mapped
                }
            }
        }
    }

    /// Feeds one executor message into the trace, the formula, and the
    /// coverage accounting.
    ///
    /// The carried [`StateUpdate`] is reconstructed against the previous
    /// state: a full snapshot replaces it, a delta is applied onto it —
    /// sharing the query results of every unchanged selector, so the
    /// recorded trace grows by O(changed) per step. The state's
    /// [`StateFingerprint`] is maintained the same way: a delta only
    /// re-hashes its changed selectors. Delta versions must follow the
    /// trace length exactly (the executor numbers states from 1); a gap
    /// means a missed update and is a protocol error.
    pub(crate) fn ingest(
        &mut self,
        msg: &ExecutorMsg,
        action: Option<&ActionInstance>,
    ) -> Result<(), CheckError> {
        let happened = self.happened_for(msg, action);
        let update = msg.update();
        if let StateUpdate::Delta(delta) = update {
            let expected = self.states_count as u64 + 1;
            if delta.state_version != expected {
                return Err(CheckError::new(format!(
                    "snapshot delta carries state version {} but the checker \
                     has seen {} state(s) (expected version {expected})",
                    delta.state_version, self.states_count,
                )));
            }
        }
        let mut state = update
            .resolve(self.last_state.as_ref())
            .map_err(|e| CheckError::new(e.to_string()))?;
        state.happened = happened.clone();
        // Atom-cache bookkeeping (DESIGN.md, *Atom expansion
        // memoization*). Footprint mode: a cached expansion stays valid
        // exactly while nothing it could have read changed — full
        // snapshots carry no change information, so they flush
        // everything; a delta evicts the entries whose footprint it
        // touches, including every `happened`-reading atom whenever the
        // `happened` list differs. Eviction is eager (per step, before
        // evaluation) so the cache never holds a stale entry. Value mode
        // needs no eviction at all — entries are keyed by the projected
        // *values* — but the per-selector projection-term cache must
        // track state changes the same way the coverage fingerprinter
        // does: cleared on full snapshots, invalidated per changed
        // selector on deltas (O(changed) per step).
        match self.atom_cache_mode {
            AtomCacheMode::Off => {
                self.atom_cache.clear();
                // The step memo's state-value signature draws from the
                // projection-term cache, so keep it fresh even without
                // the value-keyed atom memo.
                if self.step_memo.is_some() {
                    match update {
                        StateUpdate::Full(_) => self.projection_terms.clear(),
                        StateUpdate::Delta(delta) => {
                            self.projection_terms.invalidate(&delta.changed_selectors());
                        }
                    }
                }
            }
            AtomCacheMode::Footprint => {
                debug_assert!(self.evaluate, "observer runs carry no atom cache");
                if matches!(update, StateUpdate::Full(_)) {
                    self.atom_cache.clear();
                } else if let StateUpdate::Delta(delta) = update {
                    let changed = delta.changed_selectors();
                    let happened_changed = self
                        .last_state
                        .as_ref()
                        .is_none_or(|prev| prev.happened != state.happened);
                    self.atom_cache.retain(|_, entry| {
                        (!entry.footprint.reads_happened || !happened_changed)
                            && !entry.footprint.touches_any(&changed)
                    });
                }
            }
            AtomCacheMode::Value => match update {
                StateUpdate::Full(_) => self.projection_terms.clear(),
                StateUpdate::Delta(delta) => {
                    self.projection_terms.invalidate(&delta.changed_selectors());
                }
            },
        }
        if self.track_coverage {
            let fp = self.coverage.fingerprinter().observe_update(&state, update);
            self.coverage.observe_state(fp, self.script.len());
        }
        if self.evaluate {
            self.trace.push(TraceEntry {
                state: state.clone(),
            });
        }
        self.states_count += 1;
        // Event-declared timeouts (§3.4): when a timeout is associated with
        // an event and that event occurs, the checker requests a Wait.
        if matches!(msg, ExecutorMsg::Event { .. }) {
            for name in &happened {
                if let Some(&t) = self.event_timeouts.get(name) {
                    self.pending_wait = Some(t);
                }
            }
        }
        if !self.evaluate {
            // Observer role: the driver only needs the resolved state (for
            // guards and targets) and the pending-wait bookkeeping above —
            // formula progression is the evaluator stage's job, and
            // `last_report` stays `None` so `definitive()` never fires.
            self.last_state = Some(state);
            return Ok(());
        }
        let ctx = EvalCtx::with_state(&state, self.options.default_demand);
        // Step-memo preparation: hash the state's value signature (the
        // property's union footprint over this state) up front, before the
        // borrow split below — it shares the projection-term cache with
        // atom expansion. Only worth computing when an automaton step will
        // actually consult the memo.
        let step_memo = self.step_memo.clone();
        let state_sig = match (&step_memo, &self.engine) {
            (
                Some(sm),
                Engine::Automaton {
                    pos: AutomatonPos::Running { .. },
                    ..
                },
            ) => Some(projection_hash(
                &sm.footprint,
                &state,
                &self.spec.analysis.masks,
                &mut self.projection_terms,
            )),
            _ => None,
        };
        // Expansion requests this step, readable while the expansion
        // closure is live (a `Cell` borrow is shared) — the step memo
        // records the per-transition delta from it.
        let expansion_requests = Cell::new(0u64);
        // A step-memo hit's replayed expansion count; the counter deltas
        // are applied after the plan match, once the expansion closure's
        // borrows have ended.
        let mut step_replayed: Option<u64> = None;
        // Split the borrows up front: the expansion closure needs the
        // caches and counters while the engine match holds the engine
        // (and, in automaton mode, the hit counter).
        let mode = self.atom_cache_mode;
        let cache = &mut self.atom_cache;
        let records = &mut self.atom_records;
        let keyer = &mut self.atom_keyer;
        let projection_terms = &mut self.projection_terms;
        let memo = self.atom_memo.as_deref();
        let masks: &BTreeMap<Selector, FieldMask> = &self.spec.analysis.masks;
        let atoms_total = &mut self.atoms_total;
        let atoms_reevaluated = &mut self.atoms_reevaluated;
        let memo_hits = &mut self.atom_memo_hits;
        let memo_misses = &mut self.atom_memo_misses;
        let memo_evictions = &mut self.atom_memo_evictions;
        let ltl_table_hits = &mut self.ltl_table_hits;
        let step_memo_hits = &mut self.step_memo_hits;
        let binding_keyer = &mut self.binding_keyer;
        let binding_keys = &mut self.binding_keys;
        let sink = &mut self.sink;
        let last_report = self.last_report;
        let state_ref = &state;
        let mut expand = |thunk: &Thunk| -> Result<Served, specstrom::EvalError> {
            *atoms_total += 1;
            expansion_requests.set(expansion_requests.get() + 1);
            match mode {
                AtomCacheMode::Off => {
                    *atoms_reevaluated += 1;
                    Ok(Served::Formula(expand_thunk(thunk, &ctx)?))
                }
                AtomCacheMode::Footprint => {
                    if let Some(entry) = cache.get(&thunk.identity()) {
                        if entry.atom == *thunk {
                            return Ok(Served::Formula(entry.expansion.clone()));
                        }
                    }
                    *atoms_reevaluated += 1;
                    let expansion = expand_thunk(thunk, &ctx)?;
                    cache.insert(
                        thunk.identity(),
                        CachedAtom {
                            atom: thunk.clone(),
                            expansion: expansion.clone(),
                            footprint: footprint_of_thunk(thunk),
                        },
                    );
                    Ok(Served::Formula(expansion))
                }
                AtomCacheMode::Value => {
                    let memo = memo.expect("value mode carries a memo");
                    let record = records.entry(thunk.identity()).or_insert_with(|| {
                        let key = keyer.key(thunk);
                        let (footprint, compiled) = memo.compile_info(key, thunk);
                        AtomRecord {
                            atom: thunk.clone(),
                            key,
                            footprint,
                            compiled,
                        }
                    });
                    let projection =
                        projection_hash(&record.footprint, state_ref, masks, projection_terms);
                    let key = (record.key, projection);
                    if let Some(entry) = memo.lookup(key) {
                        *memo_hits += 1;
                        // Collision safety: in debug builds every hit is
                        // re-derived and compared structurally (modulo
                        // atom addresses). A 128-bit key collision would
                        // trip this before it could corrupt a verdict.
                        if cfg!(debug_assertions) {
                            let fresh = record.compiled.expand(thunk, &ctx)?;
                            debug_assert!(
                                entry.matches_expansion(&fresh),
                                "atom memo collision: key {key:?} served a structurally \
                                 different expansion"
                            );
                        }
                        return Ok(Served::Memo(entry));
                    }
                    *memo_misses += 1;
                    *atoms_reevaluated += 1;
                    let expansion = record.compiled.expand(thunk, &ctx)?;
                    *memo_evictions +=
                        memo.insert(key, MemoEntry::build(thunk.clone(), expansion.clone()));
                    Ok(Served::Formula(expansion))
                }
            }
        };
        let step_span = sink.open(SpanKind::Step);
        let eval_started = std::time::Instant::now();
        let plan = match &mut self.engine {
            Engine::Stepper(ev) => {
                let atoms_span = sink.open(SpanKind::Atoms);
                let report = ev
                    .observe_expanding(&mut |t: &Thunk| expand(t).map(Served::into_formula))
                    .map_err(CheckError::from)?;
                sink.close_with(atoms_span, |a| {
                    a.push(("expansions", AttrValue::U64(expansion_requests.get())))
                });
                StepPlan::Report(report)
            }
            Engine::Automaton {
                table,
                pos,
                states_seen,
            } => match pos {
                // Latched, like the evaluator: no atom is expanded.
                AutomatonPos::Done(b) => StepPlan::Report(StepReport::Definitive(*b)),
                AutomatonPos::Running { id, bindings, sig } => 'step: {
                    // Step-memo fast path: key the transition by (state
                    // id, bindings signature, state-value signature) and
                    // replay its outcome wholesale — no expansion, no
                    // observation BFS, no table step. The replayed entry
                    // also carries the exact expansion count the original
                    // transition issued, so the atom counters stay what an
                    // unmemoized engine would have reported (applied after
                    // the plan match; see `step_replayed`).
                    let memo_key = state_sig.map(|ssig| (*id, *sig, ssig));
                    if let (Some(sm), Some(key)) = (step_memo.as_deref(), memo_key) {
                        if let Some(entry) = sm.lookup(key) {
                            step_replayed = Some(entry.expansions);
                            // A replay counts as a table hit: the entry's
                            // transition was interned when it was recorded,
                            // and its successor state is already interned
                            // (`ltl_states` stays exact). The count can
                            // exceed the unmemoized engine's by a sliver —
                            // rarely, the observation an unmemoized step
                            // would rebuild here differs *structurally*
                            // (thunk-identity sharing shifts with atom-memo
                            // warmth) while simplifying to the same
                            // successor, so the counterfactual lookup would
                            // re-intern instead of hit. Verdicts, traces,
                            // and atom counters are unaffected.
                            *ltl_table_hits += 1;
                            *step_memo_hits += 1;
                            *states_seen += 1;
                            break 'step match &entry.next {
                                StepNext::Done(b) => {
                                    *pos = AutomatonPos::Done(*b);
                                    StepPlan::Report(StepReport::Definitive(*b))
                                }
                                StepNext::Goto {
                                    state: next,
                                    presumptive,
                                    bindings: next_bindings,
                                    bindings_sig: next_sig,
                                } => {
                                    *pos = AutomatonPos::Running {
                                        id: *next,
                                        bindings: next_bindings.clone(),
                                        sig: *next_sig,
                                    };
                                    StepPlan::Report(StepReport::Continue {
                                        presumptive: *presumptive,
                                    })
                                }
                            };
                        }
                    }
                    let expansions_before = expansion_requests.get();
                    let atoms_span = sink.open(SpanKind::Atoms);
                    let live = table
                        .lock()
                        .expect("automaton table poisoned")
                        .live_atoms(*id);
                    // Build the observation: expand every live atom of the
                    // state formula — plus, transitively, every live atom
                    // of an expansion (`unroll` recurses the same way).
                    // Abstract ids are assigned in discovery order, which
                    // is deterministic given the table state, so equal
                    // concrete steps produce equal observation keys.
                    let mut ids: HashMap<(usize, usize), AtomId> =
                        HashMap::with_capacity(bindings.len());
                    for (i, thunk) in bindings.iter().enumerate() {
                        ids.insert(thunk.identity(), i as AtomId);
                    }
                    let mut step_thunks: Vec<Thunk> = bindings.clone();
                    let mut obs: Observation = Vec::new();
                    let mut queue: VecDeque<AtomId> = live.iter().copied().collect();
                    let mut seen: HashSet<AtomId> = HashSet::new();
                    while let Some(aid) = queue.pop_front() {
                        if !seen.insert(aid) {
                            continue;
                        }
                        let thunk = step_thunks[aid as usize].clone();
                        let served = expand(&thunk).map_err(CheckError::from)?;
                        let mut intern = |t: Thunk| match ids.entry(t.identity()) {
                            Entry::Occupied(e) => *e.get(),
                            Entry::Vacant(e) => {
                                let fresh = step_thunks.len() as AtomId;
                                step_thunks.push(t);
                                *e.insert(fresh)
                            }
                        };
                        let abstracted = match served {
                            Served::Formula(expansion) => expansion.map_atoms(&mut intern),
                            // A memo hit serves the entry's pre-abstracted
                            // shape: re-indexing its deduplicated atoms
                            // into this step's id space is the only work —
                            // a fully warm step does zero IR evaluation
                            // and never re-walks a `Formula<Thunk>`. The
                            // entry's atoms are stored in first-occurrence
                            // order (the order `map_atoms` discovers
                            // them), so id assignment matches the fresh
                            // path exactly.
                            Served::Memo(entry) => {
                                let local: Vec<AtomId> =
                                    entry.atoms.iter().map(|t| intern(t.clone())).collect();
                                entry
                                    .shape
                                    .clone()
                                    .map_atoms(&mut |i: u32| local[i as usize])
                            }
                        };
                        for_each_live_atom(&abstracted, &mut |&a| {
                            if !seen.contains(&a) {
                                queue.push_back(a);
                            }
                        });
                        obs.push((aid, abstracted));
                    }
                    sink.close_with(atoms_span, |a| {
                        a.push(("atoms", AttrValue::U64(obs.len() as u64)));
                        a.push((
                            "expansions",
                            AttrValue::U64(expansion_requests.get() - expansions_before),
                        ));
                    });
                    let table_span = sink.open(SpanKind::AutomatonStep);
                    let step = table
                        .lock()
                        .expect("automaton table poisoned")
                        .step(*id, &obs);
                    sink.close_with(table_span, |a| {
                        if let Ok((_, hit)) = &step {
                            a.push(("table_hit", AttrValue::Bool(*hit)));
                        }
                    });
                    match step {
                        Ok((step, hit)) => {
                            if hit {
                                *ltl_table_hits += 1;
                            }
                            *states_seen += 1;
                            let expansions = expansion_requests.get() - expansions_before;
                            match step {
                                TableStep::Done(b) => {
                                    if let (Some(sm), Some(key)) = (step_memo.as_deref(), memo_key)
                                    {
                                        sm.insert(
                                            key,
                                            StepEntry {
                                                next: StepNext::Done(b),
                                                expansions,
                                            },
                                        );
                                    }
                                    *pos = AutomatonPos::Done(b);
                                    StepPlan::Report(StepReport::Definitive(b))
                                }
                                TableStep::Goto {
                                    state: next,
                                    presumptive,
                                    sources,
                                } => {
                                    let bindings: Vec<Thunk> = sources
                                        .iter()
                                        .map(|&s| step_thunks[s as usize].clone())
                                        .collect();
                                    let next_sig = if step_memo.is_some() {
                                        bindings_sig(binding_keyer, binding_keys, &bindings)
                                    } else {
                                        0
                                    };
                                    if let (Some(sm), Some(key)) = (step_memo.as_deref(), memo_key)
                                    {
                                        sm.insert(
                                            key,
                                            StepEntry {
                                                next: StepNext::Goto {
                                                    state: next,
                                                    presumptive,
                                                    bindings: bindings.clone(),
                                                    bindings_sig: next_sig,
                                                },
                                                expansions,
                                            },
                                        );
                                    }
                                    *pos = AutomatonPos::Running {
                                        id: next,
                                        bindings,
                                        sig: next_sig,
                                    };
                                    StepPlan::Report(StepReport::Continue { presumptive })
                                }
                            }
                        }
                        Err(_) => {
                            // The residual space outgrew the cap (or an
                            // expansion fell outside the observation —
                            // impossible by construction, handled the same
                            // way): reconstitute the concrete residual and
                            // resume the stepper exactly where the table
                            // left off. Re-observing the current state
                            // below re-expands its atoms; with a cache
                            // mode on the memo or footprint cache serves
                            // them, and the fallback is verdict-invisible
                            // either way.
                            let formula = table
                                .lock()
                                .expect("automaton table poisoned")
                                .state_formula(*id)
                                .clone();
                            let residual =
                                formula.map_atoms(&mut |a: AtomId| bindings[a as usize].clone());
                            StepPlan::Fallback(Evaluator::resume(
                                residual,
                                *states_seen,
                                last_report,
                            ))
                        }
                    }
                }
            },
        };
        let report = match plan {
            StepPlan::Report(report) => report,
            StepPlan::Fallback(mut ev) => {
                let atoms_span = sink.open(SpanKind::Atoms);
                let report = ev
                    .observe_expanding(&mut |t: &Thunk| expand(t).map(Served::into_formula))
                    .map_err(CheckError::from)?;
                sink.close_with(atoms_span, |a| {
                    a.push(("fallback", AttrValue::Bool(true)));
                });
                self.engine = Engine::Stepper(ev);
                report
            }
        };
        // A step-memo hit replays the original transition's expansion
        // count into the atom counters (the closure's borrows have ended
        // here). Off mode re-evaluates every request, Value mode would
        // have served every one from the (necessarily warm — the original
        // transition inserted them) atom memo.
        if let Some(expansions) = step_replayed {
            self.atoms_total += expansions;
            match self.atom_cache_mode {
                AtomCacheMode::Off => self.atoms_reevaluated += expansions,
                AtomCacheMode::Value => self.atom_memo_hits += expansions,
                AtomCacheMode::Footprint => {
                    unreachable!("step memo is disabled under the footprint cache")
                }
            }
        }
        let elapsed = eval_started.elapsed();
        self.eval_time += elapsed;
        let step_expansions = expansion_requests.get() + step_replayed.unwrap_or(0);
        let step_memoized = step_replayed.is_some();
        self.sink.close_with(step_span, |a| {
            a.push(("expansions", AttrValue::U64(step_expansions)));
            a.push(("step_memo_hit", AttrValue::Bool(step_memoized)));
        });
        if let StepReport::Definitive(b) = report {
            self.sink.instant(SpanKind::Verdict, |a| {
                a.push(("value", AttrValue::Bool(b)));
            });
        }
        self.metrics.step_latency(elapsed);
        self.metrics.probe_depth(step_expansions);
        self.last_report = Some(report);
        self.last_state = Some(state);
        Ok(())
    }

    /// The number of residual states the property's automaton table holds
    /// (0 in stepper mode). Read at session end for
    /// [`crate::report::PhaseTimings::ltl_states`]; the table survives a
    /// mid-run stepper fallback, so the counter stays meaningful.
    pub(crate) fn ltl_states(&self) -> u64 {
        self.ltl_table
            .as_ref()
            .map(|t| t.lock().expect("automaton table poisoned").state_count() as u64)
            .unwrap_or(0)
    }

    /// Engine-dispatched forced verdict (see [`Evaluator::forced_outcome`]):
    /// the last report's regular outcome when it yields one; before any
    /// observation, `MoreStatesNeeded`; otherwise the end-of-trace default
    /// of the current residual, read presumptively. The table precomputes
    /// that default per state — `end_of_trace_default` never looks inside
    /// an atom, so the abstract answer is the concrete one.
    fn forced_outcome(&self) -> Outcome {
        match &self.engine {
            Engine::Stepper(ev) => ev.forced_outcome(),
            Engine::Automaton {
                table,
                pos,
                states_seen,
            } => {
                if let Some(report) = self.last_report {
                    if let Outcome::Verdict(v) = report.outcome() {
                        return Outcome::Verdict(v);
                    }
                }
                if *states_seen == 0 {
                    return Outcome::MoreStatesNeeded;
                }
                match pos {
                    AutomatonPos::Done(b) => Outcome::Verdict(Verdict::definitely(*b)),
                    AutomatonPos::Running { id, .. } => Outcome::Verdict(Verdict::presumably(
                        table
                            .lock()
                            .expect("automaton table poisoned")
                            .forced_default(*id),
                    )),
                }
            }
        }
    }

    pub(crate) fn definitive(&self) -> Option<bool> {
        match self.last_report {
            Some(StepReport::Definitive(b)) => Some(b),
            _ => None,
        }
    }

    fn presumptive(&self) -> Option<bool> {
        match self.last_report {
            Some(StepReport::Continue { presumptive }) => presumptive,
            Some(StepReport::Definitive(b)) => Some(b),
            None => None,
        }
    }

    /// Formula demands more states (required-next outstanding)? Only
    /// meaningful in the evaluator role — the pipelined driver cannot
    /// answer this (its observer copy is always `false`), so it speculates
    /// through the budget boundary and the evaluator stage, which can,
    /// decides where the canonical run ends.
    pub(crate) fn demands_more(&self) -> bool {
        matches!(
            self.last_report,
            Some(StepReport::Continue { presumptive: None })
        )
    }

    /// Has the per-run action budget been spent?
    pub(crate) fn budget_spent(&self) -> bool {
        self.actions_done >= self.options.max_actions
    }

    /// Has the hard action cap (budget plus demand headroom) been hit?
    pub(crate) fn at_hard_cap(&self) -> bool {
        self.actions_done >= self.options.hard_action_cap()
    }

    /// The protocol version of the next `Act`/`Wait`: how many states this
    /// run has seen.
    pub(crate) fn version(&self) -> u64 {
        self.states_count as u64
    }

    /// Every enabled action instance at the current state, paired with
    /// its interned name. Guard evaluation counts toward
    /// [`Run::eval_time`].
    fn enabled_instances(
        &mut self,
        rng: &mut Option<&mut StdRng>,
    ) -> Result<Vec<Candidate>, CheckError> {
        let eval_started = std::time::Instant::now();
        let result = self.enabled_instances_inner(rng);
        self.eval_time += eval_started.elapsed();
        result
    }

    fn enabled_instances_inner(
        &self,
        rng: &mut Option<&mut StdRng>,
    ) -> Result<Vec<Candidate>, CheckError> {
        let state = self.last_state.as_ref().expect("state after start");
        let ctx = EvalCtx::with_state(state, self.options.default_demand);
        let mut out = Vec::new();
        for (name, &sym) in self.check.actions.iter().zip(&self.action_syms) {
            let av: Arc<ActionValue> = match self.spec.action(name) {
                Some(av) => Arc::clone(av),
                // `noop!`/`reload!` may appear in with-lists undeclared.
                None => match name.as_str() {
                    "noop!" => Arc::new(ActionValue::constant("noop!", ActionKind::Noop)),
                    "reload!" => Arc::new(ActionValue::constant("reload!", ActionKind::Reload)),
                    other => {
                        return Err(CheckError::new(format!(
                            "check references undeclared action `{other}`"
                        )))
                    }
                },
            };
            if let Some(guard) = &av.guard {
                if !eval_guard(guard, &ctx).map_err(CheckError::from)? {
                    continue;
                }
            }
            let Some(kind) = av.kind.clone() else {
                continue; // events are not performable
            };
            let base = ActionInstance {
                name: name.clone(),
                kind,
                target: None,
                timeout_ms: av.timeout_ms,
            };
            if base.kind.needs_target() {
                let selector = av.selector.ok_or_else(|| {
                    CheckError::new(format!("action `{name}` lacks a target selector"))
                })?;
                let count = state.matches(&selector).len();
                for index in 0..count {
                    let mut instance = base.clone();
                    instance.target = Some((selector, index));
                    if let ActionKind::Input(None) = instance.kind {
                        if let Some(rng) = rng.as_deref_mut() {
                            instance.kind = ActionKind::Input(Some(generate_text(rng)));
                        }
                    }
                    out.push(Candidate {
                        action: instance,
                        name: sym,
                    });
                }
            } else {
                out.push(Candidate {
                    action: base,
                    name: sym,
                });
            }
        }
        Ok(out)
    }

    /// Picks the next action, or `None` when the run should stop.
    pub(crate) fn next_action(
        &mut self,
        source: &mut ActionSource<'_>,
    ) -> Result<Option<ActionInstance>, CheckError> {
        if matches!(source, ActionSource::Random { .. }) {
            if self.budget_spent() && !self.demands_more() {
                return Ok(None);
            }
            if self.at_hard_cap() {
                return Ok(None);
            }
        }
        self.select_action(source)
    }

    /// The selection half of [`Run::next_action`], without the stop
    /// conditions: prefix replay, guard-filtered candidate enumeration and
    /// the strategy pick. Split out because the pipelined driver checks
    /// only the hard cap before selecting — the budget-boundary stop needs
    /// `demands_more`, which belongs to the evaluator stage.
    pub(crate) fn select_action(
        &mut self,
        source: &mut ActionSource<'_>,
    ) -> Result<Option<ActionInstance>, CheckError> {
        match source {
            ActionSource::Random { rng, prefix, pos } => {
                // Corpus replay-then-extend: walk the prefix first. An
                // action that no longer applies (guard false, target
                // gone) abandons the rest of the prefix — the run
                // diverged, so the remainder would lead somewhere else
                // anyway — and falls through to strategy selection.
                while *pos < prefix.len() {
                    let action = prefix[*pos].clone();
                    *pos += 1;
                    if self.script_action_valid(&action)? {
                        self.last_choice = Choice {
                            fp: self.coverage.current(),
                            name: Symbol::intern(&action.name),
                            target_index: target_index(&action),
                        };
                        return Ok(Some(action));
                    }
                    *pos = prefix.len();
                }
                let candidates = {
                    let mut rng_opt: Option<&mut StdRng> = Some(rng);
                    self.enabled_instances(&mut rng_opt)?
                };
                if candidates.is_empty() {
                    return Ok(None);
                }
                let ctx = StrategyCtx {
                    current: self.coverage.current(),
                    action_counts: &self.action_counts,
                    coverage: &self.coverage,
                };
                let chosen = &candidates[self.strategy.pick(&ctx, &candidates, rng)];
                self.last_choice = Choice {
                    fp: self.coverage.current(),
                    name: chosen.name,
                    target_index: chosen.target_index(),
                };
                Ok(Some(chosen.action.clone()))
            }
            ActionSource::Script { actions, pos } => {
                let Some(action) = actions.get(*pos) else {
                    return Ok(None);
                };
                *pos += 1;
                // Scripted replays go through the same acceptance
                // bookkeeping as random runs, so the choice must be
                // recorded here too — otherwise their counts and
                // coverage pairs would be credited to a stale choice.
                self.last_choice = Choice {
                    fp: self.coverage.current(),
                    name: Symbol::intern(&action.name),
                    target_index: target_index(action),
                };
                Ok(Some(action.clone()))
            }
        }
    }

    /// Records `action` as the last choice, exactly as
    /// [`Run::select_action`] would have: choice-time fingerprint plus
    /// interned name and target index. The pipelined evaluator stage calls
    /// this when replaying an accepted action it did not itself select, so
    /// the acceptance bookkeeping ([`Run::note_accepted`]/
    /// [`Run::note_effect`]) credits the same `(state, action)` pair the
    /// sequential engine would.
    pub(crate) fn note_chosen(&mut self, action: &ActionInstance) {
        self.last_choice = Choice {
            fp: self.coverage.current(),
            name: Symbol::intern(&action.name),
            target_index: target_index(action),
        };
    }

    /// Script bookkeeping for an accepted action, called *before* the
    /// resulting states are ingested so that trace positions (and the
    /// corpus prefix lengths harvested from them) include the action
    /// that produced them. The interned name and target index were
    /// captured when the action was chosen ([`Run::next_action`]).
    pub(crate) fn note_accepted(&mut self, action: ActionInstance) {
        *self.action_counts.entry(self.last_choice.name).or_default() += 1;
        self.script.push(action);
        self.actions_done += 1;
    }

    /// Coverage bookkeeping for an accepted action, called *after* its
    /// resulting states were ingested: records the `(state, action)`
    /// pair against the choice-time fingerprint, with productivity read
    /// off the now-current fingerprint ([`RunCoverage::note_action`]).
    pub(crate) fn note_effect(&mut self) {
        if !self.track_coverage {
            return;
        }
        let Choice {
            fp,
            name,
            target_index,
        } = self.last_choice;
        self.coverage.note_action(fp, name, target_index);
    }

    /// Is a scripted action still applicable at the current state?
    pub(crate) fn script_action_valid(&self, action: &ActionInstance) -> Result<bool, CheckError> {
        let state = self.last_state.as_ref().expect("state after start");
        let ctx = EvalCtx::with_state(state, self.options.default_demand);
        if let Some(av) = self.spec.action(&action.name) {
            if let Some(guard) = &av.guard {
                if !eval_guard(guard, &ctx).map_err(CheckError::from)? {
                    return Ok(false);
                }
            }
        }
        if let Some((selector, index)) = &action.target {
            if *index >= state.matches(selector).len() {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Concludes the run. `allow_forced` permits the end-of-trace fallback
    /// verdict for formulas whose demands never drain (see
    /// `quickltl::progress::end_of_trace_default`); it is only set for
    /// *random* runs stopping naturally (budget spent, application stuck).
    /// Scripted replays that merely ran out of script must NOT use it —
    /// otherwise the shrinker would count any prefix ending mid-demand as
    /// a fresh "failure" and shrink real counterexamples into noise.
    pub(crate) fn finish(&self, allow_forced: bool) -> RunOutcome {
        if let Some(b) = self.definitive() {
            return RunOutcome::Result(self.to_result(Verdict::definitely(b)));
        }
        if let Some(b) = self.presumptive() {
            return RunOutcome::Result(self.to_result(Verdict::presumably(b)));
        }
        if allow_forced {
            if let Outcome::Verdict(v) = self.forced_outcome() {
                return RunOutcome::Result(self.to_result_forced(v));
            }
        }
        RunOutcome::Result(RunResult::Inconclusive {
            reason: format!(
                "run ended after {} action(s) with trace-length demands \
                 still outstanding",
                self.actions_done
            ),
        })
    }

    fn to_result(&self, verdict: Verdict) -> RunResult {
        self.result_with(verdict, false)
    }

    fn to_result_forced(&self, verdict: Verdict) -> RunResult {
        self.result_with(verdict, true)
    }

    fn result_with(&self, verdict: Verdict, forced: bool) -> RunResult {
        if verdict.to_bool() {
            RunResult::Passed(verdict)
        } else {
            RunResult::Failed(Counterexample {
                verdict,
                script: self.script.clone(),
                trace: self.trace.clone(),
                shrunk: false,
                forced,
            })
        }
    }
}
