//! # quickstrom-checker
//!
//! The Quickstrom checker: it evaluates QuickLTL formulae by progression
//! and selects actions to perform (§3.4). Nothing here is specific to any
//! executor — "paired with a different executor, the same checker could be
//! used to test any reactive system".
//!
//! The flow per property:
//!
//! 1. Send [`Start`](quickstrom_protocol::CheckerMsg::Start) with the
//!    selector dependencies from static analysis.
//! 2. Wait for the property's initial event (`loaded?`).
//! 3. Loop: progress the formula through each new state; stop on a
//!    definitive verdict; otherwise pick an enabled action uniformly at
//!    random and request it with the current trace version. Stale requests
//!    (an asynchronous event grew the trace first, Figure 10) are ignored
//!    by the executor, and the checker re-decides.
//! 4. A run may end once the action budget is spent and the formula no
//!    longer demands more states; failing runs yield replayable, shrinkable
//!    counterexamples.
//!
//! With [`CheckOptions::jobs`] greater than one, the runs of a property
//! fan out over an in-tree worker [`pool`]; per-run seeds derive from
//! `(master seed, run index)` ([`derive_run_seed`]), so the report is
//! bit-identical regardless of worker count.
//!
//! By default each run itself executes on the two-stage *pipelined*
//! runtime (`pipeline`): a driver stage owns the executor and the action
//! strategy while an evaluator stage progresses the formula, lagging by up
//! to [`CheckOptions::pipeline_depth`] states; a definitive verdict
//! cancels the driver and discards the speculative tail, keeping reports
//! bit-identical to the sequential engine
//! ([`CheckOptions::pipeline`]` = `[`PipelineMode::Off`]), which remains
//! available as the differential oracle.
//!
//! ## Example
//!
//! A complete check against a tiny hand-rolled executor (real executors
//! live in the `quickstrom-executor` and `ccs` crates):
//!
//! ```
//! use quickstrom_checker::{check_spec, CheckOptions};
//! use quickstrom_protocol::{
//!     CheckerMsg, ElementState, Executor, ExecutorMsg, StateSnapshot,
//! };
//!
//! /// An executor whose single element `#light` toggles on every click.
//! struct Blinker {
//!     on: bool,
//! }
//!
//! impl Blinker {
//!     fn snapshot(&self) -> StateSnapshot {
//!         let mut s = StateSnapshot::new();
//!         s.insert_query(
//!             "#light",
//!             vec![ElementState::with_text(if self.on { "on" } else { "off" })],
//!         );
//!         s
//!     }
//! }
//!
//! // A minimal executor ships full snapshots; incremental executors send
//! // `SnapshotDelta`s after the first state (see `quickstrom-executor`).
//! impl Executor for Blinker {
//!     fn send(&mut self, msg: CheckerMsg) -> Vec<ExecutorMsg> {
//!         match msg {
//!             CheckerMsg::Start { .. } => {
//!                 vec![ExecutorMsg::event("loaded?", Vec::new(), self.snapshot())]
//!             }
//!             CheckerMsg::Act { .. } => {
//!                 self.on = !self.on;
//!                 vec![ExecutorMsg::acted(self.snapshot())]
//!             }
//!             _ => vec![],
//!         }
//!     }
//! }
//!
//! let spec = specstrom::load(
//!     "action flip! = click!(`#light`);\n\
//!      let ~p = always[6] eventually[2] (`#light`.text == \"on\");\n\
//!      check p with flip!;",
//! )
//! .unwrap();
//! let options = CheckOptions::default().with_tests(3).with_max_actions(10);
//! let report = check_spec(&spec, &options, &|| {
//!     Box::new(Blinker { on: false })
//! })
//! .unwrap();
//! assert!(report.passed());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod explain;
pub mod options;
mod pipeline;
pub mod pool;
pub mod report;
mod run;
pub mod runner;
mod session;

pub use explain::explain_failure;
pub use options::{
    AtomCacheMode, CheckOptions, EvalMode, FingerprintMode, PipelineMode, SelectionStrategy,
};
pub use quickstrom_explore::{CoverageStats, StateFingerprint};
pub use quickstrom_obs::{FailureExplanation, MetricsRegistry, ObsOptions, TraceLog, TraceOptions};
pub use report::{Counterexample, PhaseTimings, PropertyReport, Report, RunResult, TraceEntry};
pub use runner::{
    check_property, check_property_observed, check_spec, check_spec_observed, derive_run_seed,
    CheckError, MakeExecutor, ObsArtifacts, RunObs,
};
