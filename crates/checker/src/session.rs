//! One checker⟷executor session: the I/O half of a test run.
//!
//! A [`Session`] owns a fresh executor and a [`Run`], and drives the
//! protocol loop of §3.4 against it: send `Start`, ingest the `loaded?`
//! event, then alternate between picking actions (or honouring pending
//! `Wait`s) and feeding the executor's replies back into the formula,
//! until a definitive verdict arrives or the action source dries up.
//!
//! Sessions are single-threaded and self-contained — the parallel runtime
//! in [`crate::runner`] simply constructs one `Session` per worker.

use crate::options::CheckOptions;
use crate::report::PhaseTimings;
use crate::run::{ActionSource, Run, RunOutcome};
use crate::runner::CheckError;
use quickstrom_explore::RunCoverage;
use quickstrom_obs::{AttrValue, MetricsRecorder, SpanKind, TraceSink, TrackLog};
use quickstrom_protocol::{ActionInstance, CheckerMsg, Executor, ExecutorMsg, TransportStats};
use specstrom::{CheckDef, CompiledSpec, Thunk};

/// A [`Run`] coupled with the executor session that feeds it.
pub(crate) struct Session<'a> {
    run: Run<'a>,
    executor: Box<dyn Executor>,
    /// Wall-clock time spent inside `Executor::send` (the per-phase
    /// attribution behind [`PhaseTimings::executor_s`]).
    exec_time: std::time::Duration,
}

impl<'a> Session<'a> {
    /// Opens a session: a fresh `Run` against a fresh executor.
    /// `property_name` keys the property's shared evaluation-automaton
    /// table; `property` is the thunk the formula progression starts from.
    pub(crate) fn new(
        spec: &'a CompiledSpec,
        check: &'a CheckDef,
        property_name: &str,
        property: &Thunk,
        options: &'a CheckOptions,
        executor: Box<dyn Executor>,
    ) -> Self {
        Session {
            run: Run::new(spec, check, property_name, property, options),
            executor,
            exec_time: std::time::Duration::ZERO,
        }
    }

    /// Attaches an observability sink and metrics recorder to the session's
    /// run (both disabled by default; spans and samples never branch
    /// control flow).
    pub(crate) fn with_obs(mut self, sink: TraceSink, metrics: MetricsRecorder) -> Self {
        self.run = self.run.with_obs(sink, metrics);
        self
    }

    /// Takes the session's trace track (if tracing was enabled) and
    /// metrics registry; only called once the run has concluded.
    pub(crate) fn take_obs(&mut self) -> (Option<TrackLog>, quickstrom_obs::MetricsRegistry) {
        let sink = std::mem::replace(&mut self.run.sink, TraceSink::disabled());
        let metrics = std::mem::replace(&mut self.run.metrics, MetricsRecorder::disabled());
        (sink.finish(), metrics.into_registry())
    }

    /// Sends one message, attributing the wall time to the executor phase.
    fn send(&mut self, msg: CheckerMsg) -> Vec<ExecutorMsg> {
        let span = self.run.sink.open(SpanKind::Send);
        let started = std::time::Instant::now();
        let replies = self.executor.send(msg);
        let elapsed = started.elapsed();
        self.exec_time += elapsed;
        self.run.metrics.send_latency(elapsed);
        self.run.sink.close_with(span, |a| {
            a.push(("replies", AttrValue::U64(replies.len() as u64)));
        });
        replies
    }

    /// The per-phase wall-clock attribution of this session so far.
    pub(crate) fn timings(&self) -> PhaseTimings {
        PhaseTimings {
            executor_s: self.exec_time.as_secs_f64(),
            eval_s: self.run.eval_time.as_secs_f64(),
            atoms_total: self.run.atoms_total,
            atoms_reevaluated: self.run.atoms_reevaluated,
            atom_memo_hits: self.run.atom_memo_hits,
            atom_memo_misses: self.run.atom_memo_misses,
            atom_memo_evictions: self.run.atom_memo_evictions,
            ltl_states: self.run.ltl_states(),
            ltl_table_hits: self.run.ltl_table_hits,
            step_memo_hits: self.run.step_memo_hits,
            // The sequential engine has no pipeline: no depth, no stalls,
            // no speculation to truncate.
            pipeline_depth: 0,
            executor_stall_s: 0.0,
            evaluator_stall_s: 0.0,
            speculative_states_discarded: 0,
        }
    }

    /// The snapshot-transport accounting of this session's executor.
    pub(crate) fn transport(&self) -> TransportStats {
        self.executor.transport_stats()
    }

    /// States observed so far (trace length).
    pub(crate) fn states(&self) -> usize {
        self.run.trace.len()
    }

    /// Actions accepted so far.
    pub(crate) fn actions(&self) -> usize {
        self.run.actions_done
    }

    /// Takes the run's accepted action script (the corpus harvests
    /// replay prefixes from it). Only called once the run has concluded
    /// and its result — including any counterexample, which clones the
    /// script — has been extracted.
    pub(crate) fn take_script(&mut self) -> Vec<ActionInstance> {
        std::mem::take(&mut self.run.script)
    }

    /// Takes the run's coverage observations (leaving fresh, empty
    /// coverage behind — only called once the run has concluded).
    pub(crate) fn take_coverage(&mut self) -> RunCoverage {
        std::mem::take(&mut self.run.coverage)
    }

    /// Executes the run to completion against the owned executor,
    /// wrapping the whole session in a `run` span when tracing is on.
    pub(crate) fn drive(
        &mut self,
        source: &mut ActionSource<'_>,
    ) -> Result<RunOutcome, CheckError> {
        let span = self.run.sink.open(SpanKind::Run);
        let result = self.drive_inner(source);
        let states = self.run.trace.len() as u64;
        let actions = self.run.actions_done as u64;
        self.run.sink.close_with(span, |a| {
            a.push(("states", AttrValue::U64(states)));
            a.push(("actions", AttrValue::U64(actions)));
        });
        result
    }

    fn drive_inner(&mut self, source: &mut ActionSource<'_>) -> Result<RunOutcome, CheckError> {
        let start = CheckerMsg::Start {
            dependencies: self.run.spec.dependencies.clone(),
        };
        let replies = self.send(start);
        if replies.is_empty() {
            return Err(CheckError::new(
                "executor sent nothing in response to Start (expected the \
                 loaded? event)",
            ));
        }
        let allow_forced = matches!(source, ActionSource::Random { .. });
        for msg in &replies {
            self.run.ingest(msg, None)?;
            if self.run.definitive().is_some() {
                self.send(CheckerMsg::End);
                return Ok(self.run.finish(allow_forced));
            }
        }
        loop {
            // Event-associated timeouts first (§3.4, Wait).
            if let Some(t) = self.run.pending_wait.take() {
                let version = self.run.version();
                let replies = self.send(CheckerMsg::Wait {
                    time_ms: t,
                    version,
                });
                for msg in &replies {
                    self.run.ingest(msg, None)?;
                }
                if self.run.definitive().is_some() {
                    break;
                }
                continue;
            }
            let Some(action) = self.run.next_action(source)? else {
                break;
            };
            if matches!(source, ActionSource::Script { .. })
                && !self.run.script_action_valid(&action)?
            {
                self.send(CheckerMsg::End);
                return Ok(RunOutcome::ScriptInvalid);
            }
            let version = self.run.version();
            let replies = self.send(CheckerMsg::Act {
                action: action.clone(),
                version,
            });
            let accepted = replies.iter().any(ExecutorMsg::is_acted);
            if accepted {
                // Script bookkeeping happens *before* ingesting the
                // replies, so the states the action produced see a trace
                // position that includes it — the corpus harvests replay
                // prefixes from exactly these positions.
                self.run.note_accepted(action.clone());
            }
            let mut acted_seen = false;
            for msg in &replies {
                let tag = if msg.is_acted() && !acted_seen {
                    acted_seen = true;
                    Some(&action)
                } else {
                    None
                };
                self.run.ingest(msg, tag)?;
                if self.run.definitive().is_some() {
                    break;
                }
            }
            if accepted {
                // Coverage bookkeeping happens *after*: productivity is
                // the post-action fingerprint differing from the
                // choice-time one.
                self.run.note_effect();
            } else if replies.is_empty() {
                // Neither acted nor any pending event: protocol violation.
                return Err(CheckError::new(
                    "executor ignored an up-to-date Act without sending events",
                ));
            }
            if self.run.definitive().is_some() {
                break;
            }
        }
        self.send(CheckerMsg::End);
        Ok(self.run.finish(allow_forced))
    }
}
