//! Checker configuration.

/// How the checker picks among enabled action instances.
///
/// The paper's checker "makes a completely random selection from the set
/// of allowable actions" and names more targeted selection as future work
/// (§5.1). The strategies themselves — uniform, least-tried, and the
/// coverage-guided novelty strategy with its trace corpus — live in the
/// `quickstrom-explore` crate; this re-export keeps the checker API
/// stable. Every strategy produces reports that are bit-identical for
/// `jobs = 1` and `jobs = N` at a fixed seed (see DESIGN.md,
/// *Exploration engine*).
pub use quickstrom_explore::SelectionStrategy;

/// Which state abstraction the coverage fingerprint uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FingerprintMode {
    /// The spec-agnostic shape hash: every selector, bucketed text sizes
    /// (`quickstrom_protocol::fingerprint_state`).
    #[default]
    Shape,
    /// The spec-aware projection hash: only the selectors and element
    /// projections the compiled spec's static analysis says its atoms can
    /// read, with exact text
    /// (`quickstrom_protocol::fingerprint_state_masked` over
    /// `CompiledSpec::analysis` masks).
    SpecAware,
}

/// How the checker progresses LTL formulae over observed states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalMode {
    /// Step a memoized evaluation automaton
    /// ([`quickltl::TransitionTable`], shared per property across runs):
    /// residual formulae are interned as states, transitions are keyed by
    /// the observed atom-expansion shapes, and a table hit skips the
    /// whole unroll/simplify/classify/step pipeline. Falls back to the
    /// stepper mid-run when the residual space exceeds
    /// [`CheckOptions::automaton_state_cap`]. Verdicts, traces and
    /// shrink scripts are pinned bit-identical to [`EvalMode::Stepper`]
    /// by the `differential_automaton` suite.
    #[default]
    Automaton,
    /// The plain formula-progression stepper ([`quickltl::Evaluator`]),
    /// re-deriving residuals per state. Kept as the differential oracle
    /// and for formulae whose residual space defeats memoization.
    Stepper,
}

impl EvalMode {
    /// The mode's display name (also the `--eval-mode` flag syntax).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EvalMode::Automaton => "automaton",
            EvalMode::Stepper => "stepper",
        }
    }

    /// Parses an `--eval-mode` flag value.
    #[must_use]
    pub fn parse(s: &str) -> Option<EvalMode> {
        match s {
            "automaton" | "table" => Some(EvalMode::Automaton),
            "stepper" => Some(EvalMode::Stepper),
            _ => None,
        }
    }
}

impl std::fmt::Display for EvalMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether each run executes as two overlapped pipeline stages or as the
/// classic sequential loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PipelineMode {
    /// Two-stage pipelined runtime: a *driver* stage owns the executor and
    /// the action strategy (selection needs only the snapshot/delta and
    /// coverage fingerprints, never the LTL verdict) and streams state
    /// updates into a bounded per-run channel; an *evaluator* stage
    /// consumes them — atom memo, automaton step, trace bookkeeping —
    /// lagging by up to [`CheckOptions::pipeline_depth`] states. A
    /// definitive verdict reached mid-pipeline cancels the driver and
    /// truncates the speculative tail, so reports stay bit-identical to
    /// [`PipelineMode::Off`] (pinned by the `differential_pipeline`
    /// suite).
    #[default]
    On,
    /// The sequential engine: perform → ingest → LTL-step before the next
    /// action fires. Kept as the differential oracle (and always used for
    /// shrink replays, whose runs are short and verdict-bound).
    Off,
}

impl PipelineMode {
    /// The mode's display name (also the `--pipeline` flag syntax).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PipelineMode::On => "on",
            PipelineMode::Off => "off",
        }
    }

    /// Parses a `--pipeline` flag value.
    #[must_use]
    pub fn parse(s: &str) -> Option<PipelineMode> {
        match s {
            "on" | "pipelined" => Some(PipelineMode::On),
            "off" | "sequential" => Some(PipelineMode::Off),
            _ => None,
        }
    }
}

impl std::fmt::Display for PipelineMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How the checker reuses atom expansions across states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AtomCacheMode {
    /// Value-keyed expansion memoization: an atom's cached expansion is
    /// keyed by the hash of the footprint-restricted projection of the
    /// current state, so the atom re-expands only when the slice of state
    /// it can read takes a *value* never seen before. The memo is shared
    /// at the property level across runs, workers, and shrink replays
    /// (like the evaluation automaton), with deterministic first-insert
    /// semantics and bounded FIFO eviction
    /// ([`CheckOptions::atom_memo_capacity`]). Verdicts are pinned
    /// bit-identical to the other modes by the `differential_atom_memo`
    /// suite.
    #[default]
    Value,
    /// The older evict-on-delta scheme: a per-run cache that drops an
    /// atom's expansion whenever a snapshot delta touches its static
    /// footprint (or `happened` changes). Revisiting a state after any
    /// footprint-touching change re-evaluates the atom even though its
    /// visible values are unchanged.
    Footprint,
    /// No expansion reuse: every atom re-evaluates at every state. The
    /// differential oracle.
    Off,
}

impl AtomCacheMode {
    /// The mode's display name (also the `--atom-cache` flag syntax).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AtomCacheMode::Value => "value",
            AtomCacheMode::Footprint => "footprint",
            AtomCacheMode::Off => "off",
        }
    }

    /// Parses an `--atom-cache` flag value.
    #[must_use]
    pub fn parse(s: &str) -> Option<AtomCacheMode> {
        match s {
            "value" | "memo" => Some(AtomCacheMode::Value),
            "footprint" | "delta" => Some(AtomCacheMode::Footprint),
            "off" | "none" => Some(AtomCacheMode::Off),
            _ => None,
        }
    }
}

impl std::fmt::Display for AtomCacheMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Options controlling a checking session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckOptions {
    /// Number of test runs per property (each run is one generated
    /// interaction sequence).
    pub tests: usize,
    /// Action budget per run. Runs may exceed it only while required-next
    /// demands are outstanding (the formula determines the minimum trace
    /// length, §2.2).
    pub max_actions: usize,
    /// The demand subscript used for temporal operators without an
    /// explicit annotation. The paper's default is 100 (§4.3).
    pub default_demand: u32,
    /// RNG seed for action selection and input generation; runs are
    /// deterministic given a seed and a deterministic executor.
    pub seed: u64,
    /// Whether to minimise counterexamples by replaying sub-scripts.
    pub shrink: bool,
    /// How to pick among enabled actions (§5.1 extension).
    pub strategy: SelectionStrategy,
    /// Worker threads for the runs of one property. `0` and `1` both mean
    /// sequential. Any value produces a report identical to `jobs = 1`:
    /// run seeds derive from `(seed, run index)` alone and results merge
    /// in run-index order (see DESIGN.md, *Parallel runtime*).
    pub jobs: usize,
    /// Skip re-evaluating atoms whose static footprint a snapshot delta
    /// did not touch (and whose `happened` view is unchanged), reusing the
    /// previous expansion. Sound by the analysis over-approximation;
    /// verdicts are pinned bit-identical to unmasked evaluation by
    /// differential tests. On by default; disable to measure or to
    /// cross-check.
    pub mask_atoms: bool,
    /// Which state abstraction coverage fingerprints use.
    pub fingerprint: FingerprintMode,
    /// How formulae are progressed: table-driven automaton (default) or
    /// the plain stepper.
    pub eval_mode: EvalMode,
    /// How atom expansions are reused across states (see
    /// [`AtomCacheMode`]). `mask_atoms == false` forces
    /// [`AtomCacheMode::Off`] regardless of this field — see
    /// [`CheckOptions::effective_atom_cache`].
    pub atom_cache: AtomCacheMode,
    /// Maximum `(atom, projection-hash)` entries a property's shared
    /// expansion memo may hold before deterministic FIFO eviction (only
    /// meaningful under [`AtomCacheMode::Value`]). Clamped to at least 1.
    pub atom_memo_capacity: usize,
    /// Maximum residual states a property's evaluation automaton may
    /// intern before runs fall back to the stepper (see
    /// [`EvalMode::Automaton`]). The fallback is verdict-invisible; the
    /// cap only bounds memory and is exposed mainly so tests can force
    /// the fallback path.
    pub automaton_state_cap: usize,
    /// Whether runs execute as two overlapped stages (driver + evaluator,
    /// the default) or as the classic sequential loop (the differential
    /// oracle). See [`PipelineMode`].
    pub pipeline: PipelineMode,
    /// How many states the driver stage may run ahead of the evaluator
    /// stage under [`PipelineMode::On`] — the bound of the per-run state
    /// channel. Larger depths hide more executor latency but speculate
    /// further past a mid-pipeline verdict (the speculative tail is always
    /// truncated, so the depth is report-invisible). Clamped to at least
    /// 1.
    pub pipeline_depth: usize,
    /// How many in-flight pipelined sessions each worker multiplexes
    /// (poll-driven, retired in run-index order so `jobs = N` determinism
    /// is preserved). `1` means one session at a time per worker; larger
    /// values help when the executor has real latency (remote executors,
    /// browsers). Report-invisible. Clamped to at least 1.
    pub multiplex: usize,
    /// Whether automaton-mode runs may answer whole transitions from the
    /// property's shared step memo (state-value transition cache). Replays
    /// are exact — verdicts, traces and atom counters match an unmemoized
    /// engine; only `ltl_table_hits` may run a sliver high (see
    /// `PhaseTimings::step_memo_hits`) — so this is on by default; the
    /// switch exists as the differential oracle (`differential_pipeline`
    /// pins it) and because the footprint atom cache opts out implicitly.
    pub step_memo: bool,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            tests: 20,
            max_actions: 100,
            default_demand: 100,
            seed: 0,
            shrink: true,
            strategy: SelectionStrategy::UniformRandom,
            jobs: 1,
            mask_atoms: true,
            fingerprint: FingerprintMode::Shape,
            eval_mode: EvalMode::Automaton,
            atom_cache: AtomCacheMode::Value,
            atom_memo_capacity: 65_536,
            automaton_state_cap: 4096,
            pipeline: PipelineMode::On,
            pipeline_depth: 16,
            multiplex: 1,
            step_memo: true,
        }
    }
}

impl CheckOptions {
    /// Returns the options with the given number of runs.
    #[must_use]
    pub fn with_tests(mut self, tests: usize) -> Self {
        self.tests = tests;
        self
    }

    /// Returns the options with the given action budget per run.
    #[must_use]
    pub fn with_max_actions(mut self, max_actions: usize) -> Self {
        self.max_actions = max_actions;
        self
    }

    /// Returns the options with the given default demand subscript.
    #[must_use]
    pub fn with_default_demand(mut self, demand: u32) -> Self {
        self.default_demand = demand;
        self
    }

    /// Returns the options with the given RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the options with shrinking switched on or off.
    #[must_use]
    pub fn with_shrink(mut self, shrink: bool) -> Self {
        self.shrink = shrink;
        self
    }

    /// Returns the options with the given action-selection strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: SelectionStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Returns the options with the given worker-thread count (`0` and `1`
    /// both mean sequential; the report is the same for every value).
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Returns the options with atom masking switched on or off.
    #[must_use]
    pub fn with_mask_atoms(mut self, mask_atoms: bool) -> Self {
        self.mask_atoms = mask_atoms;
        self
    }

    /// Returns the options with the given fingerprint abstraction.
    #[must_use]
    pub fn with_fingerprint(mut self, fingerprint: FingerprintMode) -> Self {
        self.fingerprint = fingerprint;
        self
    }

    /// Returns the options with the given formula-progression mode.
    #[must_use]
    pub fn with_eval_mode(mut self, eval_mode: EvalMode) -> Self {
        self.eval_mode = eval_mode;
        self
    }

    /// Returns the options with the given atom-expansion cache mode.
    #[must_use]
    pub fn with_atom_cache(mut self, atom_cache: AtomCacheMode) -> Self {
        self.atom_cache = atom_cache;
        self
    }

    /// Returns the options with the given atom-memo capacity (clamped to
    /// at least 1).
    #[must_use]
    pub fn with_atom_memo_capacity(mut self, capacity: usize) -> Self {
        self.atom_memo_capacity = capacity.max(1);
        self
    }

    /// The atom-cache mode actually in effect: `mask_atoms == false`
    /// disables every reuse scheme (both caches key off the footprint
    /// analysis), so it forces [`AtomCacheMode::Off`].
    #[must_use]
    pub fn effective_atom_cache(&self) -> AtomCacheMode {
        if self.mask_atoms {
            self.atom_cache
        } else {
            AtomCacheMode::Off
        }
    }

    /// Returns the options with the given automaton state cap (clamped to
    /// at least 1).
    #[must_use]
    pub fn with_automaton_state_cap(mut self, cap: usize) -> Self {
        self.automaton_state_cap = cap.max(1);
        self
    }

    /// Returns the options with the given pipeline mode.
    #[must_use]
    pub fn with_pipeline(mut self, pipeline: PipelineMode) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Returns the options with the given pipeline depth (clamped to at
    /// least 1 — a zero-capacity channel would be a rendezvous, i.e. no
    /// pipelining at all).
    #[must_use]
    pub fn with_pipeline_depth(mut self, depth: usize) -> Self {
        self.pipeline_depth = depth.max(1);
        self
    }

    /// Returns the options with the given per-worker session multiplexing
    /// factor (clamped to at least 1).
    #[must_use]
    pub fn with_multiplex(mut self, multiplex: usize) -> Self {
        self.multiplex = multiplex.max(1);
        self
    }

    /// Returns the options with the step memo switched on or off.
    #[must_use]
    pub fn with_step_memo(mut self, step_memo: bool) -> Self {
        self.step_memo = step_memo;
        self
    }

    /// The hard cap on actions in one run: the budget plus headroom for
    /// outstanding demands (a nested demand can require up to twice the
    /// default subscript in additional states).
    #[must_use]
    pub fn hard_action_cap(&self) -> usize {
        self.max_actions + 2 * self.default_demand as usize + 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let o = CheckOptions::default();
        assert_eq!(o.default_demand, 100);
        assert!(o.shrink);
        assert!(o.mask_atoms);
        assert_eq!(o.fingerprint, FingerprintMode::Shape);
        assert_eq!(o.eval_mode, EvalMode::Automaton);
        assert_eq!(o.atom_cache, AtomCacheMode::Value);
        assert_eq!(o.atom_memo_capacity, 65_536);
        assert_eq!(o.automaton_state_cap, 4096);
        assert_eq!(o.effective_atom_cache(), AtomCacheMode::Value);
        assert_eq!(o.pipeline, PipelineMode::On);
        assert_eq!(o.pipeline_depth, 16);
        assert_eq!(o.multiplex, 1);
    }

    #[test]
    fn builder_methods() {
        let o = CheckOptions::default()
            .with_tests(5)
            .with_max_actions(30)
            .with_default_demand(10)
            .with_seed(42)
            .with_shrink(false)
            .with_strategy(SelectionStrategy::LeastTried)
            .with_jobs(4)
            .with_mask_atoms(false)
            .with_fingerprint(FingerprintMode::SpecAware)
            .with_eval_mode(EvalMode::Stepper)
            .with_atom_cache(AtomCacheMode::Footprint)
            .with_atom_memo_capacity(0)
            .with_automaton_state_cap(0)
            .with_pipeline(PipelineMode::Off)
            .with_pipeline_depth(0)
            .with_multiplex(0);
        assert!(!o.mask_atoms);
        assert_eq!(o.pipeline, PipelineMode::Off);
        assert_eq!(o.pipeline_depth, 1, "pipeline depth clamps to at least 1");
        assert_eq!(o.multiplex, 1, "multiplex clamps to at least 1");
        assert_eq!(o.atom_cache, AtomCacheMode::Footprint);
        assert_eq!(
            o.atom_memo_capacity, 1,
            "memo capacity clamps to at least 1"
        );
        assert_eq!(
            o.effective_atom_cache(),
            AtomCacheMode::Off,
            "mask_atoms == false forces the cache off"
        );
        assert_eq!(o.eval_mode, EvalMode::Stepper);
        assert_eq!(o.automaton_state_cap, 1, "cap clamps to at least 1");
        assert_eq!(o.fingerprint, FingerprintMode::SpecAware);
        assert_eq!(o.tests, 5);
        assert_eq!(o.max_actions, 30);
        assert_eq!(o.default_demand, 10);
        assert_eq!(o.seed, 42);
        assert!(!o.shrink);
        assert_eq!(o.strategy, SelectionStrategy::LeastTried);
        assert_eq!(o.jobs, 4);
        assert_eq!(o.hard_action_cap(), 30 + 20 + 16);
    }

    #[test]
    fn eval_mode_names_round_trip() {
        for mode in [EvalMode::Automaton, EvalMode::Stepper] {
            assert_eq!(EvalMode::parse(mode.name()), Some(mode));
            assert_eq!(mode.to_string(), mode.name());
        }
        assert_eq!(EvalMode::parse("table"), Some(EvalMode::Automaton));
        assert_eq!(EvalMode::parse("nope"), None);
    }

    #[test]
    fn pipeline_mode_names_round_trip() {
        for mode in [PipelineMode::On, PipelineMode::Off] {
            assert_eq!(PipelineMode::parse(mode.name()), Some(mode));
            assert_eq!(mode.to_string(), mode.name());
        }
        assert_eq!(PipelineMode::parse("pipelined"), Some(PipelineMode::On));
        assert_eq!(PipelineMode::parse("sequential"), Some(PipelineMode::Off));
        assert_eq!(PipelineMode::parse("nope"), None);
    }

    #[test]
    fn atom_cache_names_round_trip() {
        for mode in [
            AtomCacheMode::Value,
            AtomCacheMode::Footprint,
            AtomCacheMode::Off,
        ] {
            assert_eq!(AtomCacheMode::parse(mode.name()), Some(mode));
            assert_eq!(mode.to_string(), mode.name());
        }
        assert_eq!(AtomCacheMode::parse("memo"), Some(AtomCacheMode::Value));
        assert_eq!(
            AtomCacheMode::parse("delta"),
            Some(AtomCacheMode::Footprint)
        );
        assert_eq!(AtomCacheMode::parse("none"), Some(AtomCacheMode::Off));
        assert_eq!(AtomCacheMode::parse("nope"), None);
    }
}
