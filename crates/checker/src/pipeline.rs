//! The two-stage pipelined session runtime (`--pipeline on`, the default).
//!
//! The sequential engine ([`crate::session::Session`]) strictly serializes
//! each step: perform → render → ingest → LTL-step before the next action
//! fires, so wall-clock per run is the *sum* of the executor and evaluator
//! phases. This module splits the step into two concurrent stages over a
//! bounded state stream:
//!
//! * The **driver** stage owns the executor and the action strategy. It
//!   runs an observer-role [`Run`] — action selection needs only the
//!   resolved snapshot/delta, the guard results and (for the novelty
//!   strategy) the coverage fingerprints, never the LTL verdict — and
//!   pushes every reply batch into a bounded per-run channel as a
//!   [`StageEvent`].
//! * The **evaluator** stage owns the full [`Run`]: atom memo, automaton
//!   step, trace and coverage bookkeeping. It consumes the stream lagging
//!   by up to [`CheckOptions::pipeline_depth`] states.
//!
//! ## Truncation and determinism
//!
//! The driver speculates: by the time the evaluator reaches a definitive
//! verdict at state *t*, the driver may have executed up to
//! `pipeline_depth` further states. The evaluator then raises the shared
//! stop flag (cancelling the driver at its next check) and discards the
//! speculative tail unprocessed, so every report artefact — trace, states
//! counter, scripts, coverage — is derived from exactly the states the
//! sequential engine would have seen. Driver decisions at position *t*
//! depend only on history up to *t* (state, guards, action counts,
//! fingerprints, the run RNG — never the verdict), so the two engines
//! agree on every step up to the canonical stop point; divergence exists
//! only in the discarded tail. The same truncation resolves the one
//! evaluator-dependent stop condition — "budget spent and the formula
//! demands no more states": the driver speculates straight through the
//! budget boundary (never parking for a `demands_more` answer), and the
//! evaluator, whose replayed `Run` holds the exact canonical history,
//! concludes the run at the first decision point where the condition
//! holds. The hard action cap bounds that speculation absolutely.
//! The `differential_pipeline` suite pins Report equality against
//! `--pipeline off` across all bundled specs, jobs, snapshot modes, eval
//! modes and cache modes.
//!
//! ## Multiplexing
//!
//! On top of the same seam, [`run_batch_pipelined`] lets each worker drive
//! several in-flight sessions at once: the evaluator stages are poll-driven
//! ([`EvalStage::poll`]), so one worker thread interleaves them while each
//! session's driver thread blocks on its executor. Runs retire into
//! index-ordered slots, preserving the `jobs = N` ⇒ `jobs = 1` determinism
//! contract. This is what hides executor latency (remote executors, real
//! browsers) — see the `pipeline` bench.

use crate::options::CheckOptions;
use crate::pool::Cancellation;
use crate::report::PhaseTimings;
use crate::run::{ActionSource, Run, RunOutcome};
use crate::runner::{derive_run_seed, CheckError, ExecutedRun, MakeExecutor, ObsCtx, RunObs};
use quickstrom_obs::{AttrValue, MetricsRecorder, SpanKind, TraceSink};
use quickstrom_protocol::{ActionInstance, CheckerMsg, Executor, ExecutorMsg, TransportStats};
use rand::rngs::StdRng;
use rand::SeedableRng;
use specstrom::{CheckDef, CompiledSpec, Thunk};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TryRecvError, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// How long an idle multiplexing worker sleeps before re-polling its
/// in-flight sessions.
const IDLE_POLL: Duration = Duration::from_micros(20);

/// One unit of work crossing the stage seam: a reply batch (shared by
/// `Arc` — the driver ingests from its own handle, so nothing is cloned),
/// or a terminal signal.
enum StageEvent {
    /// The `Start` replies (never empty — the driver reports an empty
    /// batch as [`StageEvent::Failed`]). Ingested with Start-batch
    /// semantics: stop at the first definitive reply, remaining replies
    /// never ingested.
    Started(Arc<Vec<ExecutorMsg>>),
    /// Replies to a `Wait`. The whole batch is ingested before the
    /// verdict check, exactly like the sequential engine — the trace
    /// includes every reply of the batch even when an early one was
    /// decisive.
    Waited(Arc<Vec<ExecutorMsg>>),
    /// Replies to an `Act`, with the action for the acceptance
    /// bookkeeping. Ingestion stops mid-batch at a definitive verdict;
    /// the effect bookkeeping still runs for accepted actions.
    Acted {
        /// The action the driver requested.
        action: ActionInstance,
        /// The executor's replies (possibly without an `Acted` — a stale
        /// request outrun by asynchronous events).
        replies: Arc<Vec<ExecutorMsg>>,
    },
    /// The driver stopped naturally: hard action cap, or no enabled
    /// actions. (The budget-boundary stop is the evaluator's decision —
    /// the driver speculates through it.)
    Finished,
    /// A driver-side error (protocol violation, guard-evaluation error).
    /// Discarded when the evaluator already holds a canonical conclusion —
    /// the sequential engine would have stopped before the error site.
    Failed(CheckError),
}

/// The driver⟷evaluator rendezvous state of one pipelined run. The only
/// coordination is a stop flag: the driver never waits on an evaluator
/// answer. In particular it speculates straight through the action-budget
/// boundary — whether the run ends there depends on `demands_more()`,
/// which only the evaluator can answer, so the evaluator owns that stop
/// decision and truncates the speculative tail exactly as it does for a
/// definitive verdict.
struct PipeShared {
    /// The evaluator concluded (definitive verdict, natural finish or
    /// error): the driver must wind down.
    stop: AtomicBool,
}

impl PipeShared {
    fn new() -> Self {
        PipeShared {
            stop: AtomicBool::new(false),
        }
    }

    fn stopped(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// Evaluator side: signal conclusion. The driver notices at its next
    /// loop-top check (or via the channel disconnecting once the
    /// evaluator's drain finishes).
    fn request_stop(&self) {
        self.stop.store(true, Ordering::Release);
    }
}

/// What the driver stage hands back when it exits.
struct DriverOutcome {
    /// Time inside `Executor::send` (including speculative steps).
    exec_time: Duration,
    /// Time blocked on a full channel — the evaluator was the
    /// bottleneck.
    stall_time: Duration,
    /// Guard-evaluation time (the driver's share of `eval_s`).
    eval_time: Duration,
    /// States the driver executed, including the speculative tail.
    states_sent: usize,
    /// The executor's transport accounting (includes speculative
    /// messages — one reason transport is excluded from Report equality).
    transport: TransportStats,
    /// The driver's trace track (disabled sink when tracing is off).
    sink: TraceSink,
    /// The driver's metrics recorder (send latency, executor stalls).
    metrics: MetricsRecorder,
}

fn timed_send(
    executor: &mut dyn Executor,
    exec_time: &mut Duration,
    sink: &mut TraceSink,
    metrics: &mut MetricsRecorder,
    msg: CheckerMsg,
) -> Vec<ExecutorMsg> {
    let span = sink.open(SpanKind::Send);
    let started = Instant::now();
    let replies = executor.send(msg);
    let elapsed = started.elapsed();
    *exec_time += elapsed;
    metrics.send_latency(elapsed);
    sink.close_with(span, |a| {
        a.push(("replies", AttrValue::U64(replies.len() as u64)));
    });
    replies
}

/// Forwards an event to the evaluator, timing any backpressure stall.
/// Returns `false` when the evaluator hung up (it concluded and finished
/// draining); the driver then winds down.
fn forward(
    tx: &SyncSender<StageEvent>,
    stall: &mut Duration,
    sink: &mut TraceSink,
    metrics: &mut MetricsRecorder,
    event: StageEvent,
) -> bool {
    match tx.try_send(event) {
        Ok(()) => true,
        Err(TrySendError::Full(event)) => {
            let span = sink.open(SpanKind::Stall);
            let started = Instant::now();
            let delivered = tx.send(event).is_ok();
            let elapsed = started.elapsed();
            *stall += elapsed;
            metrics.executor_stall(elapsed);
            sink.close(span);
            delivered
        }
        Err(TrySendError::Disconnected(_)) => false,
    }
}

/// The driver stage: mirrors the sequential `Session::drive` control flow
/// with an observer-role [`Run`], forwarding every reply batch across the
/// seam. Never returns an error — driver-side failures travel to the
/// evaluator as [`StageEvent::Failed`], where they become canonical only
/// if no verdict preceded them.
#[allow(clippy::too_many_arguments)] // internal: mirrors run_one's surface
fn drive_stage(
    spec: &CompiledSpec,
    check: &CheckDef,
    property_name: &str,
    property: &Thunk,
    options: &CheckOptions,
    make_executor: MakeExecutor<'_>,
    index: usize,
    prefix: &[ActionInstance],
    shared: &PipeShared,
    tx: SyncSender<StageEvent>,
    obs: &ObsCtx,
) -> DriverOutcome {
    // The driver's own track: executor sends and backpressure stalls.
    // The evaluator stage's spans land on the run's sink (attached in
    // `run_one_pipelined`/`run_batch_pipelined`), a separate track.
    let mut sink = obs.sink(2 * index as u64, || format!("run {index} · driver"));
    let mut metrics = obs.recorder();
    let run_span = sink.open(SpanKind::Run);
    let mut run = Run::observer(spec, check, property_name, property, options);
    let mut source = ActionSource::Random {
        rng: StdRng::seed_from_u64(derive_run_seed(options.seed, index as u64)),
        prefix,
        pos: 0,
    };
    // `Box<dyn Executor>` is not `Send`: the executor is constructed here,
    // inside the driver thread, and never leaves it.
    let mut executor = make_executor();
    let mut exec_time = Duration::ZERO;
    let mut stall_time = Duration::ZERO;
    // Send `End` on the way out? Matches the sequential engine: yes on
    // natural stops and verdict cancellation, no on protocol/eval errors.
    let mut clean = true;
    'session: {
        let replies = timed_send(
            executor.as_mut(),
            &mut exec_time,
            &mut sink,
            &mut metrics,
            CheckerMsg::Start {
                dependencies: spec.dependencies.clone(),
            },
        );
        if replies.is_empty() {
            let _ = tx.send(StageEvent::Failed(CheckError::new(
                "executor sent nothing in response to Start (expected the \
                 loaded? event)",
            )));
            clean = false;
            break 'session;
        }
        let replies = Arc::new(replies);
        if !forward(
            &tx,
            &mut stall_time,
            &mut sink,
            &mut metrics,
            StageEvent::Started(Arc::clone(&replies)),
        ) {
            break 'session;
        }
        for msg in replies.iter() {
            if let Err(e) = run.ingest(msg, None) {
                let _ = tx.send(StageEvent::Failed(e));
                clean = false;
                break 'session;
            }
        }
        loop {
            if shared.stopped() {
                break;
            }
            // Event-associated timeouts first (§3.4, Wait).
            if let Some(t) = run.pending_wait.take() {
                let version = run.version();
                let replies = timed_send(
                    executor.as_mut(),
                    &mut exec_time,
                    &mut sink,
                    &mut metrics,
                    CheckerMsg::Wait {
                        time_ms: t,
                        version,
                    },
                );
                let replies = Arc::new(replies);
                if !forward(
                    &tx,
                    &mut stall_time,
                    &mut sink,
                    &mut metrics,
                    StageEvent::Waited(Arc::clone(&replies)),
                ) {
                    break;
                }
                for msg in replies.iter() {
                    if let Err(e) = run.ingest(msg, None) {
                        let _ = tx.send(StageEvent::Failed(e));
                        clean = false;
                        break 'session;
                    }
                }
                continue;
            }
            // Of the sequential stop conditions only the hard cap is the
            // driver's to evaluate. The budget boundary needs
            // `demands_more()`, which only the evaluator can answer — so
            // the driver speculates straight through it and keeps acting
            // until the evaluator concludes (stop flag above) or the hard
            // cap bounds the speculation absolutely. If the canonical run
            // ended at the boundary, everything past it is a speculative
            // tail the evaluator discards.
            if run.at_hard_cap() {
                let _ = forward(
                    &tx,
                    &mut stall_time,
                    &mut sink,
                    &mut metrics,
                    StageEvent::Finished,
                );
                break;
            }
            let action = match run.select_action(&mut source) {
                Ok(Some(action)) => action,
                Ok(None) => {
                    let _ = forward(
                        &tx,
                        &mut stall_time,
                        &mut sink,
                        &mut metrics,
                        StageEvent::Finished,
                    );
                    break;
                }
                Err(e) => {
                    let _ = tx.send(StageEvent::Failed(e));
                    clean = false;
                    break 'session;
                }
            };
            let version = run.version();
            let replies = timed_send(
                executor.as_mut(),
                &mut exec_time,
                &mut sink,
                &mut metrics,
                CheckerMsg::Act {
                    action: action.clone(),
                    version,
                },
            );
            if replies.is_empty() {
                // Neither acted nor any pending event: protocol violation.
                let _ = tx.send(StageEvent::Failed(CheckError::new(
                    "executor ignored an up-to-date Act without sending events",
                )));
                clean = false;
                break 'session;
            }
            let accepted = replies.iter().any(ExecutorMsg::is_acted);
            let replies = Arc::new(replies);
            if !forward(
                &tx,
                &mut stall_time,
                &mut sink,
                &mut metrics,
                StageEvent::Acted {
                    action: action.clone(),
                    replies: Arc::clone(&replies),
                },
            ) {
                break;
            }
            if accepted {
                // Before ingesting, like the sequential engine: the states
                // the action produced see a script that includes it.
                run.note_accepted(action.clone());
            }
            let mut acted_seen = false;
            for msg in replies.iter() {
                let tag = if msg.is_acted() && !acted_seen {
                    acted_seen = true;
                    Some(&action)
                } else {
                    None
                };
                if let Err(e) = run.ingest(msg, tag) {
                    let _ = tx.send(StageEvent::Failed(e));
                    clean = false;
                    break 'session;
                }
            }
            if accepted {
                run.note_effect();
            }
        }
    }
    if clean {
        let _ = timed_send(
            executor.as_mut(),
            &mut exec_time,
            &mut sink,
            &mut metrics,
            CheckerMsg::End,
        );
    }
    // Dropping the sender unblocks the evaluator's drain.
    drop(tx);
    let states_sent = run.states_count;
    sink.close_with(run_span, |a| {
        a.push(("states_sent", AttrValue::U64(states_sent as u64)));
    });
    DriverOutcome {
        exec_time,
        stall_time,
        eval_time: run.eval_time,
        states_sent,
        transport: executor.transport_stats(),
        sink,
        metrics,
    }
}

/// Where an evaluator stage is in its lifecycle.
#[derive(Clone, Copy, PartialEq, Eq)]
enum StagePhase {
    /// Consuming events.
    Running,
    /// Concluded; discarding the speculative tail until the driver
    /// disconnects.
    Draining,
    /// Tail discarded, driver gone; the outcome is final.
    Done,
}

/// What one [`EvalStage::poll`] call achieved (drives the multiplex
/// scheduler's sleep decision).
enum StagePoll {
    /// Consumed at least one event (or finished draining).
    Progress,
    /// Channel empty — the executor side is the bottleneck right now.
    Idle,
    /// The stage is complete; retire it.
    Done,
}

/// The evaluator stage of one pipelined run: the full [`Run`] plus the
/// receiving end of the state stream. Replays the sequential engine's
/// control flow event by event.
struct EvalStage<'a> {
    run: Run<'a>,
    rx: Receiver<StageEvent>,
    shared: Arc<PipeShared>,
    phase: StagePhase,
    outcome: Option<Result<RunOutcome, CheckError>>,
    /// Time starved on an empty channel — the executor was the
    /// bottleneck. Exact in blocking mode; in poll mode, idle gaps
    /// between polls.
    stall_time: Duration,
    idle_since: Option<Instant>,
}

impl<'a> EvalStage<'a> {
    fn new(run: Run<'a>, rx: Receiver<StageEvent>, shared: Arc<PipeShared>) -> Self {
        EvalStage {
            run,
            rx,
            shared,
            phase: StagePhase::Running,
            outcome: None,
            stall_time: Duration::ZERO,
            idle_since: None,
        }
    }

    /// Replays one stage event with exactly the sequential
    /// `Session::drive` semantics. Returns the conclusion, if this event
    /// produced one.
    fn apply(&mut self, event: StageEvent) -> Option<Result<RunOutcome, CheckError>> {
        match event {
            StageEvent::Started(replies) => {
                for msg in replies.iter() {
                    if let Err(e) = self.run.ingest(msg, None) {
                        return Some(Err(e));
                    }
                    if self.run.definitive().is_some() {
                        // Sequential: remaining Start replies are never
                        // ingested.
                        return Some(Ok(self.run.finish(true)));
                    }
                }
                None
            }
            StageEvent::Waited(replies) => {
                for msg in replies.iter() {
                    if let Err(e) = self.run.ingest(msg, None) {
                        return Some(Err(e));
                    }
                }
                if self.run.definitive().is_some() {
                    return Some(Ok(self.run.finish(true)));
                }
                None
            }
            StageEvent::Acted { action, replies } => {
                let accepted = replies.iter().any(ExecutorMsg::is_acted);
                if accepted {
                    // Reconstruct the choice the driver made — same
                    // choice-time fingerprint, because the coverage here
                    // has seen exactly the states the driver's had when it
                    // chose.
                    self.run.note_chosen(&action);
                    self.run.note_accepted(action.clone());
                }
                let mut acted_seen = false;
                for msg in replies.iter() {
                    let tag = if msg.is_acted() && !acted_seen {
                        acted_seen = true;
                        Some(&action)
                    } else {
                        None
                    };
                    if let Err(e) = self.run.ingest(msg, tag) {
                        return Some(Err(e));
                    }
                    if self.run.definitive().is_some() {
                        break;
                    }
                }
                if accepted {
                    // After the batch, even when a definitive verdict cut
                    // it short — the sequential engine does the same.
                    self.run.note_effect();
                }
                if self.run.definitive().is_some() {
                    return Some(Ok(self.run.finish(true)));
                }
                None
            }
            StageEvent::Finished => Some(Ok(self.run.finish(true))),
            StageEvent::Failed(e) => Some(Err(e)),
        }
    }

    fn step(&mut self, event: StageEvent) {
        let conclusion = self.apply(event).or_else(|| {
            // The sequential loop's natural stop, evaluated at the same
            // decision point it uses: after a fully ingested batch with
            // no pending wait. The driver speculates past the budget
            // boundary (it cannot answer `demands_more`), so the
            // canonical run ends *here* and everything the driver did
            // beyond this history is a discardable tail. The hard-cap arm
            // matters only when the evaluator reaches the cap before the
            // driver's own `Finished` event arrives.
            (self.run.pending_wait.is_none()
                && ((self.run.budget_spent() && !self.run.demands_more())
                    || self.run.at_hard_cap()))
            .then(|| Ok(self.run.finish(true)))
        });
        if let Some(outcome) = conclusion {
            self.outcome = Some(outcome);
            self.phase = StagePhase::Draining;
            // Cancel the driver wherever it is — mid-loop or blocked on a
            // full channel (the drain frees that one).
            self.shared.request_stop();
        }
    }

    fn fail_disconnected(&mut self) {
        // Only reachable when the driver died without a terminal event —
        // i.e. it panicked; the scheduler re-raises the payload on join.
        self.outcome = Some(Err(CheckError::new(
            "pipelined driver stage exited without concluding the run",
        )));
        self.phase = StagePhase::Done;
        self.shared.request_stop();
    }

    /// Non-blocking progress — the multiplex scheduler's entry point.
    /// Consumes every event currently buffered.
    fn poll(&mut self) -> StagePoll {
        loop {
            match self.phase {
                StagePhase::Done => return StagePoll::Done,
                StagePhase::Draining => match self.rx.try_recv() {
                    Ok(_) => continue, // discard the speculative tail
                    Err(TryRecvError::Empty) => return self.idle(),
                    Err(TryRecvError::Disconnected) => {
                        self.note_progress();
                        self.phase = StagePhase::Done;
                        return StagePoll::Done;
                    }
                },
                StagePhase::Running => match self.rx.try_recv() {
                    Ok(event) => {
                        self.note_progress();
                        self.step(event);
                        if self.phase == StagePhase::Running {
                            return StagePoll::Progress;
                        }
                        continue; // concluded: start draining immediately
                    }
                    Err(TryRecvError::Empty) => return self.idle(),
                    Err(TryRecvError::Disconnected) => {
                        self.fail_disconnected();
                        return StagePoll::Done;
                    }
                },
            }
        }
    }

    fn idle(&mut self) -> StagePoll {
        if self.idle_since.is_none() {
            self.idle_since = Some(Instant::now());
        }
        StagePoll::Idle
    }

    fn note_progress(&mut self) {
        if let Some(started) = self.idle_since.take() {
            let elapsed = started.elapsed();
            self.stall_time += elapsed;
            self.run.metrics.evaluator_stall(elapsed);
        }
    }

    /// Blocking drive to completion — the one-session-per-worker path.
    fn run_to_completion(&mut self) {
        loop {
            match self.phase {
                StagePhase::Done => return,
                StagePhase::Draining => {
                    // Discard the speculative tail until the driver drops
                    // its sender (it exits at its next stop-flag check).
                    while self.rx.recv().is_ok() {}
                    self.phase = StagePhase::Done;
                    return;
                }
                StagePhase::Running => {
                    let event = match self.rx.try_recv() {
                        Ok(event) => event,
                        Err(TryRecvError::Empty) => {
                            let started = Instant::now();
                            match self.rx.recv() {
                                Ok(event) => {
                                    let elapsed = started.elapsed();
                                    self.stall_time += elapsed;
                                    self.run.metrics.evaluator_stall(elapsed);
                                    event
                                }
                                Err(_) => {
                                    self.fail_disconnected();
                                    return;
                                }
                            }
                        }
                        Err(TryRecvError::Disconnected) => {
                            self.fail_disconnected();
                            return;
                        }
                    };
                    self.step(event);
                }
            }
        }
    }
}

/// Assembles the [`ExecutedRun`] from a concluded evaluator stage and its
/// joined driver.
fn finalize_run(
    mut stage: EvalStage<'_>,
    driver: DriverOutcome,
    options: &CheckOptions,
    replayed: bool,
) -> Result<ExecutedRun, CheckError> {
    let outcome = stage
        .outcome
        .take()
        .expect("evaluator stage concluded before retirement")?;
    let result = match outcome {
        RunOutcome::Result(result) => result,
        RunOutcome::ScriptInvalid => {
            unreachable!("random runs never report script invalidity")
        }
    };
    let run = &mut stage.run;
    let timings = PhaseTimings {
        executor_s: driver.exec_time.as_secs_f64(),
        // Guard evaluation happens driver-side, progression
        // evaluator-side; both are spec evaluation. The two stages overlap
        // in wall time, so executor_s + eval_s no longer bounds wall.
        eval_s: (run.eval_time + driver.eval_time).as_secs_f64(),
        atoms_total: run.atoms_total,
        atoms_reevaluated: run.atoms_reevaluated,
        atom_memo_hits: run.atom_memo_hits,
        atom_memo_misses: run.atom_memo_misses,
        atom_memo_evictions: run.atom_memo_evictions,
        ltl_states: run.ltl_states(),
        ltl_table_hits: run.ltl_table_hits,
        step_memo_hits: run.step_memo_hits,
        pipeline_depth: options.pipeline_depth.max(1) as u64,
        executor_stall_s: driver.stall_time.as_secs_f64(),
        evaluator_stall_s: stage.stall_time.as_secs_f64(),
        speculative_states_discarded: driver.states_sent.saturating_sub(run.states_count) as u64,
    };
    // Truncation marker on the evaluator track: how much speculative work
    // the driver did past the canonical stop point.
    let discarded = timings.speculative_states_discarded;
    if discarded > 0 {
        run.sink.instant(SpanKind::Truncated, |a| {
            a.push(("speculative_states", AttrValue::U64(discarded)));
        });
    }
    // Collect both stages' observability artifacts: driver track first,
    // then the evaluator's, then both metric registries merged.
    let mut obs = RunObs::default();
    let driver_sink = driver.sink;
    if let Some(track) = driver_sink.finish() {
        obs.tracks.push(track);
    }
    let eval_sink = std::mem::replace(&mut run.sink, TraceSink::disabled());
    if let Some(track) = eval_sink.finish() {
        obs.tracks.push(track);
    }
    obs.metrics = driver.metrics.into_registry();
    let eval_metrics = std::mem::replace(&mut run.metrics, MetricsRecorder::disabled());
    obs.metrics.merge(&eval_metrics.into_registry());
    Ok(ExecutedRun {
        states: run.trace.len(),
        actions: run.actions_done,
        result,
        timings,
        transport: driver.transport,
        script: std::mem::take(&mut run.script),
        coverage: std::mem::take(&mut run.coverage),
        replayed,
        obs,
    })
}

/// Executes one pipelined run to completion: the driver stage on a scoped
/// thread, the evaluator stage on the calling thread.
#[allow(clippy::too_many_arguments)] // internal: mirrors run_one's surface
pub(crate) fn run_one_pipelined(
    spec: &CompiledSpec,
    check: &CheckDef,
    property_name: &str,
    property: &Thunk,
    options: &CheckOptions,
    make_executor: MakeExecutor<'_>,
    index: usize,
    prefix: Option<&[ActionInstance]>,
    obs: &ObsCtx,
) -> Result<ExecutedRun, CheckError> {
    let shared = Arc::new(PipeShared::new());
    let (tx, rx) = mpsc::sync_channel(options.pipeline_depth.max(1));
    let mut stage = EvalStage::new(
        Run::new(spec, check, property_name, property, options).with_obs(
            obs.sink(2 * index as u64 + 1, || format!("run {index} · evaluator")),
            obs.recorder(),
        ),
        rx,
        Arc::clone(&shared),
    );
    let driver = thread::scope(|scope| {
        let handle = {
            let shared = Arc::clone(&shared);
            scope.spawn(move || {
                drive_stage(
                    spec,
                    check,
                    property_name,
                    property,
                    options,
                    make_executor,
                    index,
                    prefix.unwrap_or(&[]),
                    &shared,
                    tx,
                    obs,
                )
            })
        };
        stage.run_to_completion();
        match handle.join() {
            Ok(outcome) => outcome,
            Err(payload) => panic::resume_unwind(payload),
        }
    });
    finalize_run(stage, driver, options, prefix.is_some())
}

/// One in-flight multiplexed session: the evaluator stage polled by the
/// worker, plus the driver thread to join at retirement.
struct InFlight<'env, 'scope> {
    slot: usize,
    stage: EvalStage<'env>,
    driver: thread::ScopedJoinHandle<'scope, DriverOutcome>,
}

/// Runs `count` pipelined sessions (absolute run indices `base + k`) with
/// up to [`CheckOptions::multiplex`] in-flight sessions per worker across
/// [`CheckOptions::jobs`] workers. Results return in slot order; a slot is
/// `None` only when `cancel` allowed it to be skipped (strictly after the
/// earliest recorded stop, so the canonical merge is unaffected).
///
/// Determinism: run seeds depend only on the absolute index, `prefixes`
/// are fixed before the batch starts, and results retire into their slots
/// — scheduling never leaks into the report.
#[allow(clippy::too_many_arguments)] // internal: mirrors run_one's surface
pub(crate) fn run_batch_pipelined<'env>(
    spec: &'env CompiledSpec,
    check: &'env CheckDef,
    property_name: &'env str,
    property: &'env Thunk,
    options: &'env CheckOptions,
    make_executor: MakeExecutor<'env>,
    base: usize,
    count: usize,
    prefixes: Option<&'env [Option<Vec<ActionInstance>>]>,
    cancel: Option<&'env Cancellation>,
    obs: &'env ObsCtx,
) -> Vec<Option<Result<ExecutedRun, CheckError>>> {
    if count == 0 {
        return Vec::new();
    }
    let multiplex = options.multiplex.max(1);
    let workers = options.jobs.max(1).min(count.div_ceil(multiplex)).max(1);
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    let (results_tx, results_rx) = mpsc::channel();
    let slots = thread::scope(|scope| {
        for _ in 0..workers {
            let results_tx = results_tx.clone();
            let next = &next;
            let stop = &stop;
            let panic_payload = &panic_payload;
            scope.spawn(move || {
                let body = || {
                    let mut active: Vec<InFlight<'env, '_>> = Vec::new();
                    loop {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        // Top up the in-flight set.
                        while active.len() < multiplex {
                            let slot = next.fetch_add(1, Ordering::Relaxed);
                            if slot >= count {
                                break;
                            }
                            if cancel.is_some_and(|c| c.should_skip(base + slot)) {
                                let _ = results_tx.send((slot, None));
                                continue;
                            }
                            let prefix = prefixes.and_then(|p| p[slot].as_deref()).unwrap_or(&[]);
                            let replayed =
                                !prefix.is_empty() || prefixes.is_some_and(|p| p[slot].is_some());
                            let shared = Arc::new(PipeShared::new());
                            let (tx, rx) = mpsc::sync_channel(options.pipeline_depth.max(1));
                            let run_index = base + slot;
                            let stage = EvalStage::new(
                                Run::new(spec, check, property_name, property, options).with_obs(
                                    obs.sink(2 * run_index as u64 + 1, || {
                                        format!("run {run_index} · evaluator")
                                    }),
                                    obs.recorder(),
                                ),
                                rx,
                                Arc::clone(&shared),
                            );
                            let driver = {
                                let shared = Arc::clone(&shared);
                                scope.spawn(move || {
                                    drive_stage(
                                        spec,
                                        check,
                                        property_name,
                                        property,
                                        options,
                                        make_executor,
                                        base + slot,
                                        prefix,
                                        &shared,
                                        tx,
                                        obs,
                                    )
                                })
                            };
                            active.push(InFlight {
                                slot,
                                stage,
                                driver,
                            });
                            let _ = replayed; // recorded at retirement below
                        }
                        if active.is_empty() {
                            break;
                        }
                        let mut progress = false;
                        let mut i = 0;
                        while i < active.len() {
                            match active[i].stage.poll() {
                                StagePoll::Progress => {
                                    progress = true;
                                    i += 1;
                                }
                                StagePoll::Idle => {
                                    i += 1;
                                }
                                StagePoll::Done => {
                                    progress = true;
                                    let session = active.swap_remove(i);
                                    let slot = session.slot;
                                    let driver = match session.driver.join() {
                                        Ok(outcome) => outcome,
                                        Err(payload) => panic::resume_unwind(payload),
                                    };
                                    let replayed = prefixes.is_some_and(|p| p[slot].is_some());
                                    let outcome =
                                        finalize_run(session.stage, driver, options, replayed);
                                    if let Some(cancel) = cancel {
                                        let stops = match &outcome {
                                            Ok(run) => run.result.is_failure(),
                                            Err(_) => true,
                                        };
                                        if stops {
                                            cancel.note_stop(base + slot);
                                        }
                                    }
                                    let _ = results_tx.send((slot, Some(outcome)));
                                }
                            }
                        }
                        if !progress {
                            thread::sleep(IDLE_POLL);
                        }
                    }
                };
                // On panic: record the payload, signal siblings, and let
                // the in-flight sessions unwind (dropping an EvalStage
                // closes its channel, so its driver thread winds down and
                // is joined at scope exit).
                if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(body)) {
                    stop.store(true, Ordering::SeqCst);
                    panic_payload
                        .lock()
                        .expect("payload lock")
                        .get_or_insert(payload);
                }
            });
        }
        drop(results_tx);
        let mut slots: Vec<Option<Option<Result<ExecutedRun, CheckError>>>> =
            (0..count).map(|_| None).collect();
        for (slot, value) in results_rx {
            slots[slot] = Some(value);
        }
        slots
    });
    if let Some(payload) = panic_payload.into_inner().expect("payload lock") {
        panic::resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every slot retired"))
        .collect()
}
