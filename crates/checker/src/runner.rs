//! The checker's test loop (§2.3 + §3.4).
//!
//! For each `check`ed property, the runner executes a number of test runs.
//! Each run starts a fresh executor session, waits for the initial
//! `loaded?` event, then repeatedly: progresses the QuickLTL formula
//! through every newly observed state, stops on a definitive verdict,
//! otherwise selects an enabled action uniformly at random (guards are
//! evaluated against the current state; one `action` declaration fans out
//! into one candidate per matched element) and sends it with the current
//! trace version. Stale action requests — rejected by the executor because
//! an asynchronous event arrived first (Figure 10) — simply cause
//! re-deciding against the fresher state.
//!
//! A run may stop once the action budget is spent *and* the formula no
//! longer demands more states; the verdict is then the presumptive reading.

use crate::options::{CheckOptions, SelectionStrategy};
use crate::report::{Counterexample, PropertyReport, Report, RunResult, TraceEntry};
use quickltl::{Evaluator, Formula, StepReport, Verdict};
use quickstrom_protocol::{
    ActionInstance, ActionKind, CheckerMsg, Executor, ExecutorMsg, Selector, StateSnapshot,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use specstrom::{eval_guard, expand_thunk, ActionValue, CheckDef, CompiledSpec, EvalCtx, Thunk};
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// An unrecoverable checking error (as opposed to a failing property):
/// specification evaluation errors or protocol violations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckError {
    /// Description of the failure.
    pub message: String,
}

impl CheckError {
    fn new(message: impl Into<String>) -> Self {
        CheckError {
            message: message.into(),
        }
    }
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "check error: {}", self.message)
    }
}

impl std::error::Error for CheckError {}

impl From<specstrom::EvalError> for CheckError {
    fn from(e: specstrom::EvalError) -> Self {
        CheckError::new(e.to_string())
    }
}

/// Where the next action comes from: fresh randomness or a recorded script
/// (for counterexample replay and shrinking).
#[allow(clippy::large_enum_variant)] // StdRng is big; sources are stack-local
enum ActionSource<'a> {
    Random(StdRng),
    Script {
        actions: &'a [ActionInstance],
        pos: usize,
    },
}

/// The text pool for generated inputs. Includes the empty string and
/// whitespace-only entries deliberately: several TodoMVC faults (blank
/// items, empty-edit deletion) only surface on degenerate input.
const INPUT_POOL: &[&str] = &[
    "",
    " ",
    "a",
    "buy milk",
    "walk the dog",
    "  trim me  ",
    "x",
    "déjà vu",
    "meditate",
];

fn generate_text(rng: &mut StdRng) -> String {
    let i = rng.gen_range(0..INPUT_POOL.len());
    INPUT_POOL[i].to_owned()
}

/// The per-run machinery shared by random runs and scripted replays.
struct Run<'a> {
    spec: &'a CompiledSpec,
    check: &'a CheckDef,
    options: &'a CheckOptions,
    evaluator: Evaluator<Thunk>,
    /// Event name lookup: selector → declared `…?` event names.
    events_by_selector: BTreeMap<Selector, Vec<String>>,
    /// Event-declared timeouts: event name → ms.
    event_timeouts: BTreeMap<String, u64>,
    trace: Vec<TraceEntry>,
    script: Vec<ActionInstance>,
    actions_done: usize,
    /// Per-action-name execution counts (the LeastTried strategy, §5.1).
    action_counts: BTreeMap<String, usize>,
    last_state: Option<StateSnapshot>,
    last_report: Option<StepReport>,
    pending_wait: Option<u64>,
}

/// The outcome of one run, before aggregation.
enum RunOutcome {
    Result(RunResult),
    /// A scripted replay found the script no longer applicable (an action's
    /// guard was false or its target disappeared) — only used by shrinking.
    ScriptInvalid,
}

impl<'a> Run<'a> {
    fn new(
        spec: &'a CompiledSpec,
        check: &'a CheckDef,
        property: &Thunk,
        options: &'a CheckOptions,
    ) -> Self {
        let mut events_by_selector: BTreeMap<Selector, Vec<String>> = BTreeMap::new();
        let mut event_timeouts = BTreeMap::new();
        for name in &check.events {
            if let Some(av) = spec.action(name) {
                if let Some(sel) = &av.selector {
                    events_by_selector
                        .entry(sel.clone())
                        .or_default()
                        .push(name.clone());
                }
                if let Some(t) = av.timeout_ms {
                    event_timeouts.insert(name.clone(), t);
                }
            }
        }
        Run {
            spec,
            check,
            options,
            evaluator: Evaluator::new(Formula::Atom(property.clone())),
            events_by_selector,
            event_timeouts,
            trace: Vec::new(),
            script: Vec::new(),
            actions_done: 0,
            action_counts: BTreeMap::new(),
            last_state: None,
            last_report: None,
            pending_wait: None,
        }
    }

    /// The `happened` names for an executor message (§3.2: "all events or
    /// actions that occurred immediately prior to the current state").
    fn happened_for(&self, msg: &ExecutorMsg, action: Option<&ActionInstance>) -> Vec<String> {
        match msg {
            ExecutorMsg::Acted { .. } => action.map(|a| vec![a.name.clone()]).unwrap_or_default(),
            ExecutorMsg::Timeout { .. } => vec!["timeout?".to_owned()],
            ExecutorMsg::Event { event, detail, .. } => {
                if event == "loaded?" {
                    return vec!["loaded?".to_owned()];
                }
                let mut mapped: Vec<String> = detail
                    .iter()
                    .filter_map(|sel| self.events_by_selector.get(sel))
                    .flatten()
                    .cloned()
                    .collect();
                mapped.sort();
                mapped.dedup();
                if mapped.is_empty() {
                    vec![event.clone()]
                } else {
                    mapped
                }
            }
        }
    }

    /// Feeds one executor message into the trace and the formula.
    fn ingest(
        &mut self,
        msg: &ExecutorMsg,
        action: Option<&ActionInstance>,
    ) -> Result<(), CheckError> {
        let happened = self.happened_for(msg, action);
        let mut state = msg.state().clone();
        state.happened = happened.clone();
        self.trace.push(TraceEntry {
            happened: happened.clone(),
            timestamp_ms: state.timestamp_ms,
        });
        // Event-declared timeouts (§3.4): when a timeout is associated with
        // an event and that event occurs, the checker requests a Wait.
        if matches!(msg, ExecutorMsg::Event { .. }) {
            for name in &happened {
                if let Some(&t) = self.event_timeouts.get(name) {
                    self.pending_wait = Some(t);
                }
            }
        }
        let ctx = EvalCtx::with_state(&state, self.options.default_demand);
        let report = self
            .evaluator
            .observe_expanding(&mut |thunk| expand_thunk(thunk, &ctx))
            .map_err(CheckError::from)?;
        self.last_report = Some(report);
        self.last_state = Some(state);
        Ok(())
    }

    fn definitive(&self) -> Option<bool> {
        match self.last_report {
            Some(StepReport::Definitive(b)) => Some(b),
            _ => None,
        }
    }

    fn presumptive(&self) -> Option<bool> {
        match self.last_report {
            Some(StepReport::Continue { presumptive }) => presumptive,
            Some(StepReport::Definitive(b)) => Some(b),
            None => None,
        }
    }

    /// Formula demands more states (required-next outstanding)?
    fn demands_more(&self) -> bool {
        matches!(
            self.last_report,
            Some(StepReport::Continue { presumptive: None })
        )
    }

    /// Every enabled action instance at the current state.
    fn enabled_instances(
        &self,
        rng: &mut Option<&mut StdRng>,
    ) -> Result<Vec<ActionInstance>, CheckError> {
        let state = self.last_state.as_ref().expect("state after start");
        let ctx = EvalCtx::with_state(state, self.options.default_demand);
        let mut out = Vec::new();
        for name in &self.check.actions {
            let av: Rc<ActionValue> = match self.spec.action(name) {
                Some(av) => Rc::clone(av),
                // `noop!`/`reload!` may appear in with-lists undeclared.
                None => match name.as_str() {
                    "noop!" => Rc::new(ActionValue {
                        name: Some("noop!".into()),
                        kind: Some(ActionKind::Noop),
                        selector: None,
                        timeout_ms: None,
                        guard: None,
                        event: false,
                    }),
                    "reload!" => Rc::new(ActionValue {
                        name: Some("reload!".into()),
                        kind: Some(ActionKind::Reload),
                        selector: None,
                        timeout_ms: None,
                        guard: None,
                        event: false,
                    }),
                    other => {
                        return Err(CheckError::new(format!(
                            "check references undeclared action `{other}`"
                        )))
                    }
                },
            };
            if let Some(guard) = &av.guard {
                if !eval_guard(guard, &ctx).map_err(CheckError::from)? {
                    continue;
                }
            }
            let Some(kind) = av.kind.clone() else {
                continue; // events are not performable
            };
            let base = ActionInstance {
                name: name.clone(),
                kind,
                target: None,
                timeout_ms: av.timeout_ms,
            };
            if base.kind.needs_target() {
                let selector = av.selector.clone().ok_or_else(|| {
                    CheckError::new(format!("action `{name}` lacks a target selector"))
                })?;
                let count = state.matches(&selector).len();
                for index in 0..count {
                    let mut instance = base.clone();
                    instance.target = Some((selector.clone(), index));
                    if let ActionKind::Input(None) = instance.kind {
                        if let Some(rng) = rng.as_deref_mut() {
                            instance.kind = ActionKind::Input(Some(generate_text(rng)));
                        }
                    }
                    out.push(instance);
                }
            } else {
                out.push(base);
            }
        }
        Ok(out)
    }

    /// Picks the next action, or `None` when the run should stop.
    fn next_action(
        &mut self,
        source: &mut ActionSource<'_>,
    ) -> Result<Option<ActionInstance>, CheckError> {
        match source {
            ActionSource::Random(rng) => {
                let budget_spent = self.actions_done >= self.options.max_actions;
                if budget_spent && !self.demands_more() {
                    return Ok(None);
                }
                if self.actions_done >= self.options.hard_action_cap() {
                    return Ok(None);
                }
                let mut candidates = {
                    let mut rng_opt: Option<&mut StdRng> = Some(rng);
                    self.enabled_instances(&mut rng_opt)?
                };
                if candidates.is_empty() {
                    return Ok(None);
                }
                if self.options.strategy == SelectionStrategy::LeastTried {
                    // Keep only the instances of the least-performed
                    // action names (§5.1's "more targeted" selection).
                    let min = candidates
                        .iter()
                        .map(|c| self.action_counts.get(&c.name).copied().unwrap_or(0))
                        .min()
                        .expect("nonempty");
                    candidates
                        .retain(|c| self.action_counts.get(&c.name).copied().unwrap_or(0) == min);
                }
                let i = rng.gen_range(0..candidates.len());
                Ok(Some(candidates[i].clone()))
            }
            ActionSource::Script { actions, pos } => {
                let Some(action) = actions.get(*pos) else {
                    return Ok(None);
                };
                *pos += 1;
                Ok(Some(action.clone()))
            }
        }
    }

    /// Is a scripted action still applicable at the current state?
    fn script_action_valid(&self, action: &ActionInstance) -> Result<bool, CheckError> {
        let state = self.last_state.as_ref().expect("state after start");
        let ctx = EvalCtx::with_state(state, self.options.default_demand);
        if let Some(av) = self.spec.action(&action.name) {
            if let Some(guard) = &av.guard {
                if !eval_guard(guard, &ctx).map_err(CheckError::from)? {
                    return Ok(false);
                }
            }
        }
        if let Some((selector, index)) = &action.target {
            if *index >= state.matches(selector).len() {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Concludes the run. `allow_forced` permits the end-of-trace fallback
    /// verdict for formulas whose demands never drain (see
    /// `quickltl::progress::end_of_trace_default`); it is only set for
    /// *random* runs stopping naturally (budget spent, application stuck).
    /// Scripted replays that merely ran out of script must NOT use it —
    /// otherwise the shrinker would count any prefix ending mid-demand as
    /// a fresh "failure" and shrink real counterexamples into noise.
    fn finish(&self, allow_forced: bool) -> RunOutcome {
        if let Some(b) = self.definitive() {
            return RunOutcome::Result(self.to_result(Verdict::definitely(b)));
        }
        if let Some(b) = self.presumptive() {
            return RunOutcome::Result(self.to_result(Verdict::presumably(b)));
        }
        if allow_forced {
            if let quickltl::Outcome::Verdict(v) = self.evaluator.forced_outcome() {
                return RunOutcome::Result(self.to_result_forced(v));
            }
        }
        RunOutcome::Result(RunResult::Inconclusive {
            reason: format!(
                "run ended after {} action(s) with trace-length demands \
                 still outstanding",
                self.actions_done
            ),
        })
    }

    fn to_result(&self, verdict: Verdict) -> RunResult {
        self.result_with(verdict, false)
    }

    fn to_result_forced(&self, verdict: Verdict) -> RunResult {
        self.result_with(verdict, true)
    }

    fn result_with(&self, verdict: Verdict, forced: bool) -> RunResult {
        if verdict.to_bool() {
            RunResult::Passed(verdict)
        } else {
            RunResult::Failed(Counterexample {
                verdict,
                script: self.script.clone(),
                trace: self.trace.clone(),
                shrunk: false,
                forced,
            })
        }
    }

    /// Executes the run to completion against `executor`.
    fn drive(
        &mut self,
        executor: &mut dyn Executor,
        source: &mut ActionSource<'_>,
    ) -> Result<RunOutcome, CheckError> {
        let start = CheckerMsg::Start {
            dependencies: self.spec.dependencies.clone(),
        };
        let replies = executor.send(start);
        if replies.is_empty() {
            return Err(CheckError::new(
                "executor sent nothing in response to Start (expected the \
                 loaded? event)",
            ));
        }
        let allow_forced = matches!(source, ActionSource::Random(_));
        for msg in &replies {
            self.ingest(msg, None)?;
            if self.definitive().is_some() {
                executor.send(CheckerMsg::End);
                return Ok(self.finish(allow_forced));
            }
        }
        loop {
            // Event-associated timeouts first (§3.4, Wait).
            if let Some(t) = self.pending_wait.take() {
                let version = self.trace.len() as u64;
                let replies = executor.send(CheckerMsg::Wait {
                    time_ms: t,
                    version,
                });
                for msg in &replies {
                    self.ingest(msg, None)?;
                }
                if self.definitive().is_some() {
                    break;
                }
                continue;
            }
            let Some(action) = self.next_action(source)? else {
                break;
            };
            if matches!(source, ActionSource::Script { .. })
                && !self.script_action_valid(&action)?
            {
                executor.send(CheckerMsg::End);
                return Ok(RunOutcome::ScriptInvalid);
            }
            let version = self.trace.len() as u64;
            let replies = executor.send(CheckerMsg::Act {
                action: action.clone(),
                version,
            });
            let accepted = replies.iter().any(ExecutorMsg::is_acted);
            let mut acted_seen = false;
            for msg in &replies {
                let tag = if msg.is_acted() && !acted_seen {
                    acted_seen = true;
                    Some(&action)
                } else {
                    None
                };
                self.ingest(msg, tag)?;
                if self.definitive().is_some() {
                    break;
                }
            }
            if accepted {
                *self.action_counts.entry(action.name.clone()).or_default() += 1;
                self.script.push(action);
                self.actions_done += 1;
            } else if replies.is_empty() {
                // Neither acted nor any pending event: protocol violation.
                return Err(CheckError::new(
                    "executor ignored an up-to-date Act without sending events",
                ));
            }
            if self.definitive().is_some() {
                break;
            }
        }
        executor.send(CheckerMsg::End);
        Ok(self.finish(allow_forced))
    }
}

/// Runs one scripted replay; used by the shrinker.
fn replay(
    spec: &CompiledSpec,
    check: &CheckDef,
    property: &Thunk,
    options: &CheckOptions,
    make_executor: &mut dyn FnMut() -> Box<dyn Executor>,
    script: &[ActionInstance],
) -> Result<RunOutcome, CheckError> {
    let mut run = Run::new(spec, check, property, options);
    let mut executor = make_executor();
    let mut source = ActionSource::Script {
        actions: script,
        pos: 0,
    };
    run.drive(executor.as_mut(), &mut source)
}

/// Minimises a failing script by removing chunks and replaying (a light
/// delta-debugging pass). Not described in the paper — the real tool
/// shrinks too — and documented as an extension in DESIGN.md.
fn shrink(
    spec: &CompiledSpec,
    check: &CheckDef,
    property: &Thunk,
    options: &CheckOptions,
    make_executor: &mut dyn FnMut() -> Box<dyn Executor>,
    mut failing: Counterexample,
) -> Result<Counterexample, CheckError> {
    let mut budget = 200usize;
    let mut chunk = (failing.script.len() / 2).max(1);
    loop {
        let mut improved = false;
        let mut i = 0;
        while i < failing.script.len() && budget > 0 {
            budget -= 1;
            let mut candidate: Vec<ActionInstance> = failing.script.clone();
            let end = (i + chunk).min(candidate.len());
            candidate.drain(i..end);
            match replay(spec, check, property, options, make_executor, &candidate)? {
                RunOutcome::Result(RunResult::Failed(cx)) => {
                    failing = Counterexample { shrunk: true, ..cx };
                    improved = true;
                    // Retry at the same index: the next chunk shifted left.
                }
                _ => {
                    // Slide by one, not by chunk: guard-coupled pairs can
                    // sit at any offset (budget bounds the quadratic cost).
                    i += 1;
                }
            }
        }
        if budget == 0 {
            break;
        }
        if !improved {
            if chunk == 1 {
                break;
            }
            // Ceiling halving so every size down to 1 is attempted —
            // guard-coupled action pairs (enter-edit/exit-edit) can only
            // be removed together, at exactly chunk size 2.
            chunk = chunk.div_ceil(2);
        } else {
            chunk = (failing.script.len() / 2).max(1);
        }
    }
    Ok(failing)
}

/// Checks one property of one `check` command.
///
/// `make_executor` is called once per run (and per shrink replay) to build
/// a fresh session against the system under test.
///
/// # Errors
///
/// Returns [`CheckError`] on specification evaluation errors or executor
/// protocol violations — *not* on failing properties, which are reported in
/// the [`PropertyReport`].
pub fn check_property(
    spec: &CompiledSpec,
    check: &CheckDef,
    property_name: &str,
    options: &CheckOptions,
    make_executor: &mut dyn FnMut() -> Box<dyn Executor>,
) -> Result<PropertyReport, CheckError> {
    let property = spec
        .property_thunk(property_name)
        .ok_or_else(|| CheckError::new(format!("unknown property `{property_name}`")))?;
    let mut runs = Vec::new();
    let mut states_total = 0;
    let mut actions_total = 0;
    for test in 0..options.tests {
        let mut run = Run::new(spec, check, &property, options);
        let mut executor = make_executor();
        let mut source = ActionSource::Random(StdRng::seed_from_u64(
            options.seed.wrapping_add(test as u64),
        ));
        let outcome = run.drive(executor.as_mut(), &mut source)?;
        states_total += run.trace.len();
        actions_total += run.actions_done;
        match outcome {
            RunOutcome::Result(RunResult::Failed(cx)) => {
                let cx = if options.shrink && cx.script.len() > 1 && !cx.forced {
                    shrink(spec, check, &property, options, make_executor, cx)?
                } else {
                    cx
                };
                runs.push(RunResult::Failed(cx));
                // Stop at the first counterexample, like the original tool.
                break;
            }
            RunOutcome::Result(result) => runs.push(result),
            RunOutcome::ScriptInvalid => {
                unreachable!("random runs never report script invalidity")
            }
        }
    }
    Ok(PropertyReport {
        property: property_name.to_owned(),
        runs,
        states_total,
        actions_total,
    })
}

/// Checks every property of every `check` command in the specification.
///
/// # Errors
///
/// See [`check_property`].
pub fn check_spec(
    spec: &CompiledSpec,
    options: &CheckOptions,
    make_executor: &mut dyn FnMut() -> Box<dyn Executor>,
) -> Result<Report, CheckError> {
    let mut report = Report::default();
    for check in &spec.checks {
        for property in &check.properties {
            report.properties.push(check_property(
                spec,
                check,
                property,
                options,
                make_executor,
            )?);
        }
    }
    Ok(report)
}
