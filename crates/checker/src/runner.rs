//! The checker's test loop (§2.3 + §3.4) and its parallel runtime.
//!
//! For each `check`ed property, the runner executes a number of test runs.
//! Each run starts a fresh executor session, waits for the initial
//! `loaded?` event, then repeatedly: progresses the QuickLTL formula
//! through every newly observed state, stops on a definitive verdict,
//! otherwise selects an enabled action uniformly at random (guards are
//! evaluated against the current state; one `action` declaration fans out
//! into one candidate per matched element) and sends it with the current
//! trace version. Stale action requests — rejected by the executor because
//! an asynchronous event arrived first (Figure 10) — simply cause
//! re-deciding against the fresher state.
//!
//! A run may stop once the action budget is spent *and* the formula no
//! longer demands more states; the verdict is then the presumptive reading.
//!
//! ## Parallelism and determinism
//!
//! With [`CheckOptions::jobs`] greater than one, the runs of one property
//! fan out over a worker pool ([`crate::pool`]). Each run's RNG seed is
//! derived from `(master seed, run index)` by [`derive_run_seed`], so a
//! run's behaviour depends only on its index — never on which worker
//! executed it or in what order runs completed. Results are merged back in
//! canonical run-index order, reproducing the sequential stop-at-first-
//! failure semantics exactly: the report for `jobs = N` is identical to
//! the report for `jobs = 1`. See DESIGN.md, *Parallel runtime*.

use crate::options::{CheckOptions, PipelineMode};
use crate::pipeline;
use crate::pool::{self, Cancellation};
use crate::report::{Counterexample, PhaseTimings, PropertyReport, Report, RunResult};
use crate::run::{ActionSource, RunOutcome};
use crate::session::Session;
use quickstrom_explore::{CoverageMap, CoverageStats, RunCoverage, TraceCorpus};
use quickstrom_obs::{
    AttrValue, FailureExplanation, MetricsRecorder, MetricsRegistry, ObsOptions, SpanKind,
    TraceLog, TraceSink, TrackLog,
};
use quickstrom_protocol::TransportStats;
use quickstrom_protocol::{ActionInstance, Executor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use specstrom::{CheckDef, CompiledSpec, Thunk};
use std::fmt;
use std::time::Instant;

/// A shareable executor factory: called once per run (and per shrink
/// replay) to open a fresh session against the system under test. The
/// `Sync` bound lets the parallel runtime hand the same factory to every
/// worker; stateless closures like
/// `&|| Box::new(WebExecutor::new(App::new)) as Box<dyn Executor>`
/// satisfy it automatically.
pub type MakeExecutor<'a> = &'a (dyn Fn() -> Box<dyn Executor> + Sync);

/// An unrecoverable checking error (as opposed to a failing property):
/// specification evaluation errors or protocol violations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckError {
    /// Description of the failure.
    pub message: String,
}

impl CheckError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        CheckError {
            message: message.into(),
        }
    }
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "check error: {}", self.message)
    }
}

impl std::error::Error for CheckError {}

impl From<specstrom::EvalError> for CheckError {
    fn from(e: specstrom::EvalError) -> Self {
        CheckError::new(e.to_string())
    }
}

/// Derives the RNG seed of one test run from the master seed and the run's
/// index, with a SplitMix64-style mixing step.
///
/// Nearby master seeds and indices must not yield correlated run seeds —
/// the mixer guarantees avalanche — and, crucially for the parallel
/// runtime, the derivation depends *only* on `(master_seed, run_index)`:
/// never on worker count, scheduling, or completion order. This is the
/// load-bearing half of the `jobs = N` ⇒ `jobs = 1` determinism invariant.
///
/// # Examples
///
/// ```
/// use quickstrom_checker::derive_run_seed;
///
/// // Deterministic in both arguments…
/// assert_eq!(derive_run_seed(42, 3), derive_run_seed(42, 3));
/// // …and decorrelated across neighbouring indices.
/// assert_ne!(derive_run_seed(42, 3), derive_run_seed(42, 4));
/// assert_ne!(derive_run_seed(42, 3), derive_run_seed(43, 3));
/// ```
#[must_use]
pub fn derive_run_seed(master_seed: u64, run_index: u64) -> u64 {
    // SplitMix64: state = master + (index + 1) · golden gamma, then the
    // standard finalizer (Steele, Lea & Flood, OOPSLA 2014).
    let mut z = master_seed.wrapping_add(
        run_index
            .wrapping_add(1)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The per-property observability context: shared options, a common time
/// origin (so every track's timestamps are comparable), and the
/// chrome-trace process id the property's tracks are grouped under.
///
/// Everything is read-only and `Sync`, so worker threads share one context
/// by reference. When observability is off, every sink/recorder it hands
/// out is disabled — a single branch per span, no allocation.
pub(crate) struct ObsCtx {
    pub(crate) opts: ObsOptions,
    pub(crate) origin: Instant,
    pub(crate) pid: u32,
}

impl ObsCtx {
    pub(crate) fn disabled() -> Self {
        ObsCtx {
            opts: ObsOptions::disabled(),
            origin: Instant::now(),
            pid: 0,
        }
    }

    /// A sink for one track. The `name` closure only runs when tracing is
    /// enabled, so disabled runs never allocate a label.
    pub(crate) fn sink(&self, tid: u64, name: impl FnOnce() -> String) -> TraceSink {
        match &self.opts.tracing {
            Some(t) => TraceSink::enabled(self.origin, self.pid, tid, name(), t.track_capacity),
            None => TraceSink::disabled(),
        }
    }

    pub(crate) fn recorder(&self) -> MetricsRecorder {
        if self.opts.metrics {
            MetricsRecorder::enabled()
        } else {
            MetricsRecorder::disabled()
        }
    }
}

/// The observability artifacts of one run (or one property, once
/// aggregated): the trace tracks and the merged metrics registry.
#[derive(Debug, Default)]
pub struct RunObs {
    /// Trace tracks (driver/evaluator per run; empty when tracing is off).
    pub tracks: Vec<TrackLog>,
    /// Merged metrics (empty when metrics are off).
    pub metrics: MetricsRegistry,
}

impl RunObs {
    pub(crate) fn absorb(&mut self, other: RunObs) {
        self.tracks.extend(other.tracks);
        self.metrics.merge(&other.metrics);
    }
}

/// One executed run, with the observation totals the report aggregates.
/// Built by the sequential engine here and by the pipelined engine in
/// [`crate::pipeline`].
pub(crate) struct ExecutedRun {
    pub(crate) states: usize,
    pub(crate) actions: usize,
    pub(crate) result: RunResult,
    pub(crate) timings: PhaseTimings,
    pub(crate) transport: TransportStats,
    /// The accepted action script (the corpus harvests novel prefixes
    /// from it).
    pub(crate) script: Vec<ActionInstance>,
    /// The run's coverage observations, merged into the property's map in
    /// canonical index order.
    pub(crate) coverage: RunCoverage,
    /// Whether the run was seeded with a corpus prefix.
    pub(crate) replayed: bool,
    /// The run's observability artifacts (empty when obs is off).
    pub(crate) obs: RunObs,
}

/// Executes the run at `index`: fresh executor, fresh RNG seeded from
/// `(options.seed, index)`, optionally replaying a corpus `prefix` before
/// extending with strategy-chosen actions.
#[allow(clippy::too_many_arguments)] // internal: name + thunk + prefix push it over
fn run_one(
    spec: &CompiledSpec,
    check: &CheckDef,
    property_name: &str,
    property: &Thunk,
    options: &CheckOptions,
    make_executor: MakeExecutor<'_>,
    index: usize,
    prefix: Option<&[ActionInstance]>,
    obs: &ObsCtx,
) -> Result<ExecutedRun, CheckError> {
    if options.pipeline == PipelineMode::On {
        return pipeline::run_one_pipelined(
            spec,
            check,
            property_name,
            property,
            options,
            make_executor,
            index,
            prefix,
            obs,
        );
    }
    let mut session = Session::new(
        spec,
        check,
        property_name,
        property,
        options,
        make_executor(),
    )
    .with_obs(
        obs.sink(2 * index as u64, || format!("run {index}")),
        obs.recorder(),
    );
    let mut source = ActionSource::Random {
        rng: StdRng::seed_from_u64(derive_run_seed(options.seed, index as u64)),
        prefix: prefix.unwrap_or(&[]),
        pos: 0,
    };
    let outcome = session.drive(&mut source)?;
    let result = match outcome {
        RunOutcome::Result(result) => result,
        RunOutcome::ScriptInvalid => {
            unreachable!("random runs never report script invalidity")
        }
    };
    let (track, metrics) = session.take_obs();
    Ok(ExecutedRun {
        states: session.states(),
        actions: session.actions(),
        result,
        timings: session.timings(),
        transport: session.transport(),
        script: session.take_script(),
        coverage: session.take_coverage(),
        replayed: prefix.is_some(),
        obs: RunObs {
            tracks: track.into_iter().collect(),
            metrics,
        },
    })
}

/// The sequential loop: run in index order, stop at the first failure (or
/// error), exactly like the original tool.
#[allow(clippy::too_many_arguments)] // internal: the obs context pushes it over
fn run_tests_sequential(
    spec: &CompiledSpec,
    check: &CheckDef,
    property_name: &str,
    property: &Thunk,
    options: &CheckOptions,
    make_executor: MakeExecutor<'_>,
    obs: &ObsCtx,
) -> Result<Vec<ExecutedRun>, CheckError> {
    let mut executed = Vec::new();
    for index in 0..options.tests {
        let run = run_one(
            spec,
            check,
            property_name,
            property,
            options,
            make_executor,
            index,
            None,
            obs,
        )?;
        let failed = run.result.is_failure();
        executed.push(run);
        if failed {
            break;
        }
    }
    Ok(executed)
}

/// The parallel fan-out: all run indices are dispatched to the pool;
/// once some run stops the sequence (failure or error), *later* indices
/// may be skipped, and the results are merged in canonical index order so
/// the outcome matches [`run_tests_sequential`] bit for bit.
#[allow(clippy::too_many_arguments)] // internal: the obs context pushes it over
fn run_tests_parallel(
    spec: &CompiledSpec,
    check: &CheckDef,
    property_name: &str,
    property: &Thunk,
    options: &CheckOptions,
    make_executor: MakeExecutor<'_>,
    obs: &ObsCtx,
) -> Result<Vec<ExecutedRun>, CheckError> {
    let cancel = Cancellation::new();
    let multiplexed = options.pipeline == PipelineMode::On && options.multiplex > 1;
    let slots: Vec<Option<Result<ExecutedRun, CheckError>>> = if multiplexed {
        // The multiplexed scheduler interleaves several in-flight
        // pipelined sessions per worker; it applies the same cancellation
        // protocol internally.
        pipeline::run_batch_pipelined(
            spec,
            check,
            property_name,
            property,
            options,
            make_executor,
            0,
            options.tests,
            None,
            Some(&cancel),
            obs,
        )
    } else {
        pool::run_ordered(options.jobs, options.tests, |index| {
            if cancel.should_skip(index) {
                return None;
            }
            let outcome = run_one(
                spec,
                check,
                property_name,
                property,
                options,
                make_executor,
                index,
                None,
                obs,
            );
            let stops = match &outcome {
                Ok(run) => run.result.is_failure(),
                Err(_) => true,
            };
            if stops {
                cancel.note_stop(index);
            }
            Some(outcome)
        })
    };
    // Merge in canonical order, replaying the sequential decisions: take
    // runs until the first failure (inclusive) or the first error. Every
    // index up to that point was executed — skipping only ever happens
    // strictly after the earliest stop.
    let mut executed = Vec::new();
    for slot in slots {
        let Some(outcome) = slot else {
            break; // only reachable past the earliest stop
        };
        let run = outcome?;
        let failed = run.result.is_failure();
        executed.push(run);
        if failed {
            break;
        }
    }
    Ok(executed)
}

/// How many runs are dispatched between corpus-harvest barriers when the
/// strategy schedules corpus replays.
///
/// The epoch is a fixed constant — *never* derived from the worker
/// count — because it is part of the determinism contract: runs within
/// an epoch are seeded before the epoch starts (from the corpus contents
/// at the barrier) and merged in index order after it, so the corpus a
/// run sees depends only on `(strategy, seed, run index)`, not on
/// scheduling. Larger epochs would fan out better but feed discoveries
/// back more slowly; four runs keeps both effects small.
const CORPUS_EPOCH: usize = 4;

/// What the corpus-scheduled fan-out produces beyond the runs: the merged
/// coverage and how the corpus was used.
struct CorpusOutcome {
    executed: Vec<ExecutedRun>,
    coverage: CoverageMap,
    corpus_size: usize,
    corpus_replays: usize,
}

/// The coverage-guided loop: runs execute in fixed-size epochs; between
/// epochs the per-run coverage is merged (in index order) into the
/// property's map, prefixes that reached property-novel fingerprints
/// enter the [`TraceCorpus`], and the next epoch's runs are
/// deterministically seeded with replay-then-extend prefixes.
///
/// Stop-at-first-failure matches the sequential semantics: the merge
/// stops at the first failing index (inclusive); later runs of that
/// epoch are discarded identically for every `jobs` value.
#[allow(clippy::too_many_arguments)] // internal: the obs context pushes it over
fn run_tests_corpus(
    spec: &CompiledSpec,
    check: &CheckDef,
    property_name: &str,
    property: &Thunk,
    options: &CheckOptions,
    make_executor: MakeExecutor<'_>,
    obs: &ObsCtx,
) -> Result<CorpusOutcome, CheckError> {
    let mut corpus = TraceCorpus::default();
    let mut coverage = CoverageMap::new();
    let mut executed = Vec::new();
    let mut corpus_replays = 0usize;
    let mut stopped = false;
    let mut start = 0usize;
    while start < options.tests && !stopped {
        let end = (start + CORPUS_EPOCH).min(options.tests);
        // Seed the epoch from the corpus as it stands at this barrier —
        // a pure function of (corpus contents, run index).
        let prefixes: Vec<Option<Vec<ActionInstance>>> = (start..end)
            .map(|index| {
                corpus
                    .schedule(index, options.max_actions)
                    .map(|entry| entry.script.clone())
            })
            .collect();
        let multiplexed = options.pipeline == PipelineMode::On && options.multiplex > 1;
        let slots: Vec<Result<ExecutedRun, CheckError>> = if multiplexed {
            // No cancellation inside an epoch: every slot is executed, so
            // every slot comes back `Some`.
            pipeline::run_batch_pipelined(
                spec,
                check,
                property_name,
                property,
                options,
                make_executor,
                start,
                end - start,
                Some(&prefixes),
                None,
                obs,
            )
            .into_iter()
            .map(|slot| slot.expect("corpus epochs run without cancellation"))
            .collect()
        } else {
            pool::run_ordered(options.jobs, end - start, |k| {
                run_one(
                    spec,
                    check,
                    property_name,
                    property,
                    options,
                    make_executor,
                    start + k,
                    prefixes[k].as_deref(),
                    obs,
                )
            })
        };
        for outcome in slots {
            let run = outcome?;
            // Harvest prefixes that reached property-novel fingerprints
            // *before* merging this run's map — merge order is the
            // canonical index order, so the corpus contents are
            // deterministic too.
            for &(len, fp) in &run.coverage.first_visits {
                if !coverage.contains_state(fp) && len > 0 {
                    corpus.add(run.script[..len].to_vec(), fp);
                }
            }
            coverage.merge(&run.coverage.map);
            if run.replayed {
                corpus_replays += 1;
            }
            let failed = run.result.is_failure();
            executed.push(run);
            if failed {
                stopped = true;
                break;
            }
        }
        start = end;
    }
    Ok(CorpusOutcome {
        executed,
        coverage,
        corpus_size: corpus.len(),
        corpus_replays,
    })
}

/// Runs one scripted replay; used by the shrinker.
fn replay(
    spec: &CompiledSpec,
    check: &CheckDef,
    property_name: &str,
    property: &Thunk,
    options: &CheckOptions,
    make_executor: MakeExecutor<'_>,
    script: &[ActionInstance],
) -> Result<(RunOutcome, PhaseTimings, TransportStats), CheckError> {
    let mut session = Session::new(
        spec,
        check,
        property_name,
        property,
        options,
        make_executor(),
    );
    let mut source = ActionSource::Script {
        actions: script,
        pos: 0,
    };
    let outcome = session.drive(&mut source)?;
    Ok((outcome, session.timings(), session.transport()))
}

/// Minimises a failing script by removing chunks and replaying (a light
/// delta-debugging pass). Not described in the paper — the real tool
/// shrinks too — and documented as an extension in DESIGN.md.
/// The chrome-trace thread id of the shrink search's own track — far above
/// any `2 * run_index (+ 1)` tid a run's driver/evaluator tracks use.
const SHRINK_TID: u64 = 1 << 32;

#[allow(clippy::too_many_arguments)] // internal: the two &mut accumulators push it over
fn shrink(
    spec: &CompiledSpec,
    check: &CheckDef,
    property_name: &str,
    property: &Thunk,
    options: &CheckOptions,
    make_executor: MakeExecutor<'_>,
    mut failing: Counterexample,
    timings: &mut PhaseTimings,
    transport: &mut TransportStats,
    obs: &ObsCtx,
    run_obs: &mut RunObs,
) -> Result<Counterexample, CheckError> {
    // The shrink search gets its own track: one `shrink` span around the
    // whole search, one `shrink-replay` span per candidate. The replay
    // sessions themselves run with observability off, mirroring
    // `reset_for_replay`'s exclusion of replay counters from the report.
    let mut sink = obs.sink(SHRINK_TID, || format!("{property_name} · shrink"));
    let shrink_span = sink.open(SpanKind::Shrink);
    let original_len = failing.script.len();
    let mut budget = 200usize;
    let mut chunk = (failing.script.len() / 2).max(1);
    loop {
        let mut improved = false;
        let mut i = 0;
        while i < failing.script.len() && budget > 0 {
            budget -= 1;
            let mut candidate: Vec<ActionInstance> = failing.script.clone();
            let end = (i + chunk).min(candidate.len());
            candidate.drain(i..end);
            let candidate_len = candidate.len() as u64;
            let replay_span = sink.open(SpanKind::ShrinkReplay);
            let (outcome, mut replay_timings, replay_transport) = replay(
                spec,
                check,
                property_name,
                property,
                options,
                make_executor,
                &candidate,
            )?;
            let still_failing = matches!(&outcome, RunOutcome::Result(RunResult::Failed(_)));
            sink.close_with(replay_span, |a| {
                a.push(("candidate_len", AttrValue::U64(candidate_len)));
                a.push(("still_failing", AttrValue::Bool(still_failing)));
            });
            // Fold in the replay's wall-clock attribution but not its
            // evaluation counters: each replay re-expands the atoms of
            // its whole candidate prefix, so absorbing the counts would
            // make the per-property atom/table columns depend on whether
            // a counterexample happened to shrink (and on how many
            // candidates the shrinker tried). Counters measure what the
            // *test budget* evaluated, mirroring coverage's exclusion of
            // shrink replays. (Replays are always sequential, so the
            // pipeline counters this also clears are zero anyway.)
            replay_timings.reset_for_replay();
            timings.absorb(replay_timings);
            transport.absorb(replay_transport);
            match outcome {
                RunOutcome::Result(RunResult::Failed(cx)) => {
                    failing = Counterexample { shrunk: true, ..cx };
                    improved = true;
                    // Retry at the same index: the next chunk shifted left.
                }
                _ => {
                    // Slide by one, not by chunk: guard-coupled pairs can
                    // sit at any offset (budget bounds the quadratic cost).
                    i += 1;
                }
            }
        }
        if budget == 0 {
            break;
        }
        if !improved {
            if chunk == 1 {
                break;
            }
            // Ceiling halving so every size down to 1 is attempted —
            // guard-coupled action pairs (enter-edit/exit-edit) can only
            // be removed together, at exactly chunk size 2.
            chunk = chunk.div_ceil(2);
        } else {
            chunk = (failing.script.len() / 2).max(1);
        }
    }
    let final_len = failing.script.len() as u64;
    sink.close_with(shrink_span, |a| {
        a.push(("original_len", AttrValue::U64(original_len as u64)));
        a.push(("final_len", AttrValue::U64(final_len)));
    });
    if let Some(track) = sink.finish() {
        run_obs.tracks.push(track);
    }
    Ok(failing)
}

/// Checks one property of one `check` command.
///
/// `make_executor` is called once per run (and per shrink replay) to build
/// a fresh session against the system under test. With
/// [`CheckOptions::jobs`] greater than one, runs execute on a worker pool;
/// the report is guaranteed identical to a sequential check (see
/// [`derive_run_seed`]). Shrinking always happens after the fan-out, on
/// the canonical (earliest-index) counterexample.
///
/// # Errors
///
/// Returns [`CheckError`] on specification evaluation errors or executor
/// protocol violations — *not* on failing properties, which are reported in
/// the [`PropertyReport`].
pub fn check_property(
    spec: &CompiledSpec,
    check: &CheckDef,
    property_name: &str,
    options: &CheckOptions,
    make_executor: MakeExecutor<'_>,
) -> Result<PropertyReport, CheckError> {
    let obs = ObsCtx::disabled();
    check_property_inner(spec, check, property_name, options, make_executor, &obs)
        .map(|(report, _)| report)
}

/// [`check_property`] with observability: structured tracing and/or a
/// metrics registry per [`ObsOptions`]. The returned [`RunObs`] carries
/// every recorded trace track (in canonical run-index order, driver before
/// evaluator within a run) plus the merged metrics. The report itself is
/// bit-identical to [`check_property`]'s — instrumentation never branches
/// control flow.
///
/// # Errors
///
/// See [`check_property`].
pub fn check_property_observed(
    spec: &CompiledSpec,
    check: &CheckDef,
    property_name: &str,
    options: &CheckOptions,
    make_executor: MakeExecutor<'_>,
    obs: &ObsOptions,
) -> Result<(PropertyReport, RunObs), CheckError> {
    let ctx = ObsCtx {
        opts: obs.clone(),
        origin: Instant::now(),
        pid: 1,
    };
    check_property_inner(spec, check, property_name, options, make_executor, &ctx)
}

fn check_property_inner(
    spec: &CompiledSpec,
    check: &CheckDef,
    property_name: &str,
    options: &CheckOptions,
    make_executor: MakeExecutor<'_>,
    obs: &ObsCtx,
) -> Result<(PropertyReport, RunObs), CheckError> {
    let property = spec
        .property_thunk(property_name)
        .ok_or_else(|| CheckError::new(format!("unknown property `{property_name}`")))?;
    let outcome = if options.strategy.uses_corpus() {
        run_tests_corpus(
            spec,
            check,
            property_name,
            &property,
            options,
            make_executor,
            obs,
        )?
    } else {
        // The multiplexed pipelined scheduler is worth engaging even with
        // one worker: it overlaps several sessions' executor latencies.
        let fan_out =
            options.jobs > 1 || (options.pipeline == PipelineMode::On && options.multiplex > 1);
        let executed = if fan_out && options.tests > 1 {
            run_tests_parallel(
                spec,
                check,
                property_name,
                &property,
                options,
                make_executor,
                obs,
            )?
        } else {
            run_tests_sequential(
                spec,
                check,
                property_name,
                &property,
                options,
                make_executor,
                obs,
            )?
        };
        // Merge per-run coverage in canonical index order (the union is
        // order-insensitive anyway, but the canonical order is the
        // stated contract).
        let mut coverage = CoverageMap::new();
        for run in &executed {
            coverage.merge(&run.coverage.map);
        }
        CorpusOutcome {
            executed,
            coverage,
            corpus_size: 0,
            corpus_replays: 0,
        }
    };
    let coverage_stats = CoverageStats {
        distinct_states: outcome.coverage.distinct_states(),
        distinct_edges: outcome.coverage.distinct_edges(),
        corpus_size: outcome.corpus_size,
        corpus_replays: outcome.corpus_replays,
    };
    let executed = outcome.executed;
    let mut runs = Vec::with_capacity(executed.len());
    let mut states_total = 0;
    let mut actions_total = 0;
    let mut timings = PhaseTimings::default();
    let mut transport = TransportStats::default();
    let mut run_obs = RunObs::default();
    for run in executed {
        states_total += run.states;
        actions_total += run.actions;
        timings.absorb(run.timings);
        transport.absorb(run.transport);
        run_obs.absorb(run.obs);
        match run.result {
            RunResult::Failed(cx) => {
                let cx = if options.shrink && cx.script.len() > 1 && !cx.forced {
                    shrink(
                        spec,
                        check,
                        property_name,
                        &property,
                        options,
                        make_executor,
                        cx,
                        &mut timings,
                        &mut transport,
                        obs,
                        &mut run_obs,
                    )?
                } else {
                    cx
                };
                runs.push(RunResult::Failed(cx));
            }
            other => runs.push(other),
        }
    }
    if obs.opts.metrics {
        run_obs.metrics.counter("runs_total", runs.len() as u64);
        run_obs.metrics.counter("states_total", states_total as u64);
        run_obs
            .metrics
            .counter("actions_total", actions_total as u64);
    }
    Ok((
        PropertyReport {
            property: property_name.to_owned(),
            runs,
            states_total,
            actions_total,
            timings,
            transport,
            coverage: coverage_stats,
        },
        run_obs,
    ))
}

/// Checks every property of every `check` command in the specification.
///
/// Properties are checked in declaration order; within each property the
/// runs fan out over [`CheckOptions::jobs`] workers.
///
/// # Errors
///
/// See [`check_property`].
pub fn check_spec(
    spec: &CompiledSpec,
    options: &CheckOptions,
    make_executor: MakeExecutor<'_>,
) -> Result<Report, CheckError> {
    let mut report = Report::default();
    for check in &spec.checks {
        for property in &check.properties {
            report.properties.push(check_property(
                spec,
                check,
                property,
                options,
                make_executor,
            )?);
        }
    }
    Ok(report)
}

/// The observability artifacts of one observed spec check: every trace
/// track (properties grouped as chrome-trace processes, in declaration
/// order), the merged metrics registry, and one [`FailureExplanation`]
/// per failing property, built from the final (shrunk) counterexample.
#[derive(Debug, Default)]
pub struct ObsArtifacts {
    /// All trace tracks, ready for
    /// [`chrome_trace_json`](quickstrom_obs::chrome_trace_json) or
    /// [`render_timeline`](quickstrom_obs::render_timeline).
    pub trace: TraceLog,
    /// The merged metrics registry across all properties and workers.
    pub metrics: MetricsRegistry,
    /// One explanation per failing property, in declaration order.
    pub explanations: Vec<FailureExplanation>,
}

/// [`check_spec`] with observability: structured tracing, a metrics
/// registry, and explainable failure reports, per [`ObsOptions`]. The
/// returned [`Report`] is bit-identical to [`check_spec`]'s — the
/// instrumentation never branches control flow — and failure explanations
/// are built even when tracing and metrics are both off (they replay the
/// recorded counterexample trace, which is deterministic and cheap).
///
/// # Errors
///
/// See [`check_property`].
pub fn check_spec_observed(
    spec: &CompiledSpec,
    options: &CheckOptions,
    make_executor: MakeExecutor<'_>,
    obs: &ObsOptions,
) -> Result<(Report, ObsArtifacts), CheckError> {
    let origin = Instant::now();
    let mut report = Report::default();
    let mut artifacts = ObsArtifacts::default();
    let mut pid = 1u32;
    for check in &spec.checks {
        for property in &check.properties {
            let ctx = ObsCtx {
                opts: obs.clone(),
                origin,
                pid,
            };
            let (prop, run_obs) =
                check_property_inner(spec, check, property, options, make_executor, &ctx)?;
            artifacts.trace.tracks.extend(run_obs.tracks);
            artifacts.metrics.merge(&run_obs.metrics);
            if let Some(cx) = prop.counterexample() {
                artifacts.explanations.push(crate::explain::explain_failure(
                    spec, property, cx, options,
                )?);
            }
            report.properties.push(prop);
            pid += 1;
        }
    }
    Ok((report, artifacts))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_seeds_are_stable_and_spread() {
        // Pinned values: the derivation is part of the reproducibility
        // contract (reports cite seeds), so changing the mixer constants
        // must fail loudly. (0, 0) is the canonical first output of
        // SplitMix64 from state 0.
        assert_eq!(derive_run_seed(0, 0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(derive_run_seed(20220322, 5), 0x32A6_D737_1F3E_3766);
        let seeds: Vec<u64> = (0..64).map(|i| derive_run_seed(20220322, i)).collect();
        let mut deduped = seeds.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), seeds.len(), "no collisions in 64 indices");
        // Avalanche sanity: flipping the low master-seed bit flips roughly
        // half the output bits on average; just require ≥ 16 of 64 here.
        let a = derive_run_seed(7, 0);
        let b = derive_run_seed(6, 0);
        assert!((a ^ b).count_ones() >= 16);
    }
}
