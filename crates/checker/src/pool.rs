//! A small in-tree worker pool: ordered fan-out over `std::thread` and
//! channels.
//!
//! The checker's parallel runtime has one need: run `count` independent
//! tasks on up to `jobs` OS threads and collect the results *in task-index
//! order*, so that a parallel sweep merges into exactly the report a
//! sequential sweep would produce. [`run_ordered`] provides that, and
//! [`Cancellation`] carries the stop-at-first-failure signal between
//! workers without disturbing determinism (see DESIGN.md, *Parallel
//! runtime*).
//!
//! No work-stealing, no task queues, no external dependencies: workers pull
//! the next index from a shared atomic counter and post `(index, result)`
//! pairs down an [`std::sync::mpsc`] channel. A worker panic stops the
//! fan-out — siblings bail at their next index fetch — and is re-raised
//! in the caller with its original payload.
//!
//! # Examples
//!
//! ```
//! use quickstrom_checker::pool::run_ordered;
//!
//! let squares = run_ordered(4, 8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::any::Any;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::thread;

/// Runs `task(0..count)` on up to `jobs` worker threads and returns the
/// results in index order.
///
/// With `jobs <= 1` (or at most one task) the tasks run inline on the
/// calling thread, in order — the parallel and sequential paths share this
/// single entry point. Scheduling is dynamic (workers pull the next index
/// when free), so slow tasks don't convoy behind fast ones; result order is
/// nevertheless always `0..count`.
///
/// # Panics
///
/// If a task panics, sibling workers stop at their next index fetch
/// (already-started tasks finish) and the first panic is re-raised in the
/// caller with its original payload — a long fan-out doesn't grind
/// through its whole backlog after one task has already died.
pub fn run_ordered<T, F>(jobs: usize, count: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.max(1).min(count);
    if jobs <= 1 {
        return (0..count).map(task).collect();
    }
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    // The first panic payload, kept so it can be re-raised with its
    // original message (`#[should_panic]` expectations, test names).
    let panic_payload: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
    thread::scope(|scope| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let next = &next;
            let task = &task;
            let stop = &stop;
            let panic_payload = &panic_payload;
            scope.spawn(move || loop {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= count {
                    break;
                }
                // AssertUnwindSafe: on panic the result is discarded and
                // the payload re-raised, so no broken state is observed.
                match panic::catch_unwind(AssertUnwindSafe(|| task(index))) {
                    Ok(value) => {
                        if tx.send((index, value)).is_err() {
                            break;
                        }
                    }
                    Err(payload) => {
                        stop.store(true, Ordering::SeqCst);
                        panic_payload
                            .lock()
                            .expect("payload lock")
                            .get_or_insert(payload);
                        break;
                    }
                }
            });
        }
    });
    drop(tx);
    if let Some(payload) = panic_payload.into_inner().expect("payload lock") {
        panic::resume_unwind(payload);
    }
    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    for (index, value) in rx {
        slots[index] = Some(value);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("worker delivered every index"))
        .collect()
}

/// The stop-at-first-failure signal shared by the workers of one fan-out.
///
/// Tracks the *earliest* task index at which a stopping condition (a
/// failing run, a check error) was observed. Workers consult
/// [`should_skip`](Cancellation::should_skip) before starting a task:
/// indices *after* the earliest known stop can be skipped — a sequential
/// loop would never have reached them — while indices *before* it must
/// still run, because an even earlier failure may yet surface and become
/// the canonical one. This is what keeps an N-worker report bit-identical
/// to the 1-worker report.
#[derive(Debug)]
pub struct Cancellation {
    earliest_stop: AtomicUsize,
}

impl Cancellation {
    /// A fresh signal with no stop recorded.
    #[must_use]
    pub fn new() -> Self {
        Cancellation {
            earliest_stop: AtomicUsize::new(usize::MAX),
        }
    }

    /// Records that the task at `index` hit a stopping condition.
    pub fn note_stop(&self, index: usize) {
        self.earliest_stop.fetch_min(index, Ordering::SeqCst);
    }

    /// May the task at `index` be skipped? True only for indices strictly
    /// after the earliest recorded stop.
    #[must_use]
    pub fn should_skip(&self, index: usize) -> bool {
        index > self.earliest_stop.load(Ordering::SeqCst)
    }
}

impl Default for Cancellation {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn sequential_when_single_job() {
        let calls = AtomicUsize::new(0);
        let out = run_ordered(1, 5, |i| {
            calls.fetch_add(1, Ordering::SeqCst);
            i + 1
        });
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
        assert_eq!(calls.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn parallel_results_are_in_index_order() {
        // Make early indices slow so completion order differs from
        // submission order.
        let out = run_ordered(4, 16, |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i * 10
        });
        assert_eq!(out, (0..16).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<usize> = run_ordered(4, 0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn more_jobs_than_tasks_is_fine() {
        let out = run_ordered(64, 3, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "worker 3 exploded")]
    fn worker_panic_propagates_to_caller() {
        let _ = run_ordered(4, 8, |i| {
            if i == 3 {
                panic!("worker 3 exploded");
            }
            i
        });
    }

    #[test]
    fn cancellation_tracks_earliest_stop() {
        let cancel = Cancellation::new();
        assert!(!cancel.should_skip(0));
        assert!(!cancel.should_skip(1_000_000));
        cancel.note_stop(7);
        cancel.note_stop(12); // later stop does not override an earlier one
        assert!(!cancel.should_skip(6));
        assert!(!cancel.should_skip(7));
        assert!(cancel.should_skip(8));
        cancel.note_stop(2);
        assert!(!cancel.should_skip(2));
        assert!(cancel.should_skip(3));
    }
}
