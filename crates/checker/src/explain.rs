//! Builds [`FailureExplanation`]s: *why* did a property fail?
//!
//! The builder replays the recorded (already shrunk) counterexample trace
//! through a fresh formula stepper — the plain [`Evaluator`], never the
//! automaton, so every atom the residual demands is expanded and can be
//! classified. Per transition it records:
//!
//! * the residual formula before and after (interned into a state table,
//!   so the path reads like an automaton walk),
//! * every requested atom's truth value (when its expansion simplifies to
//!   `Top`/`Bottom`) plus the DOM selectors its static footprint reads,
//! * which of those valuations *flipped* versus the previous state,
//! * the stepper's outcome, and the step where the residual collapsed to
//!   definitively `False`.
//!
//! The replay is deterministic — it consumes only the recorded trace —
//! and contains no wall-clock values, so explanations are bit-identical
//! across jobs settings, pipelining modes and machines.

use crate::options::CheckOptions;
use crate::report::Counterexample;
use crate::runner::CheckError;
use quickltl::{simplify, Evaluator, Formula, StepReport};
use quickstrom_obs::{AtomFlip, FailureExplanation, StepExplanation};
use specstrom::{expand_thunk, footprint_of_thunk, CompiledSpec, EvalCtx, Thunk};
use std::collections::BTreeMap;

/// Per-step atom record: pretty-printed atom → (truth value, selectors).
type AtomVals = BTreeMap<String, (Option<bool>, Vec<String>)>;

/// The truth value of an atom's expansion, when it reduces to one. An
/// expansion that keeps temporal structure (`next …`) has no state-local
/// truth value and classifies as `None`.
fn truth_of(expansion: &Formula<Thunk>) -> Option<bool> {
    match simplify(expansion.clone()) {
        Formula::Top => Some(true),
        Formula::Bottom => Some(false),
        _ => None,
    }
}

fn outcome_label(report: &StepReport) -> String {
    match report {
        StepReport::Continue { presumptive: None } => "continue",
        StepReport::Continue {
            presumptive: Some(true),
        } => "presumably true",
        StepReport::Continue {
            presumptive: Some(false),
        } => "presumably false",
        StepReport::Definitive(true) => "definitely true",
        StepReport::Definitive(false) => "definitely false",
    }
    .to_owned()
}

fn intern(states: &mut Vec<String>, rendered: String) -> usize {
    match states.iter().position(|s| *s == rendered) {
        Some(i) => i,
        None => {
            states.push(rendered);
            states.len() - 1
        }
    }
}

/// Explains one counterexample: replays its trace through a fresh stepper
/// and assembles the state path, per-transition atom flips (with footprint
/// selectors) and the collapsing step.
///
/// # Errors
///
/// Returns [`CheckError`] when the property is unknown or an atom
/// expansion fails — both impossible for a counterexample the checker
/// itself produced, but surfaced rather than swallowed.
pub fn explain_failure(
    spec: &CompiledSpec,
    property_name: &str,
    cx: &Counterexample,
    options: &CheckOptions,
) -> Result<FailureExplanation, CheckError> {
    let property = spec
        .property_thunk(property_name)
        .ok_or_else(|| CheckError::new(format!("unknown property `{property_name}`")))?;
    let mut ev = Evaluator::new(Formula::Atom(property));
    let mut states: Vec<String> = Vec::new();
    let initial = ev
        .residual()
        .map(|f| f.to_string())
        .unwrap_or_else(|| "true".to_owned());
    let mut from_state = intern(&mut states, initial);
    let mut prev_vals = AtomVals::new();
    let mut steps = Vec::new();
    let mut failed_at = None;
    for (i, entry) in cx.trace.iter().enumerate() {
        let ctx = EvalCtx::with_state(&entry.state, options.default_demand);
        let mut vals = AtomVals::new();
        let report = ev
            .observe_expanding(&mut |t: &Thunk| {
                let expansion = expand_thunk(t, &ctx)?;
                let footprint = footprint_of_thunk(t);
                let selectors: Vec<String> =
                    footprint.selectors.keys().map(|s| s.to_string()).collect();
                vals.insert(t.to_string(), (truth_of(&expansion), selectors));
                Ok::<_, specstrom::EvalError>(expansion)
            })
            .map_err(CheckError::from)?;
        let rendered = match (&report, ev.residual()) {
            (_, Some(f)) => f.to_string(),
            (StepReport::Definitive(b), None) => b.to_string(),
            (_, None) => "(done)".to_owned(),
        };
        let to_state = intern(&mut states, rendered);
        let mut flips = Vec::new();
        for (atom, (after, selectors)) in &vals {
            let before = prev_vals.get(atom).and_then(|(v, _)| *v);
            if before != *after {
                flips.push(AtomFlip {
                    atom: atom.clone(),
                    before,
                    after: *after,
                    selectors: selectors.clone(),
                });
            }
        }
        if matches!(report, StepReport::Definitive(false)) && failed_at.is_none() {
            failed_at = Some(i);
        }
        steps.push(StepExplanation {
            step: i,
            happened: entry
                .state
                .happened
                .iter()
                .map(|s| s.as_str().to_owned())
                .collect(),
            from_state,
            to_state,
            flips,
            outcome: outcome_label(&report),
        });
        let done = matches!(report, StepReport::Definitive(_));
        prev_vals = vals;
        from_state = to_state;
        if done {
            break;
        }
    }
    Ok(FailureExplanation {
        property: property_name.to_owned(),
        verdict: cx.verdict.to_bool(),
        forced: cx.forced,
        shrunk: cx.shrunk,
        failed_at_step: failed_at,
        states,
        steps,
    })
}
