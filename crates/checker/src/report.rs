//! Run results, counterexamples and property reports.

use quickltl::{Outcome, Verdict};
use quickstrom_explore::CoverageStats;
use quickstrom_protocol::{ActionInstance, StateSnapshot, Symbol, TransportStats};
use std::fmt;

/// How a single test run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunResult {
    /// The property held (definitively or presumably).
    Passed(Verdict),
    /// The property failed; a counterexample trace was recorded.
    Failed(Counterexample),
    /// The run ended without enough states for even a presumptive verdict
    /// (action budget exhausted while demands were outstanding, or the
    /// application got stuck with no enabled actions).
    Inconclusive {
        /// Why the run could not conclude.
        reason: String,
    },
}

impl RunResult {
    /// `true` for failed runs.
    #[must_use]
    pub fn is_failure(&self) -> bool {
        matches!(self, RunResult::Failed(_))
    }
}

/// A failing run: the verdict, the action script that produced it, and a
/// per-state summary of the trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// The verdict (definitely or presumably false).
    pub verdict: Verdict,
    /// The accepted actions, in order, with targets and generated inputs —
    /// sufficient to replay the run deterministically.
    pub script: Vec<ActionInstance>,
    /// One line per trace state: what happened and when.
    pub trace: Vec<TraceEntry>,
    /// Whether the shrinker minimised this counterexample.
    pub shrunk: bool,
    /// Whether the verdict came from the end-of-trace fallback at a forced
    /// stop (demands never drained). Forced counterexamples are not
    /// shrinkable: any sub-script would be judged by the same fallback.
    pub forced: bool,
}

/// One state of a recorded trace.
///
/// The full reconstructed state is kept, not just a summary — affordably,
/// because per-selector query results are [`Arc`]-shared between
/// neighbouring entries (the checker applies
/// [`SnapshotDelta`](quickstrom_protocol::SnapshotDelta)s onto the
/// previous state, and unchanged selectors keep their allocation). A
/// trace of T steps therefore costs O(changed) memory per step, not
/// O(T × all selectors).
///
/// [`Arc`]: std::sync::Arc
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// The reconstructed state at this position of the trace, with its
    /// `happened` annotation filled in by the checker.
    pub state: StateSnapshot,
}

impl TraceEntry {
    /// The `happened` annotation of the state (interned names).
    #[must_use]
    pub fn happened(&self) -> &[Symbol] {
        &self.state.happened
    }

    /// Virtual time of the snapshot.
    #[must_use]
    pub fn timestamp_ms(&self) -> u64 {
        self.state.timestamp_ms
    }
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "counterexample ({}):", self.verdict)?;
        for (i, action) in self.script.iter().enumerate() {
            writeln!(f, "  {:>3}. {}", i + 1, action)?;
        }
        Ok(())
    }
}

/// Declares [`PhaseTimings`] together with its two accumulation
/// operations from a single field table, so every field carries an
/// explicit `(combine, replay)` rule:
///
/// - combine: `sum` (`+=` in [`PhaseTimings::absorb`]) or `max`
///   (snapshots of shared structures, not independent contributions);
/// - replay: `keep` (survives [`PhaseTimings::reset_for_replay`]) or
///   `zero` (a shrink replay re-accumulates it from scratch).
///
/// `absorb` destructures `other` exhaustively, so adding a field here
/// without a rule — or adding it to the struct by hand — is a compile
/// error, not a silently-dropped counter. The `field_rules_drive_*`
/// tests then check each field's declared semantics generically.
macro_rules! phase_timings {
    (
        $(
            $(#[$doc:meta])*
            $name:ident : $ty:ty => ($combine:ident, $replay:ident)
        ),* $(,)?
    ) => {
        /// Wall-clock attribution of one property check across the phases
        /// of the §3.4 loop, accumulated over every run (and shrink
        /// replay).
        ///
        /// `executor_s` is time spent inside [`Executor::send`] — driving
        /// the application, firing timers, rendering snapshots.  `eval_s`
        /// is time spent in specification evaluation: formula progression
        /// through each state and action-guard evaluation.  Together with
        /// the spec-compile time measured by callers, these let a
        /// benchmark JSON attribute a regression to a phase instead of
        /// only recording wall time.
        ///
        /// [`Executor::send`]: quickstrom_protocol::Executor::send
        #[derive(Debug, Clone, Copy, Default)]
        pub struct PhaseTimings {
            $( $(#[$doc])* pub $name: $ty, )*
        }

        impl PhaseTimings {
            /// Component-wise accumulation ([`ltl_states`] and
            /// [`pipeline_depth`] combine by max — the automaton table is
            /// shared across a property's runs and the depth is a
            /// configuration constant, so both are snapshots, not
            /// independent contributions).
            ///
            /// [`ltl_states`]: PhaseTimings::ltl_states
            /// [`pipeline_depth`]: PhaseTimings::pipeline_depth
            pub fn absorb(&mut self, other: PhaseTimings) {
                // Exhaustive destructure: a field added to the table above
                // is named here by expansion; one added outside it fails
                // this pattern. Either way nothing can be dropped silently.
                let PhaseTimings { $($name),* } = other;
                $( phase_timings!(@absorb $combine, self.$name, $name); )*
            }

            /// Zeroes the counters that a shrink replay re-accumulates
            /// from scratch — atom, memo, LTL, and pipeline-speculation
            /// counters — while keeping the wall-clock fields, so
            /// absorbing a replay's timings into a run's does not
            /// double-count work the replay shares with the original run
            /// (the property-level memo and automaton table are warm, and
            /// replays are sequential, so their counters would
            /// mis-attribute).
            pub fn reset_for_replay(&mut self) {
                $( phase_timings!(@replay $replay, self.$name); )*
            }
        }

        #[cfg(test)]
        impl PhaseTimings {
            /// `(field, combine, replay)` rows, for rule-driven tests.
            pub(crate) const FIELD_RULES: &'static [(&'static str, &'static str, &'static str)] =
                &[ $( (stringify!($name), stringify!($combine), stringify!($replay)) ),* ];

            /// Reads a field by name as `f64` (test support).
            #[allow(trivial_numeric_casts, clippy::unnecessary_cast)]
            pub(crate) fn test_get(&self, name: &str) -> f64 {
                match name {
                    $( stringify!($name) => self.$name as f64, )*
                    _ => panic!("unknown PhaseTimings field {name}"),
                }
            }

            /// Writes a field by name from `f64` (test support).
            #[allow(trivial_numeric_casts, clippy::unnecessary_cast)]
            pub(crate) fn test_set(&mut self, name: &str, value: f64) {
                match name {
                    $( stringify!($name) => self.$name = value as $ty, )*
                    _ => panic!("unknown PhaseTimings field {name}"),
                }
            }
        }
    };
    (@absorb sum, $lhs:expr, $rhs:expr) => { $lhs += $rhs; };
    (@absorb max, $lhs:expr, $rhs:expr) => { $lhs = $lhs.max($rhs); };
    (@replay keep, $lhs:expr) => {};
    (@replay zero, $lhs:expr) => { $lhs = Default::default(); };
}

phase_timings! {
    /// Seconds inside `Executor::send`.
    executor_s: f64 => (sum, keep),
    /// Seconds in formula evaluation/progression and guard evaluation.
    eval_s: f64 => (sum, keep),
    /// Atom expansions requested by the evaluator across all steps.
    atoms_total: u64 => (sum, zero),
    /// Atom expansions actually evaluated — the rest were served from the
    /// value-keyed expansion memo (default) or the footprint-masked cache
    /// because the slice of state the atom can read provably had a value
    /// already seen (see `CheckOptions::atom_cache`).
    atoms_reevaluated: u64 => (sum, zero),
    /// Value-mode memo lookups served without re-evaluation (summed over
    /// runs; the memo is shared per property). Zero outside
    /// `AtomCacheMode::Value`. Under `jobs = N` the hit/miss split can
    /// differ from `jobs = 1` (which worker warms an entry first is
    /// scheduling-dependent) even though verdicts are bit-identical.
    atom_memo_hits: u64 => (sum, zero),
    /// Value-mode memo lookups that had to expand the atom (summed).
    atom_memo_misses: u64 => (sum, zero),
    /// Memo entries evicted by the FIFO capacity bound
    /// (`CheckOptions::atom_memo_capacity`), summed over runs.
    atom_memo_evictions: u64 => (sum, zero),
    /// Residual formulae interned by the property's evaluation automaton
    /// (`quickltl::TransitionTable::state_count` at the end of the run).
    /// The table is shared by every run of a property, so [`absorb`]
    /// combines this field by *maximum*, not by sum — each run reports
    /// the table size it last saw. Zero in `EvalMode::Stepper` mode.
    ///
    /// [`absorb`]: PhaseTimings::absorb
    ltl_states: u64 => (max, zero),
    /// Formula-progression steps answered by a transition-table lookup
    /// instead of the unroll/simplify/classify pipeline (summed over
    /// runs). Zero in `EvalMode::Stepper` mode.
    ltl_table_hits: u64 => (sum, zero),
    /// Formula-progression steps answered wholesale by the property's
    /// step memo — no atom expansion, no observation, no table step; the
    /// replay reproduces the counter deltas the full step would have
    /// produced, so every other counter here stays comparable (summed
    /// over runs; see `CheckOptions::step_memo`). A step-memo hit also
    /// counts as an `ltl_table_hits` hit; that counter may exceed an
    /// unmemoized engine's by a sliver, because a replayed step
    /// occasionally stands in for a table lookup that would have
    /// re-interned a structurally novel observation of the same
    /// transition. Every other counter replays exactly.
    step_memo_hits: u64 => (sum, zero),
    /// The bound on how far the driver stage ran ahead of the evaluator
    /// stage (`CheckOptions::pipeline_depth`). Zero under
    /// `PipelineMode::Off`. A configuration constant, not an
    /// accumulation, so [`absorb`] combines it by *maximum*.
    ///
    /// Note that under `PipelineMode::On`, [`executor_s`] and [`eval_s`]
    /// are measured on concurrent stages: they overlap and no longer sum
    /// to wall-clock time.
    ///
    /// [`absorb`]: PhaseTimings::absorb
    /// [`executor_s`]: PhaseTimings::executor_s
    /// [`eval_s`]: PhaseTimings::eval_s
    pipeline_depth: u64 => (max, zero),
    /// Seconds the driver (executor) stage spent blocked because the
    /// per-run state channel was full — the evaluator was the bottleneck
    /// — plus time parked at a budget boundary waiting for the evaluator
    /// to catch up. Zero under `PipelineMode::Off`.
    executor_stall_s: f64 => (sum, zero),
    /// Seconds the evaluator stage spent starved because the state channel
    /// was empty — the executor was the bottleneck. Zero under
    /// `PipelineMode::Off`.
    evaluator_stall_s: f64 => (sum, zero),
    /// States the driver stage executed past the canonical stop point
    /// (a definitive verdict the evaluator reached while the driver sped
    /// ahead). These speculative states are truncated from every report
    /// artefact — trace, states counter, coverage, scripts — so they are
    /// visible only here. Zero under `PipelineMode::Off`.
    speculative_states_discarded: u64 => (sum, zero),
}

/// The aggregate result of checking one property.
///
/// Equality ignores [`PropertyReport::timings`],
/// [`PropertyReport::transport`] and [`PropertyReport::coverage`]:
/// wall-clock attribution, wire-cost accounting and coverage accounting
/// are the observability fields layered on top of the verdict (the
/// `jobs = N` ⇒ `jobs = 1` determinism invariant — and the delta-mode ≡
/// full-mode invariant — are stated over everything else; coverage has
/// its own, separately pinned determinism invariant, see
/// `crates/bench/tests/coverage_determinism.rs`).
#[derive(Debug, Clone)]
pub struct PropertyReport {
    /// The property name.
    pub property: String,
    /// Results of every run executed (stops early at the first failure).
    pub runs: Vec<RunResult>,
    /// Total states observed across runs.
    pub states_total: usize,
    /// Total actions performed across runs.
    pub actions_total: usize,
    /// Per-phase wall-clock attribution (excluded from equality).
    pub timings: PhaseTimings,
    /// Snapshot-transport accounting accumulated over every run and
    /// shrink replay (excluded from equality): bytes shipped vs the
    /// full-snapshot counterfactual, delta counts, changed selectors.
    pub transport: TransportStats,
    /// Coverage accounting merged over the test runs in canonical index
    /// order (excluded from equality — but itself deterministic:
    /// bit-identical for any `jobs`): distinct state fingerprints,
    /// fingerprint transitions, and trace-corpus usage. Shrink replays do
    /// not contribute — coverage measures what the *test budget*
    /// explored.
    pub coverage: CoverageStats,
}

impl PartialEq for PropertyReport {
    fn eq(&self, other: &Self) -> bool {
        self.property == other.property
            && self.runs == other.runs
            && self.states_total == other.states_total
            && self.actions_total == other.actions_total
    }
}

impl PropertyReport {
    /// The first counterexample, if the property failed.
    #[must_use]
    pub fn counterexample(&self) -> Option<&Counterexample> {
        self.runs.iter().find_map(|r| match r {
            RunResult::Failed(cx) => Some(cx),
            _ => None,
        })
    }

    /// `true` when no run failed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.counterexample().is_none()
    }

    /// The number of inconclusive runs.
    #[must_use]
    pub fn inconclusive_runs(&self) -> usize {
        self.runs
            .iter()
            .filter(|r| matches!(r, RunResult::Inconclusive { .. }))
            .count()
    }
}

impl fmt::Display for PropertyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.passed() {
            write!(
                f,
                "{}: passed ({} runs, {} states, {} actions",
                self.property,
                self.runs.len(),
                self.states_total,
                self.actions_total
            )?;
            let inconclusive = self.inconclusive_runs();
            if inconclusive > 0 {
                write!(f, ", {inconclusive} inconclusive")?;
            }
            write!(f, ")")
        } else {
            write!(
                f,
                "{}: FAILED after {} run(s)",
                self.property,
                self.runs.len()
            )
        }
    }
}

/// The result of checking a whole specification (all `check` commands).
///
/// Equality compares verdicts, scripts, traces and totals — not the
/// [`PhaseTimings`] (see [`PropertyReport`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Report {
    /// Reports per property, in check order.
    pub properties: Vec<PropertyReport>,
}

impl Report {
    /// `true` when every property passed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.properties.iter().all(PropertyReport::passed)
    }

    /// Summed per-phase timings across all properties.
    #[must_use]
    pub fn timings(&self) -> PhaseTimings {
        let mut total = PhaseTimings::default();
        for p in &self.properties {
            total.absorb(p.timings);
        }
        total
    }

    /// Summed snapshot-transport accounting across all properties.
    #[must_use]
    pub fn transport(&self) -> TransportStats {
        let mut total = TransportStats::default();
        for p in &self.properties {
            total.absorb(p.transport);
        }
        total
    }

    /// Summed coverage accounting across all properties. Distinct counts
    /// are per-property and may overlap between properties, so this is an
    /// upper bound on whole-spec coverage (exact per property).
    #[must_use]
    pub fn coverage(&self) -> CoverageStats {
        let mut total = CoverageStats::default();
        for p in &self.properties {
            total.absorb(p.coverage);
        }
        total
    }

    /// The names of failed properties.
    #[must_use]
    pub fn failures(&self) -> Vec<&str> {
        self.properties
            .iter()
            .filter(|p| !p.passed())
            .map(|p| p.property.as_str())
            .collect()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in &self.properties {
            writeln!(f, "{p}")?;
            if let Some(cx) = p.counterexample() {
                write!(f, "{cx}")?;
            }
        }
        Ok(())
    }
}

/// Classifies an outcome into pass/fail/inconclusive.
#[must_use]
pub fn classify_outcome(outcome: Outcome) -> Option<bool> {
    match outcome {
        Outcome::Verdict(v) => Some(v.to_bool()),
        Outcome::MoreStatesNeeded => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quickstrom_protocol::ActionKind;

    fn cx() -> Counterexample {
        Counterexample {
            verdict: Verdict::DefinitelyFalse,
            script: vec![ActionInstance::targeted(
                "add!",
                ActionKind::Click,
                ".new-todo",
                0,
            )],
            trace: vec![TraceEntry {
                state: {
                    let mut s = StateSnapshot::new();
                    s.happened.push("loaded?".into());
                    s
                },
            }],
            shrunk: true,
            forced: false,
        }
    }

    #[test]
    fn report_aggregation() {
        let report = Report {
            properties: vec![
                PropertyReport {
                    property: "safety".into(),
                    runs: vec![RunResult::Passed(Verdict::PresumablyTrue)],
                    states_total: 10,
                    actions_total: 9,
                    timings: PhaseTimings::default(),
                    transport: TransportStats::default(),
                    coverage: CoverageStats::default(),
                },
                PropertyReport {
                    property: "liveness".into(),
                    runs: vec![RunResult::Failed(cx())],
                    states_total: 5,
                    actions_total: 4,
                    timings: PhaseTimings::default(),
                    transport: TransportStats::default(),
                    coverage: CoverageStats::default(),
                },
            ],
        };
        assert!(!report.passed());
        assert_eq!(report.failures(), vec!["liveness"]);
        let text = report.to_string();
        assert!(text.contains("safety: passed"));
        assert!(text.contains("liveness: FAILED"));
        assert!(text.contains("add!"));
    }

    #[test]
    fn property_report_projections() {
        let p = PropertyReport {
            property: "p".into(),
            runs: vec![
                RunResult::Passed(Verdict::PresumablyTrue),
                RunResult::Inconclusive {
                    reason: "stuck".into(),
                },
            ],
            states_total: 3,
            actions_total: 2,
            timings: PhaseTimings::default(),
            transport: TransportStats::default(),
            coverage: CoverageStats::default(),
        };
        assert!(p.passed());
        assert_eq!(p.inconclusive_runs(), 1);
        assert!(p.to_string().contains("1 inconclusive"));
    }

    #[test]
    fn run_result_failure_flag() {
        assert!(RunResult::Failed(cx()).is_failure());
        assert!(!RunResult::Passed(Verdict::DefinitelyTrue).is_failure());
    }

    #[test]
    fn absorb_and_replay_reset_semantics() {
        let mut a = PhaseTimings {
            executor_s: 1.0,
            eval_s: 2.0,
            atoms_total: 10,
            ltl_states: 5,
            pipeline_depth: 16,
            executor_stall_s: 0.5,
            evaluator_stall_s: 0.25,
            speculative_states_discarded: 3,
            ..PhaseTimings::default()
        };
        let b = PhaseTimings {
            executor_s: 1.0,
            ltl_states: 7,
            pipeline_depth: 4,
            executor_stall_s: 0.5,
            speculative_states_discarded: 2,
            ..PhaseTimings::default()
        };
        a.absorb(b);
        assert_eq!(a.executor_s, 2.0);
        assert_eq!(a.ltl_states, 7, "table size combines by max");
        assert_eq!(a.pipeline_depth, 16, "depth combines by max");
        assert_eq!(a.executor_stall_s, 1.0);
        assert_eq!(a.speculative_states_discarded, 5);

        a.reset_for_replay();
        assert_eq!(a.executor_s, 2.0, "wall-clock fields survive the reset");
        assert_eq!(a.eval_s, 2.0);
        assert_eq!(a.atoms_total, 0);
        assert_eq!(a.ltl_states, 0);
        assert_eq!(a.pipeline_depth, 0);
        assert_eq!(a.executor_stall_s, 0.0);
        assert_eq!(a.evaluator_stall_s, 0.0);
        assert_eq!(a.speculative_states_discarded, 0);
    }

    #[test]
    fn field_rules_drive_absorb() {
        for &(field, combine, _) in PhaseTimings::FIELD_RULES {
            let mut a = PhaseTimings::default();
            let mut b = PhaseTimings::default();
            a.test_set(field, 3.0);
            b.test_set(field, 5.0);
            a.absorb(b);
            let expected = match combine {
                "sum" => 8.0,
                "max" => 5.0,
                other => panic!("unknown combine rule {other} for {field}"),
            };
            assert_eq!(a.test_get(field), expected, "absorb({combine}) of {field}");
            // max must also hold when the larger value is already in place.
            let mut c = PhaseTimings::default();
            c.test_set(field, 5.0);
            c.absorb({
                let mut d = PhaseTimings::default();
                d.test_set(field, 3.0);
                d
            });
            let expected = match combine {
                "sum" => 8.0,
                _ => 5.0,
            };
            assert_eq!(a.test_get(field), expected, "absorb({combine}) of {field}");
            assert_eq!(c.test_get(field), expected, "absorb({combine}) of {field}");
        }
    }

    #[test]
    fn field_rules_drive_replay_reset() {
        for &(field, _, replay) in PhaseTimings::FIELD_RULES {
            let mut t = PhaseTimings::default();
            t.test_set(field, 7.0);
            t.reset_for_replay();
            let expected = match replay {
                "keep" => 7.0,
                "zero" => 0.0,
                other => panic!("unknown replay rule {other} for {field}"),
            };
            assert_eq!(
                t.test_get(field),
                expected,
                "reset_for_replay({replay}) of {field}"
            );
        }
    }

    #[test]
    fn field_rules_cover_every_field() {
        // The destructure in `absorb` already makes a missing rule a
        // compile error; this pins the expected shape so a refactor that
        // bypasses the macro shows up as a failing count.
        assert_eq!(PhaseTimings::FIELD_RULES.len(), 14);
        let wall_clock: Vec<&str> = PhaseTimings::FIELD_RULES
            .iter()
            .filter(|(_, _, replay)| *replay == "keep")
            .map(|(name, _, _)| *name)
            .collect();
        assert_eq!(wall_clock, ["executor_s", "eval_s"]);
    }

    #[test]
    fn outcome_classification() {
        assert_eq!(
            classify_outcome(Outcome::Verdict(Verdict::PresumablyTrue)),
            Some(true)
        );
        assert_eq!(
            classify_outcome(Outcome::Verdict(Verdict::DefinitelyFalse)),
            Some(false)
        );
        assert_eq!(classify_outcome(Outcome::MoreStatesNeeded), None);
    }
}
