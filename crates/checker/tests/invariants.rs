//! Checker invariants: determinism under a fixed seed, shrink soundness
//! (a shrunk counterexample still fails and is no larger), stop-at-first-
//! failure, and verdict classification.

use quickstrom_apps::todomvc::{Fault, TodoMvc};
use quickstrom_apps::Counter;
use quickstrom_checker::{check_property, check_spec, CheckOptions, RunResult};
use quickstrom_executor::WebExecutor;
use quickstrom_protocol::Executor;

const COUNTER_SPEC: &str = r#"
    let ~count = parseInt(`#count`.text);
    action inc!   = click!(`#increment`);
    action reset! = click!(`#reset`);
    let ~incStep {
      let old = count;
      nextW (inc! in happened && count == old + 1)
    };
    let ~resetStep = nextW (reset! in happened && count == 0);
    let ~safety = loaded? in happened && count == 0 && always (incStep || resetStep);
    check safety;
"#;

const TODOMVC_SPEC: &str = include_str!("../../../specs/todomvc.strom");

fn options(seed: u64) -> CheckOptions {
    CheckOptions::default()
        .with_tests(25)
        .with_max_actions(40)
        .with_default_demand(30)
        .with_seed(seed)
}

fn counter_executor() -> Box<dyn Executor> {
    Box::new(WebExecutor::new(Counter::new))
}

#[test]
fn reports_are_deterministic_for_a_seed() {
    let spec = specstrom::load(COUNTER_SPEC).unwrap();
    let a = check_spec(&spec, &options(11), &counter_executor).unwrap();
    let b = check_spec(&spec, &options(11), &counter_executor).unwrap();
    assert_eq!(a, b);
    let c = check_spec(&spec, &options(12), &counter_executor).unwrap();
    // Same verdicts (the app is correct), possibly different exploration.
    assert!(c.passed());
}

#[test]
fn shrunk_counterexamples_still_fail_when_replayed() {
    // A faulty TodoMVC: pending input cleared on filter change.
    let spec = specstrom::load(TODOMVC_SPEC).unwrap();
    let make = &|| -> Box<dyn Executor> {
        Box::new(WebExecutor::new(|| {
            TodoMvc::with_faults([Fault::PendingCleared])
        }))
    };
    let check = &spec.checks[0];
    let shrunk = check_property(
        &spec,
        check,
        "safety",
        &CheckOptions::default()
            .with_tests(40)
            .with_max_actions(50)
            .with_default_demand(40)
            .with_seed(3),
        make,
    )
    .unwrap();
    let cx = shrunk.counterexample().expect("fault is caught").clone();
    assert!(cx.shrunk, "shrinking ran");
    assert!(
        cx.script.len() <= 5,
        "fault 7 needs only type-then-filter: {} actions\n{cx}",
        cx.script.len()
    );
    // The shrunk script must still mention the two essential actions.
    let names: Vec<&str> = cx.script.iter().map(|a| a.name.as_str()).collect();
    assert!(names.contains(&"typeNew!"), "{names:?}");
    assert!(names.contains(&"changeFilter!"), "{names:?}");
}

#[test]
fn unshrunk_counterexamples_are_no_smaller_than_shrunk() {
    let spec = specstrom::load(TODOMVC_SPEC).unwrap();
    let run = |shrink: bool| {
        let options = CheckOptions::default()
            .with_tests(40)
            .with_max_actions(50)
            .with_default_demand(40)
            .with_seed(3)
            .with_shrink(shrink);
        let report = check_spec(&spec, &options, &|| -> Box<dyn Executor> {
            Box::new(WebExecutor::new(|| {
                TodoMvc::with_faults([Fault::PendingCleared])
            }))
        })
        .unwrap();
        report.properties[0]
            .counterexample()
            .expect("fault caught")
            .script
            .len()
    };
    let with_shrink = run(true);
    let without = run(false);
    assert!(
        with_shrink <= without,
        "shrunk {with_shrink} > raw {without}"
    );
}

#[test]
fn checking_stops_at_the_first_failing_run() {
    let spec = specstrom::load(TODOMVC_SPEC).unwrap();
    let options = CheckOptions::default()
        .with_tests(1000) // would take ages if not stopped early
        .with_max_actions(40)
        .with_default_demand(30)
        .with_seed(0)
        .with_shrink(false);
    let report = check_spec(&spec, &options, &|| -> Box<dyn Executor> {
        Box::new(WebExecutor::new(|| {
            TodoMvc::with_faults([Fault::NoCheckboxes])
        }))
    })
    .unwrap();
    let prop = &report.properties[0];
    assert!(!prop.passed());
    assert!(
        prop.runs.len() < 1000,
        "stopped after {} runs",
        prop.runs.len()
    );
    assert!(prop.runs.last().unwrap().is_failure());
    // Everything before the failure passed.
    for run in &prop.runs[..prop.runs.len() - 1] {
        assert!(matches!(run, RunResult::Passed(_)));
    }
}

#[test]
fn missing_property_is_a_check_error() {
    let spec = specstrom::load(COUNTER_SPEC).unwrap();
    let check = &spec.checks[0];
    let err =
        check_property(&spec, check, "nonexistent", &options(0), &counter_executor).unwrap_err();
    assert!(err.message.contains("nonexistent"));
}

#[test]
fn action_and_state_totals_accumulate() {
    let spec = specstrom::load(COUNTER_SPEC).unwrap();
    let report = check_spec(&spec, &options(1), &counter_executor).unwrap();
    let prop = &report.properties[0];
    // Every run contributes its loaded? state plus one per action.
    assert_eq!(prop.states_total, prop.actions_total + prop.runs.len());
}
