//! Metrics registry: named counters and fixed-bucket histograms.
//!
//! The registry is the seam ROADMAP item 2's fleet aggregation plugs into:
//! per-run recorders merge into per-property registries in run-index order,
//! per-property registries merge into sweep-level ones, and the result
//! exports as Prometheus text or as p50/p95/p99 columns in the table1 JSON.
//!
//! Buckets are fixed at construction so merging is a plain vector add —
//! no rebinning, and the merge is associative and deterministic.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

/// Exponential latency bucket bounds in seconds: 1 µs … ~1 s, ×2 per step.
/// Chosen to cover everything from a memoized table lookup (sub-µs rounds
/// to the first bucket) to a slow remote executor round-trip.
pub const LATENCY_BOUNDS_S: &[f64] = &[
    1e-6, 2e-6, 4e-6, 8e-6, 16e-6, 32e-6, 64e-6, 128e-6, 256e-6, 512e-6, 1e-3, 2e-3, 4e-3, 8e-3,
    16e-3, 32e-3, 64e-3, 128e-3, 256e-3, 512e-3, 1.0,
];

/// Bucket bounds for small nonnegative integer distributions (memo probe
/// depth: expansions requested per step).
pub const DEPTH_BOUNDS: &[f64] = &[
    0.0, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0, 48.0, 64.0, 96.0, 128.0, 192.0,
    256.0,
];

/// A fixed-bucket histogram. `counts.len() == bounds.len() + 1`; the last
/// bucket is the overflow (`> bounds.last()`).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Upper bucket bounds (inclusive), strictly increasing.
    pub bounds: Vec<f64>,
    /// Observation counts per bucket, plus one overflow bucket.
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Total observation count.
    pub count: u64,
}

impl Histogram {
    /// An empty histogram over the given bounds.
    #[must_use]
    pub fn new(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&mut self, value: f64) {
        // partition_point gives the first bound >= value's bucket; linear
        // scan would also do but the bound lists are sorted by construction.
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx] += 1;
        self.sum += value;
        self.count += 1;
    }

    /// Merges another histogram recorded over identical bounds.
    ///
    /// # Panics
    /// If the bucket bounds differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "histogram bounds mismatch");
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.sum += other.sum;
        self.count += other.count;
    }

    /// Estimates the `q`-quantile (0 ≤ q ≤ 1) by linear interpolation
    /// within the containing bucket. Returns `None` for an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let next = cumulative + c;
            if (next as f64) >= rank && c > 0 {
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let hi = if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    // Overflow bucket: report its lower bound; we cannot
                    // interpolate into an unbounded range.
                    return Some(lo);
                };
                let within = (rank - cumulative as f64) / c as f64;
                return Some(lo + (hi - lo) * within.clamp(0.0, 1.0));
            }
            cumulative = next;
        }
        self.bounds.last().copied()
    }

    /// Mean of observed values (`None` when empty).
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }
}

/// Named counters and histograms. `BTreeMap` keys give deterministic
/// iteration for exports and equality.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    /// Monotone named counters.
    pub counters: BTreeMap<String, u64>,
    /// Named histograms.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `by` to the named counter.
    pub fn counter(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Records one observation into the named histogram, creating it over
    /// `bounds` on first use.
    pub fn observe(&mut self, name: &str, bounds: &[f64], value: f64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// Merges `other` into `self`. Associative; callers merge in run-index
    /// order so sweep aggregates are independent of `--jobs`.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, by) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += by;
        }
        for (name, hist) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(hist),
                None => {
                    self.histograms.insert(name.clone(), hist.clone());
                }
            }
        }
    }

    /// Is anything recorded?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Renders the registry in the Prometheus text exposition format.
    /// Every metric name is prefixed with `prefix` (e.g. `quickstrom_`).
    #[must_use]
    pub fn to_prometheus(&self, prefix: &str) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "# TYPE {prefix}{name} counter");
            let _ = writeln!(out, "{prefix}{name} {value}");
        }
        for (name, hist) in &self.histograms {
            let _ = writeln!(out, "# TYPE {prefix}{name} histogram");
            let mut cumulative = 0u64;
            for (i, &c) in hist.counts.iter().enumerate() {
                cumulative += c;
                let le = if i < hist.bounds.len() {
                    format!("{}", hist.bounds[i])
                } else {
                    "+Inf".to_string()
                };
                let _ = writeln!(out, "{prefix}{name}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{prefix}{name}_sum {}", hist.sum);
            let _ = writeln!(out, "{prefix}{name}_count {}", hist.count);
        }
        out
    }
}

/// Histogram slots inside a [`MetricsRecorder`], in registry-name order.
struct RunMetrics {
    step_latency: Histogram,
    send_latency: Histogram,
    executor_stall: Histogram,
    evaluator_stall: Histogram,
    probe_depth: Histogram,
}

/// The per-run fast path for the checker's hot loops: five pre-built
/// histograms behind one `Option` box, so the disabled case is a single
/// branch and no map lookups happen per step.
pub struct MetricsRecorder(Option<Box<RunMetrics>>);

impl std::fmt::Debug for MetricsRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            None => f.write_str("MetricsRecorder(disabled)"),
            Some(_) => f.write_str("MetricsRecorder(enabled)"),
        }
    }
}

/// Registry names for the recorder's histograms (shared with exports).
pub const STEP_LATENCY: &str = "step_latency_seconds";
/// See [`STEP_LATENCY`].
pub const SEND_LATENCY: &str = "send_latency_seconds";
/// See [`STEP_LATENCY`].
pub const EXECUTOR_STALL: &str = "executor_stall_seconds";
/// See [`STEP_LATENCY`].
pub const EVALUATOR_STALL: &str = "evaluator_stall_seconds";
/// See [`STEP_LATENCY`].
pub const PROBE_DEPTH: &str = "memo_probe_depth";

impl MetricsRecorder {
    /// The no-op recorder.
    #[must_use]
    pub fn disabled() -> Self {
        MetricsRecorder(None)
    }

    /// A recording recorder with the standard histogram set.
    #[must_use]
    pub fn enabled() -> Self {
        MetricsRecorder(Some(Box::new(RunMetrics {
            step_latency: Histogram::new(LATENCY_BOUNDS_S),
            send_latency: Histogram::new(LATENCY_BOUNDS_S),
            executor_stall: Histogram::new(LATENCY_BOUNDS_S),
            evaluator_stall: Histogram::new(LATENCY_BOUNDS_S),
            probe_depth: Histogram::new(DEPTH_BOUNDS),
        })))
    }

    /// Is this recorder recording?
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records one session-step evaluation latency.
    #[inline]
    pub fn step_latency(&mut self, d: Duration) {
        if let Some(m) = &mut self.0 {
            m.step_latency.observe(d.as_secs_f64());
        }
    }

    /// Records one executor send round-trip latency.
    #[inline]
    pub fn send_latency(&mut self, d: Duration) {
        if let Some(m) = &mut self.0 {
            m.send_latency.observe(d.as_secs_f64());
        }
    }

    /// Records one driver-side backpressure stall.
    #[inline]
    pub fn executor_stall(&mut self, d: Duration) {
        if let Some(m) = &mut self.0 {
            m.executor_stall.observe(d.as_secs_f64());
        }
    }

    /// Records one evaluator-side wait for the next pipelined event.
    #[inline]
    pub fn evaluator_stall(&mut self, d: Duration) {
        if let Some(m) = &mut self.0 {
            m.evaluator_stall.observe(d.as_secs_f64());
        }
    }

    /// Records the expansion-probe depth of one step (how many atom
    /// expansions the step requested before memoization).
    #[inline]
    pub fn probe_depth(&mut self, depth: u64) {
        if let Some(m) = &mut self.0 {
            m.probe_depth.observe(depth as f64);
        }
    }

    /// Converts the recorder into a mergeable registry (empty when the
    /// recorder was disabled).
    #[must_use]
    pub fn into_registry(self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        if let Some(m) = self.0 {
            reg.histograms.insert(STEP_LATENCY.into(), m.step_latency);
            reg.histograms.insert(SEND_LATENCY.into(), m.send_latency);
            reg.histograms
                .insert(EXECUTOR_STALL.into(), m.executor_stall);
            reg.histograms
                .insert(EVALUATOR_STALL.into(), m.evaluator_stall);
            reg.histograms.insert(PROBE_DEPTH.into(), m.probe_depth);
        }
        reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_interpolate() {
        let mut h = Histogram::new(&[1.0, 2.0, 4.0, 8.0]);
        for v in [0.5, 1.5, 1.5, 3.0, 3.0, 3.0, 6.0, 6.0, 7.0, 10.0] {
            h.observe(v);
        }
        assert_eq!(h.count, 10);
        let p50 = h.quantile(0.5).unwrap();
        assert!((2.0..=4.0).contains(&p50), "p50={p50}");
        // p100 lands in the overflow bucket, whose lower bound is reported.
        assert_eq!(h.quantile(1.0).unwrap(), 8.0);
        assert!(h.quantile(0.0).is_some());
        assert!(Histogram::new(&[1.0]).quantile(0.5).is_none());
    }

    #[test]
    fn merge_equals_combined_observation() {
        let bounds = [1.0, 10.0, 100.0];
        let mut a = Histogram::new(&bounds);
        let mut b = Histogram::new(&bounds);
        let mut both = Histogram::new(&bounds);
        for v in [0.1, 5.0, 50.0] {
            a.observe(v);
            both.observe(v);
        }
        for v in [2.0, 200.0] {
            b.observe(v);
            both.observe(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn registry_merge_is_order_insensitive_for_totals() {
        let mut a = MetricsRegistry::new();
        a.counter("steps", 3);
        a.observe("lat", LATENCY_BOUNDS_S, 1e-5);
        let mut b = MetricsRegistry::new();
        b.counter("steps", 4);
        b.counter("sends", 1);
        b.observe("lat", LATENCY_BOUNDS_S, 1e-3);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counters["steps"], 7);
        assert_eq!(ab.histograms["lat"].count, 2);
    }

    #[test]
    fn prometheus_text_shape() {
        let mut reg = MetricsRegistry::new();
        reg.counter("runs_total", 2);
        reg.observe("lat_seconds", &[0.1, 1.0], 0.05);
        reg.observe("lat_seconds", &[0.1, 1.0], 0.5);
        let text = reg.to_prometheus("quickstrom_");
        assert!(text.contains("# TYPE quickstrom_runs_total counter"));
        assert!(text.contains("quickstrom_runs_total 2"));
        assert!(text.contains("quickstrom_lat_seconds_bucket{le=\"0.1\"} 1"));
        assert!(text.contains("quickstrom_lat_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("quickstrom_lat_seconds_count 2"));
    }

    #[test]
    fn recorder_disabled_is_empty() {
        let mut r = MetricsRecorder::disabled();
        r.step_latency(Duration::from_micros(5));
        r.probe_depth(3);
        assert!(r.into_registry().is_empty());
    }

    #[test]
    fn recorder_round_trips_into_registry() {
        let mut r = MetricsRecorder::enabled();
        r.step_latency(Duration::from_micros(5));
        r.send_latency(Duration::from_micros(7));
        r.probe_depth(3);
        let reg = r.into_registry();
        assert_eq!(reg.histograms[STEP_LATENCY].count, 1);
        assert_eq!(reg.histograms[SEND_LATENCY].count, 1);
        assert_eq!(reg.histograms[PROBE_DEPTH].count, 1);
        assert_eq!(reg.histograms[EXECUTOR_STALL].count, 0);
    }
}
