//! Span sinks: cheap per-worker trace recording.
//!
//! The design centers on one invariant: a **disabled** sink must cost a
//! single branch per call site — no clock read, no allocation, no
//! formatting. The checker therefore threads a [`TraceSink`] value (not a
//! global) through every run, and the hot paths call
//! [`TraceSink::open`]/[`TraceSink::close`] unconditionally; when the inner
//! recorder is absent those calls return immediately.
//!
//! Spans carry two clocks:
//!
//! - `start_us`/`dur_us`: wall-clock microseconds since a common origin
//!   `Instant`, used only for rendering (chrome://tracing, timelines).
//!   These never appear in deterministic artifacts.
//! - `seq_open`/`seq_close`: a per-track monotone logical sequence. The
//!   proptests in the bench crate check nesting well-formedness against
//!   the logical clock, which is stable across machines and load.

use std::time::Instant;

/// What a span (or instant event) represents. The discriminants map to
/// chrome://tracing event names via [`SpanKind::as_str`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// One whole run: from session start to verdict (or budget exhaustion).
    Run,
    /// One session step: ingest of one state, including atom expansion and
    /// formula progression.
    Step,
    /// One `Executor::send` round-trip (await of the executor reply).
    Send,
    /// The atom expansion batch inside a step (observation construction).
    Atoms,
    /// One table-driven automaton transition (or stepper fallback).
    AutomatonStep,
    /// The whole shrink search for one counterexample.
    Shrink,
    /// One shrink candidate replay.
    ShrinkReplay,
    /// Pipeline backpressure: a stage blocked on a full or empty channel.
    Stall,
    /// Instant event: a definitive verdict was reached.
    Verdict,
    /// Instant event: the speculative tail was truncated after a verdict.
    Truncated,
}

impl SpanKind {
    /// The event name used in exported traces.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Run => "run",
            SpanKind::Step => "step",
            SpanKind::Send => "send",
            SpanKind::Atoms => "atoms",
            SpanKind::AutomatonStep => "automaton_step",
            SpanKind::Shrink => "shrink",
            SpanKind::ShrinkReplay => "shrink_replay",
            SpanKind::Stall => "stall",
            SpanKind::Verdict => "verdict",
            SpanKind::Truncated => "truncated",
        }
    }
}

/// An attribute value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned counter.
    U64(u64),
    /// Seconds or other floating-point measure.
    F64(f64),
    /// Free-form text (atom names, outcome labels).
    Str(String),
    /// Boolean flag.
    Bool(bool),
}

/// One recorded event: a completed span (`instant == false`) or an instant
/// marker (`instant == true`, `dur_us == 0`, `seq_close == seq_open`).
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// What the event represents.
    pub kind: SpanKind,
    /// Wall-clock microseconds since the sink's origin at open.
    pub start_us: u64,
    /// Wall-clock duration in microseconds.
    pub dur_us: u64,
    /// Logical clock value at open.
    pub seq_open: u64,
    /// Logical clock value at close (equals `seq_open` for instants).
    pub seq_close: u64,
    /// True for zero-duration marker events.
    pub instant: bool,
    /// Attributes attached at close.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

/// The finished recording of one track (chrome://tracing thread).
#[derive(Debug, Clone)]
pub struct TrackLog {
    /// Process id for rendering (the harness groups properties/entries by pid).
    pub pid: u32,
    /// Thread id for rendering; unique per track within a pid.
    pub tid: u64,
    /// Human-readable track name ("run 3 · driver", …).
    pub name: String,
    /// Completed events, in close order.
    pub events: Vec<TraceEvent>,
    /// Events discarded because the ring buffer overflowed.
    pub dropped: u64,
}

impl TrackLog {
    /// Checks structural well-formedness of the recorded events: spans must
    /// nest properly (a close order consistent with a stack discipline over
    /// the logical clock), logical clocks must be strictly monotone, and
    /// wall-clock durations must stay inside their parent span.
    ///
    /// Shared between the proptest suite and debug assertions; returns a
    /// description of the first violation.
    pub fn check_well_formed(&self) -> Result<(), String> {
        // Events are recorded in close order; replay them in open order
        // against a stack of enclosing spans. An event opening inside an
        // enclosing span must also close inside it (proper nesting).
        let mut seen_seq: Vec<u64> = Vec::new();
        let mut ordered: Vec<&TraceEvent> = self.events.iter().collect();
        ordered.sort_by_key(|e| e.seq_open);
        let mut open_stack: Vec<(u64, u64)> = Vec::new(); // (seq_open, seq_close)
        for (i, ev) in ordered.iter().enumerate() {
            if ev.seq_close < ev.seq_open {
                return Err(format!("event {i} ({:?}) closes before it opens", ev.kind));
            }
            if ev.instant && ev.seq_close != ev.seq_open {
                return Err(format!("instant event {i} ({:?}) has a span", ev.kind));
            }
            seen_seq.push(ev.seq_open);
            if !ev.instant {
                seen_seq.push(ev.seq_close);
            }
            // Pop completed ancestors: any stacked span that closed before
            // this event opened is finished.
            while let Some(&(_, close)) = open_stack.last() {
                if close < ev.seq_open {
                    open_stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&(open, close)) = open_stack.last() {
                // This event opened inside the enclosing span (guaranteed by
                // the sort and the pop above), so it must close inside too.
                if ev.seq_close >= close {
                    return Err(format!(
                        "event {i} ({:?}) [{}, {}] overlaps enclosing span [{open}, {close}]",
                        ev.kind, ev.seq_open, ev.seq_close
                    ));
                }
            }
            if !ev.instant {
                open_stack.push((ev.seq_open, ev.seq_close));
            }
        }
        // Logical clocks are allocated strictly monotonically per track, so
        // the multiset of all open/close stamps must be duplicate-free.
        seen_seq.sort_unstable();
        if seen_seq.windows(2).any(|w| w[0] == w[1]) {
            return Err("duplicate logical clock values in track".into());
        }
        Ok(())
    }
}

/// Token returned by [`TraceSink::open`]; passed back to `close`.
///
/// A `None` inner means the sink was disabled at open time (or the span was
/// suppressed); `close` on such a token is free.
#[derive(Debug)]
pub struct SpanToken(Option<OpenSpan>);

#[derive(Debug)]
struct OpenSpan {
    kind: SpanKind,
    start_us: u64,
    seq_open: u64,
}

/// Tracing configuration (per check invocation).
#[derive(Debug, Clone)]
pub struct TraceOptions {
    /// Maximum completed events retained per track; the oldest events are
    /// dropped (and counted) beyond this.
    pub track_capacity: usize,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions {
            track_capacity: 16 * 1024,
        }
    }
}

/// Top-level observability switchboard passed to the observed check entry
/// points. `ObsOptions::disabled()` is the zero-cost default.
#[derive(Debug, Clone, Default)]
pub struct ObsOptions {
    /// Record spans into per-run tracks when `Some`.
    pub tracing: Option<TraceOptions>,
    /// Record latency histograms and counters.
    pub metrics: bool,
}

impl ObsOptions {
    /// Everything off; observed entry points behave exactly like the plain
    /// ones.
    #[must_use]
    pub fn disabled() -> Self {
        ObsOptions::default()
    }

    /// Tracing and metrics both on with default capacities.
    #[must_use]
    pub fn all() -> Self {
        ObsOptions {
            tracing: Some(TraceOptions::default()),
            metrics: true,
        }
    }

    /// Is any subsystem enabled?
    #[must_use]
    pub fn any(&self) -> bool {
        self.tracing.is_some() || self.metrics
    }
}

struct SinkInner {
    origin: Instant,
    pid: u32,
    tid: u64,
    name: String,
    capacity: usize,
    next_seq: u64,
    events: Vec<TraceEvent>,
    dropped: u64,
}

/// A per-run (or per-stage) span recorder. See the module docs for the
/// cost model; the `Option` box keeps the disabled case to one branch.
pub struct TraceSink(Option<Box<SinkInner>>);

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            None => f.write_str("TraceSink(disabled)"),
            Some(inner) => write!(
                f,
                "TraceSink({:?}, {} events)",
                inner.name,
                inner.events.len()
            ),
        }
    }
}

impl TraceSink {
    /// The no-op sink: every call is a branch on `None`.
    #[must_use]
    pub fn disabled() -> Self {
        TraceSink(None)
    }

    /// A recording sink. `origin` must be shared by every sink in one check
    /// invocation so tracks align on a common timeline.
    #[must_use]
    pub fn enabled(origin: Instant, pid: u32, tid: u64, name: String, capacity: usize) -> Self {
        TraceSink(Some(Box::new(SinkInner {
            origin,
            pid,
            tid,
            name,
            capacity: capacity.max(16),
            next_seq: 0,
            events: Vec::new(),
            dropped: 0,
        })))
    }

    /// Is this sink recording?
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Opens a span. Free when disabled.
    #[inline]
    pub fn open(&mut self, kind: SpanKind) -> SpanToken {
        match &mut self.0 {
            None => SpanToken(None),
            Some(inner) => {
                let start_us = inner.origin.elapsed().as_micros() as u64;
                let seq_open = inner.next_seq;
                inner.next_seq += 1;
                SpanToken(Some(OpenSpan {
                    kind,
                    start_us,
                    seq_open,
                }))
            }
        }
    }

    /// Closes a span with no attributes.
    #[inline]
    pub fn close(&mut self, token: SpanToken) {
        self.close_with(token, |_| {});
    }

    /// Closes a span, letting `fill` attach attributes. `fill` only runs
    /// when the sink recorded the open, so attribute construction is free
    /// in the disabled case.
    #[inline]
    pub fn close_with(
        &mut self,
        token: SpanToken,
        fill: impl FnOnce(&mut Vec<(&'static str, AttrValue)>),
    ) {
        let (Some(inner), Some(open)) = (&mut self.0, token.0) else {
            return;
        };
        let end_us = inner.origin.elapsed().as_micros() as u64;
        let seq_close = inner.next_seq;
        inner.next_seq += 1;
        let mut attrs = Vec::new();
        fill(&mut attrs);
        inner.push(TraceEvent {
            kind: open.kind,
            start_us: open.start_us,
            dur_us: end_us.saturating_sub(open.start_us),
            seq_open: open.seq_open,
            seq_close,
            instant: false,
            attrs,
        });
    }

    /// Records a zero-duration marker event.
    #[inline]
    pub fn instant(
        &mut self,
        kind: SpanKind,
        fill: impl FnOnce(&mut Vec<(&'static str, AttrValue)>),
    ) {
        let Some(inner) = &mut self.0 else { return };
        let start_us = inner.origin.elapsed().as_micros() as u64;
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let mut attrs = Vec::new();
        fill(&mut attrs);
        inner.push(TraceEvent {
            kind,
            start_us,
            dur_us: 0,
            seq_open: seq,
            seq_close: seq,
            instant: true,
            attrs,
        });
    }

    /// Consumes the sink, returning the recorded track (None when disabled).
    #[must_use]
    pub fn finish(self) -> Option<TrackLog> {
        self.0.map(|inner| TrackLog {
            pid: inner.pid,
            tid: inner.tid,
            name: inner.name,
            events: inner.events,
            dropped: inner.dropped,
        })
    }
}

impl SinkInner {
    fn push(&mut self, ev: TraceEvent) {
        if self.events.len() >= self.capacity {
            // Ring semantics: drop the oldest completed event. O(n) but only
            // on overflow, which the default capacity makes rare; the count
            // is surfaced so truncation is never silent.
            self.events.remove(0);
            self.dropped += 1;
        }
        self.events.push(ev);
    }
}

/// The assembled trace of one check invocation: all tracks, in
/// deterministic (run-index, stage) order.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    /// One entry per recorded track.
    pub tracks: Vec<TrackLog>,
}

impl TraceLog {
    /// Total events across tracks.
    #[must_use]
    pub fn event_count(&self) -> usize {
        self.tracks.iter().map(|t| t.events.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let mut sink = TraceSink::disabled();
        let t = sink.open(SpanKind::Run);
        sink.close_with(t, |_| panic!("attr closure must not run when disabled"));
        sink.instant(SpanKind::Verdict, |_| {
            panic!("attr closure must not run when disabled")
        });
        assert!(sink.finish().is_none());
    }

    #[test]
    fn nested_spans_are_well_formed() {
        let mut sink = TraceSink::enabled(Instant::now(), 0, 0, "t".into(), 1024);
        let run = sink.open(SpanKind::Run);
        for _ in 0..3 {
            let step = sink.open(SpanKind::Step);
            let atoms = sink.open(SpanKind::Atoms);
            sink.close(atoms);
            let auto = sink.open(SpanKind::AutomatonStep);
            sink.close_with(auto, |a| a.push(("state", AttrValue::U64(1))));
            sink.close(step);
        }
        sink.instant(SpanKind::Verdict, |a| {
            a.push(("value", AttrValue::Bool(true)))
        });
        sink.close(run);
        let track = sink.finish().expect("enabled");
        assert_eq!(track.events.len(), 11);
        assert_eq!(track.dropped, 0);
        track.check_well_formed().expect("well-formed");
    }

    #[test]
    fn overlapping_spans_are_rejected() {
        // Hand-build an overlap: [0,2] closes inside [1,3]'s span.
        let ev = |open: u64, close: u64| TraceEvent {
            kind: SpanKind::Step,
            start_us: open,
            dur_us: close - open,
            seq_open: open,
            seq_close: close,
            instant: false,
            attrs: Vec::new(),
        };
        let track = TrackLog {
            pid: 0,
            tid: 0,
            name: "t".into(),
            events: vec![ev(0, 2), ev(1, 3)],
            dropped: 0,
        };
        assert!(track.check_well_formed().is_err());
    }

    #[test]
    fn ring_overflow_counts_drops() {
        let mut sink = TraceSink::enabled(Instant::now(), 0, 0, "t".into(), 0);
        for _ in 0..20 {
            let t = sink.open(SpanKind::Step);
            sink.close(t);
        }
        let track = sink.finish().expect("enabled");
        assert_eq!(track.events.len(), 16); // capacity clamped to 16
        assert_eq!(track.dropped, 4);
    }
}
