//! Trace exporters: chrome://tracing JSON and a human-readable timeline.
//!
//! The chrome exporter emits the [Trace Event Format]'s JSON array form:
//! one `"X"` (complete) event per recorded span with `ts`/`dur` in
//! microseconds, one `"i"` (instant) event per marker, plus `"M"` metadata
//! events naming each process and thread so the driver/evaluator stages and
//! multiplexed sessions appear as labelled swim lanes.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::trace::{AttrValue, TraceLog};

/// Escapes a string for embedding in a JSON string literal (same dialect as
/// the bench harness's hand-rolled writer).
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn write_attrs(out: &mut String, attrs: &[(&'static str, AttrValue)]) {
    out.push('{');
    for (i, (key, value)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":", json_escape(key));
        match value {
            AttrValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            AttrValue::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            AttrValue::Str(v) => {
                let _ = write!(out, "\"{}\"", json_escape(v));
            }
            AttrValue::Bool(v) => {
                let _ = write!(out, "{v}");
            }
        }
    }
    out.push('}');
}

/// Renders the trace in chrome://tracing's JSON array format. Load the
/// output in `chrome://tracing` or <https://ui.perfetto.dev>.
#[must_use]
pub fn chrome_trace_json(log: &TraceLog) -> String {
    let mut out = String::new();
    out.push_str("[\n");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push_str(",\n");
        }
    };
    // Metadata: name each process and thread. Sort indices keep swim lanes
    // in (run, stage) order regardless of close-order interleaving.
    let pids: BTreeSet<u32> = log.tracks.iter().map(|t| t.pid).collect();
    for pid in pids {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
             \"args\":{{\"name\":\"quickstrom pid {pid}\"}}}}"
        );
    }
    for track in &log.tracks {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":{},\"tid\":{},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            track.pid,
            track.tid,
            json_escape(&track.name)
        );
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":{},\"tid\":{},\"name\":\"thread_sort_index\",\
             \"args\":{{\"sort_index\":{}}}}}",
            track.pid, track.tid, track.tid
        );
    }
    for track in &log.tracks {
        for ev in &track.events {
            sep(&mut out);
            if ev.instant {
                let _ = write!(
                    out,
                    "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{},\"tid\":{},\"ts\":{},\"name\":\"{}\",\"args\":",
                    track.pid,
                    track.tid,
                    ev.start_us,
                    ev.kind.as_str()
                );
            } else {
                let _ = write!(
                    out,
                    "{{\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{},\"name\":\"{}\",\"args\":",
                    track.pid,
                    track.tid,
                    ev.start_us,
                    ev.dur_us,
                    ev.kind.as_str()
                );
            }
            write_attrs(&mut out, &ev.attrs);
            out.push('}');
        }
    }
    out.push_str("\n]\n");
    out
}

/// Renders a compact human-readable timeline: one section per track, one
/// line per event, indented by logical nesting depth.
#[must_use]
pub fn render_timeline(log: &TraceLog) -> String {
    let mut out = String::new();
    for track in &log.tracks {
        let _ = writeln!(
            out,
            "== {} (pid {}, tid {})",
            track.name, track.pid, track.tid
        );
        if track.dropped > 0 {
            let _ = writeln!(out, "   ({} earlier events dropped)", track.dropped);
        }
        // Events are stored in close order; re-derive nesting depth from the
        // logical clock the same way check_well_formed does.
        let mut ordered: Vec<&crate::trace::TraceEvent> = track.events.iter().collect();
        ordered.sort_by_key(|e| e.seq_open);
        let mut stack: Vec<u64> = Vec::new();
        for ev in ordered {
            while let Some(&close) = stack.last() {
                if close < ev.seq_open {
                    stack.pop();
                } else {
                    break;
                }
            }
            let indent = "  ".repeat(stack.len());
            if ev.instant {
                let _ = writeln!(
                    out,
                    "  {indent}@{:>9}µs  · {}{}",
                    ev.start_us,
                    ev.kind.as_str(),
                    render_attrs(&ev.attrs)
                );
            } else {
                let _ = writeln!(
                    out,
                    "  {indent}@{:>9}µs  {:>9}µs  {}{}",
                    ev.start_us,
                    ev.dur_us,
                    ev.kind.as_str(),
                    render_attrs(&ev.attrs)
                );
                stack.push(ev.seq_close);
            }
        }
    }
    out
}

fn render_attrs(attrs: &[(&'static str, AttrValue)]) -> String {
    if attrs.is_empty() {
        return String::new();
    }
    let mut out = String::from("  [");
    for (i, (key, value)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match value {
            AttrValue::U64(v) => {
                let _ = write!(out, "{key}={v}");
            }
            AttrValue::F64(v) => {
                let _ = write!(out, "{key}={v:.6}");
            }
            AttrValue::Str(v) => {
                let _ = write!(out, "{key}={v}");
            }
            AttrValue::Bool(v) => {
                let _ = write!(out, "{key}={v}");
            }
        }
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{SpanKind, TraceSink};
    use std::time::Instant;

    fn sample_log() -> TraceLog {
        let origin = Instant::now();
        let mut driver = TraceSink::enabled(origin, 1, 0, "run 0 · driver".into(), 256);
        let send = driver.open(SpanKind::Send);
        driver.close_with(send, |a| a.push(("bytes", AttrValue::U64(120))));
        let mut eval = TraceSink::enabled(origin, 1, 1, "run 0 · evaluator".into(), 256);
        let step = eval.open(SpanKind::Step);
        eval.close(step);
        eval.instant(SpanKind::Verdict, |a| {
            a.push(("value", AttrValue::Bool(false)));
            a.push(("note", AttrValue::Str("quote\"me".into())));
        });
        TraceLog {
            tracks: vec![driver.finish().unwrap(), eval.finish().unwrap()],
        }
    }

    #[test]
    fn chrome_json_is_balanced_and_named() {
        let json = chrome_trace_json(&sample_log());
        // Cheap structural validation without a JSON parser: balanced
        // brackets outside strings and the expected metadata present.
        let mut depth = 0i64;
        let mut in_str = false;
        let mut escaped = false;
        for c in json.chars() {
            if escaped {
                escaped = false;
                continue;
            }
            match c {
                '\\' if in_str => escaped = true,
                '"' => in_str = !in_str,
                '[' | '{' if !in_str => depth += 1,
                ']' | '}' if !in_str => depth -= 1,
                _ => {}
            }
        }
        assert_eq!(depth, 0, "unbalanced JSON");
        assert!(!in_str);
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("run 0 · evaluator"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("quote\\\"me"));
    }

    #[test]
    fn timeline_mentions_all_tracks() {
        let text = render_timeline(&sample_log());
        assert!(text.contains("== run 0 · driver"));
        assert!(text.contains("== run 0 · evaluator"));
        assert!(text.contains("verdict"));
        assert!(text.contains("value=false"));
    }

    #[test]
    fn escape_handles_controls() {
        assert_eq!(json_escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }
}
