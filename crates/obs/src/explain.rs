//! Explainable failure reports.
//!
//! A [`FailureExplanation`] is the machine-readable account of *why* a
//! property failed: the path the residual formula (equivalently, the
//! automaton state) took over the final — already shrunk — trace, which
//! atom valuations flipped at each transition (with the DOM selectors each
//! atom reads, from the spec's footprint analysis), and the step at which
//! the residual collapsed to `False`.
//!
//! This module holds only the data model and its renderings. The checker
//! crate builds explanations by replaying the counterexample trace through
//! a fresh formula stepper (`quickstrom_checker::explain`); keeping the
//! construction there avoids a dependency cycle and keeps this crate
//! dependency-free.
//!
//! Everything here is **logical**: step indices, state ids, atom texts.
//! No wall-clock values appear, so explanations are bit-reproducible
//! across machines, jobs settings, and pipelining modes.

use std::fmt;
use std::fmt::Write as _;

use crate::export::json_escape;

/// One atom whose valuation changed at a transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomFlip {
    /// The atom's pretty-printed source form.
    pub atom: String,
    /// Valuation in the previous state (`None` when the atom was not
    /// requested there, or did not reduce to a boolean).
    pub before: Option<bool>,
    /// Valuation in this state.
    pub after: Option<bool>,
    /// The DOM selectors the atom's footprint reads, in deterministic
    /// order.
    pub selectors: Vec<String>,
}

/// One transition of the failing run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepExplanation {
    /// Zero-based index of the observed state.
    pub step: usize,
    /// The actions recorded as having happened entering this state.
    pub happened: Vec<String>,
    /// Residual-state id before ingesting this state (index into
    /// [`FailureExplanation::states`]).
    pub from_state: usize,
    /// Residual-state id after ingesting this state.
    pub to_state: usize,
    /// Atoms whose valuations changed versus the previous state.
    pub flips: Vec<AtomFlip>,
    /// The stepper's outcome label for this transition:
    /// `"continue"`, `"presumably true"`, `"presumably false"`,
    /// `"definitely true"`, or `"definitely false"`.
    pub outcome: String,
}

/// The full explanation artifact for one failing (or forced) property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureExplanation {
    /// The property name (`check`ed formula) this explains.
    pub property: String,
    /// The final verdict being explained (`false` for genuine failures).
    pub verdict: bool,
    /// Was the verdict forced at trace end from a presumptive residual?
    pub forced: bool,
    /// Was the explained trace produced by shrinking?
    pub shrunk: bool,
    /// The step index where the residual became definitively `False`
    /// (`None` for forced verdicts, which never collapse).
    pub failed_at_step: Option<usize>,
    /// Interned residual pretty-prints; `StepExplanation::{from,to}_state`
    /// index into this table. State 0 is the initial formula.
    pub states: Vec<String>,
    /// One entry per observed state of the trace.
    pub steps: Vec<StepExplanation>,
}

impl FailureExplanation {
    /// The atoms that flipped on the failing transition itself (empty for
    /// forced verdicts).
    #[must_use]
    pub fn failing_flips(&self) -> &[AtomFlip] {
        match self.failed_at_step {
            Some(step) => self
                .steps
                .iter()
                .find(|s| s.step == step)
                .map(|s| s.flips.as_slice())
                .unwrap_or(&[]),
            None => &[],
        }
    }

    /// Renders the explanation as a JSON document (hand-rolled, matching
    /// the dialect of the bench harness's writers).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"property\": \"{}\",", json_escape(&self.property));
        let _ = writeln!(out, "  \"verdict\": {},", self.verdict);
        let _ = writeln!(out, "  \"forced\": {},", self.forced);
        let _ = writeln!(out, "  \"shrunk\": {},", self.shrunk);
        match self.failed_at_step {
            Some(step) => {
                let _ = writeln!(out, "  \"failed_at_step\": {step},");
            }
            None => {
                let _ = writeln!(out, "  \"failed_at_step\": null,");
            }
        }
        out.push_str("  \"states\": [\n");
        for (i, state) in self.states.iter().enumerate() {
            let comma = if i + 1 < self.states.len() { "," } else { "" };
            let _ = writeln!(out, "    \"{}\"{comma}", json_escape(state));
        }
        out.push_str("  ],\n");
        out.push_str("  \"steps\": [\n");
        for (i, step) in self.steps.iter().enumerate() {
            out.push_str("    {");
            let _ = write!(out, "\"step\": {}, ", step.step);
            out.push_str("\"happened\": [");
            for (j, a) in step.happened.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{}\"", json_escape(a));
            }
            out.push_str("], ");
            let _ = write!(
                out,
                "\"from_state\": {}, \"to_state\": {}, \"outcome\": \"{}\", ",
                step.from_state,
                step.to_state,
                json_escape(&step.outcome)
            );
            out.push_str("\"flips\": [");
            for (j, flip) in step.flips.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{{\"atom\": \"{}\", ", json_escape(&flip.atom));
                let fmt_val = |v: Option<bool>| match v {
                    Some(true) => "true",
                    Some(false) => "false",
                    None => "null",
                };
                let _ = write!(
                    out,
                    "\"before\": {}, \"after\": {}, ",
                    fmt_val(flip.before),
                    fmt_val(flip.after)
                );
                out.push_str("\"selectors\": [");
                for (k, sel) in flip.selectors.iter().enumerate() {
                    if k > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "\"{}\"", json_escape(sel));
                }
                out.push_str("]}");
            }
            out.push_str("]}");
            out.push_str(if i + 1 < self.steps.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// The terminal rendering: a readable per-step account, flips annotated
/// with their selectors, and the failing transition called out.
impl fmt::Display for FailureExplanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "property `{}` {}{}",
            self.property,
            if self.verdict { "passed" } else { "failed" },
            if self.forced {
                " (verdict forced at trace end)"
            } else {
                ""
            }
        )?;
        if self.shrunk {
            writeln!(f, "  (trace shown after shrinking)")?;
        }
        for step in &self.steps {
            let marker = if Some(step.step) == self.failed_at_step {
                " ✗"
            } else {
                ""
            };
            let happened = if step.happened.is_empty() {
                "(initial state)".to_string()
            } else {
                step.happened.join(", ")
            };
            writeln!(
                f,
                "  step {:>3}{marker}: {happened} — state {} → {} [{}]",
                step.step, step.from_state, step.to_state, step.outcome
            )?;
            for flip in &step.flips {
                let render = |v: Option<bool>| match v {
                    Some(true) => "true",
                    Some(false) => "false",
                    None => "?",
                };
                write!(
                    f,
                    "      {} : {} → {}",
                    flip.atom,
                    render(flip.before),
                    render(flip.after)
                )?;
                if flip.selectors.is_empty() {
                    writeln!(f)?;
                } else {
                    writeln!(f, "   (reads {})", flip.selectors.join(", "))?;
                }
            }
        }
        match self.failed_at_step {
            Some(step) => writeln!(f, "  residual collapsed to False at step {step}"),
            None => writeln!(f, "  no collapsing step (presumptive residual forced)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FailureExplanation {
        FailureExplanation {
            property: "safety".into(),
            verdict: false,
            forced: false,
            shrunk: true,
            failed_at_step: Some(1),
            states: vec!["always p".into(), "false".into()],
            steps: vec![
                StepExplanation {
                    step: 0,
                    happened: vec!["loaded?".into()],
                    from_state: 0,
                    to_state: 0,
                    flips: vec![],
                    outcome: "continue".into(),
                },
                StepExplanation {
                    step: 1,
                    happened: vec!["addNew!".into()],
                    from_state: 0,
                    to_state: 1,
                    flips: vec![AtomFlip {
                        atom: "`.toggle`.count == numItems".into(),
                        before: Some(true),
                        after: Some(false),
                        selectors: vec![".toggle".into(), ".todo-list li".into()],
                    }],
                    outcome: "definitely false".into(),
                },
            ],
        }
    }

    #[test]
    fn failing_flips_come_from_the_failing_step() {
        let ex = sample();
        let flips = ex.failing_flips();
        assert_eq!(flips.len(), 1);
        assert_eq!(flips[0].after, Some(false));
    }

    #[test]
    fn json_contains_the_flip_and_is_balanced() {
        let json = sample().to_json();
        assert!(json.contains("\"failed_at_step\": 1"));
        assert!(json.contains("`.toggle`.count == numItems"));
        assert!(json.contains("\".toggle\""));
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn display_marks_the_failing_step() {
        let text = sample().to_string();
        assert!(text.contains("step   1 ✗"));
        assert!(text.contains("reads .toggle"));
        assert!(text.contains("collapsed to False at step 1"));
    }
}
