//! Structured observability for the Quickstrom stack.
//!
//! This crate is the reproduction's answer to "why did that run do what it
//! did?" — three hand-rolled subsystems, dependency-free in the style of
//! `quickstrom_protocol::wire`:
//!
//! - [`trace`]: per-worker span sinks. A [`TraceSink`] is either a no-op
//!   (one branch per call, no clock reads, no allocation) or a ring-buffered
//!   recorder of open/close span pairs stamped with both wall-clock
//!   microseconds and a monotone logical sequence. Tracks map onto
//!   chrome://tracing threads so the pipelined runtime's driver and
//!   evaluator stages, and every multiplexed session, render as separate
//!   swim lanes.
//! - [`metrics`]: a named-counter + fixed-bucket-histogram registry with a
//!   deterministic merge, quantile estimation, and Prometheus text
//!   exposition. Per-run [`MetricsRecorder`]s are merged in run-index order
//!   so aggregate metrics are reproducible across `--jobs` settings.
//! - [`explain`]: the [`FailureExplanation`] artifact — a purely logical
//!   (no wall-clock) account of a failing run: the automaton state path
//!   over the final shrunk trace, the atoms whose valuations flipped at
//!   each transition together with their footprint selectors, and the step
//!   where the residual collapsed to `False`.
//!
//! Determinism contract: nothing in this crate influences checker control
//! flow. Enabling tracing or metrics may only add observations on the
//! side; `Report`s must stay bit-identical with observability on or off
//! (pinned by the `differential_obs` suite in the bench crate).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explain;
pub mod export;
pub mod metrics;
pub mod trace;

pub use explain::{AtomFlip, FailureExplanation, StepExplanation};
pub use export::{chrome_trace_json, render_timeline};
pub use metrics::{Histogram, MetricsRecorder, MetricsRegistry};
pub use trace::{
    AttrValue, ObsOptions, SpanKind, SpanToken, TraceEvent, TraceLog, TraceOptions, TraceSink,
    TrackLog,
};
