//! Property-based tests for the webdom substrate: the selector engine
//! against a naive reference matcher over generated documents, and the
//! virtual clock's ordering laws.

use proptest::prelude::*;
use webdom::{Document, El, SelectorExpr, VirtualClock};

// ---------------------------------------------------------------- selectors

const TAGS: &[&str] = &["div", "span", "li", "ul", "input", "button", "label"];
const CLASSES: &[&str] = &["toggle", "completed", "editing", "view", "main"];
const IDS: &[&str] = &["app", "list", "new", "count"];

#[derive(Debug, Clone)]
struct GenEl {
    tag: &'static str,
    id: Option<&'static str>,
    classes: Vec<&'static str>,
    checked: bool,
    disabled: bool,
    hidden: bool,
    children: Vec<GenEl>,
}

fn gen_el(depth: u32) -> BoxedStrategy<GenEl> {
    let leaf = (
        prop::sample::select(TAGS),
        prop::option::of(prop::sample::select(IDS)),
        prop::collection::vec(prop::sample::select(CLASSES), 0..3),
        any::<bool>(),
        any::<bool>(),
        prop::bool::weighted(0.15),
    )
        .prop_map(|(tag, id, classes, checked, disabled, hidden)| GenEl {
            tag,
            id,
            classes,
            checked,
            disabled,
            hidden,
            children: Vec::new(),
        });
    leaf.prop_recursive(depth, 24, 3, |inner| {
        (
            prop::sample::select(TAGS),
            prop::option::of(prop::sample::select(IDS)),
            prop::collection::vec(prop::sample::select(CLASSES), 0..3),
            any::<bool>(),
            prop::bool::weighted(0.15),
            prop::collection::vec(inner, 0..3),
        )
            .prop_map(|(tag, id, classes, checked, hidden, children)| GenEl {
                tag,
                id,
                classes,
                checked,
                disabled: false,
                hidden,
                children,
            })
    })
    .boxed()
}

fn build(g: &GenEl) -> El {
    let mut el = El::new(g.tag)
        .checked(g.checked)
        .disabled(g.disabled)
        .hidden_if(g.hidden);
    if let Some(id) = g.id {
        el = el.id(id);
    }
    for c in &g.classes {
        el = el.class(*c);
    }
    for child in &g.children {
        el = el.child(build(child));
    }
    el
}

/// A naive reference matcher for single compound selectors.
fn naive_matches(doc: &Document, id: webdom::NodeId, sel: &str) -> bool {
    // Supports the compound subset: tag, #id, .class, :checked, :disabled.
    let mut rest = sel;
    // Optional leading tag.
    let tag_end = rest.find(['#', '.', ':']).unwrap_or(rest.len());
    let tag = &rest[..tag_end];
    if !tag.is_empty() && doc.tag(id) != tag {
        return false;
    }
    rest = &rest[tag_end..];
    while !rest.is_empty() {
        let (kind, tail) = rest.split_at(1);
        let end = tail.find(['#', '.', ':']).unwrap_or(tail.len());
        let (word, next) = tail.split_at(end);
        let ok = match kind {
            "#" => doc.id_attr(id) == Some(word),
            "." => doc.classes(id).iter().any(|c| c == word),
            ":" => match word {
                "checked" => doc.checked(id),
                "disabled" => !doc.enabled(id),
                _ => unreachable!("generator only emits checked/disabled"),
            },
            _ => unreachable!("split_at(1)"),
        };
        if !ok {
            return false;
        }
        rest = next;
    }
    true
}

fn compound_selector() -> impl Strategy<Value = String> {
    (
        prop::option::of(prop::sample::select(TAGS)),
        prop::option::of(prop::sample::select(IDS)),
        prop::collection::vec(prop::sample::select(CLASSES), 0..2),
        prop::option::of(prop::sample::select(&[":checked", ":disabled"][..])),
    )
        .prop_filter_map("nonempty selector", |(tag, id, classes, pseudo)| {
            let mut s = String::new();
            if let Some(t) = tag {
                s.push_str(t);
            }
            if let Some(i) = id {
                s.push('#');
                s.push_str(i);
            }
            for c in classes {
                s.push('.');
                s.push_str(c);
            }
            if let Some(p) = pseudo {
                s.push_str(p);
            }
            if s.is_empty() {
                None
            } else {
                Some(s)
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The selector engine agrees with the naive matcher on compound
    /// selectors over arbitrary documents.
    #[test]
    fn engine_matches_naive_reference(root in gen_el(3), sel in compound_selector()) {
        let doc = Document::render(build(&root));
        let expr = SelectorExpr::parse(&sel).unwrap();
        let engine: Vec<_> = doc.select(&expr);
        let naive: Vec<_> = doc.iter().filter(|&n| naive_matches(&doc, n, &sel)).collect();
        prop_assert_eq!(engine, naive, "selector {}", sel);
    }

    /// Descendant-combinator results are a subset of the rightmost
    /// compound's matches, and every result has a matching ancestor.
    #[test]
    fn descendant_combinator_is_sound(root in gen_el(3)) {
        let doc = Document::render(build(&root));
        let expr = SelectorExpr::parse("div li").unwrap();
        for id in doc.select(&expr) {
            prop_assert_eq!(doc.tag(id), "li");
            let mut cur = doc.parent(id);
            let mut found = false;
            while let Some(p) = cur {
                if doc.tag(p) == "div" {
                    found = true;
                    break;
                }
                cur = doc.parent(p);
            }
            prop_assert!(found, "li without div ancestor matched");
        }
    }

    /// Child combinator implies the parent matches directly.
    #[test]
    fn child_combinator_is_sound(root in gen_el(3)) {
        let doc = Document::render(build(&root));
        let expr = SelectorExpr::parse("ul > li").unwrap();
        for id in doc.select(&expr) {
            let parent = doc.parent(id).expect("child match has a parent");
            prop_assert_eq!(doc.tag(parent), "ul");
        }
    }

    /// Effective visibility is monotone: a visible node's ancestors are
    /// all visible.
    #[test]
    fn visibility_is_monotone(root in gen_el(3)) {
        let doc = Document::render(build(&root));
        for id in doc.iter() {
            if doc.visible(id) {
                let mut cur = doc.parent(id);
                while let Some(p) = cur {
                    prop_assert!(doc.visible(p));
                    cur = doc.parent(p);
                }
            }
        }
    }

    /// Selector lists are unions: `a, b` matches exactly the union of the
    /// individual matches, in document order.
    #[test]
    fn selector_lists_are_unions(root in gen_el(3)) {
        let doc = Document::render(build(&root));
        let both = doc.query_all("li, span").unwrap();
        let mut expected: Vec<_> = doc
            .iter()
            .filter(|&n| doc.tag(n) == "li" || doc.tag(n) == "span")
            .collect();
        expected.sort();
        prop_assert_eq!(both, expected);
    }
}

// -------------------------------------------------------------------- clock

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Timers fire in due-time order, never early, never after
    /// cancellation; `now` is monotone.
    #[test]
    fn clock_ordering_laws(delays in prop::collection::vec(0u64..500, 1..12)) {
        let mut clock = VirtualClock::new();
        for (i, &d) in delays.iter().enumerate() {
            clock.set_timeout(format!("t{i}"), d);
        }
        let fired = clock.advance(1000);
        // All fire (1000 ≥ every delay), in non-decreasing due order.
        prop_assert_eq!(fired.len(), delays.len());
        let mut dues: Vec<u64> = Vec::new();
        for (_, tag) in &fired {
            let idx: usize = tag[1..].parse().unwrap();
            dues.push(delays[idx]);
        }
        let mut sorted = dues.clone();
        sorted.sort_unstable();
        prop_assert_eq!(dues, sorted, "firing order follows due times");
        prop_assert_eq!(clock.now_ms(), 1000);
    }

    /// Splitting an advance never changes what fires.
    #[test]
    fn advance_is_divisible(
        delays in prop::collection::vec(1u64..300, 1..8),
        split in 1u64..299,
    ) {
        let mut one = VirtualClock::new();
        let mut two = VirtualClock::new();
        for (i, &d) in delays.iter().enumerate() {
            one.set_timeout(format!("t{i}"), d);
            two.set_timeout(format!("t{i}"), d);
        }
        let all_at_once: Vec<_> = one.advance(300).into_iter().map(|(_, t)| t).collect();
        let mut stepped: Vec<_> = two.advance(split).into_iter().map(|(_, t)| t).collect();
        stepped.extend(two.advance(300 - split).into_iter().map(|(_, t)| t));
        prop_assert_eq!(all_at_once, stepped);
        prop_assert_eq!(one.now_ms(), two.now_ms());
    }

    /// Intervals fire floor(elapsed/period) times.
    #[test]
    fn interval_count(period in 1u64..50, elapsed in 0u64..500) {
        let mut clock = VirtualClock::new();
        clock.set_interval("i", period);
        let fired = clock.advance(elapsed);
        prop_assert_eq!(fired.len() as u64, elapsed / period);
    }
}
