//! The Model-View-Update application interface.
//!
//! Applications under test implement [`App`]: a pure view over an internal
//! model, plus update functions for user events and timers. The paper
//! observes (§5.2) that MVU's `display : M → V` / `update : M × A → M`
//! decomposition matches Quickstrom's state-and-action worldview exactly —
//! which is why this substrate can stand in for a browser.

use crate::clock::VirtualClock;
use crate::dom::El;
use crate::storage::LocalStorage;

/// The payload accompanying a dispatched event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// No payload (clicks, focus).
    None,
    /// The new text value (input events).
    Text(String),
    /// The pressed key name: `"Enter"`, `"Escape"`, or a character.
    Key(String),
}

impl Payload {
    /// The text payload, or empty.
    #[must_use]
    pub fn text(&self) -> &str {
        match self {
            Payload::Text(t) => t,
            _ => "",
        }
    }

    /// The key payload, or empty.
    #[must_use]
    pub fn key(&self) -> &str {
        match self {
            Payload::Key(k) => k,
            _ => "",
        }
    }
}

/// The effect context handed to app update functions: scheduling timers and
/// touching persistent storage.
#[derive(Debug)]
pub struct AppCtx<'a> {
    /// The virtual clock for scheduling asynchronous work.
    pub clock: &'a mut VirtualClock,
    /// Persistent storage surviving reloads.
    pub storage: &'a mut LocalStorage,
}

/// A Model-View-Update application under test.
///
/// The executor drives the app: [`App::start`] on page load, a fresh
/// [`App::view`] after every change, [`App::on_event`] for user
/// interactions (the message comes from the handler annotations in the
/// view), and [`App::on_timer`] when a scheduled timer fires.
pub trait App {
    /// Called once when the page loads (and again after a `reload!`, with
    /// storage preserved).
    fn start(&mut self, ctx: &mut AppCtx<'_>);

    /// Renders the current model. Must be pure.
    fn view(&self) -> El;

    /// Handles a user event routed to handler message `msg`.
    fn on_event(&mut self, msg: &str, payload: &Payload, ctx: &mut AppCtx<'_>);

    /// Handles a fired timer with the given tag.
    fn on_timer(&mut self, tag: &str, ctx: &mut AppCtx<'_>);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::{Document, EventKind};

    /// A minimal counter app exercising the full trait surface.
    #[derive(Default)]
    struct Counter {
        count: i64,
        ticks: u64,
    }

    impl App for Counter {
        fn start(&mut self, ctx: &mut AppCtx<'_>) {
            if let Some(saved) = ctx.storage.get("count") {
                self.count = saved.parse().unwrap_or(0);
            }
            ctx.clock.set_interval("tick", 1000);
        }

        fn view(&self) -> El {
            El::new("div").id("app").children([
                El::new("span").id("count").text(self.count.to_string()),
                El::new("button")
                    .id("inc")
                    .text("+")
                    .on(EventKind::Click, "inc"),
            ])
        }

        fn on_event(&mut self, msg: &str, _payload: &Payload, ctx: &mut AppCtx<'_>) {
            if msg == "inc" {
                self.count += 1;
                ctx.storage.set("count", self.count.to_string());
            }
        }

        fn on_timer(&mut self, tag: &str, _ctx: &mut AppCtx<'_>) {
            if tag == "tick" {
                self.ticks += 1;
            }
        }
    }

    #[test]
    fn counter_round_trip() {
        let mut clock = VirtualClock::new();
        let mut storage = LocalStorage::new();
        storage.set("count", "41");
        let mut app = Counter::default();
        {
            let mut ctx = AppCtx {
                clock: &mut clock,
                storage: &mut storage,
            };
            app.start(&mut ctx);
        }
        assert_eq!(app.count, 41);

        let doc = Document::render(app.view());
        let button = doc.query_all("#inc").unwrap()[0];
        let msg = doc.handler(button, EventKind::Click).unwrap().to_owned();
        {
            let mut ctx = AppCtx {
                clock: &mut clock,
                storage: &mut storage,
            };
            app.on_event(&msg, &Payload::None, &mut ctx);
        }
        assert_eq!(app.count, 42);
        assert_eq!(storage.get("count"), Some("42"));

        for (_, tag) in clock.advance(2500) {
            let mut ctx = AppCtx {
                clock: &mut clock,
                storage: &mut storage,
            };
            app.on_timer(&tag, &mut ctx);
        }
        // Borrow note: timers were collected before the ctx borrow.
        assert_eq!(app.ticks, 2);
    }

    #[test]
    fn payload_projections() {
        assert_eq!(Payload::Text("abc".into()).text(), "abc");
        assert_eq!(Payload::Text("abc".into()).key(), "");
        assert_eq!(Payload::Key("Enter".into()).key(), "Enter");
        assert_eq!(Payload::None.text(), "");
    }
}
