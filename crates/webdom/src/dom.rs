//! Element trees: the builder DSL ([`El`]) and the rendered [`Document`].
//!
//! Views are constructed as plain [`El`] trees (MVU style) and then
//! rendered into a [`Document`] — an arena with parent links, which is what
//! the selector engine and the event dispatcher operate on.

use crate::selector::{ParseSelectorError, SelectorExpr};
use quickstrom_protocol::{ElementState, Symbol};
use std::collections::BTreeMap;
use std::fmt;

/// The kinds of synthetic user events an element can handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// A single click.
    Click,
    /// A double click.
    DblClick,
    /// Text input (the new value is the payload).
    Input,
    /// A key press (the key name is the payload).
    KeyDown,
    /// The element gained focus.
    Focus,
    /// The element lost focus.
    Blur,
}

/// A view-tree element under construction — the MVU view vocabulary.
///
/// `El` is a consuming builder: methods take and return `self` so views
/// read declaratively.
///
/// # Examples
///
/// ```
/// use webdom::{El, EventKind};
/// let item = El::new("li")
///     .class_if(true, "completed")
///     .child(El::new("label").text("buy milk"))
///     .on(EventKind::DblClick, "edit:3");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct El {
    pub(crate) tag: String,
    pub(crate) id: Option<String>,
    pub(crate) classes: Vec<String>,
    pub(crate) attributes: BTreeMap<Symbol, String>,
    pub(crate) text: String,
    pub(crate) value: String,
    pub(crate) checked: bool,
    pub(crate) disabled: bool,
    pub(crate) visible: bool,
    pub(crate) focused: bool,
    pub(crate) handlers: BTreeMap<EventKind, String>,
    pub(crate) children: Vec<El>,
}

impl El {
    /// A fresh, visible, enabled element with the given tag.
    pub fn new(tag: impl Into<String>) -> Self {
        El {
            tag: tag.into(),
            id: None,
            classes: Vec::new(),
            attributes: BTreeMap::new(),
            text: String::new(),
            value: String::new(),
            checked: false,
            disabled: false,
            visible: true,
            focused: false,
            handlers: BTreeMap::new(),
            children: Vec::new(),
        }
    }

    /// Sets the element id (`#id` in selectors).
    #[must_use]
    pub fn id(mut self, id: impl Into<String>) -> Self {
        self.id = Some(id.into());
        self
    }

    /// Adds a CSS class.
    #[must_use]
    pub fn class(mut self, class: impl Into<String>) -> Self {
        self.classes.push(class.into());
        self
    }

    /// Adds a CSS class only when `cond` holds.
    #[must_use]
    pub fn class_if(self, cond: bool, class: impl Into<String>) -> Self {
        if cond {
            self.class(class)
        } else {
            self
        }
    }

    /// Sets an attribute (`[k=v]` in selectors). The key is interned, so
    /// snapshot projection downstream copies a `u32` instead of a string.
    #[must_use]
    pub fn attr(mut self, key: impl AsRef<str>, value: impl Into<String>) -> Self {
        self.attributes
            .insert(Symbol::intern(key.as_ref()), value.into());
        self
    }

    /// Sets the element's own text content.
    #[must_use]
    pub fn text(mut self, text: impl Into<String>) -> Self {
        self.text = text.into();
        self
    }

    /// Sets the form value (inputs).
    #[must_use]
    pub fn value(mut self, value: impl Into<String>) -> Self {
        self.value = value.into();
        self
    }

    /// Sets checkedness (checkboxes; `:checked` in selectors).
    #[must_use]
    pub fn checked(mut self, checked: bool) -> Self {
        self.checked = checked;
        self
    }

    /// Disables the element (`:disabled`).
    #[must_use]
    pub fn disabled(mut self, disabled: bool) -> Self {
        self.disabled = disabled;
        self
    }

    /// Hides the element (and its subtree) when `hidden` holds.
    #[must_use]
    pub fn hidden_if(mut self, hidden: bool) -> Self {
        self.visible = !hidden;
        self
    }

    /// Marks the element as holding keyboard focus (`:focus`).
    #[must_use]
    pub fn focused(mut self, focused: bool) -> Self {
        self.focused = focused;
        self
    }

    /// Attaches a handler: when `kind` is dispatched to this element (or
    /// bubbles up to it), the app receives `msg`.
    #[must_use]
    pub fn on(mut self, kind: EventKind, msg: impl Into<String>) -> Self {
        self.handlers.insert(kind, msg.into());
        self
    }

    /// Appends a child element.
    #[must_use]
    pub fn child(mut self, child: El) -> Self {
        self.children.push(child);
        self
    }

    /// Appends a child only when `cond` holds.
    #[must_use]
    pub fn child_if(self, cond: bool, child: El) -> Self {
        if cond {
            self.child(child)
        } else {
            self
        }
    }

    /// Appends many children.
    #[must_use]
    pub fn children(mut self, children: impl IntoIterator<Item = El>) -> Self {
        self.children.extend(children);
        self
    }
}

/// A handle to a node inside a [`Document`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(usize);

#[derive(Debug, Clone)]
struct Node {
    el: El,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
}

/// A rendered element tree with parent links, queryable by CSS selectors.
///
/// Documents are immutable once rendered; MVU apps produce a fresh one per
/// state.
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<Node>,
    root: NodeId,
}

impl Document {
    /// Renders an [`El`] tree into a document.
    #[must_use]
    pub fn render(root: El) -> Self {
        let mut doc = Document {
            nodes: Vec::new(),
            root: NodeId(0),
        };
        let root_id = doc.insert(root, None);
        doc.root = root_id;
        doc
    }

    fn insert(&mut self, mut el: El, parent: Option<NodeId>) -> NodeId {
        let children = std::mem::take(&mut el.children);
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            el,
            parent,
            children: Vec::new(),
        });
        let child_ids: Vec<NodeId> = children
            .into_iter()
            .map(|c| self.insert(c, Some(id)))
            .collect();
        self.nodes[id.0].children = child_ids;
        id
    }

    /// The root node.
    #[must_use]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The number of nodes in the document.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the document has no nodes (never the case after
    /// rendering — kept for the conventional `len`/`is_empty` pair).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// The tag name of a node.
    #[must_use]
    pub fn tag(&self, id: NodeId) -> &str {
        &self.node(id).el.tag
    }

    /// The id attribute of a node.
    #[must_use]
    pub fn id_attr(&self, id: NodeId) -> Option<&str> {
        self.node(id).el.id.as_deref()
    }

    /// The classes of a node.
    #[must_use]
    pub fn classes(&self, id: NodeId) -> &[String] {
        &self.node(id).el.classes
    }

    /// An attribute value. Looks the key up without interning it, so
    /// probing for attributes that exist nowhere stays allocation-free.
    #[must_use]
    pub fn attribute(&self, id: NodeId, key: &str) -> Option<&str> {
        let sym = Symbol::lookup(key)?;
        self.node(id).el.attributes.get(&sym).map(String::as_str)
    }

    /// All attributes of a node, keyed by interned attribute name.
    #[must_use]
    pub fn attributes(&self, id: NodeId) -> &BTreeMap<Symbol, String> {
        &self.node(id).el.attributes
    }

    /// The node's own (not aggregated) text.
    #[must_use]
    pub fn own_text(&self, id: NodeId) -> &str {
        &self.node(id).el.text
    }

    /// The form value of a node.
    #[must_use]
    pub fn value(&self, id: NodeId) -> &str {
        &self.node(id).el.value
    }

    /// Whether a checkbox node is checked.
    #[must_use]
    pub fn checked(&self, id: NodeId) -> bool {
        self.node(id).el.checked
    }

    /// Whether the node is enabled (not disabled).
    #[must_use]
    pub fn enabled(&self, id: NodeId) -> bool {
        !self.node(id).el.disabled
    }

    /// Whether the node is focused.
    #[must_use]
    pub fn focused(&self, id: NodeId) -> bool {
        self.node(id).el.focused
    }

    /// Whether the node is *effectively* visible: it and every ancestor are
    /// marked visible.
    #[must_use]
    pub fn visible(&self, id: NodeId) -> bool {
        let mut cur = Some(id);
        while let Some(n) = cur {
            if !self.node(n).el.visible {
                return false;
            }
            cur = self.node(n).parent;
        }
        true
    }

    /// The parent of a node.
    #[must_use]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).parent
    }

    /// The children of a node.
    #[must_use]
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.node(id).children
    }

    /// The aggregated visible text of a node: its own text followed by its
    /// visible descendants' text, in document order, space-normalised the
    /// way a browser's `innerText` roughly behaves.
    #[must_use]
    pub fn text_content(&self, id: NodeId) -> String {
        let mut parts: Vec<&str> = Vec::new();
        self.collect_text(id, &mut parts);
        parts.join(" ").trim().to_owned()
    }

    fn collect_text<'a>(&'a self, id: NodeId, parts: &mut Vec<&'a str>) {
        let node = self.node(id);
        if !node.el.visible {
            return;
        }
        if !node.el.text.is_empty() {
            parts.push(&node.el.text);
        }
        for &child in &node.children {
            self.collect_text(child, parts);
        }
    }

    /// All nodes in document (pre-)order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        // The arena is filled in pre-order by construction.
        (0..self.nodes.len()).map(NodeId)
    }

    /// The nodes matching a CSS selector, in document order.
    ///
    /// # Errors
    ///
    /// Returns [`ParseSelectorError`] when `selector` is malformed.
    pub fn query_all(&self, selector: &str) -> Result<Vec<NodeId>, ParseSelectorError> {
        let expr = SelectorExpr::parse(selector)?;
        Ok(self.select(&expr))
    }

    /// The nodes matching an already-parsed selector, in document order.
    #[must_use]
    pub fn select(&self, expr: &SelectorExpr) -> Vec<NodeId> {
        self.iter().filter(|&id| expr.matches(self, id)).collect()
    }

    /// Projects one node into the protocol's observable element state —
    /// what Selenium-style acceptance testing can see of it.
    #[must_use]
    pub fn project(&self, id: NodeId) -> ElementState {
        ElementState {
            text: self.text_content(id),
            value: self.value(id).to_owned(),
            checked: self.checked(id),
            enabled: self.enabled(id),
            visible: self.visible(id),
            focused: self.focused(id),
            classes: self.classes(id).to_vec(),
            attributes: self.attributes(id).clone(),
        }
    }

    /// The projections of every node matching `expr`, in document order.
    #[must_use]
    pub fn query_states(&self, expr: &SelectorExpr) -> Vec<ElementState> {
        self.select(expr)
            .into_iter()
            .map(|id| self.project(id))
            .collect()
    }

    /// The message an event dispatched at `target` resolves to, walking up
    /// the tree (event bubbling). Returns the handler message of the
    /// nearest ancestor-or-self with a handler for `kind`.
    #[must_use]
    pub fn handler(&self, target: NodeId, kind: EventKind) -> Option<&str> {
        let mut cur = Some(target);
        while let Some(id) = cur {
            if let Some(msg) = self.node(id).el.handlers.get(&kind) {
                return Some(msg);
            }
            cur = self.node(id).parent;
        }
        None
    }

    /// The first focused node, if any.
    #[must_use]
    pub fn focused_node(&self) -> Option<NodeId> {
        self.iter().find(|&id| self.node(id).el.focused)
    }

    /// Structural equality between this document and an unrendered view
    /// tree — `true` exactly when rendering `view` would reproduce this
    /// document. Walks both trees without cloning either, so dirty
    /// tracking ([`crate::RenderCache`]) can detect unchanged views at
    /// comparison cost only.
    #[must_use]
    pub fn same_view(&self, view: &El) -> bool {
        self.node_matches(self.root, view)
    }

    fn node_matches(&self, id: NodeId, el: &El) -> bool {
        // Exhaustive destructuring, no `..` rest pattern: dirty tracking
        // treats `same_view == true` as "provably unchanged", so a field
        // added to `El` but missed here would silently reuse stale
        // documents — make the compiler flag the omission instead.
        let El {
            tag,
            id: el_id,
            classes,
            attributes,
            text,
            value,
            checked,
            disabled,
            visible,
            focused,
            handlers,
            children,
        } = el;
        let node = self.node(id);
        if node.children.len() != children.len() {
            return false;
        }
        let ours = &node.el;
        // Field-by-field (node elements have their children moved out).
        if &ours.tag != tag
            || &ours.id != el_id
            || &ours.classes != classes
            || &ours.attributes != attributes
            || &ours.text != text
            || &ours.value != value
            || ours.checked != *checked
            || ours.disabled != *disabled
            || ours.visible != *visible
            || ours.focused != *focused
            || &ours.handlers != handlers
        {
            return false;
        }
        node.children
            .iter()
            .zip(children)
            .all(|(&child, child_el)| self.node_matches(child, child_el))
    }
}

impl fmt::Display for Document {
    /// An indented, HTML-ish dump, useful in test failure output.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(doc: &Document, id: NodeId, depth: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            let el = &doc.node(id).el;
            write!(f, "{:indent$}<{}", "", el.tag, indent = depth * 2)?;
            if let Some(i) = &el.id {
                write!(f, " id={i:?}")?;
            }
            if !el.classes.is_empty() {
                write!(f, " class={:?}", el.classes.join(" "))?;
            }
            if el.checked {
                write!(f, " checked")?;
            }
            if el.disabled {
                write!(f, " disabled")?;
            }
            if !el.visible {
                write!(f, " hidden")?;
            }
            if el.focused {
                write!(f, " focused")?;
            }
            if !el.value.is_empty() {
                write!(f, " value={:?}", el.value)?;
            }
            write!(f, ">")?;
            if !el.text.is_empty() {
                write!(f, "{}", el.text)?;
            }
            writeln!(f)?;
            for &child in &doc.node(id).children {
                go(doc, child, depth + 1, f)?;
            }
            Ok(())
        }
        go(self, self.root, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Document {
        Document::render(
            El::new("div").id("app").children([
                El::new("header").child(El::new("h1").text("todos")).child(
                    El::new("input")
                        .class("new-todo")
                        .value("pending")
                        .focused(true)
                        .on(EventKind::Input, "set-pending")
                        .on(EventKind::KeyDown, "new-key"),
                ),
                El::new("ul").class("todo-list").children([
                    El::new("li")
                        .class("completed")
                        .child(El::new("input").class("toggle").checked(true))
                        .child(El::new("label").text("walk"))
                        .on(EventKind::Click, "item-0"),
                    El::new("li")
                        .child(El::new("input").class("toggle"))
                        .child(El::new("label").text("shop"))
                        .on(EventKind::Click, "item-1"),
                ]),
                El::new("footer")
                    .hidden_if(true)
                    .child(El::new("span").class("todo-count").text("1 item left")),
            ]),
        )
    }

    #[test]
    fn render_builds_parent_links() {
        let doc = sample();
        let root = doc.root();
        assert_eq!(doc.tag(root), "div");
        assert_eq!(doc.parent(root), None);
        let header = doc.children(root)[0];
        assert_eq!(doc.tag(header), "header");
        assert_eq!(doc.parent(header), Some(root));
        assert!(!doc.is_empty());
        assert_eq!(doc.len(), 13);
    }

    #[test]
    fn text_content_aggregates_visible_descendants() {
        let doc = sample();
        let root = doc.root();
        // The hidden footer's text is excluded.
        assert_eq!(doc.text_content(root), "todos walk shop");
        let lis = doc.query_all("li").unwrap();
        assert_eq!(doc.text_content(lis[0]), "walk");
    }

    #[test]
    fn visibility_is_inherited() {
        let doc = sample();
        let count = doc.query_all(".todo-count").unwrap()[0];
        assert!(!doc.visible(count), "inside a hidden footer");
        let label = doc.query_all("label").unwrap()[0];
        assert!(doc.visible(label));
    }

    #[test]
    fn handler_bubbles_to_ancestors() {
        let doc = sample();
        let label = doc.query_all("label").unwrap()[0];
        // The label has no Click handler; its li parent does.
        assert_eq!(doc.handler(label, EventKind::Click), Some("item-0"));
        assert_eq!(doc.handler(label, EventKind::DblClick), None);
    }

    #[test]
    fn focused_node_lookup() {
        let doc = sample();
        let focused = doc.focused_node().unwrap();
        assert_eq!(doc.classes(focused), &["new-todo".to_owned()]);
        assert_eq!(doc.value(focused), "pending");
    }

    #[test]
    fn query_all_document_order() {
        let doc = sample();
        let toggles = doc.query_all(".toggle").unwrap();
        assert_eq!(toggles.len(), 2);
        assert!(doc.checked(toggles[0]));
        assert!(!doc.checked(toggles[1]));
    }

    #[test]
    fn attribute_access() {
        let doc = Document::render(El::new("a").attr("href", "#/active"));
        let a = doc.root();
        assert_eq!(doc.attribute(a, "href"), Some("#/active"));
        assert_eq!(doc.attribute(a, "rel"), None);
        assert_eq!(doc.attributes(a).len(), 1);
    }

    #[test]
    fn display_dump_is_nonempty() {
        let doc = sample();
        let dump = doc.to_string();
        assert!(dump.contains("<div id=\"app\">"));
        assert!(dump.contains("checked"));
        assert!(dump.contains("hidden"));
    }

    #[test]
    fn el_builder_conditionals() {
        let el = El::new("li")
            .class_if(false, "completed")
            .child_if(false, El::new("button"))
            .child_if(true, El::new("span"));
        assert!(el.classes.is_empty());
        assert_eq!(el.children.len(), 1);
    }
}
