//! Local storage: the browser's persistent string key–value store.
//!
//! TodoMVC persists its to-do list here so page reloads keep the data. The
//! [`crate::app::App`] reads it in `start` and writes it on updates; the
//! executor's `reload!` action (an extension suggested by §4.1 of the
//! paper) re-creates the app while preserving this store.

use std::collections::BTreeMap;

/// A persistent string key–value store, mirroring `window.localStorage`.
///
/// # Examples
///
/// ```
/// use webdom::LocalStorage;
/// let mut store = LocalStorage::new();
/// store.set("todos", "[\"walk\"]");
/// assert_eq!(store.get("todos"), Some("[\"walk\"]"));
/// store.remove("todos");
/// assert_eq!(store.get("todos"), None);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LocalStorage {
    entries: BTreeMap<String, String>,
}

impl LocalStorage {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        LocalStorage::default()
    }

    /// The value stored under `key`, if any.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries.get(key).map(String::as_str)
    }

    /// Stores `value` under `key`, returning the previous value.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<String>) -> Option<String> {
        self.entries.insert(key.into(), value.into())
    }

    /// Removes `key`, returning the previous value.
    pub fn remove(&mut self, key: &str) -> Option<String> {
        self.entries.remove(key)
    }

    /// Removes everything.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// The number of stored entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_remove_roundtrip() {
        let mut s = LocalStorage::new();
        assert!(s.is_empty());
        assert_eq!(s.set("a", "1"), None);
        assert_eq!(s.set("a", "2"), Some("1".to_owned()));
        assert_eq!(s.get("a"), Some("2"));
        assert_eq!(s.len(), 1);
        assert_eq!(s.remove("a"), Some("2".to_owned()));
        assert_eq!(s.remove("a"), None);
    }

    #[test]
    fn clear_and_iter() {
        let mut s = LocalStorage::new();
        s.set("b", "2");
        s.set("a", "1");
        let pairs: Vec<_> = s.iter().collect();
        assert_eq!(pairs, vec![("a", "1"), ("b", "2")]);
        s.clear();
        assert!(s.is_empty());
    }
}
