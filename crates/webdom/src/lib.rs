//! # webdom
//!
//! A virtual DOM substrate for acceptance testing: element trees, a CSS
//! selector engine, synthetic user events, local storage, and a virtual
//! clock with timers.
//!
//! This crate stands in for the Selenium WebDriver + headless browser stack
//! of the original Quickstrom (DESIGN.md, *Substitutions*). Acceptance
//! testing only ever observes an application through selector queries and
//! synthetic events, so a faithful in-process DOM exercises the same
//! checker/executor code paths — while making runs deterministic (virtual
//! time) and fast.
//!
//! Applications implement the Model-View-Update [`App`] trait: a pure
//! [`App::view`] renders the model into an [`El`] tree whose elements carry
//! message-tagged event handlers, and [`App::on_event`]/[`App::on_timer`]
//! update the model. The paper itself observes (§5.2) that the MVU
//! architecture "is highly compatible with the view of states and actions
//! used in Quickstrom".
//!
//! ## Quick example
//!
//! ```
//! use webdom::{Document, El, EventKind};
//!
//! let view = El::new("div").id("app").child(
//!     El::new("button")
//!         .id("inc")
//!         .text("+1")
//!         .on(EventKind::Click, "increment"),
//! );
//! let doc = Document::render(view);
//! let hits = doc.query_all("#inc").unwrap();
//! assert_eq!(hits.len(), 1);
//! assert_eq!(doc.handler(hits[0], EventKind::Click), Some("increment"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod app;
pub mod cache;
pub mod clock;
pub mod dom;
pub mod selector;
pub mod storage;

pub use app::{App, AppCtx, Payload};
pub use cache::RenderCache;
pub use clock::{TimerId, VirtualClock};
pub use dom::{Document, El, EventKind, NodeId};
pub use selector::{ParseSelectorError, SelectorExpr};
pub use storage::LocalStorage;
