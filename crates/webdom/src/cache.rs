//! Dirty-tracked rendering: a generation counter over [`Document::render`]
//! plus per-selector query memoisation.
//!
//! MVU apps produce a fresh view tree per state, but most checker steps
//! leave most of the document alone — and many steps (a stale action, a
//! timer that changed nothing observable) leave *all* of it alone. A
//! [`RenderCache`] exploits that:
//!
//! * **Render dirty-tracking** — [`RenderCache::render`] compares the new
//!   view tree against the previously rendered one and only re-renders a
//!   [`Document`] (bumping the *render generation*) when they differ. An
//!   unchanged view costs one tree comparison instead of an arena build.
//! * **Query memoisation** — [`RenderCache::query`] caches each selector's
//!   projected results ([`QueryResults`]) keyed on the render generation:
//!   while the generation stands still, repeated queries answer without
//!   re-matching a single node.
//! * **Structural reuse** — when a re-render *does* happen but a
//!   selector's projections come out equal, the cache keeps handing out
//!   the previous allocation. Downstream consumers (snapshot diffing, the
//!   checker's shared traces) can therefore treat pointer equality of
//!   [`QueryResults`] as "provably unchanged".

use crate::dom::{Document, El};
use crate::selector::SelectorExpr;
use quickstrom_protocol::{QueryResults, Selector};
use std::collections::BTreeMap;
use std::sync::Arc;

#[derive(Debug)]
struct MemoEntry {
    /// The render generation this result was computed (or revalidated) at.
    generation: u64,
    result: QueryResults,
}

/// A memoising wrapper around [`Document::render`] and selector queries.
///
/// # Examples
///
/// ```
/// use webdom::{El, RenderCache, SelectorExpr};
/// use std::sync::Arc;
///
/// let mut cache = RenderCache::new();
/// let view = || El::new("div").child(El::new("span").id("x").text("hi"));
/// let expr = SelectorExpr::parse("#x").unwrap();
///
/// assert!(cache.render(view())); // first render is always fresh
/// let first = cache.query("#x".into(), &expr);
/// assert!(!cache.render(view())); // unchanged view: no re-render
/// let second = cache.query("#x".into(), &expr);
/// assert!(Arc::ptr_eq(&first, &second)); // memoised, not re-matched
/// ```
#[derive(Debug, Default)]
pub struct RenderCache {
    generation: u64,
    doc: Option<Document>,
    memo: BTreeMap<Selector, MemoEntry>,
}

impl RenderCache {
    /// An empty cache (generation zero, nothing rendered).
    #[must_use]
    pub fn new() -> Self {
        RenderCache::default()
    }

    /// The current render generation. Bumps exactly when [`render`] sees
    /// a view that differs from the previous one.
    ///
    /// [`render`]: RenderCache::render
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Renders `view`, unless it is structurally equal to the previously
    /// rendered document ([`Document::same_view`] — no clone, comparison
    /// cost only) — in which case the cached [`Document`] (and every
    /// memoised query) stays valid. Returns `true` when a fresh document
    /// was rendered.
    pub fn render(&mut self, view: El) -> bool {
        if let Some(doc) = &self.doc {
            if doc.same_view(&view) {
                return false;
            }
        }
        self.doc = Some(Document::render(view));
        self.generation += 1;
        true
    }

    /// The most recently rendered document.
    ///
    /// # Panics
    ///
    /// Panics when nothing has been rendered yet.
    #[must_use]
    pub fn document(&self) -> &Document {
        self.doc.as_ref().expect("RenderCache::render first")
    }

    /// The projected results of `expr`, memoised per selector and keyed
    /// on the render generation.
    ///
    /// When the generation moved, the selector is re-matched — but if the
    /// fresh projections equal the previous ones, the *old* allocation is
    /// revalidated and returned, so `Arc::ptr_eq` on two results from
    /// this cache is a complete change test.
    ///
    /// # Panics
    ///
    /// Panics when nothing has been rendered yet.
    pub fn query(&mut self, selector: Selector, expr: &SelectorExpr) -> QueryResults {
        let doc = self.doc.as_ref().expect("RenderCache::render first");
        if let Some(entry) = self.memo.get(&selector) {
            if entry.generation == self.generation {
                return Arc::clone(&entry.result);
            }
        }
        let fresh = doc.query_states(expr);
        let result = match self.memo.get(&selector) {
            Some(entry) if *entry.result == fresh => Arc::clone(&entry.result),
            _ => Arc::new(fresh),
        };
        self.memo.insert(
            selector,
            MemoEntry {
                generation: self.generation,
                result: Arc::clone(&result),
            },
        );
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::EventKind;

    fn view(rows: usize, selected: usize) -> El {
        El::new("div")
            .id("app")
            .child(El::new("ul").children((0..rows).map(|i| {
                El::new("li")
                    .class_if(i == selected, "selected")
                    .text(format!("row {i}"))
                    .on(EventKind::Click, format!("pick:{i}"))
            })))
    }

    #[test]
    fn unchanged_views_keep_generation_and_memo() {
        let mut cache = RenderCache::new();
        assert_eq!(cache.generation(), 0);
        assert!(cache.render(view(3, 0)));
        assert_eq!(cache.generation(), 1);
        let expr = SelectorExpr::parse("li").unwrap();
        let a = cache.query("li".into(), &expr);
        assert_eq!(a.len(), 3);
        assert!(!cache.render(view(3, 0)));
        assert_eq!(cache.generation(), 1);
        let b = cache.query("li".into(), &expr);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn changed_views_re_render_but_reuse_equal_projections() {
        let mut cache = RenderCache::new();
        cache.render(view(3, 0));
        let li = SelectorExpr::parse("li").unwrap();
        let sel = SelectorExpr::parse(".selected").unwrap();
        let all_before = cache.query("li".into(), &li);
        let selected_before = cache.query(".selected".into(), &sel);
        assert_eq!(selected_before[0].text, "row 0");

        // Selecting another row changes `.selected` but also the class
        // list of two `li` elements, so both selectors re-project.
        assert!(cache.render(view(3, 2)));
        let all_after = cache.query("li".into(), &li);
        let selected_after = cache.query(".selected".into(), &sel);
        assert!(!Arc::ptr_eq(&all_before, &all_after));
        assert_eq!(selected_after[0].text, "row 2");

        // Rendering back restores projections equal to the originals.
        // Reuse is relative to the *previous* ask (that is the contract
        // change detection relies on), so these are fresh allocations —
        // but a subsequent no-op render revalidates them in place.
        assert!(cache.render(view(3, 0)));
        let all_back = cache.query("li".into(), &li);
        assert!(!Arc::ptr_eq(&all_after, &all_back));
        assert_eq!(*all_before, *all_back);
        assert!(!cache.render(view(3, 0)));
        assert!(Arc::ptr_eq(&all_back, &cache.query("li".into(), &li)));
    }

    #[test]
    fn document_access_follows_latest_render() {
        let mut cache = RenderCache::new();
        cache.render(view(2, 1));
        assert_eq!(cache.document().query_all("li").unwrap().len(), 2);
        cache.render(view(5, 1));
        assert_eq!(cache.document().query_all("li").unwrap().len(), 5);
    }
}
