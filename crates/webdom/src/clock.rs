//! Virtual time: a deterministic clock with one-shot and repeating timers.
//!
//! All "waiting" in the substrate is virtual. The executor advances the
//! clock explicitly (on `Wait` requests, action timeouts, and a small
//! deliberation charge between checker messages), collecting the timers
//! that fire. This reproduces the paper's asynchronous-application
//! behaviour — timer ticks, delayed re-renders — without wall-clock
//! flakiness, and it is what makes counterexample replay exact.

/// A handle to a scheduled timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

#[derive(Debug, Clone)]
struct Timer {
    id: TimerId,
    tag: String,
    due_ms: u64,
    /// `Some(period)` for repeating timers.
    interval_ms: Option<u64>,
}

/// A deterministic virtual clock.
///
/// # Examples
///
/// ```
/// use webdom::VirtualClock;
/// let mut clock = VirtualClock::new();
/// clock.set_timeout("tick", 1000);
/// clock.set_interval("blink", 300);
/// let fired = clock.advance(1000);
/// let tags: Vec<_> = fired.iter().map(|(_, t)| t.as_str()).collect();
/// assert_eq!(tags, ["blink", "blink", "blink", "tick"]);
/// assert_eq!(clock.now_ms(), 1000);
/// ```
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now_ms: u64,
    timers: Vec<Timer>,
    next_id: u64,
}

impl VirtualClock {
    /// A clock at time zero with no timers.
    #[must_use]
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// The current virtual time in milliseconds.
    #[must_use]
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Schedules a one-shot timer `delay_ms` from now.
    pub fn set_timeout(&mut self, tag: impl Into<String>, delay_ms: u64) -> TimerId {
        self.push_timer(tag.into(), delay_ms, None)
    }

    /// Schedules a repeating timer with the given period.
    ///
    /// The first firing happens one full period from now. A zero period is
    /// clamped to 1ms so the clock always makes progress.
    pub fn set_interval(&mut self, tag: impl Into<String>, period_ms: u64) -> TimerId {
        let period = period_ms.max(1);
        self.push_timer(tag.into(), period, Some(period))
    }

    fn push_timer(&mut self, tag: String, delay_ms: u64, interval_ms: Option<u64>) -> TimerId {
        let id = TimerId(self.next_id);
        self.next_id += 1;
        self.timers.push(Timer {
            id,
            tag,
            due_ms: self.now_ms.saturating_add(delay_ms),
            interval_ms,
        });
        id
    }

    /// Cancels a timer; returns whether it existed.
    pub fn cancel(&mut self, id: TimerId) -> bool {
        let before = self.timers.len();
        self.timers.retain(|t| t.id != id);
        self.timers.len() != before
    }

    /// Cancels every timer with the given tag; returns how many were
    /// cancelled.
    pub fn cancel_tag(&mut self, tag: &str) -> usize {
        let before = self.timers.len();
        self.timers.retain(|t| t.tag != tag);
        before - self.timers.len()
    }

    /// Cancels every pending timer (a page reload kills the old page's
    /// timers); returns how many were cancelled.
    pub fn cancel_all(&mut self) -> usize {
        let n = self.timers.len();
        self.timers.clear();
        n
    }

    /// The due time of the earliest pending timer.
    #[must_use]
    pub fn next_due(&self) -> Option<u64> {
        self.timers.iter().map(|t| t.due_ms).min()
    }

    /// Are any timers pending?
    #[must_use]
    pub fn has_timers(&self) -> bool {
        !self.timers.is_empty()
    }

    /// Advances the clock by `delta_ms`, returning the timers that fired,
    /// in firing order (by due time, then scheduling order). Repeating
    /// timers re-arm automatically.
    pub fn advance(&mut self, delta_ms: u64) -> Vec<(TimerId, String)> {
        self.advance_to(self.now_ms.saturating_add(delta_ms))
    }

    /// Advances the clock to the absolute time `target_ms` (no-op if in the
    /// past), returning fired timers in order.
    pub fn advance_to(&mut self, target_ms: u64) -> Vec<(TimerId, String)> {
        let mut fired = Vec::new();
        while let Some(due) = self.next_due() {
            if due > target_ms {
                break;
            }
            // Fire every timer due at `due`, in scheduling order.
            self.now_ms = self.now_ms.max(due);
            let mut i = 0;
            while i < self.timers.len() {
                if self.timers[i].due_ms == due {
                    let timer = &mut self.timers[i];
                    fired.push((timer.id, timer.tag.clone()));
                    if let Some(period) = timer.interval_ms {
                        timer.due_ms += period.max(1);
                        i += 1;
                    } else {
                        self.timers.remove(i);
                    }
                } else {
                    i += 1;
                }
            }
        }
        self.now_ms = self.now_ms.max(target_ms);
        fired
    }

    /// Advances just far enough to fire the next timer (if any), returning
    /// the fired timers; `None` when no timer is pending.
    pub fn advance_to_next(&mut self) -> Option<Vec<(TimerId, String)>> {
        let due = self.next_due()?;
        Some(self.advance_to(due))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tags(fired: &[(TimerId, String)]) -> Vec<&str> {
        fired.iter().map(|(_, t)| t.as_str()).collect()
    }

    #[test]
    fn timeout_fires_once() {
        let mut c = VirtualClock::new();
        c.set_timeout("a", 100);
        assert_eq!(tags(&c.advance(99)), Vec::<&str>::new());
        assert_eq!(tags(&c.advance(1)), vec!["a"]);
        assert_eq!(tags(&c.advance(1000)), Vec::<&str>::new());
        assert!(!c.has_timers());
    }

    #[test]
    fn interval_fires_repeatedly() {
        let mut c = VirtualClock::new();
        c.set_interval("t", 10);
        assert_eq!(tags(&c.advance(35)), vec!["t", "t", "t"]);
        assert_eq!(c.now_ms(), 35);
        assert_eq!(tags(&c.advance(5)), vec!["t"]);
    }

    #[test]
    fn firing_order_is_due_then_schedule_order() {
        let mut c = VirtualClock::new();
        c.set_timeout("late", 20);
        c.set_timeout("early", 10);
        c.set_timeout("also-early", 10);
        assert_eq!(tags(&c.advance(30)), vec!["early", "also-early", "late"]);
    }

    #[test]
    fn cancel_by_id_and_tag() {
        let mut c = VirtualClock::new();
        let a = c.set_timeout("x", 5);
        c.set_timeout("y", 5);
        c.set_timeout("y", 7);
        assert!(c.cancel(a));
        assert!(!c.cancel(a));
        assert_eq!(c.cancel_tag("y"), 2);
        assert_eq!(tags(&c.advance(100)), Vec::<&str>::new());
    }

    #[test]
    fn next_due_and_advance_to_next() {
        let mut c = VirtualClock::new();
        assert_eq!(c.next_due(), None);
        assert_eq!(c.advance_to_next(), None);
        c.set_timeout("a", 50);
        assert_eq!(c.next_due(), Some(50));
        let fired = c.advance_to_next().unwrap();
        assert_eq!(tags(&fired), vec!["a"]);
        assert_eq!(c.now_ms(), 50);
    }

    #[test]
    fn advance_to_past_is_noop() {
        let mut c = VirtualClock::new();
        c.advance(100);
        let fired = c.advance_to(10);
        assert!(fired.is_empty());
        assert_eq!(c.now_ms(), 100);
    }

    #[test]
    fn zero_period_interval_is_clamped() {
        let mut c = VirtualClock::new();
        c.set_interval("z", 0);
        // Clamped to 1ms: fires once per millisecond, not infinitely.
        assert_eq!(c.advance(3).len(), 3);
    }

    #[test]
    fn interval_rearms_relative_to_due_time() {
        let mut c = VirtualClock::new();
        c.set_interval("i", 10);
        // Jumping far ahead fires every missed occurrence.
        assert_eq!(c.advance(50).len(), 5);
    }
}
