//! A CSS selector engine covering the fragment acceptance tests need.
//!
//! Supported grammar:
//!
//! ```text
//! selector-list := complex (',' complex)*
//! complex       := compound ((' ' | '>') compound)*
//! compound      := [ tag | '*' ] simple*
//! simple        := '#' ident | '.' ident | ':' pseudo
//!                | '[' ident ']' | '[' ident '=' value ']'
//! pseudo        := 'checked' | 'enabled' | 'disabled' | 'focus' | 'visible'
//! ```
//!
//! Matching follows the CSS semantics: a complex selector matches a node if
//! the rightmost compound matches it and the remaining compounds match some
//! chain of ancestors (descendant combinator) or the immediate parent
//! (child combinator `>`).

use crate::dom::{Document, NodeId};
use std::fmt;

/// A parse error for a CSS selector, with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSelectorError {
    /// Byte offset of the problem.
    pub offset: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseSelectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "selector parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseSelectorError {}

/// A pseudo-class test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pseudo {
    Checked,
    Enabled,
    Disabled,
    Focus,
    Visible,
}

/// One `simple` component of a compound selector.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Simple {
    Id(String),
    Class(String),
    Pseudo(Pseudo),
    HasAttr(String),
    AttrEq(String, String),
}

/// A compound selector: optional tag plus simple components.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct Compound {
    tag: Option<String>,
    simples: Vec<Simple>,
}

impl Compound {
    fn matches(&self, doc: &Document, id: NodeId) -> bool {
        if let Some(tag) = &self.tag {
            if doc.tag(id) != tag {
                return false;
            }
        }
        self.simples.iter().all(|s| match s {
            Simple::Id(want) => doc.id_attr(id) == Some(want.as_str()),
            Simple::Class(want) => doc.classes(id).iter().any(|c| c == want),
            Simple::Pseudo(Pseudo::Checked) => doc.checked(id),
            Simple::Pseudo(Pseudo::Enabled) => doc.enabled(id),
            Simple::Pseudo(Pseudo::Disabled) => !doc.enabled(id),
            Simple::Pseudo(Pseudo::Focus) => doc.focused(id),
            Simple::Pseudo(Pseudo::Visible) => doc.visible(id),
            Simple::HasAttr(key) => doc.attribute(id, key).is_some(),
            Simple::AttrEq(key, want) => doc.attribute(id, key) == Some(want.as_str()),
        })
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Combinator {
    Descendant,
    Child,
}

/// A complex selector: compounds joined by combinators, stored rightmost
/// last.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Complex {
    /// `(compound, combinator-to-the-right)` pairs for all but the last.
    leading: Vec<(Compound, Combinator)>,
    last: Compound,
}

impl Complex {
    fn matches(&self, doc: &Document, id: NodeId) -> bool {
        if !self.last.matches(doc, id) {
            return false;
        }
        // Walk leading compounds right to left, matching up the tree.
        fn go(doc: &Document, leading: &[(Compound, Combinator)], below: NodeId) -> bool {
            let Some(((compound, comb), rest)) = leading.split_last() else {
                return true;
            };
            match comb {
                Combinator::Child => match doc.parent(below) {
                    Some(p) => compound.matches(doc, p) && go(doc, rest, p),
                    None => false,
                },
                Combinator::Descendant => {
                    let mut cur = doc.parent(below);
                    while let Some(p) = cur {
                        if compound.matches(doc, p) && go(doc, rest, p) {
                            return true;
                        }
                        cur = doc.parent(p);
                    }
                    false
                }
            }
        }
        go(doc, &self.leading, id)
    }
}

/// A parsed selector list, ready for matching.
///
/// # Examples
///
/// ```
/// use webdom::{Document, El, SelectorExpr};
/// let doc = Document::render(
///     El::new("ul").class("todo-list").child(El::new("li").class("completed")),
/// );
/// let sel = SelectorExpr::parse(".todo-list > li.completed").unwrap();
/// assert_eq!(doc.select(&sel).len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectorExpr {
    alternatives: Vec<Complex>,
}

impl SelectorExpr {
    /// Parses a selector list.
    ///
    /// # Errors
    ///
    /// Returns [`ParseSelectorError`] on malformed input (empty selector,
    /// dangling combinator, bad pseudo-class, …).
    pub fn parse(input: &str) -> Result<Self, ParseSelectorError> {
        Parser { src: input, pos: 0 }.selector_list()
    }

    /// Does the selector match this node?
    #[must_use]
    pub fn matches(&self, doc: &Document, id: NodeId) -> bool {
        self.alternatives.iter().any(|c| c.matches(doc, id))
    }
}

struct Parser<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> ParseSelectorError {
        ParseSelectorError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn skip_spaces(&mut self) -> bool {
        let start = self.pos;
        while matches!(self.peek(), Some(' ' | '\t' | '\n')) {
            self.bump();
        }
        self.pos != start
    }

    fn ident(&mut self) -> Result<String, ParseSelectorError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == '-' || c == '_') {
            self.bump();
        }
        if self.pos == start {
            Err(self.error("expected an identifier"))
        } else {
            Ok(self.src[start..self.pos].to_owned())
        }
    }

    fn selector_list(&mut self) -> Result<SelectorExpr, ParseSelectorError> {
        let mut alternatives = vec![self.complex()?];
        loop {
            self.skip_spaces();
            if self.peek() == Some(',') {
                self.bump();
                self.skip_spaces();
                alternatives.push(self.complex()?);
            } else {
                break;
            }
        }
        if self.pos != self.src.len() {
            return Err(self.error("unexpected trailing input"));
        }
        Ok(SelectorExpr { alternatives })
    }

    fn complex(&mut self) -> Result<Complex, ParseSelectorError> {
        self.skip_spaces();
        let mut current = self.compound()?;
        let mut leading = Vec::new();
        loop {
            let had_space = self.skip_spaces();
            match self.peek() {
                Some('>') => {
                    self.bump();
                    self.skip_spaces();
                    let next = self.compound()?;
                    leading.push((current, Combinator::Child));
                    current = next;
                }
                Some(c)
                    if had_space
                        && c != ','
                        && (c.is_ascii_alphanumeric()
                            || matches!(c, '#' | '.' | ':' | '[' | '*' | '_')) =>
                {
                    let next = self.compound()?;
                    leading.push((current, Combinator::Descendant));
                    current = next;
                }
                _ => break,
            }
        }
        Ok(Complex {
            leading,
            last: current,
        })
    }

    fn compound(&mut self) -> Result<Compound, ParseSelectorError> {
        let mut compound = Compound::default();
        let mut matched_any = false;
        if let Some(c) = self.peek() {
            if c == '*' {
                self.bump();
                matched_any = true;
            } else if c.is_ascii_alphabetic() {
                compound.tag = Some(self.ident()?);
                matched_any = true;
            }
        }
        loop {
            match self.peek() {
                Some('#') => {
                    self.bump();
                    compound.simples.push(Simple::Id(self.ident()?));
                    matched_any = true;
                }
                Some('.') => {
                    self.bump();
                    compound.simples.push(Simple::Class(self.ident()?));
                    matched_any = true;
                }
                Some(':') => {
                    self.bump();
                    let start = self.pos;
                    let name = self.ident()?;
                    let pseudo = match name.as_str() {
                        "checked" => Pseudo::Checked,
                        "enabled" => Pseudo::Enabled,
                        "disabled" => Pseudo::Disabled,
                        "focus" => Pseudo::Focus,
                        "visible" => Pseudo::Visible,
                        other => {
                            self.pos = start;
                            return Err(self.error(format!("unknown pseudo-class :{other}")));
                        }
                    };
                    compound.simples.push(Simple::Pseudo(pseudo));
                    matched_any = true;
                }
                Some('[') => {
                    self.bump();
                    self.skip_spaces();
                    let key = self.ident()?;
                    self.skip_spaces();
                    match self.peek() {
                        Some(']') => {
                            self.bump();
                            compound.simples.push(Simple::HasAttr(key));
                        }
                        Some('=') => {
                            self.bump();
                            let value = self.attr_value()?;
                            if self.peek() != Some(']') {
                                return Err(self.error("expected ']'"));
                            }
                            self.bump();
                            compound.simples.push(Simple::AttrEq(key, value));
                        }
                        _ => return Err(self.error("expected '=' or ']'")),
                    }
                    matched_any = true;
                }
                _ => break,
            }
        }
        if matched_any {
            Ok(compound)
        } else {
            Err(self.error("expected a selector"))
        }
    }

    fn attr_value(&mut self) -> Result<String, ParseSelectorError> {
        if self.peek() == Some('"') || self.peek() == Some('\'') {
            let quote = self.bump().expect("peeked");
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == quote {
                    let value = self.src[start..self.pos].to_owned();
                    self.bump();
                    return Ok(value);
                }
                self.bump();
            }
            Err(self.error("unterminated attribute value"))
        } else {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != ']' && !c.is_whitespace()) {
                self.bump();
            }
            if self.pos == start {
                Err(self.error("expected an attribute value"))
            } else {
                Ok(self.src[start..self.pos].to_owned())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::El;

    fn todomvc_doc() -> Document {
        Document::render(
            El::new("section").class("todoapp").children([
                El::new("header").class("header").children([
                    El::new("h1").text("todos"),
                    El::new("input").class("new-todo").focused(true),
                ]),
                El::new("section").class("main").children([
                    El::new("input")
                        .id("toggle-all")
                        .class("toggle-all")
                        .checked(true),
                    El::new("ul").class("todo-list").children([
                        El::new("li").class("completed").children([
                            El::new("input").class("toggle").checked(true),
                            El::new("label").text("walk"),
                            El::new("button").class("destroy"),
                        ]),
                        El::new("li").children([
                            El::new("input").class("toggle"),
                            El::new("label").text("shop"),
                            El::new("button").class("destroy").disabled(true),
                        ]),
                    ]),
                ]),
                El::new("footer").class("footer").children([
                    El::new("span")
                        .class("todo-count")
                        .child(El::new("strong").text("1")),
                    El::new("ul").class("filters").children([
                        El::new("li").child(
                            El::new("a")
                                .class("selected")
                                .attr("href", "#/")
                                .text("All"),
                        ),
                        El::new("li").child(El::new("a").attr("href", "#/active").text("Active")),
                        El::new("li")
                            .child(El::new("a").attr("href", "#/completed").text("Completed")),
                    ]),
                ]),
            ]),
        )
    }

    fn count(doc: &Document, sel: &str) -> usize {
        doc.query_all(sel).unwrap().len()
    }

    #[test]
    fn tag_id_class_star() {
        let doc = todomvc_doc();
        assert_eq!(count(&doc, "li"), 5);
        assert_eq!(count(&doc, ".todo-list li"), 2);
        assert_eq!(count(&doc, "#toggle-all"), 1);
        assert_eq!(count(&doc, "*"), doc.len());
        assert_eq!(count(&doc, "input.toggle"), 2);
    }

    #[test]
    fn descendant_vs_child() {
        let doc = todomvc_doc();
        assert_eq!(count(&doc, ".todoapp label"), 2);
        assert_eq!(count(&doc, ".todoapp > label"), 0);
        assert_eq!(count(&doc, ".todo-list > li > label"), 2);
        assert_eq!(count(&doc, "footer .filters a"), 3);
    }

    #[test]
    fn pseudo_classes() {
        let doc = todomvc_doc();
        assert_eq!(count(&doc, ".toggle:checked"), 1);
        assert_eq!(count(&doc, "button:disabled"), 1);
        assert_eq!(count(&doc, "button:enabled"), 1);
        assert_eq!(count(&doc, ".new-todo:focus"), 1);
        assert_eq!(count(&doc, "li.completed .toggle:checked"), 1);
    }

    #[test]
    fn attribute_selectors() {
        let doc = todomvc_doc();
        assert_eq!(count(&doc, "a[href]"), 3);
        assert_eq!(count(&doc, "a[href=\"#/active\"]"), 1);
        assert_eq!(count(&doc, "a[href='#/']"), 1);
        assert_eq!(count(&doc, "a[href=#/completed]"), 1);
        assert_eq!(count(&doc, "a[rel]"), 0);
    }

    #[test]
    fn selector_lists() {
        let doc = todomvc_doc();
        assert_eq!(count(&doc, "h1, .new-todo"), 2);
        assert_eq!(count(&doc, ".missing, strong"), 1);
    }

    #[test]
    fn visibility_pseudo() {
        let doc = Document::render(
            El::new("div").children([
                El::new("p").text("shown"),
                El::new("div")
                    .hidden_if(true)
                    .child(El::new("p").text("hidden child")),
            ]),
        );
        assert_eq!(count(&doc, "p"), 2);
        assert_eq!(count(&doc, "p:visible"), 1);
    }

    #[test]
    fn compound_ordering_is_irrelevant() {
        let doc = todomvc_doc();
        assert_eq!(
            doc.query_all("input.toggle:checked").unwrap(),
            doc.query_all("input:checked.toggle").unwrap()
        );
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "", "  ", "li >", "> li", ":hover", "[x", "[x=", "li ,", "a[x='y]", "..a",
        ] {
            assert!(
                SelectorExpr::parse(bad).is_err(),
                "expected parse failure for {bad:?}"
            );
        }
    }

    #[test]
    fn error_offsets_point_at_problem() {
        let err = SelectorExpr::parse("li :hover").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.message.contains("hover"));
    }

    #[test]
    fn naive_reference_agreement() {
        // Cross-check the engine against a naive matcher for single
        // compound selectors on a fixed document.
        let doc = todomvc_doc();
        for sel in ["li", ".toggle", "#toggle-all", "input", ".completed"] {
            let expr = SelectorExpr::parse(sel).unwrap();
            let naive: Vec<_> = doc
                .iter()
                .filter(|&id| {
                    let bare = sel.trim_start_matches(['.', '#']);
                    match sel.chars().next().unwrap() {
                        '.' => doc.classes(id).iter().any(|c| c == bare),
                        '#' => doc.id_attr(id) == Some(bare),
                        _ => doc.tag(id) == sel,
                    }
                })
                .collect();
            assert_eq!(doc.select(&expr), naive, "selector {sel}");
        }
    }
}
