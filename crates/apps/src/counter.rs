//! A minimal counter application: the quickstart example.

use webdom::{App, AppCtx, El, EventKind, Payload};

/// A counter with increment and reset buttons.
///
/// The quickstart specification asserts that the count never goes
/// negative, that increment adds exactly one, and that reset returns to
/// zero — see `examples/quickstart.rs`.
#[derive(Debug, Default, Clone)]
pub struct Counter {
    count: i64,
}

impl Counter {
    /// A fresh counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Counter::default()
    }

    /// The current count (for unit tests).
    #[must_use]
    pub fn count(&self) -> i64 {
        self.count
    }
}

impl App for Counter {
    fn start(&mut self, _ctx: &mut AppCtx<'_>) {}

    fn view(&self) -> El {
        El::new("div").id("app").children([
            El::new("span").id("count").text(self.count.to_string()),
            El::new("button")
                .id("increment")
                .text("+1")
                .on(EventKind::Click, "increment"),
            El::new("button")
                .id("reset")
                .text("reset")
                .on(EventKind::Click, "reset"),
        ])
    }

    fn on_event(&mut self, msg: &str, _payload: &Payload, _ctx: &mut AppCtx<'_>) {
        match msg {
            "increment" => self.count += 1,
            "reset" => self.count = 0,
            _ => {}
        }
    }

    fn on_timer(&mut self, _tag: &str, _ctx: &mut AppCtx<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use webdom::{Document, LocalStorage, VirtualClock};

    #[test]
    fn increments_and_resets() {
        let mut clock = VirtualClock::new();
        let mut storage = LocalStorage::new();
        let mut ctx = AppCtx {
            clock: &mut clock,
            storage: &mut storage,
        };
        let mut app = Counter::new();
        app.on_event("increment", &Payload::None, &mut ctx);
        app.on_event("increment", &Payload::None, &mut ctx);
        assert_eq!(app.count(), 2);
        app.on_event("reset", &Payload::None, &mut ctx);
        assert_eq!(app.count(), 0);
    }

    #[test]
    fn view_exposes_count() {
        let app = Counter { count: 7 };
        let doc = Document::render(app.view());
        let count = doc.query_all("#count").unwrap()[0];
        assert_eq!(doc.text_content(count), "7");
    }
}
