//! Wizard: a five-step checkout flow — the *deep-state* workload for the
//! coverage-guided exploration engine.
//!
//! TodoMVC's interesting states are broad but shallow: most of them are a
//! handful of actions from the initial state. This app is the opposite:
//! its states form a corridor behind an *improbable* first gate. Each
//! step gates `#next` behind a step-specific requirement —
//!
//! 1. **Unlock** — the four `.switch` toggles must match the combination
//!    (switches 1 and 3 on, the rest off; `#lock-state` reads `open`).
//!    A uniform random walk over the 16 switch patterns takes a long
//!    excursion to land on the one unlocking pattern.
//! 2. **Details** — `#name-input` must hold non-blank text.
//! 3. **Plan** — one of the three `.plan` options must be selected.
//! 4. **Review** — the `#confirm` checkbox must be checked.
//! 5. **Done** — terminal; `#done` appears, `#restart` starts over.
//!
//! — while `#back` is always available in the middle of the corridor (and
//! discards the *current* step's progress, so wandering is punished).
//! Per run, stumbling through the lock *and* the remaining gates is rare;
//! what cracks the corridor is the trace corpus: once any run reaches a
//! novel step, later runs replay that prefix and spend their whole
//! remaining budget extending past it. `specs/wizard.strom` states the
//! corridor's invariants as a checkable property, and
//! `tests/wizard_spec.rs` measures the depth difference directly
//! (completions per strategy at an equal budget).

use webdom::{App, AppCtx, El, EventKind, Payload};

/// The number of steps in the corridor (the terminal "done" step
/// included).
pub const STEPS: u32 = 5;

/// The number of combination switches on step 1.
pub const SWITCHES: usize = 4;

/// The unlocking switch pattern (switches 1 and 3, 1-based).
const COMBINATION: [bool; SWITCHES] = [true, false, true, false];

/// A five-step checkout wizard with per-step gating.
#[derive(Debug, Clone, Default)]
pub struct Wizard {
    step: u32,
    switches: [bool; SWITCHES],
    name: String,
    plan: Option<usize>,
    confirmed: bool,
    /// How many times the flow completed (survives `#restart`).
    completions: u32,
}

impl Wizard {
    /// A fresh wizard at step 1.
    #[must_use]
    pub fn new() -> Wizard {
        Wizard {
            step: 1,
            ..Wizard::default()
        }
    }

    /// The current step, 1-based.
    #[must_use]
    pub fn step(&self) -> u32 {
        self.step
    }

    /// Is the current step's requirement met (may the user advance)?
    #[must_use]
    pub fn gate_open(&self) -> bool {
        match self.step {
            1 => self.switches == COMBINATION,
            2 => !self.name.trim().is_empty(),
            3 => self.plan.is_some(),
            4 => self.confirmed,
            _ => false, // the terminal step has no `next`
        }
    }

    /// Leaving a step backwards discards that step's progress — wandering
    /// is not free, which is what makes the deep states deep.
    fn discard_current_progress(&mut self) {
        match self.step {
            1 => self.switches = [false; SWITCHES],
            2 => self.name.clear(),
            3 => self.plan = None,
            4 => self.confirmed = false,
            _ => {}
        }
    }
}

const PLAN_NAMES: [&str; 3] = ["starter", "pro", "enterprise"];

const TITLES: [&str; 5] = ["Unlock", "Details", "Plan", "Review", "Done"];

impl App for Wizard {
    fn start(&mut self, _ctx: &mut AppCtx<'_>) {
        if self.step == 0 {
            self.step = 1;
        }
    }

    fn view(&self) -> El {
        let step = self.step;
        let title = TITLES[(step as usize - 1).min(TITLES.len() - 1)];
        El::new("div").id("app").children([
            El::new("span").id("step").text(step.to_string()),
            El::new("h1").id("title").text(title),
            El::new("button")
                .id("back")
                .text("back")
                .disabled(step == 1 || step == STEPS)
                .on(EventKind::Click, "back"),
            El::new("button")
                .id("next")
                .text(if step == STEPS - 1 {
                    "place order"
                } else {
                    "next"
                })
                .disabled(!self.gate_open())
                .on(EventKind::Click, "next"),
            // Step 1: the combination lock.
            El::new("div").id("lock").hidden_if(step != 1).children(
                self.switches
                    .iter()
                    .enumerate()
                    .map(|(i, &on)| {
                        El::new("input")
                            .class("switch")
                            .attr("type", "checkbox")
                            .checked(on)
                            .on(EventKind::Click, format!("switch:{i}"))
                    })
                    .chain([El::new("span").id("lock-state").text(
                        if self.switches == COMBINATION {
                            "open"
                        } else {
                            "locked"
                        },
                    )]),
            ),
            // Step 2: details.
            El::new("input")
                .id("name-input")
                .value(self.name.clone())
                .hidden_if(step != 2)
                .on(EventKind::Input, "name"),
            // Step 3: plan choice.
            El::new("div").id("plans").hidden_if(step != 3).children(
                PLAN_NAMES.iter().enumerate().map(|(i, name)| {
                    El::new("button")
                        .class("plan")
                        .class_if(self.plan == Some(i), "selected")
                        .text(*name)
                        .on(EventKind::Click, format!("plan:{i}"))
                }),
            ),
            // Step 4: review summary + confirmation.
            El::new("div").id("review").hidden_if(step != 4).children([
                El::new("span")
                    .id("review-name")
                    .text(self.name.trim().to_string()),
                El::new("span")
                    .id("review-plan")
                    .text(self.plan.map_or("", |i| PLAN_NAMES[i]).to_string()),
                El::new("input")
                    .id("confirm")
                    .attr("type", "checkbox")
                    .checked(self.confirmed)
                    .on(EventKind::Click, "confirm"),
            ]),
            // Step 5: done.
            El::new("div")
                .id("done-panel")
                .hidden_if(step != STEPS)
                .children([
                    El::new("span").id("done").text("order placed"),
                    El::new("span")
                        .id("completions")
                        .text(self.completions.to_string()),
                    El::new("button")
                        .id("restart")
                        .text("start over")
                        .on(EventKind::Click, "restart"),
                ]),
        ])
    }

    fn on_event(&mut self, msg: &str, payload: &Payload, _ctx: &mut AppCtx<'_>) {
        match msg {
            "next" if self.gate_open() => {
                self.step += 1;
                if self.step == STEPS {
                    self.completions += 1;
                }
            }
            "back" if self.step > 1 && self.step < STEPS => {
                self.discard_current_progress();
                self.step -= 1;
            }
            "name" if self.step == 2 => self.name = payload.text().to_owned(),
            "confirm" if self.step == 4 => self.confirmed = !self.confirmed,
            "restart" if self.step == STEPS => {
                *self = Wizard {
                    completions: self.completions,
                    ..Wizard::new()
                };
            }
            other => {
                if let Some(i) = other.strip_prefix("switch:") {
                    if self.step == 1 {
                        if let Ok(i) = i.parse::<usize>() {
                            if i < SWITCHES {
                                self.switches[i] = !self.switches[i];
                            }
                        }
                    }
                } else if let Some(i) = other.strip_prefix("plan:") {
                    if self.step == 3 {
                        if let Ok(i) = i.parse::<usize>() {
                            if i < PLAN_NAMES.len() {
                                self.plan = Some(i);
                            }
                        }
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, _tag: &str, _ctx: &mut AppCtx<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use webdom::{Document, LocalStorage, VirtualClock};

    fn ctx_parts() -> (VirtualClock, LocalStorage) {
        (VirtualClock::new(), LocalStorage::new())
    }

    fn send(app: &mut Wizard, msg: &str, payload: Payload) {
        let (mut clock, mut storage) = ctx_parts();
        let mut ctx = AppCtx {
            clock: &mut clock,
            storage: &mut storage,
        };
        app.on_event(msg, &payload, &mut ctx);
    }

    fn unlock(app: &mut Wizard) {
        for (i, &on) in COMBINATION.iter().enumerate() {
            if on {
                send(app, &format!("switch:{i}"), Payload::None);
            }
        }
    }

    fn complete_flow(app: &mut Wizard) {
        unlock(app);
        send(app, "next", Payload::None);
        send(app, "name", Payload::Text("Ada".into()));
        send(app, "next", Payload::None);
        send(app, "plan:1", Payload::None);
        send(app, "next", Payload::None);
        send(app, "confirm", Payload::None);
        send(app, "next", Payload::None);
    }

    #[test]
    fn gates_block_until_satisfied() {
        let mut app = Wizard::new();
        assert_eq!(app.step(), 1);
        send(&mut app, "next", Payload::None);
        assert_eq!(app.step(), 1, "cannot advance before unlocking");
        // A partial combination is still locked…
        send(&mut app, "switch:0", Payload::None);
        assert!(!app.gate_open());
        // …an extra switch on top of the combination too…
        send(&mut app, "switch:2", Payload::None);
        send(&mut app, "switch:1", Payload::None);
        assert!(!app.gate_open());
        // …and exactly the combination opens it.
        send(&mut app, "switch:1", Payload::None);
        assert!(app.gate_open());
        send(&mut app, "next", Payload::None);
        assert_eq!(app.step(), 2);
        send(&mut app, "name", Payload::Text("   ".into()));
        assert!(!app.gate_open(), "blank names don't count");
    }

    #[test]
    fn full_corridor_reaches_done_and_restarts() {
        let mut app = Wizard::new();
        complete_flow(&mut app);
        assert_eq!(app.step(), STEPS);
        let doc = Document::render(app.view());
        let done = doc.query_all("#done").unwrap();
        assert_eq!(done.len(), 1);
        assert!(doc.visible(done[0]));
        send(&mut app, "restart", Payload::None);
        assert_eq!(app.step(), 1);
        assert_eq!(app.completions, 1);
        complete_flow(&mut app);
        assert_eq!(app.completions, 2);
    }

    #[test]
    fn going_back_discards_the_current_step() {
        let mut app = Wizard::new();
        unlock(&mut app);
        send(&mut app, "next", Payload::None);
        send(&mut app, "name", Payload::Text("Ada".into()));
        send(&mut app, "back", Payload::None);
        assert_eq!(app.step(), 1);
        assert_eq!(
            app.switches, COMBINATION,
            "earlier steps keep their progress"
        );
        send(&mut app, "next", Payload::None);
        assert_eq!(app.step(), 2);
        assert!(app.name.is_empty(), "the abandoned step was reset");
    }

    #[test]
    fn hidden_panels_follow_the_step() {
        let app = Wizard::new();
        let doc = Document::render(app.view());
        let switches = doc.query_all(".switch").unwrap();
        assert_eq!(switches.len(), SWITCHES);
        assert!(doc.visible(switches[0]));
        let lock = doc.query_all("#lock-state").unwrap();
        assert_eq!(doc.text_content(lock[0]), "locked");
        let plans = doc.query_all(".plan").unwrap();
        assert_eq!(plans.len(), 3);
        assert!(!doc.visible(plans[0]), "plan options hidden on step 1");
    }
}
