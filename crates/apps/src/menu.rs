//! The §2.1 motivating example: "the menu should never be disabled
//! forever".
//!
//! Opening the menu disables it briefly (the application is busy) and
//! re-enables it asynchronously. This is correct behaviour — but a naive
//! RV-LTL check of `□ ◇ menuEnabled` will report a spurious counterexample
//! whenever a trace happens to end during the busy window. QuickLTL's
//! demand annotations (`always[n] eventually[k] …`) fix exactly this; the
//! `ablation-rvltl` harness quantifies it.

use webdom::{App, AppCtx, El, EventKind, Payload};

/// A menu that goes busy for a fixed window after each use.
#[derive(Debug, Clone)]
pub struct MenuApp {
    enabled: bool,
    busy_ms: u64,
    opens: u64,
}

impl Default for MenuApp {
    fn default() -> Self {
        MenuApp::new(500)
    }
}

impl MenuApp {
    /// A menu that re-enables `busy_ms` after each open.
    #[must_use]
    pub fn new(busy_ms: u64) -> Self {
        MenuApp {
            enabled: true,
            busy_ms,
            opens: 0,
        }
    }

    /// Is the menu currently enabled?
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled
    }
}

impl App for MenuApp {
    fn start(&mut self, _ctx: &mut AppCtx<'_>) {}

    fn view(&self) -> El {
        El::new("div").id("app").children([
            El::new("button")
                .id("menu")
                .text("menu")
                .disabled(!self.enabled)
                .on(EventKind::Click, "open"),
            El::new("span").id("opens").text(self.opens.to_string()),
        ])
    }

    fn on_event(&mut self, msg: &str, _payload: &Payload, ctx: &mut AppCtx<'_>) {
        if msg == "open" && self.enabled {
            self.enabled = false;
            self.opens += 1;
            ctx.clock.set_timeout("reenable", self.busy_ms);
        }
    }

    fn on_timer(&mut self, tag: &str, _ctx: &mut AppCtx<'_>) {
        if tag == "reenable" {
            self.enabled = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webdom::{Document, LocalStorage, VirtualClock};

    #[test]
    fn opening_disables_then_reenables() {
        let mut clock = VirtualClock::new();
        let mut storage = LocalStorage::new();
        let mut app = MenuApp::new(300);
        {
            let mut ctx = AppCtx {
                clock: &mut clock,
                storage: &mut storage,
            };
            app.on_event("open", &Payload::None, &mut ctx);
        }
        assert!(!app.enabled());
        let fired = clock.advance(300);
        for (_, tag) in fired {
            let mut ctx = AppCtx {
                clock: &mut clock,
                storage: &mut storage,
            };
            app.on_timer(&tag, &mut ctx);
        }
        assert!(app.enabled());
    }

    #[test]
    fn disabled_menu_ignores_clicks() {
        let mut clock = VirtualClock::new();
        let mut storage = LocalStorage::new();
        let mut app = MenuApp::new(300);
        let mut ctx = AppCtx {
            clock: &mut clock,
            storage: &mut storage,
        };
        app.on_event("open", &Payload::None, &mut ctx);
        app.on_event("open", &Payload::None, &mut ctx);
        assert_eq!(app.opens, 1);
    }

    #[test]
    fn view_reflects_enabledness() {
        let app = MenuApp::new(100);
        let doc = Document::render(app.view());
        let menu = doc.query_all("#menu").unwrap()[0];
        assert!(doc.enabled(menu));
        let mut busy = app.clone();
        busy.enabled = false;
        let doc2 = Document::render(busy.view());
        let menu2 = doc2.query_all("#menu").unwrap()[0];
        assert!(!doc2.enabled(menu2));
    }
}
