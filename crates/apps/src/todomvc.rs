//! TodoMVC (§4): a complete implementation with injectable faults.
//!
//! The DOM follows the standard TodoMVC markup (Figure 11): a `.new-todo`
//! input, a `.todo-list` of `li` items each with a `.toggle` checkbox, a
//! label, a `.destroy` button and (while editing) an `.edit` input; a
//! `.toggle-all` checkbox; a footer with `.todo-count` (containing a
//! `<strong>`), `.filters`, and `.clear-completed`. The to-do list persists
//! in local storage, so page reloads keep the data.
//!
//! [`Fault`] enumerates the fourteen problem classes of Table 2. Each
//! variant is a small, targeted perturbation of the correct `update`/`view`
//! logic, mirroring the bugs Quickstrom found in real framework
//! implementations. [`Variation`] carries the benign differences between
//! the *passing* implementations (markup wrappers, storage keys) so the
//! suite stays honest.

use std::collections::BTreeSet;
use webdom::{App, AppCtx, El, EventKind, Payload};

/// The fourteen problem classes of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Fault {
    /// 1 — Items have no checkboxes.
    NoCheckboxes,
    /// 2 — There are no filter controls.
    NoFilters,
    /// 3 — A `<strong>` element is missing (from the to-do count).
    MissingStrongElement,
    /// 4 — Blank items can be added.
    BlankItemsAllowed,
    /// 5 — Edit input is not focused after double-click.
    EditNotFocused,
    /// 6 — Incorrectly pluralizes the to-do count text.
    BadPluralization,
    /// 7 — Any pending input is cleared on filter change or removal of the
    /// last item.
    PendingCleared,
    /// 8 — A new item is created from pending input after non-create
    /// actions.
    PendingCommitted,
    /// 9 — "Toggle all" does not untoggle all items when certain filters
    /// are enabled.
    ToggleAllIgnoresHidden,
    /// 10 — The "Toggle all" button disappears when the current filter
    /// contains no items.
    ToggleAllHiddenByFilter,
    /// 11 — Committing an empty to-do item in edit mode does not fully
    /// delete it — it can later be restored with "Toggle all".
    EmptyEditZombie,
    /// 12 — Editing an item hides other items.
    EditingHidesOthers,
    /// 13 — Adding an item changes the filter to "All".
    AddResetsFilter,
    /// 14 — Adding an item first shows an empty state (the list is briefly
    /// emptied and re-populated).
    AddShowsEmptyFirst,
}

impl Fault {
    /// All fourteen faults, in Table 2 order.
    #[must_use]
    pub fn all() -> &'static [Fault] {
        &[
            Fault::NoCheckboxes,
            Fault::NoFilters,
            Fault::MissingStrongElement,
            Fault::BlankItemsAllowed,
            Fault::EditNotFocused,
            Fault::BadPluralization,
            Fault::PendingCleared,
            Fault::PendingCommitted,
            Fault::ToggleAllIgnoresHidden,
            Fault::ToggleAllHiddenByFilter,
            Fault::EmptyEditZombie,
            Fault::EditingHidesOthers,
            Fault::AddResetsFilter,
            Fault::AddShowsEmptyFirst,
        ]
    }

    /// The Table 2 row number (1–14).
    #[must_use]
    pub fn number(self) -> u8 {
        match self {
            Fault::NoCheckboxes => 1,
            Fault::NoFilters => 2,
            Fault::MissingStrongElement => 3,
            Fault::BlankItemsAllowed => 4,
            Fault::EditNotFocused => 5,
            Fault::BadPluralization => 6,
            Fault::PendingCleared => 7,
            Fault::PendingCommitted => 8,
            Fault::ToggleAllIgnoresHidden => 9,
            Fault::ToggleAllHiddenByFilter => 10,
            Fault::EmptyEditZombie => 11,
            Fault::EditingHidesOthers => 12,
            Fault::AddResetsFilter => 13,
            Fault::AddShowsEmptyFirst => 14,
        }
    }

    /// The Table 2 description.
    #[must_use]
    pub fn description(self) -> &'static str {
        match self {
            Fault::NoCheckboxes => "Items have no checkboxes",
            Fault::NoFilters => "There are no filter controls",
            Fault::MissingStrongElement => "A <strong> element is missing",
            Fault::BlankItemsAllowed => "Blank items can be added",
            Fault::EditNotFocused => "Edit input is not focused after double-click",
            Fault::BadPluralization => "Incorrectly pluralizes the to-do count text",
            Fault::PendingCleared => {
                "Any pending input is cleared on filter change or removal of last item"
            }
            Fault::PendingCommitted => {
                "A new item is created from pending input after non-create actions"
            }
            Fault::ToggleAllIgnoresHidden => {
                "\"Toggle all\" does not untoggle all items when certain filters are enabled"
            }
            Fault::ToggleAllHiddenByFilter => {
                "The \"Toggle all\" button disappears when the current filter contains no items"
            }
            Fault::EmptyEditZombie => {
                "Committing an empty to-do item in edit mode does not fully delete it"
            }
            Fault::EditingHidesOthers => "Editing an item hides other items",
            Fault::AddResetsFilter => "Adding an item changes the filter to \"All\"",
            Fault::AddShowsEmptyFirst => "Adding an item first shows an empty state",
        }
    }
}

/// Benign differences between passing implementations: markup wrappers,
/// storage keys, attribution footers. None of these are observable through
/// the specification's selectors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Variation {
    /// Extra wrapper `div`s around the app (descendant selectors still
    /// match).
    pub wrapper_depth: usize,
    /// The local-storage key used for persistence.
    pub storage_key: String,
    /// Whether an attribution footer is rendered outside the app.
    pub info_footer: bool,
}

impl Default for Variation {
    fn default() -> Self {
        Variation {
            wrapper_depth: 0,
            storage_key: "todos".to_owned(),
            info_footer: false,
        }
    }
}

/// The active item filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Filter {
    /// Show everything.
    All,
    /// Show uncompleted items.
    Active,
    /// Show completed items.
    Completed,
}

/// One to-do item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Todo {
    /// The item text.
    pub text: String,
    /// Completion status.
    pub completed: bool,
}

/// The TodoMVC application, parameterised by faults and benign variation.
#[derive(Debug, Clone)]
pub struct TodoMvc {
    faults: BTreeSet<Fault>,
    variation: Variation,
    todos: Vec<Todo>,
    filter: Filter,
    pending: String,
    editing: Option<usize>,
    edit_text: String,
    /// Fault 14: the list renders empty until a zero-delay timer clears
    /// this flag.
    flash_empty: bool,
    /// Fault 11: items "deleted" by committing an empty edit are kept here
    /// and resurrected by toggle-all.
    zombies: Vec<Todo>,
    /// Extension (not in Table 2): completion toggles are not persisted, so
    /// a page reload loses them. Exercised by the persistence tests that
    /// implement §4.1's future-work suggestion.
    broken_toggle_persistence: bool,
}

impl Default for TodoMvc {
    fn default() -> Self {
        TodoMvc::correct()
    }
}

impl TodoMvc {
    /// The correct implementation.
    #[must_use]
    pub fn correct() -> Self {
        TodoMvc {
            faults: BTreeSet::new(),
            variation: Variation::default(),
            todos: Vec::new(),
            filter: Filter::All,
            pending: String::new(),
            editing: None,
            edit_text: String::new(),
            flash_empty: false,
            zombies: Vec::new(),
            broken_toggle_persistence: false,
        }
    }

    /// An implementation with the given faults injected.
    #[must_use]
    pub fn with_faults(faults: impl IntoIterator<Item = Fault>) -> Self {
        TodoMvc {
            faults: faults.into_iter().collect(),
            ..TodoMvc::correct()
        }
    }

    /// Applies a benign variation (for passing registry entries).
    #[must_use]
    pub fn with_variation(mut self, variation: Variation) -> Self {
        self.variation = variation;
        self
    }

    /// An implementation that forgets to persist completion toggles — the
    /// kind of local-storage bug §4.1 expects reload testing to expose.
    /// An extension beyond Table 2's taxonomy; not in the registry.
    #[must_use]
    pub fn with_broken_toggle_persistence(mut self) -> Self {
        self.broken_toggle_persistence = true;
        self
    }

    fn has(&self, fault: Fault) -> bool {
        self.faults.contains(&fault)
    }

    /// The current items (for unit tests).
    #[must_use]
    pub fn todos(&self) -> &[Todo] {
        &self.todos
    }

    fn visible_indices(&self) -> Vec<usize> {
        self.todos
            .iter()
            .enumerate()
            .filter(|(_, t)| match self.filter {
                Filter::All => true,
                Filter::Active => !t.completed,
                Filter::Completed => t.completed,
            })
            .map(|(i, _)| i)
            .collect()
    }

    fn active_count(&self) -> usize {
        self.todos.iter().filter(|t| !t.completed).count()
    }

    fn persist(&self, ctx: &mut AppCtx<'_>) {
        let encoded: String = self
            .todos
            .iter()
            .map(|t| {
                let esc = t.text.replace('\\', "\\\\").replace('\n', "\\n");
                format!("{}{}\n", if t.completed { "1" } else { "0" }, esc)
            })
            .collect();
        ctx.storage.set(self.variation.storage_key.clone(), encoded);
    }

    fn restore(&mut self, ctx: &mut AppCtx<'_>) {
        let Some(raw) = ctx.storage.get(&self.variation.storage_key) else {
            return;
        };
        self.todos = raw
            .lines()
            .filter_map(|line| {
                let (flag, rest) =
                    line.split_at(line.char_indices().nth(1).map_or(line.len(), |(i, _)| i));
                let completed = flag == "1";
                let text = rest.replace("\\n", "\n").replace("\\\\", "\\");
                if flag.is_empty() {
                    None
                } else {
                    Some(Todo { text, completed })
                }
            })
            .collect();
    }

    fn add_pending(&mut self, ctx: &mut AppCtx<'_>) {
        let text = if self.has(Fault::BlankItemsAllowed) {
            // Fault 4: no trimming, no blank rejection (a non-empty but
            // whitespace-only input becomes a blank item).
            if self.pending.is_empty() {
                return;
            }
            self.pending.clone()
        } else {
            let trimmed = self.pending.trim();
            if trimmed.is_empty() {
                return;
            }
            trimmed.to_owned()
        };
        self.todos.push(Todo {
            text,
            completed: false,
        });
        self.pending.clear();
        if self.has(Fault::AddResetsFilter) {
            self.filter = Filter::All;
        }
        if self.has(Fault::AddShowsEmptyFirst) {
            // Fault 14: render an empty list first, repopulate async.
            self.flash_empty = true;
            ctx.clock.set_timeout("unflash", 0);
        }
        self.persist(ctx);
    }

    /// Fault 8 helper: non-create actions commit pending input.
    fn maybe_commit_pending(&mut self, ctx: &mut AppCtx<'_>) {
        if self.has(Fault::PendingCommitted) && !self.pending.trim().is_empty() {
            let text = self.pending.trim().to_owned();
            self.todos.push(Todo {
                text,
                completed: false,
            });
            self.pending.clear();
            self.persist(ctx);
        }
    }
}

impl App for TodoMvc {
    fn start(&mut self, ctx: &mut AppCtx<'_>) {
        self.restore(ctx);
    }

    #[allow(clippy::too_many_lines)]
    fn view(&self) -> El {
        let visible: Vec<usize> = if self.flash_empty {
            Vec::new()
        } else if self.has(Fault::EditingHidesOthers) && self.editing.is_some() {
            // Fault 12: only the edited item is shown. Every mutation
            // re-seats or clears `editing`, so the filter is a defensive
            // backstop: rendering must never panic on a stale index.
            self.editing
                .into_iter()
                .filter(|&i| i < self.todos.len())
                .collect()
        } else {
            self.visible_indices()
        };
        let all_completed = !self.todos.is_empty() && self.todos.iter().all(|t| t.completed);
        let items: Vec<El> = visible
            .iter()
            .map(|&i| {
                let todo = &self.todos[i];
                let editing = self.editing == Some(i);
                let mut li = El::new("li")
                    .class_if(todo.completed, "completed")
                    .class_if(editing, "editing");
                let mut view = El::new("div").class("view");
                if !self.has(Fault::NoCheckboxes) {
                    view = view.child(
                        El::new("input")
                            .class("toggle")
                            .attr("type", "checkbox")
                            .checked(todo.completed)
                            .on(EventKind::Click, format!("toggle:{i}")),
                    );
                }
                view = view
                    .child(
                        El::new("label")
                            .text(todo.text.clone())
                            .on(EventKind::DblClick, format!("edit:{i}")),
                    )
                    .child(
                        El::new("button")
                            .class("destroy")
                            .on(EventKind::Click, format!("destroy:{i}")),
                    );
                li = li.child(view);
                if editing {
                    li = li.child(
                        El::new("input")
                            .class("edit")
                            .value(self.edit_text.clone())
                            .focused(!self.has(Fault::EditNotFocused))
                            .on(EventKind::Input, "edit-input")
                            .on(EventKind::KeyDown, "edit-key"),
                    );
                }
                li
            })
            .collect();

        let count = self.active_count();
        let count_noun = if self.has(Fault::BadPluralization) {
            // Fault 6: always plural.
            "items"
        } else if count == 1 {
            "item"
        } else {
            "items"
        };
        let mut count_span = El::new("span").class("todo-count");
        if self.has(Fault::MissingStrongElement) {
            // Fault 3: plain text, no <strong>.
            count_span = count_span.text(format!("{count} {count_noun} left"));
        } else {
            count_span = count_span
                .child(El::new("strong").text(count.to_string()))
                .child(El::new("span").text(format!("{count_noun} left")));
        }

        let filter_link = |name: &str, href: &str, selected: bool, msg: &str| {
            El::new("li").child(
                El::new("a")
                    .class_if(selected, "selected")
                    .attr("href", href)
                    .text(name)
                    .on(EventKind::Click, msg),
            )
        };

        let mut footer = El::new("footer")
            .class("footer")
            .hidden_if(self.todos.is_empty() && self.zombies.is_empty())
            .child(count_span);
        if !self.has(Fault::NoFilters) {
            footer = footer.child(El::new("ul").class("filters").children([
                filter_link("All", "#/", self.filter == Filter::All, "filter:all"),
                filter_link(
                    "Active",
                    "#/active",
                    self.filter == Filter::Active,
                    "filter:active",
                ),
                filter_link(
                    "Completed",
                    "#/completed",
                    self.filter == Filter::Completed,
                    "filter:completed",
                ),
            ]));
        }
        if self.todos.iter().any(|t| t.completed) {
            footer = footer.child(
                El::new("button")
                    .class("clear-completed")
                    .text("Clear completed")
                    .on(EventKind::Click, "clear-completed"),
            );
        }

        let toggle_all_hidden = if self.has(Fault::ToggleAllHiddenByFilter) {
            // Fault 10: hidden when the *filtered view* is empty.
            visible.is_empty()
        } else {
            self.todos.is_empty() && self.zombies.is_empty()
        };

        let main = El::new("section")
            .class("main")
            .hidden_if(self.todos.is_empty() && self.zombies.is_empty() && !self.flash_empty)
            .child(
                El::new("input")
                    .id("toggle-all")
                    .class("toggle-all")
                    .attr("type", "checkbox")
                    .checked(all_completed)
                    .hidden_if(toggle_all_hidden)
                    .on(EventKind::Click, "toggle-all"),
            )
            .child(El::new("ul").class("todo-list").children(items));

        let app = El::new("section").class("todoapp").children([
            El::new("header").class("header").children([
                El::new("h1").text("todos"),
                El::new("input")
                    .class("new-todo")
                    .attr("placeholder", "What needs to be done?")
                    .value(self.pending.clone())
                    .focused(self.editing.is_none())
                    .on(EventKind::Input, "pending")
                    .on(EventKind::KeyDown, "new-key"),
            ]),
            main,
            footer,
        ]);

        let mut root = app;
        for _ in 0..self.variation.wrapper_depth {
            root = El::new("div").child(root);
        }
        if self.variation.info_footer {
            root = El::new("div").child(root).child(
                El::new("footer")
                    .class("info")
                    .text("Double-click to edit a todo"),
            );
        }
        root
    }

    #[allow(clippy::too_many_lines)]
    fn on_event(&mut self, msg: &str, payload: &Payload, ctx: &mut AppCtx<'_>) {
        match msg {
            "pending" => {
                self.pending = payload.text().to_owned();
            }
            "new-key" if payload.key() == "Enter" => {
                self.add_pending(ctx);
            }
            "edit-input" => {
                self.edit_text = payload.text().to_owned();
            }
            "edit-key" => match payload.key() {
                "Enter" => {
                    if let Some(i) = self.editing.take() {
                        let text = self.edit_text.trim().to_owned();
                        if text.is_empty() {
                            let removed = self.todos.remove(i);
                            if self.has(Fault::EmptyEditZombie) {
                                // Fault 11: kept around; toggle-all revives.
                                self.zombies.push(removed);
                            }
                        } else {
                            self.todos[i].text = text;
                        }
                        self.persist(ctx);
                    }
                }
                "Escape" => {
                    // Abort: the item keeps its pre-edit text.
                    self.editing = None;
                }
                _ => {}
            },
            "toggle-all" => {
                self.maybe_commit_pending(ctx);
                if self.has(Fault::EmptyEditZombie) && !self.zombies.is_empty() {
                    // Fault 11's visible half: zombies come back.
                    self.todos.append(&mut self.zombies);
                }
                let target = self.todos.is_empty() || !self.todos.iter().all(|t| t.completed);
                if self.has(Fault::ToggleAllIgnoresHidden) && !target {
                    // Fault 9: untoggling only touches visible items.
                    let visible = self.visible_indices();
                    for i in visible {
                        self.todos[i].completed = false;
                    }
                } else {
                    for t in &mut self.todos {
                        t.completed = target;
                    }
                }
                self.persist(ctx);
            }
            "clear-completed" => {
                self.maybe_commit_pending(ctx);
                // Re-seat the editing index across the removal, as
                // `destroy:` does — an edited completed item stops being
                // edited, an edited active item keeps its (shifted) slot.
                if let Some(e) = self.editing {
                    self.editing = match self.todos.get(e) {
                        Some(t) if !t.completed => {
                            Some(self.todos[..e].iter().filter(|t| !t.completed).count())
                        }
                        _ => None,
                    };
                }
                self.todos.retain(|t| !t.completed);
                self.persist(ctx);
            }
            _ if msg.starts_with("toggle:") => {
                if let Ok(i) = msg["toggle:".len()..].parse::<usize>() {
                    if let Some(t) = self.todos.get_mut(i) {
                        t.completed = !t.completed;
                        if !self.broken_toggle_persistence {
                            self.persist(ctx);
                        }
                    }
                }
            }
            _ if msg.starts_with("destroy:") => {
                if let Ok(i) = msg["destroy:".len()..].parse::<usize>() {
                    if i < self.todos.len() {
                        self.todos.remove(i);
                        if let Some(e) = self.editing {
                            if e == i {
                                self.editing = None;
                            } else if e > i {
                                self.editing = Some(e - 1);
                            }
                        }
                        if self.has(Fault::PendingCleared) && self.todos.is_empty() {
                            // Fault 7 (second half): removal of the last
                            // item clears pending input.
                            self.pending.clear();
                        }
                        self.persist(ctx);
                    }
                }
            }
            _ if msg.starts_with("edit:") => {
                if let Ok(i) = msg["edit:".len()..].parse::<usize>() {
                    if i < self.todos.len() {
                        self.editing = Some(i);
                        self.edit_text = self.todos[i].text.clone();
                    }
                }
            }
            _ if msg.starts_with("filter:") => {
                self.maybe_commit_pending(ctx);
                self.filter = match &msg["filter:".len()..] {
                    "active" => Filter::Active,
                    "completed" => Filter::Completed,
                    _ => Filter::All,
                };
                if self.has(Fault::PendingCleared) {
                    // Fault 7 (first half): filter changes clear pending.
                    self.pending.clear();
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, tag: &str, _ctx: &mut AppCtx<'_>) {
        if tag == "unflash" {
            self.flash_empty = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webdom::{Document, LocalStorage, VirtualClock};

    struct Harness {
        app: TodoMvc,
        clock: VirtualClock,
        storage: LocalStorage,
    }

    impl Harness {
        fn new(app: TodoMvc) -> Self {
            let mut h = Harness {
                app,
                clock: VirtualClock::new(),
                storage: LocalStorage::new(),
            };
            let mut ctx = AppCtx {
                clock: &mut h.clock,
                storage: &mut h.storage,
            };
            h.app.start(&mut ctx);
            h
        }

        fn send(&mut self, msg: &str, payload: Payload) {
            let mut ctx = AppCtx {
                clock: &mut self.clock,
                storage: &mut self.storage,
            };
            self.app.on_event(msg, &payload, &mut ctx);
        }

        fn add(&mut self, text: &str) {
            self.send("pending", Payload::Text(text.to_owned()));
            self.send("new-key", Payload::Key("Enter".to_owned()));
        }

        fn doc(&self) -> Document {
            Document::render(self.app.view())
        }

        fn texts(&self, sel: &str) -> Vec<String> {
            let doc = self.doc();
            doc.query_all(sel)
                .unwrap()
                .into_iter()
                .filter(|&n| doc.visible(n))
                .map(|n| doc.text_content(n))
                .collect()
        }

        fn count(&self, sel: &str) -> usize {
            let doc = self.doc();
            doc.query_all(sel)
                .unwrap()
                .into_iter()
                .filter(|&n| doc.visible(n))
                .count()
        }
    }

    #[test]
    fn adding_items_trims_and_rejects_blank() {
        let mut h = Harness::new(TodoMvc::correct());
        h.add("  walk the dog  ");
        h.add("   ");
        h.add("");
        assert_eq!(h.app.todos().len(), 1);
        assert_eq!(h.app.todos()[0].text, "walk the dog");
        assert_eq!(h.texts(".todo-list li label"), vec!["walk the dog"]);
    }

    #[test]
    fn fault4_allows_blank_items() {
        let mut h = Harness::new(TodoMvc::with_faults([Fault::BlankItemsAllowed]));
        h.add("   ");
        assert_eq!(h.app.todos().len(), 1);
        assert_eq!(h.app.todos()[0].text, "   ");
    }

    #[test]
    fn toggling_and_count_text() {
        let mut h = Harness::new(TodoMvc::correct());
        h.add("a");
        h.add("b");
        assert_eq!(h.texts(".todo-count"), vec!["2 items left"]);
        h.send("toggle:0", Payload::None);
        assert_eq!(h.texts(".todo-count"), vec!["1 item left"]);
        assert_eq!(h.count(".todo-list li.completed"), 1);
        assert_eq!(h.count(".toggle:checked"), 1);
    }

    #[test]
    fn fault6_always_pluralizes() {
        let mut h = Harness::new(TodoMvc::with_faults([Fault::BadPluralization]));
        h.add("a");
        assert_eq!(h.texts(".todo-count"), vec!["1 items left"]);
    }

    #[test]
    fn fault3_has_no_strong() {
        let mut h = Harness::new(TodoMvc::with_faults([Fault::MissingStrongElement]));
        h.add("a");
        assert_eq!(h.count(".todo-count strong"), 0);
        let mut ok = Harness::new(TodoMvc::correct());
        ok.add("a");
        assert_eq!(ok.count(".todo-count strong"), 1);
    }

    #[test]
    fn filters_show_the_right_items() {
        let mut h = Harness::new(TodoMvc::correct());
        h.add("active one");
        h.add("done one");
        h.send("toggle:1", Payload::None);
        h.send("filter:active", Payload::None);
        assert_eq!(h.texts(".todo-list li label"), vec!["active one"]);
        h.send("filter:completed", Payload::None);
        assert_eq!(h.texts(".todo-list li label"), vec!["done one"]);
        h.send("filter:all", Payload::None);
        assert_eq!(h.count(".todo-list li"), 2);
    }

    #[test]
    fn fault7_clears_pending_on_filter_change() {
        let mut h = Harness::new(TodoMvc::with_faults([Fault::PendingCleared]));
        h.send("pending", Payload::Text("half-typed".into()));
        h.send("filter:active", Payload::None);
        assert_eq!(h.app.pending, "");
        let mut ok = Harness::new(TodoMvc::correct());
        ok.send("pending", Payload::Text("half-typed".into()));
        ok.send("filter:active", Payload::None);
        assert_eq!(ok.app.pending, "half-typed");
    }

    #[test]
    fn fault8_commits_pending_on_toggle_all() {
        let mut h = Harness::new(TodoMvc::with_faults([Fault::PendingCommitted]));
        h.add("existing");
        h.send("pending", Payload::Text("sneaky".into()));
        h.send("toggle-all", Payload::None);
        assert_eq!(h.app.todos().len(), 2);
        assert_eq!(h.app.todos()[1].text, "sneaky");
    }

    #[test]
    fn toggle_all_checks_and_unchecks_everything() {
        let mut h = Harness::new(TodoMvc::correct());
        h.add("a");
        h.add("b");
        h.send("toggle-all", Payload::None);
        assert!(h.app.todos().iter().all(|t| t.completed));
        h.send("toggle-all", Payload::None);
        assert!(h.app.todos().iter().all(|t| !t.completed));
    }

    #[test]
    fn fault9_untoggle_misses_hidden_items() {
        let mut h = Harness::new(TodoMvc::with_faults([Fault::ToggleAllIgnoresHidden]));
        h.add("a");
        h.add("b");
        h.send("toggle-all", Payload::None); // all completed
        h.send("filter:active", Payload::None); // nothing visible
        h.send("toggle-all", Payload::None); // should untoggle all …
        assert!(
            h.app.todos().iter().all(|t| t.completed),
            "fault: hidden items stayed completed"
        );
    }

    #[test]
    fn fault10_toggle_all_hidden_when_filter_empty() {
        let mut h = Harness::new(TodoMvc::with_faults([Fault::ToggleAllHiddenByFilter]));
        h.add("a");
        h.send("toggle:0", Payload::None);
        h.send("filter:active", Payload::None); // no active items visible
        assert_eq!(h.count(".toggle-all"), 0, "toggle-all vanished");
        let mut ok = Harness::new(TodoMvc::correct());
        ok.add("a");
        ok.send("toggle:0", Payload::None);
        ok.send("filter:active", Payload::None);
        assert_eq!(ok.count(".toggle-all"), 1);
    }

    #[test]
    fn editing_commits_and_aborts() {
        let mut h = Harness::new(TodoMvc::correct());
        h.add("original");
        h.send("edit:0", Payload::None);
        assert_eq!(h.count(".todo-list li.editing"), 1);
        assert_eq!(h.count(".edit:focus"), 1);
        h.send("edit-input", Payload::Text("changed".into()));
        h.send("edit-key", Payload::Key("Enter".into()));
        assert_eq!(h.app.todos()[0].text, "changed");
        // Abort path: text reverts.
        h.send("edit:0", Payload::None);
        h.send("edit-input", Payload::Text("nope".into()));
        h.send("edit-key", Payload::Key("Escape".into()));
        assert_eq!(h.app.todos()[0].text, "changed");
    }

    #[test]
    fn fault5_edit_input_unfocused() {
        let mut h = Harness::new(TodoMvc::with_faults([Fault::EditNotFocused]));
        h.add("x");
        h.send("edit:0", Payload::None);
        assert_eq!(h.count(".edit:focus"), 0);
    }

    #[test]
    fn committing_empty_edit_deletes_item() {
        let mut h = Harness::new(TodoMvc::correct());
        h.add("to be deleted");
        h.send("edit:0", Payload::None);
        h.send("edit-input", Payload::Text("  ".into()));
        h.send("edit-key", Payload::Key("Enter".into()));
        assert!(h.app.todos().is_empty());
        h.send("toggle-all", Payload::None);
        assert!(h.app.todos().is_empty(), "no resurrection");
    }

    #[test]
    fn fault11_zombie_resurrected_by_toggle_all() {
        // The involved reproduction from §4.2: create, edit to empty,
        // commit, then toggle-all brings it back.
        let mut h = Harness::new(TodoMvc::with_faults([Fault::EmptyEditZombie]));
        h.add("lazarus");
        h.send("edit:0", Payload::None);
        h.send("edit-input", Payload::Text("".into()));
        h.send("edit-key", Payload::Key("Enter".into()));
        assert_eq!(h.count(".todo-list li"), 0, "looks deleted");
        // Filters are still visible (the footer remains), per the paper.
        assert_eq!(h.count(".filters"), 1);
        h.send("toggle-all", Payload::None);
        assert_eq!(h.app.todos().len(), 1);
        assert_eq!(h.app.todos()[0].text, "lazarus");
    }

    #[test]
    fn fault12_editing_hides_others() {
        let mut h = Harness::new(TodoMvc::with_faults([Fault::EditingHidesOthers]));
        h.add("a");
        h.add("b");
        h.send("edit:0", Payload::None);
        assert_eq!(h.count(".todo-list li"), 1);
    }

    #[test]
    fn fault13_add_resets_filter() {
        let mut h = Harness::new(TodoMvc::with_faults([Fault::AddResetsFilter]));
        h.add("a");
        h.send("filter:active", Payload::None);
        h.add("b");
        assert_eq!(h.app.filter, Filter::All);
    }

    #[test]
    fn fault14_add_flashes_empty() {
        let mut h = Harness::new(TodoMvc::with_faults([Fault::AddShowsEmptyFirst]));
        h.add("a");
        assert_eq!(h.count(".todo-list li"), 0, "transient empty state");
        // The zero-delay timer restores the list.
        let fired = h.clock.advance(1);
        for (_, tag) in fired {
            let mut ctx = AppCtx {
                clock: &mut h.clock,
                storage: &mut h.storage,
            };
            h.app.on_timer(&tag, &mut ctx);
        }
        assert_eq!(h.count(".todo-list li"), 1);
    }

    #[test]
    fn faults1_and_2_remove_ui() {
        let mut h = Harness::new(TodoMvc::with_faults([
            Fault::NoCheckboxes,
            Fault::NoFilters,
        ]));
        h.add("a");
        assert_eq!(h.count(".toggle"), 0);
        assert_eq!(h.count(".filters"), 0);
        let mut ok = Harness::new(TodoMvc::correct());
        ok.add("a");
        assert_eq!(ok.count(".toggle"), 1);
        assert_eq!(ok.count(".filters"), 1);
    }

    #[test]
    fn destroy_removes_and_clear_completed_works() {
        let mut h = Harness::new(TodoMvc::correct());
        h.add("a");
        h.add("b");
        h.add("c");
        h.send("toggle:1", Payload::None);
        h.send("clear-completed", Payload::None);
        assert_eq!(
            h.app
                .todos()
                .iter()
                .map(|t| t.text.as_str())
                .collect::<Vec<_>>(),
            vec!["a", "c"]
        );
        h.send("destroy:0", Payload::None);
        assert_eq!(h.app.todos()[0].text, "c");
    }

    #[test]
    fn persistence_roundtrip() {
        let mut clock = VirtualClock::new();
        let mut storage = LocalStorage::new();
        let mut app = TodoMvc::correct();
        {
            let mut ctx = AppCtx {
                clock: &mut clock,
                storage: &mut storage,
            };
            app.start(&mut ctx);
            app.on_event("pending", &Payload::Text("persist me".into()), &mut ctx);
            app.on_event("new-key", &Payload::Key("Enter".into()), &mut ctx);
            app.on_event("toggle:0", &Payload::None, &mut ctx);
        }
        // A "reload": fresh app, same storage.
        let mut app2 = TodoMvc::correct();
        let mut ctx = AppCtx {
            clock: &mut clock,
            storage: &mut storage,
        };
        app2.start(&mut ctx);
        assert_eq!(app2.todos().len(), 1);
        assert_eq!(app2.todos()[0].text, "persist me");
        assert!(app2.todos()[0].completed);
    }

    #[test]
    fn variations_do_not_change_observable_state() {
        let variation = Variation {
            wrapper_depth: 3,
            storage_key: "todos-vue".into(),
            info_footer: true,
        };
        let mut h = Harness::new(TodoMvc::correct().with_variation(variation));
        h.add("same");
        assert_eq!(h.texts(".todo-list li label"), vec!["same"]);
        assert_eq!(h.count(".todoapp"), 1);
        assert_eq!(h.texts(".todo-count"), vec!["1 item left"]);
    }

    #[test]
    fn empty_list_hides_main_and_footer() {
        let h = Harness::new(TodoMvc::correct());
        assert_eq!(h.count(".main"), 0);
        assert_eq!(h.count(".footer"), 0);
        assert_eq!(h.count(".new-todo"), 1);
    }

    #[test]
    fn fault_metadata_is_consistent() {
        assert_eq!(Fault::all().len(), 14);
        for (i, f) in Fault::all().iter().enumerate() {
            assert_eq!(f.number() as usize, i + 1);
            assert!(!f.description().is_empty());
        }
    }
}
