//! The three-minute egg timer of §3.2 (Figure 8).
//!
//! A start/stop toggle button (`#toggle`, text `start`/`stop`) and a label
//! (`#remaining`) with the remaining time in seconds. Started timers tick
//! once per second on the virtual clock; the Specstrom specification in
//! `specs/egg_timer.strom` describes exactly the observable protocol of
//! Figure 8.
//!
//! The paper notes that its specification "intentionally applies both to
//! timers that reset when stopped and to timers that pause when stopped";
//! this implementation pauses, and [`EggTimer::resetting`] builds the
//! other variant so tests can confirm both satisfy the spec.

use webdom::{App, AppCtx, El, EventKind, Payload};

/// What stopping the timer does to the remaining time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StopBehaviour {
    /// Keep the remaining time (resume later).
    Pause,
    /// Reset back to the full duration.
    Reset,
}

/// The egg timer application.
#[derive(Debug, Clone)]
pub struct EggTimer {
    duration_s: i64,
    remaining_s: i64,
    running: bool,
    stop_behaviour: StopBehaviour,
}

impl Default for EggTimer {
    fn default() -> Self {
        EggTimer::new()
    }
}

impl EggTimer {
    /// The standard three-minute egg timer that pauses when stopped.
    #[must_use]
    pub fn new() -> Self {
        EggTimer {
            duration_s: 180,
            remaining_s: 180,
            running: false,
            stop_behaviour: StopBehaviour::Pause,
        }
    }

    /// A variant that resets to the full duration when stopped — also
    /// conforming to the Figure 8 specification (§5.4).
    #[must_use]
    pub fn resetting() -> Self {
        EggTimer {
            stop_behaviour: StopBehaviour::Reset,
            ..EggTimer::new()
        }
    }

    /// A shorter timer, convenient for tests and examples (fewer states to
    /// run the clock down).
    #[must_use]
    pub fn with_duration(seconds: i64) -> Self {
        EggTimer {
            duration_s: seconds,
            remaining_s: seconds,
            ..EggTimer::new()
        }
    }

    /// A shorter timer that resets on stop (both behaviours conform to the
    /// Figure 8 specification, §5.4).
    #[must_use]
    pub fn resetting_with_duration(seconds: i64) -> Self {
        EggTimer {
            duration_s: seconds,
            remaining_s: seconds,
            ..EggTimer::resetting()
        }
    }

    /// Is the timer currently running?
    #[must_use]
    pub fn running(&self) -> bool {
        self.running
    }

    /// Seconds remaining.
    #[must_use]
    pub fn remaining(&self) -> i64 {
        self.remaining_s
    }
}

impl App for EggTimer {
    fn start(&mut self, _ctx: &mut AppCtx<'_>) {}

    fn view(&self) -> El {
        El::new("div").id("timer").children([
            El::new("button")
                .id("toggle")
                .text(if self.running { "stop" } else { "start" })
                .on(EventKind::Click, "toggle"),
            El::new("span")
                .id("remaining")
                .text(self.remaining_s.to_string()),
        ])
    }

    fn on_event(&mut self, msg: &str, _payload: &Payload, ctx: &mut AppCtx<'_>) {
        if msg != "toggle" {
            return;
        }
        if self.running {
            self.running = false;
            ctx.clock.cancel_tag("tick");
            if self.stop_behaviour == StopBehaviour::Reset {
                self.remaining_s = self.duration_s;
            }
        } else if self.remaining_s > 0 {
            self.running = true;
            ctx.clock.set_interval("tick", 1000);
        }
        // Starting at zero does nothing: Figure 8's `starting` transition
        // requires `if time == 0 {stopped} else {started}`.
    }

    fn on_timer(&mut self, tag: &str, ctx: &mut AppCtx<'_>) {
        if tag == "tick" && self.running {
            self.remaining_s -= 1;
            if self.remaining_s <= 0 {
                self.remaining_s = 0;
                self.running = false;
                ctx.clock.cancel_tag("tick");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webdom::{Document, LocalStorage, VirtualClock};

    fn drive(app: &mut EggTimer, clock: &mut VirtualClock, storage: &mut LocalStorage, ms: u64) {
        for (_, tag) in clock.advance(ms) {
            let mut ctx = AppCtx { clock, storage };
            app.on_timer(&tag, &mut ctx);
        }
    }

    #[test]
    fn initial_state_matches_fig8() {
        let app = EggTimer::new();
        let doc = Document::render(app.view());
        let toggle = doc.query_all("#toggle").unwrap()[0];
        let remaining = doc.query_all("#remaining").unwrap()[0];
        assert_eq!(doc.text_content(toggle), "start");
        assert_eq!(doc.text_content(remaining), "180");
    }

    #[test]
    fn ticking_counts_down_and_stops_at_zero() {
        let mut clock = VirtualClock::new();
        let mut storage = LocalStorage::new();
        let mut app = EggTimer::with_duration(3);
        {
            let mut ctx = AppCtx {
                clock: &mut clock,
                storage: &mut storage,
            };
            app.on_event("toggle", &Payload::None, &mut ctx);
        }
        assert!(app.running());
        drive(&mut app, &mut clock, &mut storage, 2000);
        assert_eq!(app.remaining(), 1);
        drive(&mut app, &mut clock, &mut storage, 1000);
        assert_eq!(app.remaining(), 0);
        assert!(!app.running(), "stops at zero");
        // The interval was cancelled: no further ticks.
        drive(&mut app, &mut clock, &mut storage, 5000);
        assert_eq!(app.remaining(), 0);
    }

    #[test]
    fn pausing_keeps_remaining_time() {
        let mut clock = VirtualClock::new();
        let mut storage = LocalStorage::new();
        let mut app = EggTimer::with_duration(10);
        {
            let mut ctx = AppCtx {
                clock: &mut clock,
                storage: &mut storage,
            };
            app.on_event("toggle", &Payload::None, &mut ctx);
        }
        drive(&mut app, &mut clock, &mut storage, 3000);
        {
            let mut ctx = AppCtx {
                clock: &mut clock,
                storage: &mut storage,
            };
            app.on_event("toggle", &Payload::None, &mut ctx);
        }
        assert!(!app.running());
        assert_eq!(app.remaining(), 7);
    }

    #[test]
    fn resetting_variant_restores_duration() {
        let mut clock = VirtualClock::new();
        let mut storage = LocalStorage::new();
        let mut app = EggTimer::resetting();
        {
            let mut ctx = AppCtx {
                clock: &mut clock,
                storage: &mut storage,
            };
            app.on_event("toggle", &Payload::None, &mut ctx);
        }
        drive(&mut app, &mut clock, &mut storage, 5000);
        assert_eq!(app.remaining(), 175);
        {
            let mut ctx = AppCtx {
                clock: &mut clock,
                storage: &mut storage,
            };
            app.on_event("toggle", &Payload::None, &mut ctx);
        }
        assert_eq!(app.remaining(), 180);
    }

    #[test]
    fn starting_at_zero_stays_stopped() {
        let mut clock = VirtualClock::new();
        let mut storage = LocalStorage::new();
        let mut app = EggTimer::with_duration(0);
        let mut ctx = AppCtx {
            clock: &mut clock,
            storage: &mut storage,
        };
        app.on_event("toggle", &Payload::None, &mut ctx);
        assert!(!app.running());
    }
}
