//! # quickstrom-apps
//!
//! The applications under test used throughout this reproduction:
//!
//! * [`counter`] — a minimal quickstart app.
//! * [`egg_timer`] — the three-minute egg timer worked example of §3.2
//!   (Figure 8): a start/stop toggle and a remaining-seconds label driven
//!   by a one-second timer.
//! * [`menu`] — the §2.1 motivating example: a menu that disables itself
//!   briefly after use and re-enables asynchronously (the app whose
//!   correct behaviour RV-LTL flags spuriously and QuickLTL does not).
//! * [`todomvc`] — a complete TodoMVC implementation with the fault
//!   taxonomy of Table 2 as injectable faults.
//! * [`registry`] — the 43 named "implementations" reproducing Table 1's
//!   pass/fail split (see DESIGN.md, *Substitutions*).
//! * [`bigtable`] — a sortable/filterable data grid with hundreds of rows:
//!   the large-DOM workload the incremental snapshot pipeline is measured
//!   on (specs/bigtable.strom, the `bigtable` bench).
//! * [`wizard`] — a five-step gated checkout flow: the deep-state
//!   corridor workload the coverage-guided exploration engine is measured
//!   on (specs/wizard.strom, `evalharness coverage-compare`).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod bigtable;
pub mod counter;
pub mod egg_timer;
pub mod menu;
pub mod registry;
pub mod todomvc;
pub mod wizard;

pub use bigtable::BigTable;
pub use counter::Counter;
pub use egg_timer::EggTimer;
pub use menu::MenuApp;
pub use registry::{Entry, Maturity, REGISTRY};
pub use todomvc::{Fault, TodoMvc, Variation};
pub use wizard::Wizard;
