//! BigTable: a sortable, filterable data grid with hundreds of rows — the
//! large-DOM stress workload for the incremental snapshot pipeline.
//!
//! TodoMVC documents stay small (a handful of items); this app is the
//! opposite regime: the instrumented selectors match hundreds of elements,
//! while each user action touches at most a couple of them. A full
//! snapshot per protocol message costs O(rows); a `SnapshotDelta` (see
//! the `quickstrom-protocol` crate) costs O(1) for a row selection or a
//! cell bump. `specs/bigtable.strom` states the grid's
//! safety property, and the `bigtable` Criterion bench measures the
//! delta-versus-full gap where it actually matters.
//!
//! The grid:
//!
//! * `#total-count` / `#shown-count` — total rows and rows matching the
//!   current filter.
//! * `.grid-row` — one `<tr>` per visible row with `.cell-id`,
//!   `.cell-name`, `.cell-value` cells; clicking a row selects it
//!   (`.selected`), clicking its value cell bumps the value by one.
//! * `#sort-id` / `#sort-name` / `#sort-value` — stable re-sorts.
//! * `#filter-all` / `#filter-high` / `#filter-low` — value filters
//!   (high means `value >= 500`); a selected row that drops out of the
//!   filter is deselected, and `#selected-name` always mirrors the
//!   selected row's name cell (empty when nothing is selected).

use webdom::{App, AppCtx, El, EventKind, Payload};

/// The filter threshold between "low" and "high" rows.
const HIGH_THRESHOLD: i64 = 500;

/// The sort orders of the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortKey {
    /// By row id (the initial order).
    Id,
    /// By name, then id.
    Name,
    /// By value, then id.
    Value,
}

/// The value filters of the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Filter {
    /// Every row.
    All,
    /// Rows with `value >= 500`.
    High,
    /// Rows with `value < 500`.
    Low,
}

/// One data row.
#[derive(Debug, Clone)]
struct Row {
    id: u32,
    name: String,
    value: i64,
}

/// A deterministic pseudo-random value from a row id (SplitMix64
/// finalizer), so every `BigTable::new()` renders the same data set.
fn row_value(id: u32) -> i64 {
    let mut z = u64::from(id).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    #[allow(clippy::cast_possible_truncation)]
    {
        ((z ^ (z >> 31)) % 1000) as i64
    }
}

const NAME_WORDS: &[&str] = &[
    "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel", "india", "juliett",
    "kilo", "lima", "mike", "november", "oscar", "papa", "quebec", "romeo", "sierra", "tango",
];

/// A sortable, filterable data grid under test.
#[derive(Debug, Clone)]
pub struct BigTable {
    rows: Vec<Row>,
    sort: SortKey,
    filter: Filter,
    selected: Option<u32>,
}

impl Default for BigTable {
    fn default() -> Self {
        BigTable::new()
    }
}

impl BigTable {
    /// The default grid: 250 rows of deterministic data.
    #[must_use]
    pub fn new() -> Self {
        BigTable::with_rows(250)
    }

    /// A grid with `n` rows (the benches scale this).
    #[must_use]
    pub fn with_rows(n: u32) -> Self {
        let rows = (0..n)
            .map(|id| Row {
                id,
                name: format!("{}-{id:04}", NAME_WORDS[(id as usize) % NAME_WORDS.len()]),
                value: row_value(id),
            })
            .collect();
        BigTable {
            rows,
            sort: SortKey::Id,
            filter: Filter::All,
            selected: None,
        }
    }

    /// The number of rows in the data set (not the filtered view).
    #[must_use]
    pub fn total_rows(&self) -> usize {
        self.rows.len()
    }

    fn matches_filter(&self, row: &Row) -> bool {
        match self.filter {
            Filter::All => true,
            Filter::High => row.value >= HIGH_THRESHOLD,
            Filter::Low => row.value < HIGH_THRESHOLD,
        }
    }

    /// The visible rows: filtered, then stably sorted by the active key.
    fn visible(&self) -> Vec<&Row> {
        let mut rows: Vec<&Row> = self
            .rows
            .iter()
            .filter(|r| self.matches_filter(r))
            .collect();
        match self.sort {
            SortKey::Id => rows.sort_by_key(|r| r.id),
            SortKey::Name => rows.sort_by(|a, b| a.name.cmp(&b.name).then(a.id.cmp(&b.id))),
            SortKey::Value => rows.sort_by(|a, b| a.value.cmp(&b.value).then(a.id.cmp(&b.id))),
        }
        rows
    }

    /// Drops the selection when the selected row no longer matches the
    /// filter — the invariant `#selected-name` mirrors a *visible* row.
    fn revalidate_selection(&mut self) {
        if let Some(id) = self.selected {
            let still_visible = self
                .rows
                .iter()
                .any(|r| r.id == id && self.matches_filter(r));
            if !still_visible {
                self.selected = None;
            }
        }
    }

    fn selected_name(&self) -> &str {
        self.selected
            .and_then(|id| self.rows.iter().find(|r| r.id == id))
            .map_or("", |r| r.name.as_str())
    }
}

impl App for BigTable {
    fn start(&mut self, _ctx: &mut AppCtx<'_>) {}

    fn view(&self) -> El {
        let visible = self.visible();
        let filter_button = |id: &str, label: &str, active: bool, msg: &str| {
            El::new("button")
                .id(id)
                .class_if(active, "active")
                .text(label)
                .on(EventKind::Click, msg)
        };
        El::new("div").id("bigtable").children([
            El::new("header").children([
                El::new("button")
                    .id("sort-id")
                    .text("sort by id")
                    .on(EventKind::Click, "sort:id"),
                El::new("button")
                    .id("sort-name")
                    .text("sort by name")
                    .on(EventKind::Click, "sort:name"),
                El::new("button")
                    .id("sort-value")
                    .text("sort by value")
                    .on(EventKind::Click, "sort:value"),
                filter_button(
                    "filter-all",
                    "all",
                    self.filter == Filter::All,
                    "filter:all",
                ),
                filter_button(
                    "filter-high",
                    "high",
                    self.filter == Filter::High,
                    "filter:high",
                ),
                filter_button(
                    "filter-low",
                    "low",
                    self.filter == Filter::Low,
                    "filter:low",
                ),
                El::new("span")
                    .id("shown-count")
                    .text(visible.len().to_string()),
                El::new("span")
                    .id("total-count")
                    .text(self.rows.len().to_string()),
                El::new("span")
                    .id("selected-name")
                    .text(self.selected_name()),
            ]),
            El::new("table").child(El::new("tbody").children(visible.iter().map(|row| {
                El::new("tr")
                    .class("grid-row")
                    .class_if(self.selected == Some(row.id), "selected")
                    .on(EventKind::Click, format!("select:{}", row.id))
                    .children([
                        El::new("td").class("cell-id").text(row.id.to_string()),
                        El::new("td").class("cell-name").text(row.name.clone()),
                        El::new("td")
                            .class("cell-value")
                            .text(row.value.to_string())
                            .on(EventKind::Click, format!("bump:{}", row.id)),
                    ])
            }))),
        ])
    }

    fn on_event(&mut self, msg: &str, _payload: &Payload, _ctx: &mut AppCtx<'_>) {
        if let Some(id) = msg.strip_prefix("select:") {
            if let Ok(id) = id.parse::<u32>() {
                self.selected = Some(id);
            }
        } else if let Some(id) = msg.strip_prefix("bump:") {
            if let Ok(id) = id.parse::<u32>() {
                if let Some(row) = self.rows.iter_mut().find(|r| r.id == id) {
                    row.value += 1;
                }
                self.revalidate_selection();
            }
        } else {
            match msg {
                "sort:id" => self.sort = SortKey::Id,
                "sort:name" => self.sort = SortKey::Name,
                "sort:value" => self.sort = SortKey::Value,
                "filter:all" => self.filter = Filter::All,
                "filter:high" => self.filter = Filter::High,
                "filter:low" => self.filter = Filter::Low,
                _ => {}
            }
            self.revalidate_selection();
        }
    }

    fn on_timer(&mut self, _tag: &str, _ctx: &mut AppCtx<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use webdom::{Document, LocalStorage, VirtualClock};

    fn ctx_parts() -> (VirtualClock, LocalStorage) {
        (VirtualClock::new(), LocalStorage::new())
    }

    #[test]
    fn renders_all_rows_with_counts() {
        let app = BigTable::with_rows(40);
        let doc = Document::render(app.view());
        assert_eq!(doc.query_all(".grid-row").unwrap().len(), 40);
        let shown = doc.query_all("#shown-count").unwrap()[0];
        assert_eq!(doc.text_content(shown), "40");
        let total = doc.query_all("#total-count").unwrap()[0];
        assert_eq!(doc.text_content(total), "40");
    }

    #[test]
    fn filters_partition_the_rows() {
        let (mut clock, mut storage) = ctx_parts();
        let mut ctx = AppCtx {
            clock: &mut clock,
            storage: &mut storage,
        };
        let mut app = BigTable::with_rows(100);
        app.on_event("filter:high", &Payload::None, &mut ctx);
        let high = app.visible().len();
        app.on_event("filter:low", &Payload::None, &mut ctx);
        let low = app.visible().len();
        assert_eq!(high + low, 100);
        assert!(high > 0 && low > 0, "the data set straddles the threshold");
    }

    #[test]
    fn sorting_is_stable_and_total_preserving() {
        let (mut clock, mut storage) = ctx_parts();
        let mut ctx = AppCtx {
            clock: &mut clock,
            storage: &mut storage,
        };
        let mut app = BigTable::with_rows(50);
        app.on_event("sort:name", &Payload::None, &mut ctx);
        let names: Vec<String> = app.visible().iter().map(|r| r.name.clone()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert_eq!(app.visible().len(), 50);
        app.on_event("sort:value", &Payload::None, &mut ctx);
        let values: Vec<i64> = app.visible().iter().map(|r| r.value).collect();
        assert!(values.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn selection_mirrors_the_name_and_survives_sorts_but_not_filters() {
        let (mut clock, mut storage) = ctx_parts();
        let mut ctx = AppCtx {
            clock: &mut clock,
            storage: &mut storage,
        };
        let mut app = BigTable::with_rows(30);
        // Select a low-value row, then filter to high: deselected.
        let low_id = app
            .rows
            .iter()
            .find(|r| r.value < HIGH_THRESHOLD)
            .map(|r| r.id)
            .expect("a low row exists");
        app.on_event(&format!("select:{low_id}"), &Payload::None, &mut ctx);
        assert_eq!(app.selected, Some(low_id));
        let doc = Document::render(app.view());
        assert_eq!(doc.query_all(".grid-row.selected").unwrap().len(), 1);
        let label = doc.query_all("#selected-name").unwrap()[0];
        let cell = doc.query_all(".grid-row.selected .cell-name").unwrap()[0];
        assert_eq!(doc.text_content(label), doc.text_content(cell));
        app.on_event("sort:value", &Payload::None, &mut ctx);
        assert_eq!(app.selected, Some(low_id), "sorting keeps the selection");
        app.on_event("filter:high", &Payload::None, &mut ctx);
        assert_eq!(app.selected, None, "filtered-out rows are deselected");
        let doc = Document::render(app.view());
        let label = doc.query_all("#selected-name").unwrap()[0];
        assert_eq!(doc.text_content(label), "");
    }

    #[test]
    fn bumping_edits_one_value() {
        let (mut clock, mut storage) = ctx_parts();
        let mut ctx = AppCtx {
            clock: &mut clock,
            storage: &mut storage,
        };
        let mut app = BigTable::with_rows(10);
        let before = app.rows[3].value;
        app.on_event("bump:3", &Payload::None, &mut ctx);
        assert_eq!(app.rows[3].value, before + 1);
        // Cell clicks route to the bump handler, not the row select.
        let doc = Document::render(app.view());
        let cells = doc.query_all(".cell-value").unwrap();
        let handler = doc.handler(cells[0], EventKind::Click).unwrap();
        assert!(handler.starts_with("bump:"), "{handler}");
    }
}
