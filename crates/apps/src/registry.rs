//! The 43-implementation TodoMVC registry reproducing Table 1.
//!
//! Each entry names one of the implementations the paper evaluated (from
//! the TodoMVC repository at commit 41ba86d) together with its maturity
//! label and the faults our reproduction injects into it. The 23 passing
//! implementations carry only benign [`Variation`]s; the 20 failing ones
//! carry the faults of Table 2.
//!
//! Fault attribution follows Table 2's per-fault counts, which §4.2's prose
//! confirms (problem 7 "the most common fault at four implementations",
//! problem 8 "also appeared in multiple implementations"); `vanilla-es6`
//! carries two faults (8 and 3) as printed in Table 1. The arXiv text's
//! superscript markers for problems 4 and 7 do not reconcile with the
//! row counts after text extraction, so problem 4 is attributed to the two
//! implementations sharing its marker (`angularjs`, `mithril`) — see
//! DESIGN.md, *Substitutions*.

use crate::todomvc::{Fault, TodoMvc, Variation};

/// Maturity of a TodoMVC implementation on the official site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Maturity {
    /// Still under evaluation by the TodoMVC team.
    Beta,
    /// A fully listed implementation.
    Mature,
}

/// One registry entry.
#[derive(Debug, Clone)]
pub struct Entry {
    /// The implementation name as listed in Table 1.
    pub name: &'static str,
    /// Beta or mature.
    pub maturity: Maturity,
    /// The injected faults (empty for passing implementations).
    pub faults: &'static [Fault],
    /// Benign markup/storage variation.
    wrapper_depth: usize,
    info_footer: bool,
}

impl Entry {
    /// Does the paper's Table 1 list this implementation as failing?
    #[must_use]
    pub fn expected_to_fail(&self) -> bool {
        !self.faults.is_empty()
    }

    /// Builds the implementation's app instance.
    #[must_use]
    pub fn build(&self) -> TodoMvc {
        TodoMvc::with_faults(self.faults.iter().copied()).with_variation(Variation {
            wrapper_depth: self.wrapper_depth,
            storage_key: format!("todos-{}", self.name),
            info_footer: self.info_footer,
        })
    }
}

const fn passing(name: &'static str, maturity: Maturity, wrapper_depth: usize) -> Entry {
    Entry {
        name,
        maturity,
        faults: &[],
        wrapper_depth,
        info_footer: wrapper_depth.is_multiple_of(2),
    }
}

const fn failing(name: &'static str, maturity: Maturity, faults: &'static [Fault]) -> Entry {
    Entry {
        name,
        maturity,
        faults,
        wrapper_depth: 0,
        info_footer: false,
    }
}

/// The 43 implementations of the evaluation (Table 1): 23 passing
/// (9 beta, 14 mature) and 20 failing (8 beta, 12 mature).
pub const REGISTRY: &[Entry] = &[
    // ------------------------------------------------------ passing, beta
    passing("binding-scala", Maturity::Beta, 1),
    passing("closure", Maturity::Beta, 0),
    passing("enyo_backbone", Maturity::Beta, 2),
    passing("exoskeleton", Maturity::Beta, 0),
    passing("js_of_ocaml", Maturity::Beta, 1),
    passing("jsblocks", Maturity::Beta, 3),
    passing("knockback", Maturity::Beta, 0),
    passing("kotlin-react", Maturity::Beta, 2),
    passing("react-alt", Maturity::Beta, 1),
    // ---------------------------------------------------- passing, mature
    passing("angularjs_require", Maturity::Mature, 0),
    passing("aurelia", Maturity::Mature, 1),
    passing("backbone_require", Maturity::Mature, 0),
    passing("backbone", Maturity::Mature, 2),
    passing("emberjs", Maturity::Mature, 1),
    passing("knockoutjs", Maturity::Mature, 0),
    passing("react-backbone", Maturity::Mature, 2),
    passing("react", Maturity::Mature, 1),
    passing("riotjs", Maturity::Mature, 0),
    passing("scalajs-react", Maturity::Mature, 3),
    passing("typescript-angular", Maturity::Mature, 0),
    passing("typescript-backbone", Maturity::Mature, 1),
    passing("typescript-react", Maturity::Mature, 2),
    passing("vue", Maturity::Mature, 0),
    // ------------------------------------------------------ failing, beta
    failing("angular-dart", Maturity::Beta, &[Fault::AddShowsEmptyFirst]),
    failing("canjs_require", Maturity::Beta, &[Fault::AddResetsFilter]),
    failing("dijon", Maturity::Beta, &[Fault::NoFilters]),
    failing("dojo", Maturity::Beta, &[Fault::ToggleAllIgnoresHidden]),
    failing("duel", Maturity::Beta, &[Fault::PendingCleared]),
    failing("lavaca_require", Maturity::Beta, &[Fault::PendingCleared]),
    failing("ractive", Maturity::Beta, &[Fault::EditingHidesOthers]),
    failing("reagent", Maturity::Beta, &[Fault::PendingCleared]),
    // ---------------------------------------------------- failing, mature
    failing("angular2_es2015", Maturity::Mature, &[Fault::NoCheckboxes]),
    failing("angular2", Maturity::Mature, &[Fault::EditNotFocused]),
    failing("angularjs", Maturity::Mature, &[Fault::BlankItemsAllowed]),
    failing(
        "backbone_marionette",
        Maturity::Mature,
        &[Fault::EmptyEditZombie],
    ),
    failing("canjs", Maturity::Mature, &[Fault::AddResetsFilter]),
    failing("elm", Maturity::Mature, &[Fault::PendingCleared]),
    failing(
        "jquery",
        Maturity::Mature,
        &[Fault::ToggleAllHiddenByFilter],
    ),
    failing("knockoutjs_require", Maturity::Mature, &[Fault::NoFilters]),
    failing("mithril", Maturity::Mature, &[Fault::BlankItemsAllowed]),
    failing("polymer", Maturity::Mature, &[Fault::BadPluralization]),
    failing(
        "vanilla-es6",
        Maturity::Mature,
        &[Fault::PendingCommitted, Fault::MissingStrongElement],
    ),
    failing("vanillajs", Maturity::Mature, &[Fault::PendingCommitted]),
];

/// The registry entry with the given name.
///
/// # Examples
///
/// Looking an implementation up and checking it end to end:
///
/// ```
/// use quickstrom_apps::registry;
///
/// let vue = registry::by_name("vue").expect("listed in Table 1");
/// assert!(!vue.expected_to_fail());
/// let elm = registry::by_name("elm").expect("listed in Table 1");
/// assert_eq!(
///     elm.faults.iter().map(|f| f.number()).collect::<Vec<_>>(),
///     vec![7],
/// );
/// assert!(registry::by_name("svelte").is_none()); // not in the 2022 sweep
/// ```
#[must_use]
pub fn by_name(name: &str) -> Option<&'static Entry> {
    REGISTRY.iter().find(|e| e.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn table1_counts() {
        assert_eq!(REGISTRY.len(), 43);
        let passed: Vec<&Entry> = REGISTRY.iter().filter(|e| !e.expected_to_fail()).collect();
        let failed: Vec<&Entry> = REGISTRY.iter().filter(|e| e.expected_to_fail()).collect();
        assert_eq!(passed.len(), 23);
        assert_eq!(failed.len(), 20);
        let beta = |es: &[&Entry]| es.iter().filter(|e| e.maturity == Maturity::Beta).count();
        assert_eq!(beta(&passed), 9, "passed: 9 beta");
        assert_eq!(passed.len() - beta(&passed), 14, "passed: 14 mature");
        assert_eq!(beta(&failed), 8, "failed: 8 beta");
        assert_eq!(failed.len() - beta(&failed), 12, "failed: 12 mature");
    }

    #[test]
    fn table2_fault_counts() {
        let mut counts: BTreeMap<u8, usize> = BTreeMap::new();
        for entry in REGISTRY {
            for fault in entry.faults {
                *counts.entry(fault.number()).or_default() += 1;
            }
        }
        // Table 2 counts; problem 4 is 2 (angularjs + mithril, sharing the
        // superscript marker) — see the module docs for the reconciliation.
        let expected: &[(u8, usize)] = &[
            (1, 1),
            (2, 2),
            (3, 1),
            (4, 2),
            (5, 1),
            (6, 1),
            (7, 4),
            (8, 2),
            (9, 1),
            (10, 1),
            (11, 1),
            (12, 1),
            (13, 2),
            (14, 1),
        ];
        for &(n, c) in expected {
            assert_eq!(counts.get(&n), Some(&c), "fault {n}");
        }
        let total: usize = counts.values().sum();
        assert_eq!(total, 21, "20 failing impls, one with two faults");
    }

    #[test]
    fn names_are_unique_and_lookup_works() {
        let mut names: Vec<&str> = REGISTRY.iter().map(|e| e.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate registry names");
        assert!(by_name("vue").is_some());
        assert!(by_name("vanilla-es6").unwrap().expected_to_fail());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn entries_build_apps() {
        for entry in REGISTRY {
            let app = entry.build();
            // Faulty builds carry their fault set; passing builds do not.
            assert_eq!(entry.expected_to_fail(), !entry.faults.is_empty());
            drop(app);
        }
    }

    #[test]
    fn storage_keys_are_distinct_per_implementation() {
        // Two different implementations must not share persisted state.
        let a = by_name("react").unwrap().build();
        let b = by_name("vue").unwrap().build();
        // The variation is internal; build distinct apps and verify via
        // their debug representation containing distinct storage keys.
        let da = format!("{a:?}");
        let db = format!("{b:?}");
        assert!(da.contains("todos-react"));
        assert!(db.contains("todos-vue"));
    }
}
