//! Differential semantics harness for the evaluation automata
//! (`quickltl::automaton`), pinning them to the formula-progression
//! stepper and to per-prefix unroll verdicts.
//!
//! Three families of properties:
//!
//! 1. **Verdict equivalence** — on random formulae and random finite
//!    traces, the [`EagerAutomaton`] emits exactly the stepper's
//!    [`StepReport`] at every state, the same running outcome as a fresh
//!    per-prefix [`check_trace`] unroll, and the same forced end-of-trace
//!    fallback. Likewise the memoized [`TransitionTable`], driven with
//!    constant observations.
//! 2. **Enumeration termination** — compiling any formula terminates with
//!    either an automaton of at most `max_states` states or a clean
//!    [`EagerError`]; it never loops or overshoots the cap.
//! 3. **Canonical-form invariants** — every enumerated residual state is a
//!    `simplify` fixpoint, so the state space the automaton interns is
//!    exactly the simplifier's normal-form space.

use proptest::prelude::*;
use quickltl::automaton::{canonicalize, EagerAutomaton, EagerCaps, EagerError};
use quickltl::{
    check_trace, simplify, AtomId, Evaluator, Formula, Observation, Outcome, StepReport,
    TableError, TableStep, TransitionTable,
};

type F = Formula<u8>;

/// A state is a bitmask of true propositions (propositions are 0..8).
type State = u8;

fn eval(p: &u8, s: &State) -> bool {
    s & (1 << (p % 8)) != 0
}

/// Random formulae over atoms 0..4 (same generator as `properties.rs`).
fn formula(depth: u32, with_required: bool, max_demand: u32) -> BoxedStrategy<F> {
    let leaf = prop_oneof![
        (0u8..4).prop_map(Formula::Atom),
        Just(Formula::Top),
        Just(Formula::Bottom),
    ];
    leaf.prop_recursive(depth, 64, 2, move |inner| {
        let demand = 0..=max_demand;
        let unary = prop_oneof![
            inner.clone().prop_map(|f| f.not()),
            inner.clone().prop_map(Formula::weak_next),
            inner.clone().prop_map(Formula::strong_next),
            (demand.clone(), inner.clone()).prop_map(|(n, f)| Formula::always(n, f)),
            (demand.clone(), inner.clone()).prop_map(|(n, f)| Formula::eventually(n, f)),
        ];
        let binary = prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (demand.clone(), inner.clone(), inner.clone())
                .prop_map(|(n, a, b)| Formula::until(n, a, b)),
            (demand.clone(), inner.clone(), inner.clone())
                .prop_map(|(n, a, b)| Formula::release(n, a, b)),
        ];
        if with_required {
            prop_oneof![unary, binary, inner.prop_map(Formula::next)].boxed()
        } else {
            prop_oneof![unary, binary].boxed()
        }
    })
    .boxed()
}

fn trace_strategy() -> impl Strategy<Value = Vec<State>> {
    prop::collection::vec(any::<u8>(), 1..10)
}

/// Caps generous enough that most generated formulae compile; the
/// equivalence properties silently skip the (terminating, error-reporting)
/// remainder, which the termination property covers.
const CAPS: EagerCaps = EagerCaps {
    max_states: 4096,
    max_live_atoms: 8,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The eager automaton replays the stepper bit for bit: the same
    /// `StepReport` at every state of every random trace, the same
    /// running outcome as a fresh per-prefix unroll (`check_trace`), and
    /// the same forced end-of-trace fallback at every stop point.
    #[test]
    fn eager_automaton_matches_stepper_and_prefix_unrolls(
        f in formula(3, true, 3),
        trace in trace_strategy(),
    ) {
        if let Ok(auto) = EagerAutomaton::compile(f.clone(), &CAPS) {
            let mut runner = auto.runner();
            let mut stepper = Evaluator::new(f.clone());
            prop_assert_eq!(runner.forced_outcome(), stepper.forced_outcome());
            for (k, s) in trace.iter().enumerate() {
                let a = runner
                    .observe(&mut |p| Ok::<_, std::convert::Infallible>(eval(p, s)))
                    .unwrap();
                let e = stepper
                    .observe(&mut |p| Ok::<_, std::convert::Infallible>(eval(p, s)))
                    .unwrap();
                prop_assert_eq!(a, e, "report diverged at state {} of {:?}", k, trace);
                // The running outcome equals a from-scratch unroll of the
                // prefix observed so far.
                let oracle = check_trace(f.clone(), &trace[..=k], &mut |p, s| {
                    Ok::<_, std::convert::Infallible>(eval(p, s))
                })
                .unwrap();
                prop_assert_eq!(
                    runner.outcome(),
                    oracle,
                    "outcome != prefix unroll after {} states of {:?} for {}",
                    k + 1,
                    trace,
                    f
                );
                prop_assert_eq!(
                    runner.forced_outcome(),
                    stepper.forced_outcome(),
                    "forced outcome diverged after {} states of {:?} for {}",
                    k + 1,
                    trace,
                    f
                );
            }
        }
    }

    /// Residual enumeration always terminates: compilation either returns
    /// an automaton within the state cap or reports a clean cap error —
    /// and with only four distinct atoms in play, the live-atom cap of 8
    /// is unreachable.
    #[test]
    fn residual_enumeration_terminates_within_cap(f in formula(3, true, 3)) {
        match EagerAutomaton::compile(f, &CAPS) {
            Ok(auto) => {
                prop_assert!(auto.state_count() >= 1);
                prop_assert!(
                    auto.state_count() <= CAPS.max_states,
                    "{} states exceeds the {} cap",
                    auto.state_count(),
                    CAPS.max_states
                );
            }
            Err(EagerError::TooManyStates { cap }) => {
                prop_assert_eq!(cap, CAPS.max_states);
            }
            Err(e @ EagerError::TooManyLiveAtoms { .. }) => {
                prop_assert!(false, "only 4 atoms exist, yet: {}", e);
            }
        }
    }

    /// Every enumerated residual state is a `simplify` fixpoint: the
    /// automaton interns exactly the simplifier's normal forms, so two
    /// runs reaching semantically re-simplifiable residuals share states.
    #[test]
    fn enumerated_states_are_simplify_fixpoints(f in formula(3, true, 3)) {
        if let Ok(auto) = EagerAutomaton::compile(f, &CAPS) {
            for state in auto.state_formulas() {
                prop_assert_eq!(
                    &simplify(state.clone()),
                    state,
                    "state is not a simplify fixpoint: {}",
                    state
                );
            }
        }
    }

    /// The memoized transition table, driven with constant observations
    /// and explicit id ↦ atom rebinding — exactly the checker's protocol,
    /// minus thunk expansion — replays the stepper bit for bit, and never
    /// interns more states than its cap.
    #[test]
    fn transition_table_matches_stepper(
        f in formula(3, true, 3),
        trace in trace_strategy(),
    ) {
        // Abstract the u8 atoms into contiguous ids, keeping bindings.
        let mut atoms: Vec<u8> = Vec::new();
        f.for_each_atom(&mut |p: &u8| {
            if !atoms.contains(p) {
                atoms.push(*p);
            }
        });
        let abstracted = f.clone().map_atoms(&mut |p| {
            atoms.iter().position(|q| *q == p).unwrap() as AtomId
        });
        let (canonical, canon_sources) = canonicalize(abstracted);
        let mut bindings: Vec<u8> = canon_sources
            .iter()
            .map(|&i| atoms[i as usize])
            .collect();
        let cap = 512;
        let mut table = TransitionTable::new(canonical, cap);
        let mut state = table.start();
        let mut stepper = Evaluator::new(f.clone());
        let mut done: Option<bool> = None;
        let mut overflowed = false;
        for s in &trace {
            let e = stepper
                .observe(&mut |p| Ok::<_, std::convert::Infallible>(eval(p, s)))
                .unwrap();
            if overflowed {
                continue; // cap hit: the checker would have fallen back
            }
            let a = if let Some(b) = done {
                StepReport::Definitive(b)
            } else {
                let obs: Observation = table
                    .live_atoms(state)
                    .iter()
                    .map(|&id| (id, Formula::constant(eval(&bindings[id as usize], s))))
                    .collect();
                match table.step(state, &obs) {
                    Ok((TableStep::Done(b), _)) => {
                        done = Some(b);
                        StepReport::Definitive(b)
                    }
                    Ok((TableStep::Goto { state: next, presumptive, sources }, _)) => {
                        bindings = sources
                            .iter()
                            .map(|&src| bindings[src as usize])
                            .collect();
                        state = next;
                        StepReport::Continue { presumptive }
                    }
                    Err(TableError::CapExceeded { .. }) => {
                        overflowed = true;
                        continue;
                    }
                    Err(e) => {
                        prop_assert!(false, "constant observations under-saturated: {}", e);
                        unreachable!()
                    }
                }
            };
            prop_assert_eq!(a, e, "table diverged from stepper on {:?} for {}", trace, f);
            // Forced stops agree at every intermediate point too,
            // mirroring `Evaluator::forced_outcome`: the last report's
            // regular outcome when it yields one, otherwise the state's
            // end-of-trace default. The table keeps residuals
            // un-resimplified (beyond renaming), so its defaults are the
            // stepper's exactly.
            let forced = match a.outcome() {
                Outcome::Verdict(v) => Outcome::Verdict(v),
                Outcome::MoreStatesNeeded => Outcome::Verdict(quickltl::Verdict::presumably(
                    table.forced_default(state),
                )),
            };
            prop_assert_eq!(
                forced,
                stepper.forced_outcome(),
                "forced outcome diverged on {:?} for {}",
                trace,
                f
            );
        }
        prop_assert!(
            table.state_count() <= cap,
            "table interned {} states over the {} cap",
            table.state_count(),
            cap
        );
    }
}
