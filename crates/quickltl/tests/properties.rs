//! Property-based tests for QuickLTL (experiments E6/E7 in DESIGN.md).
//!
//! These validate the paper's Figure 3 identities, the Figure 5/6
//! expansions, and the soundness of formula progression against the
//! classical infinite-trace semantics and the Pnueli finite-trace baseline.

use proptest::prelude::*;
use quickltl::finite::fltl;
use quickltl::infinite::{holds, Lasso};
use quickltl::{check_trace, parse, simplify, Formula, Outcome, Verdict};

type F = Formula<u8>;

/// A state is a bitmask of true propositions (propositions are 0..8).
type State = u8;

fn eval(p: &u8, s: &State) -> bool {
    s & (1 << (p % 8)) != 0
}

/// Strategy for formulae. `next_ops` controls whether the three next
/// operators (and positive demands) may appear; disabling them yields the
/// RV-LTL-comparable fragment.
fn formula(depth: u32, with_required: bool, max_demand: u32) -> BoxedStrategy<F> {
    let leaf = prop_oneof![
        (0u8..4).prop_map(Formula::Atom),
        Just(Formula::Top),
        Just(Formula::Bottom),
    ];
    leaf.prop_recursive(depth, 64, 2, move |inner| {
        let demand = 0..=max_demand;
        let unary = prop_oneof![
            inner.clone().prop_map(|f| f.not()),
            inner.clone().prop_map(Formula::weak_next),
            inner.clone().prop_map(Formula::strong_next),
            (demand.clone(), inner.clone()).prop_map(|(n, f)| Formula::always(n, f)),
            (demand.clone(), inner.clone()).prop_map(|(n, f)| Formula::eventually(n, f)),
        ];
        let binary = prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (demand.clone(), inner.clone(), inner.clone())
                .prop_map(|(n, a, b)| Formula::until(n, a, b)),
            (demand.clone(), inner.clone(), inner.clone())
                .prop_map(|(n, a, b)| Formula::release(n, a, b)),
        ];
        if with_required {
            prop_oneof![unary, binary, inner.prop_map(Formula::next)].boxed()
        } else {
            prop_oneof![unary, binary].boxed()
        }
    })
    .boxed()
}

fn lasso_strategy() -> impl Strategy<Value = Lasso<State>> {
    (
        prop::collection::vec(any::<u8>(), 0..6),
        prop::collection::vec(any::<u8>(), 1..5),
    )
        .prop_map(|(stem, cycle)| Lasso::new(stem, cycle).expect("cycle non-empty"))
}

fn trace_strategy() -> impl Strategy<Value = Vec<State>> {
    prop::collection::vec(any::<u8>(), 1..10)
}

fn progress_outcome(f: F, trace: &[State]) -> Outcome {
    check_trace(f, trace, &mut |p, s| {
        Ok::<_, std::convert::Infallible>(eval(p, s))
    })
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `simplify` is idempotent: its output is a fixed point. The
    /// simplifier runs after every unroll on the checker's hot path, so a
    /// non-idempotent rewrite would mean progression results depend on how
    /// many times a residual formula happens to be re-simplified.
    #[test]
    fn simplify_is_idempotent(f in formula(4, true, 3)) {
        let once = simplify(f);
        let twice = simplify(once.clone());
        prop_assert_eq!(&once, &twice, "not a fixed point: {}", once);
    }

    /// Pre-simplifying a formula never changes progression outcomes: for
    /// every trace, `unroll`-based checking of `simplify(f)` yields exactly
    /// the verdict of checking `f` (the simplifier is semantically
    /// transparent, including demand bookkeeping and `MoreStatesNeeded`).
    #[test]
    fn simplify_preserves_unroll_verdicts(
        f in formula(3, true, 3),
        trace in trace_strategy(),
    ) {
        let raw = progress_outcome(f.clone(), &trace);
        let simplified = progress_outcome(simplify(f.clone()), &trace);
        prop_assert_eq!(
            raw,
            simplified,
            "simplification changed the outcome of {} on {:?}", f, trace
        );
        // And on every proper prefix, so intermediate reports agree too.
        for k in 1..trace.len() {
            let raw_k = progress_outcome(f.clone(), &trace[..k]);
            let simp_k = progress_outcome(simplify(f.clone()), &trace[..k]);
            prop_assert_eq!(raw_k, simp_k, "prefix {k} of {:?} diverged", trace);
        }
    }

    /// A definitive progression verdict on a prefix of a lasso agrees with
    /// the classical LTL semantics of the whole lasso (E7).
    #[test]
    fn definitive_verdicts_are_sound_for_lassos(
        f in formula(3, true, 3),
        lasso in lasso_strategy(),
        extra in 0usize..6,
    ) {
        let k = lasso.positions() + extra;
        let prefix: Vec<State> = lasso.prefix(k).into_iter().copied().collect();
        let outcome = progress_outcome(f.clone(), &prefix);
        if let Outcome::Verdict(v) = outcome {
            if v.is_definitive() {
                prop_assert_eq!(
                    holds(&f, &lasso, &eval),
                    v.to_bool(),
                    "formula {} on lasso {:?}", f, lasso
                );
            }
        }
    }

    /// Progressing a negation gives exactly the negated outcome.
    #[test]
    fn negation_duality(f in formula(3, true, 3), trace in trace_strategy()) {
        let pos = progress_outcome(f.clone(), &trace);
        let neg = progress_outcome(f.not(), &trace);
        match (pos, neg) {
            (Outcome::Verdict(a), Outcome::Verdict(b)) => prop_assert_eq!(a.negate(), b),
            (Outcome::MoreStatesNeeded, Outcome::MoreStatesNeeded) => {}
            other => prop_assert!(false, "mismatched outcomes {:?}", other),
        }
    }

    /// Once definitive, a verdict never changes as the trace is extended.
    #[test]
    fn definitive_verdicts_are_stable(
        f in formula(3, true, 2),
        trace in trace_strategy(),
        extension in prop::collection::vec(any::<u8>(), 1..6),
    ) {
        let short = progress_outcome(f.clone(), &trace);
        if let Outcome::Verdict(v) = short {
            if v.is_definitive() {
                let mut longer = trace.clone();
                longer.extend(extension);
                prop_assert_eq!(progress_outcome(f, &longer), Outcome::Verdict(v));
            }
        }
    }

    /// In the RV-LTL fragment (no required next, zero demands) the final
    /// verdict's two-valued reading coincides with Pnueli's finite LTL —
    /// the paper's claim that presumptive answers match Pnueli's semantics
    /// (§2.1).
    #[test]
    fn rv_fragment_matches_pnueli(
        f in formula(3, false, 0),
        trace in trace_strategy(),
    ) {
        let outcome = progress_outcome(f.clone(), &trace);
        match outcome {
            Outcome::Verdict(v) => {
                prop_assert_eq!(v.to_bool(), fltl(&f, &trace, 0, &eval), "formula {}", f);
            }
            Outcome::MoreStatesNeeded => prop_assert!(false, "no demands yet more states needed"),
        }
    }

    /// Simplification preserves the classical semantics on lassos.
    #[test]
    fn simplify_preserves_lasso_semantics(
        f in formula(3, true, 3),
        lasso in lasso_strategy(),
    ) {
        prop_assert_eq!(holds(&f.clone(), &lasso, &eval), holds(&simplify(f), &lasso, &eval));
    }

    /// Simplification preserves the finite-trace semantics. Restricted to
    /// the X!-free fragment: the FLTL baseline reads the required next as a
    /// strong next (a completed trace cannot be extended), which is not
    /// self-dual, so negation pushing is not FLTL-faithful for `X!`.
    #[test]
    fn simplify_preserves_fltl_semantics(
        f in formula(3, false, 3),
        trace in trace_strategy(),
    ) {
        prop_assert_eq!(
            fltl(&f.clone(), &trace, 0, &eval),
            fltl(&simplify(f), &trace, 0, &eval)
        );
    }

    /// Simplification at most doubles a formula (the standard bound for
    /// negation-normal-form pushing: each atom gains at most one negation).
    #[test]
    fn simplify_growth_is_bounded_by_nnf(f in formula(3, true, 3)) {
        prop_assert!(simplify(f.clone()).size() <= 2 * f.size());
    }

    /// Demand annotations are invisible to the infinite-trace semantics.
    #[test]
    fn demands_are_transparent_on_lassos(
        f in formula(3, true, 4),
        lasso in lasso_strategy(),
    ) {
        prop_assert_eq!(
            holds(&f.clone(), &lasso, &eval),
            holds(&f.erase_demands(), &lasso, &eval)
        );
    }

    /// Figure 3 identities 6–11 (expansion laws) on lassos.
    #[test]
    fn expansion_identities_on_lassos(
        body in formula(2, false, 0),
        other in formula(2, false, 0),
        lasso in lasso_strategy(),
    ) {
        let ev = eval;
        // ◇φ = ⊤ U φ
        prop_assert_eq!(
            holds(&Formula::eventually(0u32, body.clone()), &lasso, &ev),
            holds(&Formula::until(0u32, Formula::Top, body.clone()), &lasso, &ev)
        );
        // □φ = ⊥ R φ
        prop_assert_eq!(
            holds(&Formula::always(0u32, body.clone()), &lasso, &ev),
            holds(&Formula::release(0u32, Formula::Bottom, body.clone()), &lasso, &ev)
        );
        // □φ = φ ∧ X□φ
        prop_assert_eq!(
            holds(&Formula::always(0u32, body.clone()), &lasso, &ev),
            holds(
                &body.clone().and(Formula::always(0u32, body.clone()).next()),
                &lasso,
                &ev
            )
        );
        // ◇φ = φ ∨ X◇φ
        prop_assert_eq!(
            holds(&Formula::eventually(0u32, body.clone()), &lasso, &ev),
            holds(
                &body.clone().or(Formula::eventually(0u32, body.clone()).next()),
                &lasso,
                &ev
            )
        );
        // φ U ψ = ψ ∨ (φ ∧ X(φ U ψ))
        let until = Formula::until(0u32, other.clone(), body.clone());
        prop_assert_eq!(
            holds(&until, &lasso, &ev),
            holds(
                &body.clone().or(other.clone().and(until.clone().next())),
                &lasso,
                &ev
            )
        );
        // φ R ψ = ψ ∧ (φ ∨ X(φ R ψ))
        let release = Formula::release(0u32, other.clone(), body.clone());
        prop_assert_eq!(
            holds(&release, &lasso, &ev),
            holds(&body.and(other.or(release.clone().next())), &lasso, &ev)
        );
    }

    /// Figure 3 identities 1–5 (negation dualities) on lassos.
    #[test]
    fn negation_identities_on_lassos(
        a in formula(2, false, 0),
        b in formula(2, false, 0),
        lasso in lasso_strategy(),
    ) {
        let ev = eval;
        prop_assert_eq!(
            holds(&Formula::always(0u32, a.clone()).not(), &lasso, &ev),
            holds(&Formula::eventually(0u32, a.clone().not()), &lasso, &ev)
        );
        prop_assert_eq!(
            holds(&Formula::until(0u32, a.clone(), b.clone()).not(), &lasso, &ev),
            holds(
                &Formula::release(0u32, a.clone().not(), b.clone().not()),
                &lasso,
                &ev
            )
        );
        prop_assert_eq!(
            holds(&a.clone().next().not(), &lasso, &ev),
            holds(&a.not().next(), &lasso, &ev)
        );
        let _ = b;
    }

    /// Pretty-printing then parsing is the identity (after renaming atoms
    /// to identifiers).
    #[test]
    fn display_parse_roundtrip(f in formula(3, true, 5)) {
        let named: Formula<String> = f.map_atoms(&mut |n| format!("p{n}"));
        let printed = named.to_string();
        let reparsed = parse(&printed).unwrap_or_else(|e| panic!("{printed}: {e}"));
        prop_assert_eq!(named, reparsed);
    }

    /// `check_trace` on a single-state trace of an atom is definitive.
    #[test]
    fn atoms_decide_immediately(p in 0u8..4, s in any::<u8>()) {
        let outcome = progress_outcome(Formula::Atom(p), &[s]);
        prop_assert_eq!(outcome, Outcome::Verdict(Verdict::definitely(eval(&p, &s))));
    }

    /// Safety properties (□ of a state predicate) are refutable but not
    /// provable by finite traces — Alpern & Schneider via progression.
    #[test]
    fn safety_is_never_definitively_true(
        p in 0u8..4,
        n in 0u32..3,
        trace in trace_strategy(),
    ) {
        let f = Formula::always(n, Formula::atom(p));
        let outcome = progress_outcome(f, &trace);
        prop_assert_ne!(outcome, Outcome::Verdict(Verdict::DefinitelyTrue));
    }

    /// Dually, liveness (◇ of a state predicate) is never definitively
    /// false on a finite trace.
    #[test]
    fn liveness_is_never_definitively_false(
        p in 0u8..4,
        n in 0u32..3,
        trace in trace_strategy(),
    ) {
        let f = Formula::eventually(n, Formula::atom(p));
        let outcome = progress_outcome(f, &trace);
        prop_assert_ne!(outcome, Outcome::Verdict(Verdict::DefinitelyFalse));
    }
}
