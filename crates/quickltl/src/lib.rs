//! # QuickLTL
//!
//! A multi-valued dialect of Linear Temporal Logic for *finite, partial*
//! traces, reproduced from the PLDI 2022 paper *"Quickstrom: Property-based
//! Acceptance Testing with LTL Specifications"* (O'Connor & Wickström).
//!
//! Classical LTL describes *behaviours* — completed, infinite executions.
//! Testing, by contrast, only ever observes a finite *prefix* of an
//! execution, and one that could always be extended by performing more
//! actions. QuickLTL adapts LTL to this setting with two ideas:
//!
//! 1. **Four-valued verdicts** (from RV-LTL): a partial trace can prove a
//!    formula ([`Verdict::DefinitelyTrue`]), refute it
//!    ([`Verdict::DefinitelyFalse`]), or merely suggest an answer
//!    ([`Verdict::PresumablyTrue`] / [`Verdict::PresumablyFalse`]).
//! 2. **Demand annotations**: every temporal operator carries a minimum
//!    number of further states ([`Demand`]) that must be examined before
//!    its presumptive answer is trustworthy, eliminating the spurious
//!    counterexamples that RV-LTL produces when a trace happens to end at
//!    the wrong moment.
//!
//! Formulae are evaluated by *formula progression* ([`Evaluator`]): each
//! observed state unrolls the formula one step (Figure 6 of the paper),
//! simplification yields either a definitive constant or a *guarded form*
//! from which a presumptive verdict is read, and stepping (Figure 7)
//! carries the residual obligation to the next state.
//!
//! ## Quick example
//!
//! ```
//! use quickltl::{parse, Evaluator, Outcome, Verdict};
//!
//! // "The menu is never disabled forever": check at least 6 states, and
//! // after any disablement expect re-enablement within 2 states.
//! let formula = parse("G[6] F[2] menuEnabled").unwrap();
//!
//! // States are just sets of true propositions here.
//! let trace = ["m", "", "m", "", "m", "", "m"];
//! let mut eval = Evaluator::new(formula);
//! for state in trace {
//!     eval.observe::<std::convert::Infallible>(&mut |p| {
//!         Ok(p == "menuEnabled" && state.contains('m'))
//!     })
//!     .unwrap();
//! }
//! // Even though the trace *ends* disabled, the demand annotations let the
//! // alternation count as presumably true — no spurious counterexample.
//! assert_eq!(eval.outcome(), Outcome::Verdict(Verdict::PresumablyTrue));
//! ```
//!
//! ## Module map
//!
//! * [`syntax`](mod@syntax) — [`Formula`], [`Demand`], combinators, printing.
//! * [`progress`](mod@progress) — unroll / simplify / step, [`Evaluator`],
//!   [`check_trace`].
//! * [`automaton`](mod@automaton) — table-driven evaluation:
//!   [`EagerAutomaton`] (precomputed propositional tables) and
//!   [`TransitionTable`] (memoized tables for expanding atoms).
//! * [`verdict`](mod@verdict) — [`Verdict`] and [`Outcome`].
//! * [`finite`](mod@finite) — the Pnueli finite-LTL and RV-LTL baselines.
//! * [`infinite`](mod@infinite) — reference semantics on lasso traces.
//! * [`parse`] — a small concrete syntax for tests and docs.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod automaton;
pub mod finite;
pub mod infinite;
mod parse;
pub mod progress;
pub mod syntax;
pub mod verdict;

pub use automaton::{
    AtomId, EagerAutomaton, EagerCaps, EagerError, EagerRunner, EagerStep, Observation, StateId,
    TableError, TableStep, TransitionTable,
};
pub use parse::{parse, ParseError};
pub use progress::{
    check_trace, classify, simplify, simplify_with, unroll, Evaluator, Guarded, NotGuardedError,
    Progress, SimplifyMode, StepReport,
};
pub use syntax::{Demand, Formula};
pub use verdict::{Outcome, Verdict};
