//! Baseline finite-trace LTL dialects (§2.1): Pnueli's finite LTL and
//! RV-LTL.
//!
//! These are the logics QuickLTL refines. [`fltl`] evaluates a formula over
//! a *completed* finite trace in the style of Pnueli's finite LTL — the
//! trace is assumed to end for good, so the weak next defaults to true and
//! the strong next to false at the final state. [`rv_ltl`] gives the
//! four-valued RV-LTL verdict, obtained (per §5.5) by erasing QuickLTL's
//! demand subscripts and running formula progression.

use crate::progress;
use crate::syntax::Formula;
use crate::verdict::Outcome;

/// Evaluates `f` over the completed finite trace `trace` at position `pos`
/// in Pnueli's finite-trace LTL.
///
/// Demand annotations are ignored (they are a testing artefact, not part of
/// the completed-trace semantics). The *required next* `X!` is evaluated as
/// the strong next: a completed trace, by definition, cannot be extended,
/// so a demand for a further state fails.
///
/// Returns `false` for positions at or beyond the end of the trace, which
/// can only be reached through next operators whose defaults have already
/// been applied.
///
/// # Examples
///
/// ```
/// use quickltl::{finite::fltl, Formula};
/// let f = Formula::eventually(0u32, Formula::atom('p'));
/// let holds = |p: &char, s: &&str| s.contains(*p);
/// assert!(fltl(&f, &["", "p"], 0, &holds));
/// assert!(!fltl(&f, &["", ""], 0, &holds));
/// ```
pub fn fltl<P, S>(f: &Formula<P>, trace: &[S], pos: usize, eval: &impl Fn(&P, &S) -> bool) -> bool {
    if pos >= trace.len() {
        return false;
    }
    match f {
        Formula::Top => true,
        Formula::Bottom => false,
        Formula::Atom(p) => eval(p, &trace[pos]),
        Formula::Not(inner) => !fltl(inner, trace, pos, eval),
        Formula::And(l, r) => fltl(l, trace, pos, eval) && fltl(r, trace, pos, eval),
        Formula::Or(l, r) => fltl(l, trace, pos, eval) || fltl(r, trace, pos, eval),
        Formula::WeakNext(inner) => pos + 1 >= trace.len() || fltl(inner, trace, pos + 1, eval),
        Formula::StrongNext(inner) | Formula::Next(inner) => {
            pos + 1 < trace.len() && fltl(inner, trace, pos + 1, eval)
        }
        Formula::Always(_, inner) => (pos..trace.len()).all(|i| fltl(inner, trace, i, eval)),
        Formula::Eventually(_, inner) => (pos..trace.len()).any(|i| fltl(inner, trace, i, eval)),
        Formula::Until(_, l, r) => (pos..trace.len())
            .any(|i| fltl(r, trace, i, eval) && (pos..i).all(|j| fltl(l, trace, j, eval))),
        Formula::Release(_, l, r) => (pos..trace.len())
            .all(|i| fltl(r, trace, i, eval) || (pos..i).any(|j| fltl(l, trace, j, eval))),
    }
}

/// The four-valued RV-LTL verdict of `f` over the partial trace `trace`.
///
/// RV-LTL is exactly QuickLTL with every demand subscript at zero (§5.5),
/// so this erases the subscripts and runs formula progression. For formulae
/// that explicitly use the required next `X!` (which RV-LTL does not have)
/// the outcome may still be [`Outcome::MoreStatesNeeded`].
///
/// # Examples
///
/// The §2.1 criticism of RV-LTL: on an alternating trace ending "disabled",
/// `□ ◇ menuEnabled` is presumably false even though the menu is never
/// disabled for long.
///
/// ```
/// use quickltl::{finite::rv_ltl, Formula, Outcome, Verdict};
/// let f = Formula::always(100u32, Formula::eventually(5u32, Formula::atom('m')));
/// let trace = ["m", "", "m", ""];
/// let outcome = rv_ltl(f, &trace, &mut |p, s: &&str| s.contains(*p));
/// assert_eq!(outcome, Outcome::Verdict(Verdict::PresumablyFalse));
/// ```
pub fn rv_ltl<P, S>(f: Formula<P>, trace: &[S], eval: &mut impl FnMut(&P, &S) -> bool) -> Outcome
where
    P: Clone + PartialEq,
{
    let erased = f.erase_demands();
    let outcome: Result<Outcome, std::convert::Infallible> =
        progress::check_trace(erased, trace, &mut |p, s| Ok(eval(p, s)));
    outcome.unwrap_or(Outcome::MoreStatesNeeded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verdict::Verdict;

    type F = Formula<char>;

    fn holds(p: &char, s: &&str) -> bool {
        s.contains(*p)
    }

    fn run(f: &F, trace: &[&str]) -> bool {
        fltl(f, trace, 0, &holds)
    }

    #[test]
    fn atoms_and_booleans() {
        assert!(run(&F::atom('p'), &["p"]));
        assert!(!run(&F::atom('p'), &[""]));
        assert!(run(&F::atom('p').or(F::atom('q')), &["q"]));
        assert!(!run(&F::atom('p').and(F::atom('q')), &["p"]));
        assert!(run(&F::atom('p').not(), &[""]));
    }

    #[test]
    fn next_defaults_at_trace_end() {
        assert!(run(&F::atom('p').weak_next(), &[""]));
        assert!(!run(&F::atom('p').strong_next(), &[""]));
        // Required next degenerates to strong next on completed traces.
        assert!(!run(&F::atom('p').next(), &[""]));
        assert!(run(&F::atom('p').next(), &["", "p"]));
    }

    #[test]
    fn temporal_operators_finite() {
        assert!(run(&F::always(0u32, F::atom('p')), &["p", "p"]));
        assert!(!run(&F::always(0u32, F::atom('p')), &["p", ""]));
        assert!(run(&F::eventually(0u32, F::atom('p')), &["", "p"]));
        assert!(!run(&F::eventually(0u32, F::atom('p')), &["", ""]));
    }

    #[test]
    fn until_and_release_finite() {
        let u = F::until(0u32, F::atom('a'), F::atom('b'));
        assert!(run(&u, &["a", "a", "b"]));
        assert!(!run(&u, &["a", "a", "a"]));
        assert!(!run(&u, &["a", "", "b"]));
        let r = F::release(0u32, F::atom('a'), F::atom('b'));
        assert!(run(&r, &["b", "b", "b"]));
        assert!(run(&r, &["b", "ab", ""]));
        assert!(!run(&r, &["b", "", ""]));
    }

    #[test]
    fn demands_are_ignored_by_fltl() {
        let f = F::eventually(10u32, F::atom('p'));
        assert!(run(&f, &["", "p"]));
        let g = F::always(10u32, F::atom('p'));
        assert!(run(&g, &["p", "p"]));
    }

    #[test]
    fn positions_beyond_the_trace_are_false() {
        assert!(!fltl(&F::Top, &["p"], 5, &holds));
    }

    #[test]
    fn rv_ltl_gives_spurious_answer_on_alternation() {
        // The §2.1 motivating example: RV-LTL flips with the final state.
        let f = F::always(100u32, F::eventually(5u32, F::atom('m')));
        let ends_disabled = ["m", "", "m", ""];
        let ends_enabled = ["m", "", "m", "", "m"];
        assert_eq!(
            rv_ltl(f.clone(), &ends_disabled, &mut holds),
            Outcome::Verdict(Verdict::PresumablyFalse)
        );
        assert_eq!(
            rv_ltl(f, &ends_enabled, &mut holds),
            Outcome::Verdict(Verdict::PresumablyTrue)
        );
    }

    #[test]
    fn rv_ltl_definitive_cases_match_progression() {
        let f = F::always(3u32, F::atom('p'));
        assert_eq!(
            rv_ltl(f, &["p", ""], &mut holds),
            Outcome::Verdict(Verdict::DefinitelyFalse)
        );
        let g = F::eventually(3u32, F::atom('p'));
        assert_eq!(
            rv_ltl(g, &["", "p"], &mut holds),
            Outcome::Verdict(Verdict::DefinitelyTrue)
        );
    }
}
