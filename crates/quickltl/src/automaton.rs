//! Table-driven evaluation automata for QuickLTL.
//!
//! Formula progression ([`crate::progress`]) re-derives the same residual
//! formulae over and over: every observed state clones the residual,
//! unrolls it (Figure 6), simplifies, classifies and steps. For a checker
//! that evaluates the *same* specification across hundreds of runs, the
//! set of residuals actually reached is small and highly repetitive — the
//! classic automaton view of LTL, adapted here to QuickLTL's demand
//! subscripts and four-valued verdicts.
//!
//! Two constructions are provided, for the two alphabets a host may have:
//!
//! * [`EagerAutomaton`] — for *propositional* atoms (an atom evaluates to
//!   a plain truth value). The reachable residuals are enumerated ahead of
//!   time by breadth-first exploration: each state's transition table is
//!   keyed by the valuation bitset over its *live* atoms (the atoms not
//!   guarded by a next operator), so observing a state is one bitset
//!   build plus one indexed load. Enumeration is capped
//!   ([`EagerCaps`]); formulae whose residual space exceeds the cap are
//!   rejected at compile time and stay on the stepper.
//! * [`TransitionTable`] — for *expanding* atoms (Specstrom: an atom is a
//!   host-language thunk that expands, per state, into a fresh formula
//!   over fresh thunks). Residual enumeration ahead of time is impossible
//!   — the alphabet is unbounded — so the table is *memoized* instead:
//!   states are residual formulae over abstract atom ids, interned on
//!   first sight, and transitions are keyed by the observed expansion
//!   *shapes*. A miss runs the exact stepper pipeline
//!   ([`crate::unroll`] → [`crate::simplify`] → [`crate::classify`] →
//!   [`Guarded::step`](crate::Guarded::step)) on the abstract formula, so
//!   hits replay precisely what the stepper would have computed:
//!   verdict streams are bit-identical by construction, not by luck.
//!
//! The abstraction underlying [`TransitionTable`] is sound because every
//! phase of the progression pipeline is *equivariant* under renaming
//! atoms: unrolling is structural, simplification compares subformulae
//! only for equality, and presumptive/definitive readings never inspect
//! an atom's payload. As long as the host keeps the id ↦ atom binding
//! bijective (two distinct concrete atoms never share an id, one atom
//! never holds two ids — see [`TransitionTable::step`]), the abstract
//! transition computed once is valid for every concrete situation with
//! the same shape.

use crate::progress::{classify, end_of_trace_default, simplify, unroll, Progress, StepReport};
use crate::syntax::Formula;
use crate::verdict::{Outcome, Verdict};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::hash::Hash;
use std::sync::Arc;

/// Visits every *live* atom of a formula — the atoms not guarded by a
/// next operator, i.e. exactly those [`crate::unroll`] will expand
/// against the current state. Traversal order is left-to-right,
/// depth-first, matching unroll's own evaluation order. Duplicate atoms
/// are visited once per occurrence; callers that need a set must dedup.
pub fn for_each_live_atom<P>(f: &Formula<P>, visit: &mut impl FnMut(&P)) {
    match f {
        Formula::Top | Formula::Bottom => {}
        Formula::Atom(p) => visit(p),
        // Next-guarded subformulae concern the following state.
        Formula::Next(_) | Formula::WeakNext(_) | Formula::StrongNext(_) => {}
        Formula::Not(inner) => for_each_live_atom(inner, visit),
        Formula::Always(_, inner) | Formula::Eventually(_, inner) => {
            for_each_live_atom(inner, visit)
        }
        Formula::And(l, r) | Formula::Or(l, r) => {
            for_each_live_atom(l, visit);
            for_each_live_atom(r, visit);
        }
        Formula::Until(_, l, r) | Formula::Release(_, l, r) => {
            for_each_live_atom(l, visit);
            for_each_live_atom(r, visit);
        }
    }
}

// ---------------------------------------------------------------------------
// Eager propositional automata
// ---------------------------------------------------------------------------

/// Size caps for [`EagerAutomaton::compile`].
///
/// The residual space of a QuickLTL formula is finite (residuals are
/// `∧`/`∨` combinations of subformula derivatives with decremented
/// demands) but can be exponential in formula size and linear in demand
/// subscripts; compilation refuses rather than thrash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EagerCaps {
    /// Maximum number of distinct residual states to enumerate.
    pub max_states: usize,
    /// Maximum live atoms per state (each state stores `2^live` rows).
    pub max_live_atoms: usize,
}

impl Default for EagerCaps {
    fn default() -> Self {
        EagerCaps {
            max_states: 512,
            max_live_atoms: 12,
        }
    }
}

/// Why [`EagerAutomaton::compile`] refused a formula.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EagerError {
    /// More reachable residual states than [`EagerCaps::max_states`].
    TooManyStates {
        /// The configured cap that was exceeded.
        cap: usize,
    },
    /// Some residual has more live atoms than [`EagerCaps::max_live_atoms`].
    TooManyLiveAtoms {
        /// The number of live atoms found in the offending residual.
        found: usize,
        /// The configured cap that was exceeded.
        cap: usize,
    },
}

impl fmt::Display for EagerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EagerError::TooManyStates { cap } => {
                write!(f, "residual enumeration exceeded the {cap}-state cap")
            }
            EagerError::TooManyLiveAtoms { found, cap } => {
                write!(f, "a residual has {found} live atoms (cap {cap})")
            }
        }
    }
}

impl std::error::Error for EagerError {}

/// One row of an eager state's transition table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EagerStep {
    /// The valuation decides the formula outright.
    Done(bool),
    /// Evaluation moves to another residual state.
    Goto {
        /// Index of the successor state.
        state: usize,
        /// The presumptive reading at this point, if permitted.
        presumptive: Option<bool>,
    },
}

#[derive(Debug, Clone)]
struct EagerState<P> {
    /// The canonical (simplified) residual formula of this state.
    formula: Formula<P>,
    /// Live atoms in first-occurrence traversal order; bit `i` of a
    /// valuation index is the truth value of `live[i]`.
    live: Vec<P>,
    /// Precomputed [`end_of_trace_default`] of `formula`.
    forced_default: bool,
    /// `2^live.len()` rows, indexed by valuation bitset.
    table: Vec<EagerStep>,
}

/// A fully enumerated evaluation automaton over propositional atoms.
///
/// States are the reachable residual formulae in `simplify`-canonical
/// form; each state's transitions are precomputed for every valuation of
/// its live atoms. Stepping a trace ([`EagerRunner`]) is then one atom
/// evaluation per live atom plus a table load — no tree algebra at all.
///
/// # Examples
///
/// ```
/// use quickltl::automaton::{EagerAutomaton, EagerCaps};
/// use quickltl::{parse, Outcome, Verdict};
///
/// let f = parse("G[2] F[1] p").unwrap();
/// let auto = EagerAutomaton::compile(f, &EagerCaps::default()).unwrap();
/// let mut run = auto.runner();
/// for present in [true, false, true] {
///     run.observe::<std::convert::Infallible>(&mut |_| Ok(present))
///         .unwrap();
/// }
/// assert_eq!(run.outcome(), Outcome::Verdict(Verdict::PresumablyTrue));
/// ```
#[derive(Debug, Clone)]
pub struct EagerAutomaton<P> {
    states: Vec<EagerState<P>>,
}

impl<P> EagerAutomaton<P>
where
    P: Clone + Eq + Hash,
{
    /// Enumerates the reachable residual space of `formula` breadth-first
    /// and precomputes every transition.
    ///
    /// The start state is `simplify(formula)`; successors are the
    /// `simplify`-canonicalised [`Guarded::step`](crate::Guarded::step)
    /// residues. Canonicalisation keeps the state space minimal and makes
    /// every stored state a `simplify` fixpoint (pinned by the
    /// `automaton_equivalence` proptest suite, alongside verdict
    /// equivalence with the stepper).
    ///
    /// # Errors
    ///
    /// Returns an [`EagerError`] when enumeration exceeds `caps`.
    pub fn compile(formula: Formula<P>, caps: &EagerCaps) -> Result<Self, EagerError> {
        let start = simplify(formula);
        let mut index: HashMap<Formula<P>, usize> = HashMap::new();
        let mut formulas: Vec<Formula<P>> = Vec::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        let intern = |f: Formula<P>,
                      index: &mut HashMap<Formula<P>, usize>,
                      formulas: &mut Vec<Formula<P>>,
                      queue: &mut VecDeque<usize>|
         -> Result<usize, EagerError> {
            if let Some(&id) = index.get(&f) {
                return Ok(id);
            }
            if formulas.len() >= caps.max_states {
                return Err(EagerError::TooManyStates {
                    cap: caps.max_states,
                });
            }
            let id = formulas.len();
            index.insert(f.clone(), id);
            formulas.push(f);
            queue.push_back(id);
            Ok(id)
        };
        let start_id = intern(start, &mut index, &mut formulas, &mut queue)?;
        debug_assert_eq!(start_id, 0);
        // Ids are assigned in push order and the queue is FIFO, so states
        // are expanded in id order and can be pushed positionally.
        let mut states: Vec<EagerState<P>> = Vec::new();
        while let Some(id) = queue.pop_front() {
            debug_assert_eq!(id, states.len());
            let formula = formulas[id].clone();
            let mut live: Vec<P> = Vec::new();
            for_each_live_atom(&formula, &mut |p| {
                if !live.contains(p) {
                    live.push(p.clone());
                }
            });
            if live.len() > caps.max_live_atoms {
                return Err(EagerError::TooManyLiveAtoms {
                    found: live.len(),
                    cap: caps.max_live_atoms,
                });
            }
            let rows = 1usize << live.len();
            let mut table = Vec::with_capacity(rows);
            for valuation in 0..rows {
                let unrolled = unroll::<P, std::convert::Infallible>(formula.clone(), &mut |p| {
                    let bit = live.iter().position(|q| q == p).expect("atom is live");
                    Ok(Formula::constant(valuation & (1 << bit) != 0))
                })
                .expect("constant expansion cannot fail");
                let step = match classify(simplify(unrolled))
                    .expect("unroll+simplify must yield constant or guarded form")
                {
                    Progress::Definitive(b) => EagerStep::Done(b),
                    Progress::Guarded(g) => {
                        let presumptive = g.presumptive();
                        let next = simplify(g.step());
                        let state = intern(next, &mut index, &mut formulas, &mut queue)?;
                        EagerStep::Goto { state, presumptive }
                    }
                };
                table.push(step);
            }
            let forced_default = end_of_trace_default(&formula);
            states.push(EagerState {
                formula,
                live,
                forced_default,
                table,
            });
        }
        Ok(EagerAutomaton { states })
    }

    /// The number of enumerated residual states.
    #[must_use]
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// The canonical residual formula of every state, start state first.
    pub fn state_formulas(&self) -> impl Iterator<Item = &Formula<P>> {
        self.states.iter().map(|s| &s.formula)
    }

    /// Total transition rows across all states (the table's footprint).
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.states.iter().map(|s| s.table.len()).sum()
    }

    /// A fresh runner positioned at the start state.
    #[must_use]
    pub fn runner(&self) -> EagerRunner<'_, P> {
        EagerRunner {
            automaton: self,
            pos: RunnerPos::At(0),
            states_seen: 0,
            last_report: None,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum RunnerPos {
    At(usize),
    Done(bool),
}

/// Incremental trace evaluation against an [`EagerAutomaton`] — the
/// table-driven counterpart of [`crate::Evaluator`], with the same
/// observable API: per-state [`StepReport`]s, a running [`Outcome`] and
/// the forced end-of-trace fallback.
#[derive(Debug, Clone)]
pub struct EagerRunner<'a, P> {
    automaton: &'a EagerAutomaton<P>,
    pos: RunnerPos,
    states_seen: usize,
    last_report: Option<StepReport>,
}

impl<P> EagerRunner<'_, P> {
    /// Observes one state of the trace: evaluates the current state's
    /// live atoms, builds the valuation bitset, and takes the
    /// precomputed transition.
    ///
    /// After a definitive verdict the runner latches: further calls
    /// return it unchanged without invoking `eval`.
    ///
    /// # Errors
    ///
    /// Propagates errors from `eval` (the automaton position is left
    /// unchanged, so the caller may retry).
    pub fn observe<E>(
        &mut self,
        eval: &mut impl FnMut(&P) -> Result<bool, E>,
    ) -> Result<StepReport, E> {
        let id = match self.pos {
            RunnerPos::Done(b) => return Ok(StepReport::Definitive(b)),
            RunnerPos::At(id) => id,
        };
        let state = &self.automaton.states[id];
        let mut valuation = 0usize;
        for (bit, atom) in state.live.iter().enumerate() {
            if eval(atom)? {
                valuation |= 1 << bit;
            }
        }
        self.states_seen += 1;
        let report = match state.table[valuation] {
            EagerStep::Done(b) => {
                self.pos = RunnerPos::Done(b);
                StepReport::Definitive(b)
            }
            EagerStep::Goto { state, presumptive } => {
                self.pos = RunnerPos::At(state);
                StepReport::Continue { presumptive }
            }
        };
        self.last_report = Some(report);
        Ok(report)
    }

    /// The outcome of ending the trace after the states observed so far
    /// (mirrors [`crate::Evaluator::outcome`]).
    #[must_use]
    pub fn outcome(&self) -> Outcome {
        match self.last_report {
            Some(report) => report.outcome(),
            None => Outcome::MoreStatesNeeded,
        }
    }

    /// The verdict when *forced* to stop now (mirrors
    /// [`crate::Evaluator::forced_outcome`]): the regular outcome when
    /// available, otherwise the precomputed [`end_of_trace_default`] of
    /// the current residual state.
    #[must_use]
    pub fn forced_outcome(&self) -> Outcome {
        match self.outcome() {
            Outcome::Verdict(v) => Outcome::Verdict(v),
            Outcome::MoreStatesNeeded => match (self.pos, self.states_seen) {
                (_, 0) => Outcome::MoreStatesNeeded,
                (RunnerPos::At(id), _) => Outcome::Verdict(Verdict::presumably(
                    self.automaton.states[id].forced_default,
                )),
                (RunnerPos::Done(b), _) => Outcome::Verdict(Verdict::definitely(b)),
            },
        }
    }

    /// The number of states observed so far.
    #[must_use]
    pub fn states_seen(&self) -> usize {
        self.states_seen
    }
}

// ---------------------------------------------------------------------------
// Memoized transition tables for expanding atoms
// ---------------------------------------------------------------------------

/// Abstract atom identifier inside a [`TransitionTable`].
///
/// Ids are *canonical per state*: the atoms of a state formula are
/// numbered `0..n` in first-occurrence traversal order, so two runs that
/// reach the same residual shape agree on ids and can share transitions.
/// The host keeps an id-indexed binding table mapping each id back to its
/// concrete atom.
pub type AtomId = u32;

/// Index of a state in a [`TransitionTable`].
pub type StateId = usize;

/// An observation at one trace state: each consulted atom id paired with
/// the (abstracted) formula it expanded to, in deterministic discovery
/// order — the current state's live atoms first, then the live atoms
/// their expansions introduced, breadth-first.
///
/// Fresh atoms appearing inside expansions must be numbered continuing
/// after the state's own atom count, in the same discovery order; see
/// [`TransitionTable::step`].
pub type Observation = Vec<(AtomId, Formula<AtomId>)>;

/// One memoized transition.
#[derive(Debug, Clone)]
pub enum TableStep {
    /// The observation decides the formula outright.
    Done(bool),
    /// Evaluation moves to a successor state.
    Goto {
        /// Index of the successor state.
        state: StateId,
        /// The presumptive reading at this point, if permitted.
        presumptive: Option<bool>,
        /// For each atom id of the successor state (in order), the id it
        /// had in the step that produced it — an index into the host's
        /// step-time binding table (state atoms `0..atom_count`, then
        /// fresh expansion atoms). The host rebinds with
        /// `new_bindings[i] = step_bindings[sources[i]]`.
        sources: Arc<[AtomId]>,
    },
}

/// Why a [`TransitionTable`] step could not be served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableError {
    /// Interning the successor state would exceed the state cap; the
    /// host should fall back to the plain stepper (resuming from the
    /// current residual via [`crate::Evaluator::resume`]).
    CapExceeded {
        /// The configured cap that was exceeded.
        cap: usize,
    },
    /// The observation lacks an expansion for an atom the unroll
    /// consulted — the host under-saturated the observation.
    MissingExpansion(AtomId),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::CapExceeded { cap } => {
                write!(f, "transition table exceeded the {cap}-state cap")
            }
            TableError::MissingExpansion(id) => {
                write!(f, "observation lacks an expansion for atom {id}")
            }
        }
    }
}

impl std::error::Error for TableError {}

#[derive(Debug)]
struct TableState {
    formula: Formula<AtomId>,
    /// Number of distinct atom ids in `formula` (== `0..atom_count`).
    atom_count: u32,
    /// Live atom ids (not under a next guard), first-occurrence order.
    live: Arc<Vec<AtomId>>,
    forced_default: bool,
}

/// A memoized, shareable transition table over abstract atom ids — the
/// evaluation automaton for hosts whose atoms *expand* into formulae
/// (Specstrom thunks).
///
/// States are residual formulae with atoms renumbered canonically;
/// transitions are keyed by `(state, observation shapes)`. A missing
/// transition is computed with the exact progression pipeline
/// ([`unroll`] → [`simplify`] → [`classify`] →
/// [`Guarded::step`](crate::Guarded::step)) on the abstract formula and
/// memoized; because every pipeline phase is equivariant under the
/// id ↦ atom bijection the host maintains, a hit replays bit-for-bit the
/// computation the stepper would have performed on the concrete formula.
///
/// Tables are designed to be shared (`Mutex`-wrapped) across the many
/// runs of one property: the first run pays the misses, later runs step
/// by pure lookups.
#[derive(Debug)]
pub struct TransitionTable {
    states: Vec<TableState>,
    index: HashMap<Formula<AtomId>, StateId>,
    transitions: HashMap<(StateId, Observation), TableStep>,
    state_cap: usize,
    hits: u64,
    misses: u64,
}

impl TransitionTable {
    /// Creates a table whose start state is `start`.
    ///
    /// `start` must already be canonical: atom ids numbered `0..n` in
    /// first-occurrence traversal order (the usual start state is
    /// `Formula::Atom(0)` — the whole property as one expanding atom,
    /// bound to the property thunk). `state_cap` bounds the number of
    /// interned states; exceeding it surfaces as
    /// [`TableError::CapExceeded`] from [`TransitionTable::step`].
    #[must_use]
    pub fn new(start: Formula<AtomId>, state_cap: usize) -> Self {
        let mut table = TransitionTable {
            states: Vec::new(),
            index: HashMap::new(),
            transitions: HashMap::new(),
            state_cap: state_cap.max(1),
            hits: 0,
            misses: 0,
        };
        let (canonical, _) = canonicalize(start);
        table
            .intern(canonical)
            .expect("the start state fits any cap >= 1");
        table
    }

    fn intern(&mut self, formula: Formula<AtomId>) -> Result<StateId, TableError> {
        if let Some(&id) = self.index.get(&formula) {
            return Ok(id);
        }
        if self.states.len() >= self.state_cap {
            return Err(TableError::CapExceeded {
                cap: self.state_cap,
            });
        }
        let mut atom_count = 0u32;
        formula.for_each_atom(&mut |&id| atom_count = atom_count.max(id + 1));
        let mut live: Vec<AtomId> = Vec::new();
        for_each_live_atom(&formula, &mut |&id| {
            if !live.contains(&id) {
                live.push(id);
            }
        });
        let id = self.states.len();
        self.index.insert(formula.clone(), id);
        self.states.push(TableState {
            forced_default: end_of_trace_default(&formula),
            atom_count,
            live: Arc::new(live),
            formula,
        });
        Ok(id)
    }

    /// The start state (always id 0).
    #[must_use]
    pub fn start(&self) -> StateId {
        0
    }

    /// The number of interned residual states.
    #[must_use]
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// The number of memoized transitions.
    #[must_use]
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// Transitions served from the memo (across all sharers).
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Transitions computed via the full pipeline.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// The configured state cap.
    #[must_use]
    pub fn state_cap(&self) -> usize {
        self.state_cap
    }

    /// The canonical residual formula of a state.
    #[must_use]
    pub fn state_formula(&self, id: StateId) -> &Formula<AtomId> {
        &self.states[id].formula
    }

    /// The number of distinct atom ids in a state (its binding width).
    #[must_use]
    pub fn atom_count(&self, id: StateId) -> u32 {
        self.states[id].atom_count
    }

    /// A state's live atom ids (the ones the host must expand and
    /// observe), in deterministic traversal order.
    #[must_use]
    pub fn live_atoms(&self, id: StateId) -> Arc<Vec<AtomId>> {
        Arc::clone(&self.states[id].live)
    }

    /// The precomputed [`end_of_trace_default`] of a state — the
    /// forced-stop fallback reading (atom-agnostic, so valid for any
    /// concrete binding).
    #[must_use]
    pub fn forced_default(&self, id: StateId) -> bool {
        self.states[id].forced_default
    }

    /// Takes one transition from `state` under `obs`.
    ///
    /// `obs` must contain an entry for every atom id the unroll of the
    /// state formula consults: the state's [`TransitionTable::live_atoms`]
    /// and, transitively, every live atom introduced by an expansion in
    /// `obs` itself. Fresh ids must be assigned contiguously from
    /// [`TransitionTable::atom_count`] upward in discovery order, and the
    /// id ↦ concrete-atom mapping must be bijective (the same concrete
    /// atom observed twice in one step must reuse one id).
    ///
    /// On a miss the transition is computed with the exact stepper
    /// pipeline and memoized. The returned flag is `true` when the
    /// transition was served from the memo.
    ///
    /// # Errors
    ///
    /// [`TableError::CapExceeded`] when the successor state would
    /// overflow the cap — the table is left unchanged so the host can
    /// fall back to the stepper; [`TableError::MissingExpansion`] when
    /// `obs` is under-saturated (a host bug; also safe to fall back).
    pub fn step(
        &mut self,
        state: StateId,
        obs: &Observation,
    ) -> Result<(TableStep, bool), TableError> {
        let key = (state, obs.clone());
        if let Some(step) = self.transitions.get(&key) {
            self.hits += 1;
            return Ok((step.clone(), true));
        }
        let expansions: HashMap<AtomId, &Formula<AtomId>> =
            obs.iter().map(|(id, f)| (*id, f)).collect();
        let unrolled = unroll(self.states[state].formula.clone(), &mut |id: &AtomId| {
            expansions
                .get(id)
                .map(|f| (*f).clone())
                .ok_or(TableError::MissingExpansion(*id))
        })?;
        let step = match classify(simplify(unrolled))
            .expect("unroll+simplify must yield constant or guarded form")
        {
            Progress::Definitive(b) => TableStep::Done(b),
            Progress::Guarded(g) => {
                let presumptive = g.presumptive();
                let (canonical, sources) = canonicalize(g.step());
                let next = self.intern(canonical)?;
                TableStep::Goto {
                    state: next,
                    presumptive,
                    sources: sources.into(),
                }
            }
        };
        self.misses += 1;
        self.transitions.insert(key, step.clone());
        Ok((step, false))
    }
}

/// Renumbers a formula's atom ids to `0..n` in first-occurrence
/// traversal order.
///
/// Returns the canonical formula and, for each new id `i`, the original
/// id `sources[i]` it replaced — the rebinding recipe for a host's
/// id-indexed atom table.
#[must_use]
pub fn canonicalize(f: Formula<AtomId>) -> (Formula<AtomId>, Vec<AtomId>) {
    let mut remap: HashMap<AtomId, AtomId> = HashMap::new();
    let mut sources: Vec<AtomId> = Vec::new();
    let canonical = f.map_atoms(&mut |old| {
        *remap.entry(old).or_insert_with(|| {
            let new = sources.len() as AtomId;
            sources.push(old);
            new
        })
    });
    (canonical, sources)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use crate::progress::Evaluator;

    type F = Formula<char>;

    fn eval_in(state: &str) -> impl FnMut(&char) -> Result<bool, std::convert::Infallible> + '_ {
        move |p| Ok(state.contains(*p))
    }

    #[test]
    fn eager_matches_stepper_on_alternation() {
        let f = parse("G[6] F[2] p").unwrap().map_atoms(&mut |_| 'p');
        let auto = EagerAutomaton::compile(f.clone(), &EagerCaps::default()).unwrap();
        let mut runner = auto.runner();
        let mut stepper = Evaluator::new(f);
        for state in ["p", "", "p", "", "p", "", "p"] {
            let a = runner.observe(&mut eval_in(state)).unwrap();
            let s = stepper.observe(&mut eval_in(state)).unwrap();
            assert_eq!(a.outcome(), s.outcome());
        }
        assert_eq!(runner.outcome(), stepper.outcome());
        assert_eq!(runner.forced_outcome(), stepper.forced_outcome());
    }

    #[test]
    fn eager_state_cap_is_respected() {
        let f = parse("G[50] F[50] p").unwrap().map_atoms(&mut |_| 'p');
        let err = EagerAutomaton::compile(
            f,
            &EagerCaps {
                max_states: 4,
                max_live_atoms: 12,
            },
        )
        .unwrap_err();
        assert_eq!(err, EagerError::TooManyStates { cap: 4 });
    }

    #[test]
    fn eager_live_atom_cap_is_respected() {
        let mut f: F = Formula::atom('a');
        for p in ['b', 'c', 'd'] {
            f = f.and(Formula::atom(p));
        }
        let err = EagerAutomaton::compile(
            f,
            &EagerCaps {
                max_states: 64,
                max_live_atoms: 2,
            },
        )
        .unwrap_err();
        assert_eq!(err, EagerError::TooManyLiveAtoms { found: 4, cap: 2 });
    }

    #[test]
    fn eager_constant_formula_compiles_to_single_latch() {
        let auto = EagerAutomaton::compile(F::Top, &EagerCaps::default()).unwrap();
        assert_eq!(auto.state_count(), 1);
        let mut runner = auto.runner();
        let report = runner.observe(&mut eval_in("")).unwrap();
        assert_eq!(report, StepReport::Definitive(true));
    }

    /// The memoized table, driven with constant expansions, agrees with
    /// the stepper — the same bit-identity the checker relies on, in
    /// miniature.
    #[test]
    fn table_with_constant_observations_matches_stepper() {
        let f = parse("G[3] (!p || F[2] q)").unwrap();
        let atoms: Vec<String> = {
            let mut v = Vec::new();
            f.for_each_atom(&mut |p: &String| {
                if !v.contains(p) {
                    v.push(p.clone());
                }
            });
            v
        };
        let (abstracted, sources) = {
            let mut remap = HashMap::new();
            let abs = f.clone().map_atoms(&mut |p| {
                *remap
                    .entry(p.clone())
                    .or_insert_with(|| atoms.iter().position(|q| *q == p).unwrap() as AtomId)
            });
            (abs, atoms)
        };
        let (canonical, canon_sources) = canonicalize(abstracted);
        // Bindings: canonical id -> concrete atom name.
        let mut bindings: Vec<String> = canon_sources
            .iter()
            .map(|&i| sources[i as usize].clone())
            .collect();
        let mut table = TransitionTable::new(canonical, 64);
        let mut state = table.start();
        let mut stepper = Evaluator::new(f);
        let mut done: Option<bool> = None;
        for trace_state in ["p", "", "q", "p q", "", ""] {
            let s = stepper
                .observe(&mut |p: &String| {
                    Ok::<_, std::convert::Infallible>(trace_state.split(' ').any(|w| w == p))
                })
                .unwrap();
            let a = if let Some(b) = done {
                StepReport::Definitive(b)
            } else {
                let live = table.live_atoms(state);
                let obs: Observation = live
                    .iter()
                    .map(|&id| {
                        let name = &bindings[id as usize];
                        let value = trace_state.split(' ').any(|w| w == name);
                        (id, Formula::constant(value))
                    })
                    .collect();
                let (step, _) = table.step(state, &obs).unwrap();
                match step {
                    TableStep::Done(b) => {
                        done = Some(b);
                        StepReport::Definitive(b)
                    }
                    TableStep::Goto {
                        state: next,
                        presumptive,
                        sources,
                    } => {
                        bindings = sources
                            .iter()
                            .map(|&src| bindings[src as usize].clone())
                            .collect();
                        state = next;
                        StepReport::Continue { presumptive }
                    }
                }
            };
            assert_eq!(a, s, "divergence at state {trace_state:?}");
        }
        assert!(table.state_count() <= 64);
        assert!(table.transition_count() > 0);
    }

    #[test]
    fn table_cap_exceeded_leaves_table_usable() {
        // G[9] p spawns a fresh countdown residual per step: with cap 2
        // the third distinct residual must refuse.
        let mut table = TransitionTable::new(Formula::always(9u32, Formula::Atom(0)), 2);
        let mut state = table.start();
        let mut steps = 0usize;
        loop {
            let obs: Observation = table
                .live_atoms(state)
                .iter()
                .map(|&id| (id, Formula::Top))
                .collect();
            match table.step(state, &obs) {
                Ok((TableStep::Goto { state: next, .. }, _)) => state = next,
                Ok((TableStep::Done(_), _)) => panic!("G[9] ⊤-fed never concludes"),
                Err(TableError::CapExceeded { cap }) => {
                    assert_eq!(cap, 2);
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
            steps += 1;
            assert!(steps < 10, "cap never hit");
        }
        // The table is still consistent and serves known transitions.
        assert_eq!(table.state_count(), 2);
        let obs: Observation = table
            .live_atoms(table.start())
            .iter()
            .map(|&id| (id, Formula::Top))
            .collect();
        let (_, hit) = table.step(table.start(), &obs).unwrap();
        assert!(hit, "previously computed transition must be memoized");
    }

    #[test]
    fn missing_expansion_is_reported() {
        let mut table = TransitionTable::new(Formula::Atom(0), 8);
        let err = table.step(table.start(), &Vec::new()).unwrap_err();
        assert_eq!(err, TableError::MissingExpansion(0));
    }

    #[test]
    fn canonicalize_renumbers_in_traversal_order() {
        let f: Formula<AtomId> = Formula::atom(7u32).and(Formula::atom(3).or(Formula::atom(7)));
        let (canonical, sources) = canonicalize(f);
        assert_eq!(
            canonical,
            Formula::atom(0u32).and(Formula::atom(1).or(Formula::atom(0)))
        );
        assert_eq!(sources, vec![7, 3]);
    }
}
