//! A small concrete syntax for QuickLTL formulae over named propositions.
//!
//! Primarily a convenience for tests, benchmarks and documentation — the
//! Specstrom language (in the `specstrom` crate) is the user-facing syntax.
//!
//! Grammar (ASCII rendition of Figure 4):
//!
//! ```text
//! formula := imp
//! imp     := or ('->' imp)?                      (right associative)
//! or      := and ('||' and)*
//! and     := bin ('&&' bin)*
//! bin     := unary (('U' | 'R') demand? unary)?  (right associative)
//! unary   := '!' unary
//!          | ('X!' | 'Xw' | 'Xs') unary
//!          | ('G' | 'F') demand? unary
//!          | atom
//! atom    := 'true' | 'false' | ident | '(' formula ')'
//! demand  := '[' integer ']'                     (omitted = 0)
//! ```

use crate::syntax::Formula;
use std::fmt;

/// Error produced when parsing a formula fails.
///
/// Carries the byte offset of the offending token and a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input at which the error was detected.
    pub offset: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    True,
    False,
    Not,
    And,
    Or,
    Implies,
    NextReq,
    NextWeak,
    NextStrong,
    Always,
    Eventually,
    Until,
    Release,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Int(u32),
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src, pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn tokens(mut self) -> Result<Vec<(usize, Tok)>, ParseError> {
        let mut out = Vec::new();
        let bytes = self.src.as_bytes();
        while self.pos < bytes.len() {
            let start = self.pos;
            let c = bytes[self.pos] as char;
            match c {
                ' ' | '\t' | '\n' | '\r' => {
                    self.pos += 1;
                    continue;
                }
                '(' => {
                    out.push((start, Tok::LParen));
                    self.pos += 1;
                }
                ')' => {
                    out.push((start, Tok::RParen));
                    self.pos += 1;
                }
                '[' => {
                    out.push((start, Tok::LBracket));
                    self.pos += 1;
                }
                ']' => {
                    out.push((start, Tok::RBracket));
                    self.pos += 1;
                }
                '!' => {
                    out.push((start, Tok::Not));
                    self.pos += 1;
                }
                '&' => {
                    if bytes.get(self.pos + 1) == Some(&b'&') {
                        out.push((start, Tok::And));
                        self.pos += 2;
                    } else {
                        return Err(self.error("expected '&&'"));
                    }
                }
                '|' => {
                    if bytes.get(self.pos + 1) == Some(&b'|') {
                        out.push((start, Tok::Or));
                        self.pos += 2;
                    } else {
                        return Err(self.error("expected '||'"));
                    }
                }
                '-' => {
                    if bytes.get(self.pos + 1) == Some(&b'>') {
                        out.push((start, Tok::Implies));
                        self.pos += 2;
                    } else {
                        return Err(self.error("expected '->'"));
                    }
                }
                '0'..='9' => {
                    let mut end = self.pos;
                    while end < bytes.len() && bytes[end].is_ascii_digit() {
                        end += 1;
                    }
                    let text = &self.src[self.pos..end];
                    let n: u32 = text
                        .parse()
                        .map_err(|_| self.error(format!("integer out of range: {text}")))?;
                    out.push((start, Tok::Int(n)));
                    self.pos = end;
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let mut end = self.pos;
                    while end < bytes.len()
                        && ((bytes[end] as char).is_ascii_alphanumeric() || bytes[end] == b'_')
                    {
                        end += 1;
                    }
                    let word = &self.src[self.pos..end];
                    // `X!` / `Xw` / `Xs` need one-character lookahead for
                    // the bang form.
                    let tok = match word {
                        "true" => Tok::True,
                        "false" => Tok::False,
                        "G" => Tok::Always,
                        "F" => Tok::Eventually,
                        "U" => Tok::Until,
                        "R" => Tok::Release,
                        "X" => {
                            if bytes.get(end) == Some(&b'!') {
                                end += 1;
                                Tok::NextReq
                            } else {
                                return Err(ParseError {
                                    offset: start,
                                    message: "bare 'X' — use 'X!', 'Xw' or 'Xs'".into(),
                                });
                            }
                        }
                        "Xw" => Tok::NextWeak,
                        "Xs" => Tok::NextStrong,
                        _ => Tok::Ident(word.to_owned()),
                    };
                    out.push((start, tok));
                    self.pos = end;
                }
                other => {
                    return Err(self.error(format!("unexpected character {other:?}")));
                }
            }
        }
        Ok(out)
    }
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
    input_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn offset(&self) -> usize {
        self.toks
            .get(self.pos)
            .map_or(self.input_len, |(off, _)| *off)
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.offset(),
            message: message.into(),
        }
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(tok) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {what}")))
        }
    }

    fn demand(&mut self) -> Result<u32, ParseError> {
        if self.peek() == Some(&Tok::LBracket) {
            self.pos += 1;
            let n = match self.bump() {
                Some(Tok::Int(n)) => n,
                _ => return Err(self.error("expected integer demand")),
            };
            self.expect(&Tok::RBracket, "']'")?;
            Ok(n)
        } else {
            Ok(0)
        }
    }

    fn imp(&mut self) -> Result<Formula<String>, ParseError> {
        let lhs = self.or()?;
        if self.peek() == Some(&Tok::Implies) {
            self.pos += 1;
            let rhs = self.imp()?;
            Ok(lhs.implies(rhs))
        } else {
            Ok(lhs)
        }
    }

    fn or(&mut self) -> Result<Formula<String>, ParseError> {
        let mut lhs = self.and()?;
        while self.peek() == Some(&Tok::Or) {
            self.pos += 1;
            let rhs = self.and()?;
            lhs = Formula::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and(&mut self) -> Result<Formula<String>, ParseError> {
        let mut lhs = self.bin()?;
        while self.peek() == Some(&Tok::And) {
            self.pos += 1;
            let rhs = self.bin()?;
            lhs = Formula::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bin(&mut self) -> Result<Formula<String>, ParseError> {
        let lhs = self.unary()?;
        match self.peek() {
            Some(Tok::Until) => {
                self.pos += 1;
                let n = self.demand()?;
                let rhs = self.bin()?;
                Ok(Formula::until(n, lhs, rhs))
            }
            Some(Tok::Release) => {
                self.pos += 1;
                let n = self.demand()?;
                let rhs = self.bin()?;
                Ok(Formula::release(n, lhs, rhs))
            }
            _ => Ok(lhs),
        }
    }

    fn unary(&mut self) -> Result<Formula<String>, ParseError> {
        match self.peek() {
            Some(Tok::Not) => {
                self.pos += 1;
                Ok(Formula::Not(Box::new(self.unary()?)))
            }
            Some(Tok::NextReq) => {
                self.pos += 1;
                Ok(self.unary()?.next())
            }
            Some(Tok::NextWeak) => {
                self.pos += 1;
                Ok(self.unary()?.weak_next())
            }
            Some(Tok::NextStrong) => {
                self.pos += 1;
                Ok(self.unary()?.strong_next())
            }
            Some(Tok::Always) => {
                self.pos += 1;
                let n = self.demand()?;
                Ok(Formula::always(n, self.unary()?))
            }
            Some(Tok::Eventually) => {
                self.pos += 1;
                let n = self.demand()?;
                Ok(Formula::eventually(n, self.unary()?))
            }
            _ => self.atom(),
        }
    }

    fn atom(&mut self) -> Result<Formula<String>, ParseError> {
        match self.peek() {
            Some(Tok::True) => {
                self.pos += 1;
                Ok(Formula::Top)
            }
            Some(Tok::False) => {
                self.pos += 1;
                Ok(Formula::Bottom)
            }
            Some(Tok::Ident(_)) => match self.bump() {
                Some(Tok::Ident(name)) => Ok(Formula::Atom(name)),
                _ => unreachable!("peeked an identifier"),
            },
            Some(Tok::LParen) => {
                self.pos += 1;
                let f = self.imp()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(f)
            }
            _ => Err(self.error("expected a formula")),
        }
    }
}

/// Parses a QuickLTL formula over string-named atomic propositions.
///
/// # Errors
///
/// Returns a [`ParseError`] with byte offset on malformed input.
///
/// # Examples
///
/// ```
/// use quickltl::parse;
/// let f = parse("G[100] F[5] menuEnabled").unwrap();
/// assert_eq!(f.to_string(), "G[100] F[5] menuEnabled");
/// let g = parse("!(!LogIn U SecretPage)").unwrap();
/// assert_eq!(g.to_string(), "!(!LogIn U[0] SecretPage)");
/// ```
pub fn parse(input: &str) -> Result<Formula<String>, ParseError> {
    let toks = Lexer::new(input).tokens()?;
    let mut parser = Parser {
        toks,
        pos: 0,
        input_len: input.len(),
    };
    let f = parser.imp()?;
    if parser.pos != parser.toks.len() {
        return Err(parser.error("trailing input after formula"));
    }
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) -> String {
        parse(src).unwrap().to_string()
    }

    #[test]
    fn atoms_and_constants() {
        assert_eq!(roundtrip("p"), "p");
        assert_eq!(roundtrip("true"), "true");
        assert_eq!(roundtrip("false"), "false");
        assert_eq!(roundtrip("menu_enabled2"), "menu_enabled2");
    }

    #[test]
    fn precedence() {
        assert_eq!(roundtrip("a || b && c"), "a || b && c");
        assert_eq!(roundtrip("(a || b) && c"), "(a || b) && c");
        assert_eq!(roundtrip("!a && b"), "!a && b");
        assert_eq!(roundtrip("!(a && b)"), "!(a && b)");
    }

    #[test]
    fn implication_desugars() {
        assert_eq!(parse("a -> b").unwrap(), parse("!a || b").unwrap());
        // Right associative.
        assert_eq!(
            parse("a -> b -> c").unwrap(),
            parse("!a || (!b || c)").unwrap()
        );
    }

    #[test]
    fn temporal_with_demands() {
        assert_eq!(roundtrip("G[100] F[5] m"), "G[100] F[5] m");
        assert_eq!(roundtrip("a U[3] b"), "a U[3] b");
        assert_eq!(roundtrip("a R b"), "a R[0] b");
        assert_eq!(roundtrip("G p"), "G[0] p");
    }

    #[test]
    fn next_operators() {
        assert_eq!(roundtrip("X! p"), "X! p");
        assert_eq!(roundtrip("Xw p"), "Xw p");
        assert_eq!(roundtrip("Xs p"), "Xs p");
        assert_eq!(roundtrip("X!X! p"), "X! X! p");
    }

    #[test]
    fn until_is_right_associative() {
        assert_eq!(parse("a U b U c").unwrap(), parse("a U (b U c)").unwrap());
    }

    #[test]
    fn paper_examples_parse() {
        // §2's login invariant and secret-page orderings.
        assert!(parse("G (LoggedIn || !financesPage)").is_ok());
        assert!(parse("LogIn R !SecretPage").is_ok());
        assert!(parse("!(!LogIn U SecretPage)").is_ok());
        // The flashing screen.
        assert!(parse("G (dark && Xs light || light && Xs dark)").is_ok());
    }

    #[test]
    fn errors_carry_offsets() {
        let err = parse("a &&").unwrap_err();
        assert_eq!(err.offset, 4);
        let err = parse("a & b").unwrap_err();
        assert_eq!(err.offset, 2);
        assert!(parse("(a").is_err());
        assert!(parse("a b").is_err());
        assert!(parse("G[] p").is_err());
        assert!(parse("X p").is_err());
        assert!(parse("a @ b").is_err());
        assert!(parse("G[99999999999999] p").is_err());
    }

    #[test]
    fn display_parse_roundtrip() {
        for src in [
            "G[100] F[5] m",
            "a U[3] (b R[2] c)",
            "!p && (q || Xs r)",
            "X! (a && b) || Xw c",
        ] {
            let f = parse(src).unwrap();
            let printed = f.to_string();
            let reparsed = parse(&printed).unwrap();
            assert_eq!(f, reparsed, "{src} -> {printed}");
        }
    }
}
