//! Reference semantics: standard LTL over infinite, ultimately-periodic
//! traces (Figure 2).
//!
//! QuickLTL's partial-trace verdicts are justified against the classical
//! semantics of LTL on *behaviours* — infinite traces. Infinite traces are
//! not representable directly, but the ultimately-periodic ones (a finite
//! *stem* followed by a forever-repeating *cycle*, also called lasso traces)
//! are, and they suffice: a definitive QuickLTL verdict on a finite prefix
//! must agree with the classical semantics on every lasso extending that
//! prefix. The property-based test suite checks exactly this.
//!
//! Demand annotations are semantically transparent here: they constrain
//! *testing*, not the logic's meaning on completed behaviours.

use crate::syntax::Formula;

/// An ultimately-periodic infinite trace: `stem` followed by `cycle`
/// repeated forever.
///
/// # Examples
///
/// ```
/// use quickltl::infinite::Lasso;
/// // s0 s1 (c0 c1)^ω
/// let lasso = Lasso::new(vec!["s0", "s1"], vec!["c0", "c1"]).unwrap();
/// assert_eq!(*lasso.state(0), "s0");
/// assert_eq!(*lasso.state(3), "c1");
/// assert_eq!(*lasso.state(4), "c0");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lasso<S> {
    stem: Vec<S>,
    cycle: Vec<S>,
}

/// Error constructing a [`Lasso`] with an empty cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmptyCycleError;

impl std::fmt::Display for EmptyCycleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("lasso cycle must be non-empty")
    }
}

impl std::error::Error for EmptyCycleError {}

impl<S> Lasso<S> {
    /// Creates a lasso from a stem and a non-empty cycle.
    ///
    /// # Errors
    ///
    /// Returns [`EmptyCycleError`] when `cycle` is empty — a lasso must
    /// describe an infinite trace.
    pub fn new(stem: Vec<S>, cycle: Vec<S>) -> Result<Self, EmptyCycleError> {
        if cycle.is_empty() {
            Err(EmptyCycleError)
        } else {
            Ok(Lasso { stem, cycle })
        }
    }

    /// The number of *distinct positions* (stem length + cycle length).
    #[must_use]
    pub fn positions(&self) -> usize {
        self.stem.len() + self.cycle.len()
    }

    /// The state at unrolled position `i` of the infinite trace.
    #[must_use]
    pub fn state(&self, i: usize) -> &S {
        if i < self.stem.len() {
            &self.stem[i]
        } else {
            &self.cycle[(i - self.stem.len()) % self.cycle.len()]
        }
    }

    /// Normalises an unrolled position into a distinct position index.
    fn normalize(&self, i: usize) -> usize {
        if i < self.positions() {
            i
        } else {
            self.stem.len() + (i - self.stem.len()) % self.cycle.len()
        }
    }

    /// The successor of a *distinct position* index, folding the cycle back
    /// on itself.
    fn succ(&self, i: usize) -> usize {
        self.normalize(i + 1)
    }

    /// The first `k` states of the unrolled infinite trace.
    ///
    /// Useful for comparing progression over a finite prefix against the
    /// lasso's classical semantics.
    #[must_use]
    pub fn prefix(&self, k: usize) -> Vec<&S> {
        (0..k).map(|i| self.state(i)).collect()
    }

    /// A view of the stem.
    #[must_use]
    pub fn stem(&self) -> &[S] {
        &self.stem
    }

    /// A view of the cycle.
    #[must_use]
    pub fn cycle(&self) -> &[S] {
        &self.cycle
    }
}

/// Evaluates `f` at every distinct position of the lasso.
///
/// Temporal operators are computed as fixpoints over the finite quotient
/// graph of the lasso (least fixpoints for `◇`/`U`, greatest for `□`/`R`),
/// which coincides with the classical Figure 2 semantics on the unrolled
/// infinite trace. All three next operators coincide on infinite traces —
/// there is always a next state.
fn eval_all<P, S>(f: &Formula<P>, lasso: &Lasso<S>, eval: &impl Fn(&P, &S) -> bool) -> Vec<bool> {
    let n = lasso.positions();
    match f {
        Formula::Top => vec![true; n],
        Formula::Bottom => vec![false; n],
        Formula::Atom(p) => (0..n).map(|i| eval(p, lasso.state(i))).collect(),
        Formula::Not(inner) => eval_all(inner, lasso, eval)
            .into_iter()
            .map(|b| !b)
            .collect(),
        Formula::And(l, r) => {
            let lv = eval_all(l, lasso, eval);
            let rv = eval_all(r, lasso, eval);
            lv.into_iter().zip(rv).map(|(a, b)| a && b).collect()
        }
        Formula::Or(l, r) => {
            let lv = eval_all(l, lasso, eval);
            let rv = eval_all(r, lasso, eval);
            lv.into_iter().zip(rv).map(|(a, b)| a || b).collect()
        }
        Formula::Next(inner) | Formula::WeakNext(inner) | Formula::StrongNext(inner) => {
            let sub = eval_all(inner, lasso, eval);
            (0..n).map(|i| sub[lasso.succ(i)]).collect()
        }
        Formula::Always(_, inner) => {
            let sub = eval_all(inner, lasso, eval);
            gfp(lasso, |v, i| sub[i] && v[lasso.succ(i)])
        }
        Formula::Eventually(_, inner) => {
            let sub = eval_all(inner, lasso, eval);
            lfp(lasso, |v, i| sub[i] || v[lasso.succ(i)])
        }
        Formula::Until(_, l, r) => {
            let lv = eval_all(l, lasso, eval);
            let rv = eval_all(r, lasso, eval);
            lfp(lasso, |v, i| rv[i] || (lv[i] && v[lasso.succ(i)]))
        }
        Formula::Release(_, l, r) => {
            let lv = eval_all(l, lasso, eval);
            let rv = eval_all(r, lasso, eval);
            gfp(lasso, |v, i| rv[i] && (lv[i] || v[lasso.succ(i)]))
        }
    }
}

/// Least fixpoint of a monotone per-position equation, starting from all
/// false.
fn lfp<S>(lasso: &Lasso<S>, f: impl Fn(&[bool], usize) -> bool) -> Vec<bool> {
    fixpoint(lasso, false, f)
}

/// Greatest fixpoint, starting from all true.
fn gfp<S>(lasso: &Lasso<S>, f: impl Fn(&[bool], usize) -> bool) -> Vec<bool> {
    fixpoint(lasso, true, f)
}

fn fixpoint<S>(lasso: &Lasso<S>, init: bool, f: impl Fn(&[bool], usize) -> bool) -> Vec<bool> {
    let n = lasso.positions();
    let mut v = vec![init; n];
    // Each sweep is monotone (towards the fixpoint) and flips at least one
    // position until stable, so n+1 sweeps suffice. Sweeping backwards
    // converges fast on the stem.
    for _ in 0..=n {
        let mut changed = false;
        for i in (0..n).rev() {
            let new = f(&v, i);
            if new != v[i] {
                v[i] = new;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    v
}

/// Does the lasso trace satisfy `f` in classical (infinite-trace) LTL?
///
/// # Examples
///
/// ```
/// use quickltl::infinite::{holds, Lasso};
/// use quickltl::Formula;
/// // The menu alternates enabled/disabled forever: □◇m holds, □m does not.
/// let lasso = Lasso::new(vec![], vec!["m", ""]).unwrap();
/// let ev = |p: &char, s: &&str| s.contains(*p);
/// assert!(holds(
///     &Formula::always(0u32, Formula::eventually(0u32, Formula::atom('m'))),
///     &lasso,
///     &ev,
/// ));
/// assert!(!holds(&Formula::always(0u32, Formula::atom('m')), &lasso, &ev));
/// ```
pub fn holds<P, S>(f: &Formula<P>, lasso: &Lasso<S>, eval: &impl Fn(&P, &S) -> bool) -> bool {
    eval_all(f, lasso, eval)[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    type F = Formula<char>;

    fn ev(p: &char, s: &&str) -> bool {
        s.contains(*p)
    }

    fn sat(f: &F, stem: Vec<&'static str>, cycle: Vec<&'static str>) -> bool {
        holds(f, &Lasso::new(stem, cycle).unwrap(), &ev)
    }

    #[test]
    fn empty_cycle_is_rejected() {
        assert_eq!(Lasso::<i32>::new(vec![], vec![]), Err(EmptyCycleError));
    }

    #[test]
    fn state_indexing_wraps() {
        let l = Lasso::new(vec!["a"], vec!["b", "c"]).unwrap();
        assert_eq!(*l.state(0), "a");
        assert_eq!(*l.state(1), "b");
        assert_eq!(*l.state(2), "c");
        assert_eq!(*l.state(3), "b");
        assert_eq!(l.prefix(4), vec![&"a", &"b", &"c", &"b"]);
        assert_eq!(l.stem(), &["a"]);
        assert_eq!(l.cycle(), &["b", "c"]);
    }

    #[test]
    fn always_on_cycles() {
        assert!(sat(&F::always(0u32, F::atom('p')), vec![], vec!["p"]));
        assert!(!sat(&F::always(0u32, F::atom('p')), vec![], vec!["p", ""]));
        // Violation only in the stem.
        assert!(!sat(&F::always(0u32, F::atom('p')), vec![""], vec!["p"]));
    }

    #[test]
    fn eventually_on_cycles() {
        assert!(sat(
            &F::eventually(0u32, F::atom('p')),
            vec![""],
            vec!["", "p"]
        ));
        assert!(!sat(
            &F::eventually(0u32, F::atom('p')),
            vec!["", ""],
            vec![""]
        ));
        // Only in the stem: still satisfied at position 0.
        assert!(sat(&F::eventually(0u32, F::atom('p')), vec!["p"], vec![""]));
    }

    #[test]
    fn infinitely_often_vs_eventually_always() {
        let inf_often = F::always(0u32, F::eventually(0u32, F::atom('p')));
        let ev_always = F::eventually(0u32, F::always(0u32, F::atom('p')));
        // Alternating: infinitely often yes, eventually-always no.
        assert!(sat(&inf_often, vec![], vec!["p", ""]));
        assert!(!sat(&ev_always, vec![], vec!["p", ""]));
        // Stabilising: both hold.
        assert!(sat(&inf_often, vec![""], vec!["p"]));
        assert!(sat(&ev_always, vec![""], vec!["p"]));
    }

    #[test]
    fn until_needs_fulfilment() {
        let u = F::until(0u32, F::atom('a'), F::atom('b'));
        assert!(sat(&u, vec!["a", "a"], vec!["b"]));
        // a forever but b never: false on infinite traces.
        assert!(!sat(&u, vec![], vec!["a"]));
        assert!(!sat(&u, vec!["a", ""], vec!["b"]));
    }

    #[test]
    fn release_allows_forever() {
        let r = F::release(0u32, F::atom('a'), F::atom('b'));
        // b forever without a release: release holds (unlike until).
        assert!(sat(&r, vec![], vec!["b"]));
        assert!(sat(&r, vec!["b"], vec!["ab", ""]));
        assert!(!sat(&r, vec!["b", ""], vec!["b"]));
    }

    #[test]
    fn until_release_duality_on_lassos() {
        let u = F::until(0u32, F::atom('a'), F::atom('b'));
        let dual = F::release(0u32, F::atom('a').not(), F::atom('b').not()).not();
        for (stem, cycle) in [
            (vec!["a"], vec!["b"]),
            (vec![], vec!["a", "b"]),
            (vec!["ab", ""], vec!["a"]),
            (vec![], vec![""]),
        ] {
            assert_eq!(
                sat(&u, stem.clone(), cycle.clone()),
                sat(&dual, stem, cycle)
            );
        }
    }

    #[test]
    fn next_operators_coincide_on_infinite_traces() {
        for (f, g) in [
            (F::atom('p').next(), F::atom('p').weak_next()),
            (F::atom('p').next(), F::atom('p').strong_next()),
        ] {
            for (stem, cycle) in [(vec!["", "p"], vec![""]), (vec![], vec!["", "p"])] {
                assert_eq!(sat(&f, stem.clone(), cycle.clone()), sat(&g, stem, cycle));
            }
        }
    }

    #[test]
    fn expansion_identity_always() {
        // □φ = φ ∧ X □φ (Fig. 3, identity 8) on several lassos.
        let f = F::always(0u32, F::atom('p'));
        let expanded = F::atom('p').and(F::always(0u32, F::atom('p')).next());
        for (stem, cycle) in [
            (vec![], vec!["p"]),
            (vec!["p"], vec!["p", ""]),
            (vec![""], vec!["p"]),
        ] {
            assert_eq!(
                sat(&f, stem.clone(), cycle.clone()),
                sat(&expanded, stem, cycle)
            );
        }
    }

    #[test]
    fn demands_are_semantically_transparent() {
        let annotated = F::always(50u32, F::eventually(7u32, F::atom('p')));
        let plain = F::always(0u32, F::eventually(0u32, F::atom('p')));
        for (stem, cycle) in [
            (vec![], vec!["p", ""]),
            (vec!["", ""], vec![""]),
            (vec!["p"], vec!["p"]),
        ] {
            assert_eq!(
                sat(&annotated, stem.clone(), cycle.clone()),
                sat(&plain, stem, cycle)
            );
        }
    }
}
