//! The four-valued verdict lattice of QuickLTL (§2.1–2.2).
//!
//! Following RV-LTL (Bauer et al.), a test against a partial trace yields one
//! of four values: a *definitive* answer when the trace alone proves or
//! refutes the formula, or a *presumptive* answer when more states could
//! still change the outcome. QuickLTL adds a fifth possibility at the level
//! of [`Outcome`]: the trace can be *too short* to give even a presumptive
//! answer, because required-next obligations (demands) remain outstanding.

use std::fmt;

/// A four-valued truth verdict, ordered from most false to most true.
///
/// The ordering `DefinitelyFalse < PresumablyFalse < PresumablyTrue <
/// DefinitelyTrue` makes the verdict a lattice: combining evidence can use
/// `min`/`max` directly.
///
/// # Examples
///
/// ```
/// use quickltl::Verdict;
/// assert!(Verdict::DefinitelyFalse < Verdict::PresumablyTrue);
/// assert!(Verdict::PresumablyTrue.to_bool());
/// assert!(!Verdict::PresumablyFalse.is_definitive());
/// assert_eq!(Verdict::definitely(true), Verdict::DefinitelyTrue);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Verdict {
    /// The trace refutes the formula; no extension can satisfy it.
    DefinitelyFalse,
    /// The trace neither proves nor refutes; the presumptive reading is false
    /// (e.g. a liveness goal not yet fulfilled).
    PresumablyFalse,
    /// The trace neither proves nor refutes; the presumptive reading is true
    /// (e.g. no counterexample to a safety property found).
    PresumablyTrue,
    /// The trace proves the formula; no extension can refute it.
    DefinitelyTrue,
}

impl Verdict {
    /// The definitive verdict with the given truth value.
    #[must_use]
    pub fn definitely(b: bool) -> Verdict {
        if b {
            Verdict::DefinitelyTrue
        } else {
            Verdict::DefinitelyFalse
        }
    }

    /// The presumptive verdict with the given truth value.
    #[must_use]
    pub fn presumably(b: bool) -> Verdict {
        if b {
            Verdict::PresumablyTrue
        } else {
            Verdict::PresumablyFalse
        }
    }

    /// `true` for the definitive verdicts.
    #[must_use]
    pub fn is_definitive(self) -> bool {
        matches!(self, Verdict::DefinitelyTrue | Verdict::DefinitelyFalse)
    }

    /// The underlying two-valued reading.
    #[must_use]
    pub fn to_bool(self) -> bool {
        matches!(self, Verdict::DefinitelyTrue | Verdict::PresumablyTrue)
    }

    /// The dual verdict: negating a formula negates its verdict while
    /// preserving definitiveness.
    #[must_use]
    pub fn negate(self) -> Verdict {
        match self {
            Verdict::DefinitelyFalse => Verdict::DefinitelyTrue,
            Verdict::PresumablyFalse => Verdict::PresumablyTrue,
            Verdict::PresumablyTrue => Verdict::PresumablyFalse,
            Verdict::DefinitelyTrue => Verdict::DefinitelyFalse,
        }
    }

    /// Lattice meet (conjunction of evidence).
    #[must_use]
    pub fn meet(self, other: Verdict) -> Verdict {
        self.min(other)
    }

    /// Lattice join (disjunction of evidence).
    #[must_use]
    pub fn join(self, other: Verdict) -> Verdict {
        self.max(other)
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Verdict::DefinitelyFalse => "definitely false",
            Verdict::PresumablyFalse => "presumably false",
            Verdict::PresumablyTrue => "presumably true",
            Verdict::DefinitelyTrue => "definitely true",
        };
        f.write_str(s)
    }
}

/// The result of checking a formula against a (possibly still partial)
/// trace.
///
/// Unlike RV-LTL, QuickLTL can *demand more states*: when the residual
/// formula still contains required-next (`X!`) obligations, no presumptive
/// verdict may be reported and the checker must keep interacting with the
/// system under test (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// A verdict is available.
    Verdict(Verdict),
    /// The trace is too short: required-next demands remain outstanding.
    MoreStatesNeeded,
}

impl Outcome {
    /// The verdict, if one is available.
    #[must_use]
    pub fn verdict(self) -> Option<Verdict> {
        match self {
            Outcome::Verdict(v) => Some(v),
            Outcome::MoreStatesNeeded => None,
        }
    }

    /// `true` when the outcome carries a definitive verdict.
    #[must_use]
    pub fn is_definitive(self) -> bool {
        matches!(self, Outcome::Verdict(v) if v.is_definitive())
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Verdict(v) => write!(f, "{v}"),
            Outcome::MoreStatesNeeded => f.write_str("more states needed"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_order() {
        use Verdict::*;
        assert!(DefinitelyFalse < PresumablyFalse);
        assert!(PresumablyFalse < PresumablyTrue);
        assert!(PresumablyTrue < DefinitelyTrue);
    }

    #[test]
    fn negation_is_an_involution_and_antitone() {
        use Verdict::*;
        for v in [
            DefinitelyFalse,
            PresumablyFalse,
            PresumablyTrue,
            DefinitelyTrue,
        ] {
            assert_eq!(v.negate().negate(), v);
        }
        assert_eq!(DefinitelyTrue.negate(), DefinitelyFalse);
        assert_eq!(PresumablyTrue.negate(), PresumablyFalse);
    }

    #[test]
    fn meet_and_join_behave_like_min_max() {
        use Verdict::*;
        assert_eq!(DefinitelyTrue.meet(PresumablyFalse), PresumablyFalse);
        assert_eq!(DefinitelyFalse.join(PresumablyTrue), PresumablyTrue);
        for v in [
            DefinitelyFalse,
            PresumablyFalse,
            PresumablyTrue,
            DefinitelyTrue,
        ] {
            assert_eq!(v.meet(v), v);
            assert_eq!(v.join(v), v);
        }
    }

    #[test]
    fn constructors_and_projections() {
        assert_eq!(Verdict::definitely(true), Verdict::DefinitelyTrue);
        assert_eq!(Verdict::presumably(false), Verdict::PresumablyFalse);
        assert!(Verdict::DefinitelyFalse.is_definitive());
        assert!(!Verdict::PresumablyTrue.is_definitive());
        assert!(Verdict::PresumablyTrue.to_bool());
        assert!(!Verdict::DefinitelyFalse.to_bool());
    }

    #[test]
    fn outcome_projections() {
        assert_eq!(
            Outcome::Verdict(Verdict::DefinitelyTrue).verdict(),
            Some(Verdict::DefinitelyTrue)
        );
        assert_eq!(Outcome::MoreStatesNeeded.verdict(), None);
        assert!(Outcome::Verdict(Verdict::DefinitelyFalse).is_definitive());
        assert!(!Outcome::Verdict(Verdict::PresumablyTrue).is_definitive());
        assert!(!Outcome::MoreStatesNeeded.is_definitive());
    }

    #[test]
    fn display_strings() {
        assert_eq!(Verdict::DefinitelyTrue.to_string(), "definitely true");
        assert_eq!(Outcome::MoreStatesNeeded.to_string(), "more states needed");
    }
}
