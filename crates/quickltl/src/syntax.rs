//! Abstract syntax of QuickLTL formulae (paper, Figure 4).
//!
//! A [`Formula`] is parameterised by the type `P` of atomic propositions, so
//! the logic is reusable across very different state spaces: the Specstrom
//! interpreter instantiates `P` with state-query thunks, the test suites use
//! `char` or small integers, and the CCS executor uses action labels.
//!
//! QuickLTL extends RV-LTL with three distinct "next" operators and numeric
//! *demand* annotations on the temporal operators:
//!
//! * [`Formula::Next`] — the *required next* `X!`, self-dual: rather than
//!   defaulting to a value at the end of a partial trace, it obliges the
//!   checker to produce another state.
//! * [`Formula::WeakNext`] — `Xw`, defaults to true when no next state exists.
//! * [`Formula::StrongNext`] — `Xs`, defaults to false when no next state
//!   exists.
//! * [`Demand`] — the subscript `n` on `□ₙ`, `◇ₙ`, `Uₙ`, `Rₙ` giving the
//!   minimum number of further states the checker must examine before a
//!   presumptive answer for that operator is trustworthy.

use std::fmt;

/// The numeric subscript on a temporal operator (paper, §2.2).
///
/// `Demand(n)` means the checker must examine at least `n` further states
/// before the presumptive answer given for this operator is accurate. It
/// decrements as the formula is unrolled (Figure 5): while positive the
/// expansion uses the required next `X!`; at zero it uses the weak/strong
/// next of RV-LTL.
///
/// Demands are *semantically transparent* for completed (infinite) traces:
/// they only control when testing of a partial trace may stop.
///
/// # Examples
///
/// ```
/// use quickltl::Demand;
/// let d = Demand(3);
/// assert_eq!(d.decrement(), Demand(2));
/// assert_eq!(Demand(0).decrement(), Demand(0));
/// assert!(Demand(1).is_positive());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Demand(pub u32);

impl Demand {
    /// The zero demand: temporal operators behave exactly as in RV-LTL.
    pub const ZERO: Demand = Demand(0);

    /// Returns `true` when the demand still requires further states.
    #[must_use]
    pub fn is_positive(self) -> bool {
        self.0 > 0
    }

    /// One step of the Figure 5 expansion: `n+1` becomes `n`, `0` stays `0`.
    #[must_use]
    pub fn decrement(self) -> Demand {
        Demand(self.0.saturating_sub(1))
    }
}

impl fmt::Display for Demand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for Demand {
    fn from(n: u32) -> Self {
        Demand(n)
    }
}

/// A QuickLTL formula over atomic propositions of type `P` (Figure 4).
///
/// Construct formulae with the provided combinator methods rather than the
/// enum variants directly; the combinators apply cheap peephole
/// simplifications (`⊤ ∧ φ = φ`, …) so that formulae stay small during
/// progression.
///
/// # Examples
///
/// Build `□₁₀₀ ◇₅ menuEnabled` — "checking at least 100 states, the menu is
/// always re-enabled within 5 states" (the motivating example of §2.2):
///
/// ```
/// use quickltl::Formula;
/// let f = Formula::always(100, Formula::eventually(5, Formula::atom("menuEnabled")));
/// assert_eq!(f.to_string(), "G[100] F[5] menuEnabled");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Formula<P> {
    /// The constant true, `⊤`.
    Top,
    /// The constant false, `⊥`.
    Bottom,
    /// An atomic proposition, evaluated against a single state.
    Atom(P),
    /// Negation, `¬φ`.
    Not(Box<Formula<P>>),
    /// Conjunction, `φ ∧ ψ`.
    And(Box<Formula<P>>, Box<Formula<P>>),
    /// Disjunction, `φ ∨ ψ`.
    Or(Box<Formula<P>>, Box<Formula<P>>),
    /// The *required next* `X! φ`: the checker must produce a next state.
    Next(Box<Formula<P>>),
    /// The *weak next* `Xw φ`: true if there is no next state.
    WeakNext(Box<Formula<P>>),
    /// The *strong next* `Xs φ`: false if there is no next state.
    StrongNext(Box<Formula<P>>),
    /// Henceforth, `□ₙ φ`.
    Always(Demand, Box<Formula<P>>),
    /// Eventually, `◇ₙ φ`.
    Eventually(Demand, Box<Formula<P>>),
    /// Until, `φ Uₙ ψ`.
    Until(Demand, Box<Formula<P>>, Box<Formula<P>>),
    /// Release, `φ Rₙ ψ`.
    Release(Demand, Box<Formula<P>>, Box<Formula<P>>),
}

impl<P> Formula<P> {
    /// An atomic proposition.
    pub fn atom(p: P) -> Self {
        Formula::Atom(p)
    }

    /// The constant of the given truth value.
    #[must_use]
    pub fn constant(b: bool) -> Self {
        if b {
            Formula::Top
        } else {
            Formula::Bottom
        }
    }

    /// Negation with peephole simplification (`¬⊤ = ⊥`, `¬¬φ = φ`).
    ///
    /// Deliberately named like the logical operator; `Formula` is not
    /// `Copy`-cheap enough for `std::ops::Not` to read naturally in specs.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        match self {
            Formula::Top => Formula::Bottom,
            Formula::Bottom => Formula::Top,
            Formula::Not(inner) => *inner,
            other => Formula::Not(Box::new(other)),
        }
    }

    /// Conjunction with unit/annihilator simplification.
    #[must_use]
    pub fn and(self, other: Self) -> Self {
        match (self, other) {
            (Formula::Top, g) | (g, Formula::Top) => g,
            (Formula::Bottom, _) | (_, Formula::Bottom) => Formula::Bottom,
            (f, g) => Formula::And(Box::new(f), Box::new(g)),
        }
    }

    /// Disjunction with unit/annihilator simplification.
    #[must_use]
    pub fn or(self, other: Self) -> Self {
        match (self, other) {
            (Formula::Bottom, g) | (g, Formula::Bottom) => g,
            (Formula::Top, _) | (_, Formula::Top) => Formula::Top,
            (f, g) => Formula::Or(Box::new(f), Box::new(g)),
        }
    }

    /// Material implication `φ ⇒ ψ`, desugared to `¬φ ∨ ψ`.
    #[must_use]
    pub fn implies(self, other: Self) -> Self {
        self.not().or(other)
    }

    /// The required next, `X! φ`.
    #[must_use]
    pub fn next(self) -> Self {
        Formula::Next(Box::new(self))
    }

    /// The weak next, `Xw φ` (true at the end of the trace).
    #[must_use]
    pub fn weak_next(self) -> Self {
        Formula::WeakNext(Box::new(self))
    }

    /// The strong next, `Xs φ` (false at the end of the trace).
    #[must_use]
    pub fn strong_next(self) -> Self {
        Formula::StrongNext(Box::new(self))
    }

    /// Henceforth with demand `n`, `□ₙ φ`.
    #[must_use]
    pub fn always(n: impl Into<Demand>, body: Self) -> Self {
        Formula::Always(n.into(), Box::new(body))
    }

    /// Eventually with demand `n`, `◇ₙ φ`.
    #[must_use]
    pub fn eventually(n: impl Into<Demand>, body: Self) -> Self {
        Formula::Eventually(n.into(), Box::new(body))
    }

    /// Until with demand `n`, `φ Uₙ ψ`.
    #[must_use]
    pub fn until(n: impl Into<Demand>, lhs: Self, rhs: Self) -> Self {
        Formula::Until(n.into(), Box::new(lhs), Box::new(rhs))
    }

    /// Release with demand `n`, `φ Rₙ ψ`.
    #[must_use]
    pub fn release(n: impl Into<Demand>, lhs: Self, rhs: Self) -> Self {
        Formula::Release(n.into(), Box::new(lhs), Box::new(rhs))
    }

    /// The number of nodes in the formula tree.
    ///
    /// Used by the ablation benchmarks to measure the Roşu–Havelund blow-up
    /// that the paper's simplification step avoids (§2.3).
    #[must_use]
    pub fn size(&self) -> usize {
        match self {
            Formula::Top | Formula::Bottom | Formula::Atom(_) => 1,
            Formula::Not(f)
            | Formula::Next(f)
            | Formula::WeakNext(f)
            | Formula::StrongNext(f)
            | Formula::Always(_, f)
            | Formula::Eventually(_, f) => 1 + f.size(),
            Formula::And(f, g) | Formula::Or(f, g) => 1 + f.size() + g.size(),
            Formula::Until(_, f, g) | Formula::Release(_, f, g) => 1 + f.size() + g.size(),
        }
    }

    /// The maximum nesting depth of the formula tree.
    #[must_use]
    pub fn depth(&self) -> usize {
        match self {
            Formula::Top | Formula::Bottom | Formula::Atom(_) => 1,
            Formula::Not(f)
            | Formula::Next(f)
            | Formula::WeakNext(f)
            | Formula::StrongNext(f)
            | Formula::Always(_, f)
            | Formula::Eventually(_, f) => 1 + f.depth(),
            Formula::And(f, g)
            | Formula::Or(f, g)
            | Formula::Until(_, f, g)
            | Formula::Release(_, f, g) => 1 + f.depth().max(g.depth()),
        }
    }

    /// Returns `true` if the formula is the constant `⊤` or `⊥`.
    #[must_use]
    pub fn is_constant(&self) -> bool {
        matches!(self, Formula::Top | Formula::Bottom)
    }

    /// If the formula is a constant, its truth value.
    #[must_use]
    pub fn as_constant(&self) -> Option<bool> {
        match self {
            Formula::Top => Some(true),
            Formula::Bottom => Some(false),
            _ => None,
        }
    }

    /// Applies `f` to every atomic proposition, preserving structure.
    ///
    /// # Examples
    ///
    /// ```
    /// use quickltl::Formula;
    /// let f = Formula::atom(1u32).and(Formula::atom(2));
    /// let g = f.map_atoms(&mut |n| n * 10);
    /// assert_eq!(g, Formula::atom(10u32).and(Formula::atom(20)));
    /// ```
    #[must_use]
    pub fn map_atoms<Q>(self, f: &mut impl FnMut(P) -> Q) -> Formula<Q> {
        match self {
            Formula::Top => Formula::Top,
            Formula::Bottom => Formula::Bottom,
            Formula::Atom(p) => Formula::Atom(f(p)),
            Formula::Not(inner) => Formula::Not(Box::new(inner.map_atoms(f))),
            Formula::And(l, r) => Formula::And(Box::new(l.map_atoms(f)), Box::new(r.map_atoms(f))),
            Formula::Or(l, r) => Formula::Or(Box::new(l.map_atoms(f)), Box::new(r.map_atoms(f))),
            Formula::Next(inner) => Formula::Next(Box::new(inner.map_atoms(f))),
            Formula::WeakNext(inner) => Formula::WeakNext(Box::new(inner.map_atoms(f))),
            Formula::StrongNext(inner) => Formula::StrongNext(Box::new(inner.map_atoms(f))),
            Formula::Always(n, inner) => Formula::Always(n, Box::new(inner.map_atoms(f))),
            Formula::Eventually(n, inner) => Formula::Eventually(n, Box::new(inner.map_atoms(f))),
            Formula::Until(n, l, r) => {
                Formula::Until(n, Box::new(l.map_atoms(f)), Box::new(r.map_atoms(f)))
            }
            Formula::Release(n, l, r) => {
                Formula::Release(n, Box::new(l.map_atoms(f)), Box::new(r.map_atoms(f)))
            }
        }
    }

    /// Visits every atomic proposition by reference.
    pub fn for_each_atom(&self, f: &mut impl FnMut(&P)) {
        match self {
            Formula::Top | Formula::Bottom => {}
            Formula::Atom(p) => f(p),
            Formula::Not(inner)
            | Formula::Next(inner)
            | Formula::WeakNext(inner)
            | Formula::StrongNext(inner)
            | Formula::Always(_, inner)
            | Formula::Eventually(_, inner) => inner.for_each_atom(f),
            Formula::And(l, r)
            | Formula::Or(l, r)
            | Formula::Until(_, l, r)
            | Formula::Release(_, l, r) => {
                l.for_each_atom(f);
                r.for_each_atom(f);
            }
        }
    }

    /// Replaces every demand annotation with `Demand::ZERO`.
    ///
    /// Erasing the subscripts yields exactly RV-LTL (§5.5: "QuickLTL is by
    /// definition a superset of other partial trace variants of LTL such as
    /// RV-LTL"); the `finite` module uses this to provide the RV-LTL
    /// baseline.
    #[must_use]
    pub fn erase_demands(self) -> Formula<P> {
        match self {
            Formula::Always(_, inner) => {
                Formula::Always(Demand::ZERO, Box::new(inner.erase_demands()))
            }
            Formula::Eventually(_, inner) => {
                Formula::Eventually(Demand::ZERO, Box::new(inner.erase_demands()))
            }
            Formula::Until(_, l, r) => Formula::Until(
                Demand::ZERO,
                Box::new(l.erase_demands()),
                Box::new(r.erase_demands()),
            ),
            Formula::Release(_, l, r) => Formula::Release(
                Demand::ZERO,
                Box::new(l.erase_demands()),
                Box::new(r.erase_demands()),
            ),
            Formula::Not(inner) => Formula::Not(Box::new(inner.erase_demands())),
            Formula::And(l, r) => {
                Formula::And(Box::new(l.erase_demands()), Box::new(r.erase_demands()))
            }
            Formula::Or(l, r) => {
                Formula::Or(Box::new(l.erase_demands()), Box::new(r.erase_demands()))
            }
            Formula::Next(inner) => Formula::Next(Box::new(inner.erase_demands())),
            Formula::WeakNext(inner) => Formula::WeakNext(Box::new(inner.erase_demands())),
            Formula::StrongNext(inner) => Formula::StrongNext(Box::new(inner.erase_demands())),
            leaf @ (Formula::Top | Formula::Bottom | Formula::Atom(_)) => leaf,
        }
    }

    /// Uniformly overrides every demand annotation with `n`.
    ///
    /// This is how the checker applies the user-configured default subscript
    /// to a specification that omits explicit annotations (§4.1), and how
    /// the Figure 13 harness sweeps the subscript parameter.
    #[must_use]
    pub fn with_uniform_demand(self, n: impl Into<Demand> + Copy) -> Formula<P> {
        match self {
            Formula::Always(_, inner) => {
                Formula::Always(n.into(), Box::new(inner.with_uniform_demand(n)))
            }
            Formula::Eventually(_, inner) => {
                Formula::Eventually(n.into(), Box::new(inner.with_uniform_demand(n)))
            }
            Formula::Until(_, l, r) => Formula::Until(
                n.into(),
                Box::new(l.with_uniform_demand(n)),
                Box::new(r.with_uniform_demand(n)),
            ),
            Formula::Release(_, l, r) => Formula::Release(
                n.into(),
                Box::new(l.with_uniform_demand(n)),
                Box::new(r.with_uniform_demand(n)),
            ),
            Formula::Not(inner) => Formula::Not(Box::new(inner.with_uniform_demand(n))),
            Formula::And(l, r) => Formula::And(
                Box::new(l.with_uniform_demand(n)),
                Box::new(r.with_uniform_demand(n)),
            ),
            Formula::Or(l, r) => Formula::Or(
                Box::new(l.with_uniform_demand(n)),
                Box::new(r.with_uniform_demand(n)),
            ),
            Formula::Next(inner) => Formula::Next(Box::new(inner.with_uniform_demand(n))),
            Formula::WeakNext(inner) => Formula::WeakNext(Box::new(inner.with_uniform_demand(n))),
            Formula::StrongNext(inner) => {
                Formula::StrongNext(Box::new(inner.with_uniform_demand(n)))
            }
            leaf @ (Formula::Top | Formula::Bottom | Formula::Atom(_)) => leaf,
        }
    }
}

/// Precedence levels for pretty-printing.
fn prec<P>(f: &Formula<P>) -> u8 {
    match f {
        Formula::Top | Formula::Bottom | Formula::Atom(_) => 5,
        Formula::Not(_)
        | Formula::Next(_)
        | Formula::WeakNext(_)
        | Formula::StrongNext(_)
        | Formula::Always(_, _)
        | Formula::Eventually(_, _) => 4,
        Formula::Until(_, _, _) | Formula::Release(_, _, _) => 3,
        Formula::And(_, _) => 2,
        Formula::Or(_, _) => 1,
    }
}

fn fmt_at<P: fmt::Display>(
    f: &Formula<P>,
    min_prec: u8,
    out: &mut fmt::Formatter<'_>,
) -> fmt::Result {
    let p = prec(f);
    if p < min_prec {
        write!(out, "(")?;
    }
    match f {
        Formula::Top => write!(out, "true")?,
        Formula::Bottom => write!(out, "false")?,
        Formula::Atom(a) => write!(out, "{a}")?,
        Formula::Not(inner) => {
            write!(out, "!")?;
            fmt_at(inner, 4, out)?;
        }
        Formula::Next(inner) => {
            write!(out, "X! ")?;
            fmt_at(inner, 4, out)?;
        }
        Formula::WeakNext(inner) => {
            write!(out, "Xw ")?;
            fmt_at(inner, 4, out)?;
        }
        Formula::StrongNext(inner) => {
            write!(out, "Xs ")?;
            fmt_at(inner, 4, out)?;
        }
        Formula::Always(n, inner) => {
            write!(out, "G[{n}] ")?;
            fmt_at(inner, 4, out)?;
        }
        Formula::Eventually(n, inner) => {
            write!(out, "F[{n}] ")?;
            fmt_at(inner, 4, out)?;
        }
        Formula::Until(n, l, r) => {
            fmt_at(l, 4, out)?;
            write!(out, " U[{n}] ")?;
            fmt_at(r, 4, out)?;
        }
        Formula::Release(n, l, r) => {
            fmt_at(l, 4, out)?;
            write!(out, " R[{n}] ")?;
            fmt_at(r, 4, out)?;
        }
        Formula::And(l, r) => {
            fmt_at(l, 2, out)?;
            write!(out, " && ")?;
            fmt_at(r, 3, out)?;
        }
        Formula::Or(l, r) => {
            fmt_at(l, 1, out)?;
            write!(out, " || ")?;
            fmt_at(r, 2, out)?;
        }
    }
    if p < min_prec {
        write!(out, ")")?;
    }
    Ok(())
}

impl<P: fmt::Display> fmt::Display for Formula<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_at(self, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Formula<&str> {
        Formula::atom(s)
    }

    #[test]
    fn constructors_simplify_constants() {
        assert_eq!(Formula::<&str>::Top.not(), Formula::Bottom);
        assert_eq!(Formula::<&str>::Bottom.not(), Formula::Top);
        assert_eq!(a("p").not().not(), a("p"));
        assert_eq!(Formula::Top.and(a("p")), a("p"));
        assert_eq!(a("p").and(Formula::Bottom), Formula::Bottom);
        assert_eq!(Formula::Bottom.or(a("p")), a("p"));
        assert_eq!(a("p").or(Formula::Top), Formula::Top);
    }

    #[test]
    fn implies_desugars() {
        assert_eq!(a("p").implies(a("q")), a("p").not().or(a("q")));
        assert_eq!(Formula::<&str>::Bottom.implies(a("q")), Formula::Top);
    }

    #[test]
    fn size_and_depth() {
        let f = Formula::always(3, a("p").and(a("q")));
        assert_eq!(f.size(), 4);
        assert_eq!(f.depth(), 3);
        assert_eq!(a("p").size(), 1);
    }

    #[test]
    fn display_is_precedence_aware() {
        let f = a("p").or(a("q")).and(a("r"));
        assert_eq!(f.to_string(), "(p || q) && r");
        let g = a("p").or(a("q").and(a("r")));
        assert_eq!(g.to_string(), "p || q && r");
        let h = Formula::until(2, a("p"), a("q")).not();
        assert_eq!(h.to_string(), "!(p U[2] q)");
    }

    #[test]
    fn display_temporal_operators() {
        let f = Formula::always(100, Formula::eventually(5, a("menuEnabled")));
        assert_eq!(f.to_string(), "G[100] F[5] menuEnabled");
        let g = Formula::until(0, a("LogIn").not(), a("SecretPage")).not();
        assert_eq!(g.to_string(), "!(!LogIn U[0] SecretPage)");
    }

    #[test]
    fn erase_demands_zeroes_all_subscripts() {
        let f = Formula::always(
            100,
            Formula::until(7, a("p"), Formula::release(3, a("q"), a("r"))),
        );
        let erased = f.erase_demands();
        match erased {
            Formula::Always(n, inner) => {
                assert_eq!(n, Demand::ZERO);
                match *inner {
                    Formula::Until(m, _, r) => {
                        assert_eq!(m, Demand::ZERO);
                        match *r {
                            Formula::Release(k, _, _) => assert_eq!(k, Demand::ZERO),
                            other => panic!("expected release, got {other:?}"),
                        }
                    }
                    other => panic!("expected until, got {other:?}"),
                }
            }
            other => panic!("expected always, got {other:?}"),
        }
    }

    #[test]
    fn with_uniform_demand_overrides_all() {
        let f = Formula::always(100, Formula::eventually(5, a("p")));
        let g = f.with_uniform_demand(9u32);
        assert_eq!(g.to_string(), "G[9] F[9] p");
    }

    #[test]
    fn map_atoms_preserves_structure() {
        let f = Formula::always(2, a("p").implies(Formula::eventually(1, a("q"))));
        let g = f.clone().map_atoms(&mut |s| s.to_uppercase());
        assert_eq!(g.to_string(), "G[2] (!P || F[1] Q)");
        assert_eq!(g.size(), f.size());
    }

    #[test]
    fn for_each_atom_visits_all() {
        let f = Formula::until(1, a("x"), a("y").and(a("z")));
        let mut seen = Vec::new();
        f.for_each_atom(&mut |p| seen.push(*p));
        assert_eq!(seen, vec!["x", "y", "z"]);
    }

    #[test]
    fn demand_arithmetic() {
        assert_eq!(Demand(5).decrement(), Demand(4));
        assert_eq!(Demand(0).decrement(), Demand(0));
        assert!(!Demand(0).is_positive());
        assert!(Demand(1).is_positive());
        assert_eq!(Demand::from(7u32), Demand(7));
    }
}
