//! Evaluation of QuickLTL by formula progression (§2.3).
//!
//! Evaluation of a formula proceeds in three phases, repeated per state of
//! the trace:
//!
//! 1. **Unroll** ([`unroll`], Figure 6): given a state `σ`, expand each
//!    temporal operator one step and evaluate every atomic proposition that
//!    is not guarded by a "next" operator against `σ`.
//! 2. **Simplify** ([`simplify`], Figure 3 identities plus boolean laws):
//!    the result is either a definitive constant, or a formula in *guarded
//!    form* — conjunctions and disjunctions of next-guarded subformulae —
//!    from which a presumptive answer can be read off when no *required
//!    next* remains.
//! 3. **Step** ([`Guarded::step`], Figure 7): strip one layer of next
//!    operators and continue with the following state.
//!
//! [`Evaluator`] packages the loop; [`check_trace`] runs it over a complete
//! finite trace.

use crate::syntax::Formula;
use crate::verdict::{Outcome, Verdict};
use std::fmt;

/// How aggressively [`simplify`] rewrites formulae.
///
/// `Full` is the paper's algorithm. `NoDedup` disables the idempotence law
/// `φ ∧ φ = φ` / `φ ∨ φ = φ`, which is the rewrite responsible for taming
/// the Roşu–Havelund formula-size blow-up that §2.3 warns about; it exists
/// so the ablation benchmark can measure that growth. Constant folding and
/// negation pushing can never be disabled — they are what establishes the
/// guarded-form invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimplifyMode {
    /// Constant folding, negation identities, and idempotence dedup.
    #[default]
    Full,
    /// Constant folding and negation identities only.
    NoDedup,
}

/// Pushes negations inward using the Figure 3 identities (1–5) extended to
/// QuickLTL's three next operators, and folds constants.
///
/// The required next `X!` is self-dual; the weak and strong nexts are dual
/// to each other; demand annotations transfer unchanged under duality (the
/// Figure 5 expansions commute with negation).
fn negate<P>(f: Formula<P>, mode: SimplifyMode) -> Formula<P>
where
    P: PartialEq,
{
    match f {
        Formula::Top => Formula::Bottom,
        Formula::Bottom => Formula::Top,
        Formula::Atom(p) => Formula::Not(Box::new(Formula::Atom(p))),
        Formula::Not(inner) => simplify_with(*inner, mode),
        Formula::And(l, r) => simplify_or(negate(*l, mode), negate(*r, mode), mode),
        Formula::Or(l, r) => simplify_and(negate(*l, mode), negate(*r, mode), mode),
        // Identity 3 (Fig. 3) for the self-dual required next.
        Formula::Next(inner) => mk_next(negate(*inner, mode)),
        // ¬ Xw φ = Xs ¬φ and vice versa.
        Formula::WeakNext(inner) => mk_strong_next(negate(*inner, mode)),
        Formula::StrongNext(inner) => mk_weak_next(negate(*inner, mode)),
        // Identities 1–2: ¬ □ₙ φ = ◇ₙ ¬φ, ¬ ◇ₙ φ = □ₙ ¬φ.
        Formula::Always(n, inner) => mk_eventually(n, negate(*inner, mode)),
        Formula::Eventually(n, inner) => mk_always(n, negate(*inner, mode)),
        // Identities 4–5: ¬(φ Uₙ ψ) = ¬φ Rₙ ¬ψ and vice versa.
        Formula::Until(n, l, r) => mk_release(n, negate(*l, mode), negate(*r, mode)),
        Formula::Release(n, l, r) => mk_until(n, negate(*l, mode), negate(*r, mode)),
    }
}

/// Smart constructors applying the conservative unit laws. Used uniformly
/// by both [`simplify_with`] and [`negate`], so that dual formulae always
/// simplify to dual results (negation duality of the verdicts depends on
/// this).
fn mk_next<P>(inner: Formula<P>) -> Formula<P> {
    match inner {
        // In the partial-trace setting the checker can always produce a
        // next state, so a required next over a constant is that constant:
        // `X! ⊤ = ⊤` and `X! ⊥ = ⊥`. Demands exist to gate *presumptive*
        // answers; a definitive constant needs no further states. Both
        // collapses are kept so the law set stays closed under duality.
        Formula::Top => Formula::Top,
        Formula::Bottom => Formula::Bottom,
        g => Formula::Next(Box::new(g)),
    }
}

fn mk_weak_next<P>(inner: Formula<P>) -> Formula<P> {
    match inner {
        // Xw ⊤ is true whether or not a next state exists.
        Formula::Top => Formula::Top,
        g => Formula::WeakNext(Box::new(g)),
    }
}

fn mk_strong_next<P>(inner: Formula<P>) -> Formula<P> {
    match inner {
        // Xs ⊥ is false whether or not a next state exists.
        Formula::Bottom => Formula::Bottom,
        g => Formula::StrongNext(Box::new(g)),
    }
}

fn mk_always<P>(n: crate::syntax::Demand, inner: Formula<P>) -> Formula<P> {
    match inner {
        Formula::Top => Formula::Top,
        Formula::Bottom => Formula::Bottom,
        g => Formula::Always(n, Box::new(g)),
    }
}

fn mk_eventually<P>(n: crate::syntax::Demand, inner: Formula<P>) -> Formula<P> {
    match inner {
        Formula::Top => Formula::Top,
        Formula::Bottom => Formula::Bottom,
        g => Formula::Eventually(n, Box::new(g)),
    }
}

fn mk_until<P>(n: crate::syntax::Demand, l: Formula<P>, r: Formula<P>) -> Formula<P> {
    match r {
        // φ Uₙ ⊤ is immediately satisfied; φ Uₙ ⊥ can never be.
        Formula::Top => Formula::Top,
        Formula::Bottom => Formula::Bottom,
        g => Formula::Until(n, Box::new(l), Box::new(g)),
    }
}

fn mk_release<P>(n: crate::syntax::Demand, l: Formula<P>, r: Formula<P>) -> Formula<P> {
    match r {
        // φ Rₙ ⊤ holds trivially; φ Rₙ ⊥ fails at the very first state.
        Formula::Top => Formula::Top,
        Formula::Bottom => Formula::Bottom,
        g => Formula::Release(n, Box::new(l), Box::new(g)),
    }
}

/// Flattens an `∧`/`∨` chain into its non-constant conjuncts/disjuncts,
/// returning `true` if the annihilating constant was found.
fn flatten<P>(f: Formula<P>, is_and: bool, out: &mut Vec<Formula<P>>) -> bool {
    match (f, is_and) {
        (Formula::Top, true) | (Formula::Bottom, false) => false, // unit: drop
        (Formula::Top, false) | (Formula::Bottom, true) => true,  // annihilator
        (Formula::And(l, r), true) => flatten(*l, true, out) || flatten(*r, true, out),
        (Formula::Or(l, r), false) => flatten(*l, false, out) || flatten(*r, false, out),
        (other, _) => {
            out.push(other);
            false
        }
    }
}

/// Rebuilds a (deduplicated) conjunct/disjunct list.
///
/// Duplicate detection works over the *flattened* chain, so `φ ∧ (φ ∧ ψ)`
/// collapses too — pairwise-sibling dedup would miss it, and it is exactly
/// the shape progression produces when `□` re-spawns an obligation that is
/// already pending (the Roşu–Havelund accumulation, §2.3).
fn rebuild<P: PartialEq>(
    mut items: Vec<Formula<P>>,
    is_and: bool,
    mode: SimplifyMode,
) -> Formula<P> {
    if mode == SimplifyMode::Full {
        let mut deduped: Vec<Formula<P>> = Vec::with_capacity(items.len());
        for item in items {
            if !deduped.contains(&item) {
                deduped.push(item);
            }
        }
        items = deduped;
    }
    let unit = if is_and {
        Formula::Top
    } else {
        Formula::Bottom
    };
    let Some(first) = items.pop() else {
        return unit;
    };
    items.into_iter().rfold(first, |acc, item| {
        if is_and {
            Formula::And(Box::new(item), Box::new(acc))
        } else {
            Formula::Or(Box::new(item), Box::new(acc))
        }
    })
}

fn simplify_and<P: PartialEq>(l: Formula<P>, r: Formula<P>, mode: SimplifyMode) -> Formula<P> {
    let mut items = Vec::new();
    if flatten(l, true, &mut items) || flatten(r, true, &mut items) {
        return Formula::Bottom;
    }
    rebuild(items, true, mode)
}

fn simplify_or<P: PartialEq>(l: Formula<P>, r: Formula<P>, mode: SimplifyMode) -> Formula<P> {
    let mut items = Vec::new();
    if flatten(l, false, &mut items) || flatten(r, false, &mut items) {
        return Formula::Top;
    }
    rebuild(items, false, mode)
}

/// Simplifies a formula with the given [`SimplifyMode`].
///
/// Performs negation pushing (Figure 3 identities 1–5 plus De Morgan),
/// constant folding, conservative temporal unit laws (`□ₙ ⊤ = ⊤`,
/// `□ₙ ⊥ = ⊥`, `◇ₙ ⊤ = ⊤`, `◇ₙ ⊥ = ⊥`, `φ Uₙ ⊤ = ⊤`, `φ Uₙ ⊥ = ⊥`,
/// `φ Rₙ ⊤ = ⊤`, `φ Rₙ ⊥ = ⊥`, `Xw ⊤ = ⊤`, `Xs ⊥ = ⊥`), and — in
/// [`SimplifyMode::Full`] — idempotence dedup. The unit-law set is closed
/// under duality, so negating a formula always yields the dual
/// simplification. The result of simplifying an [`unroll`]ed formula is
/// either a constant or in guarded form.
#[must_use]
pub fn simplify_with<P>(f: Formula<P>, mode: SimplifyMode) -> Formula<P>
where
    P: PartialEq,
{
    match f {
        Formula::Top => Formula::Top,
        Formula::Bottom => Formula::Bottom,
        Formula::Atom(p) => Formula::Atom(p),
        Formula::Not(inner) => negate(*inner, mode),
        Formula::And(l, r) => simplify_and(simplify_with(*l, mode), simplify_with(*r, mode), mode),
        Formula::Or(l, r) => simplify_or(simplify_with(*l, mode), simplify_with(*r, mode), mode),
        Formula::Next(inner) => mk_next(simplify_with(*inner, mode)),
        Formula::WeakNext(inner) => mk_weak_next(simplify_with(*inner, mode)),
        Formula::StrongNext(inner) => mk_strong_next(simplify_with(*inner, mode)),
        Formula::Always(n, inner) => mk_always(n, simplify_with(*inner, mode)),
        Formula::Eventually(n, inner) => mk_eventually(n, simplify_with(*inner, mode)),
        Formula::Until(n, l, r) => {
            let l = simplify_with(*l, mode);
            mk_until(n, l, simplify_with(*r, mode))
        }
        Formula::Release(n, l, r) => {
            let l = simplify_with(*l, mode);
            mk_release(n, l, simplify_with(*r, mode))
        }
    }
}

/// Simplifies with [`SimplifyMode::Full`] (the paper's algorithm).
#[must_use]
pub fn simplify<P: PartialEq>(f: Formula<P>) -> Formula<P> {
    simplify_with(f, SimplifyMode::Full)
}

/// Unrolls a formula one step against the state `σ` (Figure 6), with atom
/// *expansion*.
///
/// Every atomic proposition not guarded by a next operator is expanded via
/// `expand`, which may return an arbitrary formula — not merely a constant.
/// This is what lets a host language (Specstrom) treat whole temporal
/// subformulae as state-dependent expressions: an atom may evaluate, at this
/// very state, to a fresh formula (e.g. a `release`-guarded nested state
/// machine whose `let`-bound values were frozen at σ, §4.1), which is then
/// itself unrolled against σ. Plain propositions simply expand to `⊤`/`⊥`.
///
/// Temporal operators are expanded per the Figure 5 identities, positive
/// demands spending one unit and emitting a *required next*, zero demands
/// emitting the weak/strong next of RV-LTL. Subformulae under next guards
/// are left untouched — they concern the following state.
///
/// Expansion must be *productive*: the formulae returned by `expand` are
/// unrolled recursively, so an expansion chain that reproduces its own atom
/// would diverge. Terminating hosts (Specstrom has no recursion) satisfy
/// this by construction; [`Evaluator::observe`] is the plain-proposition
/// variant.
///
/// # Errors
///
/// Propagates the first error returned by `expand` (e.g. a failed DOM
/// query).
pub fn unroll<P, E>(
    f: Formula<P>,
    expand: &mut impl FnMut(&P) -> Result<Formula<P>, E>,
) -> Result<Formula<P>, E>
where
    P: Clone,
{
    Ok(match f {
        Formula::Top => Formula::Top,
        Formula::Bottom => Formula::Bottom,
        Formula::Atom(p) => {
            let expanded = expand(&p)?;
            match expanded {
                // Constants and next-guarded results need no re-unrolling;
                // anything else is a formula "at σ" and is unrolled here.
                Formula::Top => Formula::Top,
                Formula::Bottom => Formula::Bottom,
                other => unroll(other, expand)?,
            }
        }
        Formula::Not(inner) => Formula::Not(Box::new(unroll(*inner, expand)?)),
        Formula::And(l, r) => {
            Formula::And(Box::new(unroll(*l, expand)?), Box::new(unroll(*r, expand)?))
        }
        Formula::Or(l, r) => {
            Formula::Or(Box::new(unroll(*l, expand)?), Box::new(unroll(*r, expand)?))
        }
        // The three next operators pass through unchanged (Fig. 6).
        next @ (Formula::Next(_) | Formula::WeakNext(_) | Formula::StrongNext(_)) => next,
        Formula::Always(n, inner) => {
            let now = unroll((*inner).clone(), expand)?;
            let rest = Formula::Always(n.decrement(), inner);
            let guarded = if n.is_positive() {
                Formula::Next(Box::new(rest))
            } else {
                Formula::WeakNext(Box::new(rest))
            };
            Formula::And(Box::new(now), Box::new(guarded))
        }
        Formula::Eventually(n, inner) => {
            let now = unroll((*inner).clone(), expand)?;
            let rest = Formula::Eventually(n.decrement(), inner);
            let guarded = if n.is_positive() {
                Formula::Next(Box::new(rest))
            } else {
                Formula::StrongNext(Box::new(rest))
            };
            Formula::Or(Box::new(now), Box::new(guarded))
        }
        Formula::Until(n, l, r) => {
            let l_now = unroll((*l).clone(), expand)?;
            let r_now = unroll((*r).clone(), expand)?;
            let rest = Formula::Until(n.decrement(), l, r);
            let guarded = if n.is_positive() {
                Formula::Next(Box::new(rest))
            } else {
                Formula::StrongNext(Box::new(rest))
            };
            // ψ′ ∨ (φ′ ∧ ◦(φ Uₙ₋₁ ψ))
            Formula::Or(
                Box::new(r_now),
                Box::new(Formula::And(Box::new(l_now), Box::new(guarded))),
            )
        }
        Formula::Release(n, l, r) => {
            let l_now = unroll((*l).clone(), expand)?;
            let r_now = unroll((*r).clone(), expand)?;
            let rest = Formula::Release(n.decrement(), l, r);
            let guarded = if n.is_positive() {
                Formula::Next(Box::new(rest))
            } else {
                Formula::WeakNext(Box::new(rest))
            };
            // ψ′ ∧ (φ′ ∨ ◦(φ Rₙ₋₁ ψ))
            Formula::And(
                Box::new(r_now),
                Box::new(Formula::Or(Box::new(l_now), Box::new(guarded))),
            )
        }
    })
}

/// A formula in *guarded form* (Figure 4): conjunctions and disjunctions of
/// next-guarded subformulae.
///
/// Obtained from [`classify`]; the invariant is checked on construction.
/// A guarded formula answers two questions:
///
/// * [`Guarded::demands_more`] — does a required next remain, obliging the
///   checker to produce another state before any verdict may be given?
/// * [`Guarded::presumptive`] — when no required next remains, the
///   presumptive truth value obtained by reading weak-next-guarded terms as
///   `⊤` and strong-next-guarded terms as `⊥`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Guarded<P>(Formula<P>);

impl<P> Guarded<P> {
    fn is_guarded(f: &Formula<P>) -> bool {
        match f {
            Formula::Next(_) | Formula::WeakNext(_) | Formula::StrongNext(_) => true,
            Formula::And(l, r) | Formula::Or(l, r) => Self::is_guarded(l) && Self::is_guarded(r),
            _ => false,
        }
    }

    /// Wraps `f`, verifying the guarded-form invariant.
    ///
    /// # Errors
    ///
    /// Returns [`NotGuardedError`] if `f` contains anything other than
    /// `∧`/`∨` over next-guarded subformulae.
    pub fn new(f: Formula<P>) -> Result<Self, NotGuardedError> {
        if Self::is_guarded(&f) {
            Ok(Guarded(f))
        } else {
            Err(NotGuardedError)
        }
    }

    /// A view of the underlying formula.
    #[must_use]
    pub fn formula(&self) -> &Formula<P> {
        &self.0
    }

    /// Unwraps into the underlying formula.
    #[must_use]
    pub fn into_formula(self) -> Formula<P> {
        self.0
    }

    /// `true` when a required-next guard remains anywhere in the formula.
    #[must_use]
    pub fn demands_more(&self) -> bool {
        fn go<P>(f: &Formula<P>) -> bool {
            match f {
                Formula::Next(_) => true,
                Formula::And(l, r) | Formula::Or(l, r) => go(l) || go(r),
                _ => false,
            }
        }
        go(&self.0)
    }

    /// The presumptive truth value (§2.3, phase 2): weak-next-guarded terms
    /// read as `⊤`, strong-next-guarded terms as `⊥`.
    ///
    /// Returns `None` when a required next remains — per the paper, no
    /// presumptive answer may be given in that case.
    #[must_use]
    pub fn presumptive(&self) -> Option<bool> {
        fn go<P>(f: &Formula<P>) -> Option<bool> {
            match f {
                Formula::Next(_) => None,
                Formula::WeakNext(_) => Some(true),
                Formula::StrongNext(_) => Some(false),
                Formula::And(l, r) => match (go(l), go(r)) {
                    // ⊥ annihilates even a demanding sibling? No: a required
                    // next forbids any presumptive answer for the whole
                    // formula (§2.3), so propagate None strictly.
                    (Some(a), Some(b)) => Some(a && b),
                    _ => None,
                },
                Formula::Or(l, r) => match (go(l), go(r)) {
                    (Some(a), Some(b)) => Some(a || b),
                    _ => None,
                },
                // Unreachable under the construction invariant.
                _ => None,
            }
        }
        go(&self.0)
    }

    /// Steps the formula forward to the next state (Figure 7): every next
    /// guard is stripped, `∧`/`∨` are preserved.
    #[must_use]
    pub fn step(self) -> Formula<P> {
        fn go<P>(f: Formula<P>) -> Formula<P> {
            match f {
                Formula::Next(inner) | Formula::WeakNext(inner) | Formula::StrongNext(inner) => {
                    *inner
                }
                Formula::And(l, r) => Formula::And(Box::new(go(*l)), Box::new(go(*r))),
                Formula::Or(l, r) => Formula::Or(Box::new(go(*l)), Box::new(go(*r))),
                other => other,
            }
        }
        go(self.0)
    }
}

/// Error returned by [`Guarded::new`] when the formula is not in guarded
/// form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotGuardedError;

impl fmt::Display for NotGuardedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("formula is not in guarded form")
    }
}

impl std::error::Error for NotGuardedError {}

/// The result of unrolling and simplifying against one state: either a
/// definitive constant or a guarded-form residue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Progress<P> {
    /// The trace so far decides the formula outright.
    Definitive(bool),
    /// Evaluation must consult further states.
    Guarded(Guarded<P>),
}

/// Classifies a simplified, unrolled formula as definitive or guarded.
///
/// # Errors
///
/// Returns [`NotGuardedError`] if the formula is neither constant nor in
/// guarded form — which indicates it was not produced by
/// [`unroll`]-then-[`simplify`].
pub fn classify<P>(f: Formula<P>) -> Result<Progress<P>, NotGuardedError> {
    match f {
        Formula::Top => Ok(Progress::Definitive(true)),
        Formula::Bottom => Ok(Progress::Definitive(false)),
        other => Guarded::new(other).map(Progress::Guarded),
    }
}

/// The per-state report of an [`Evaluator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepReport {
    /// The formula is decided; further states cannot change the verdict.
    Definitive(bool),
    /// Evaluation continues. `presumptive` is the tentative answer, absent
    /// when required-next demands are outstanding.
    Continue {
        /// The presumptive reading, if permitted.
        presumptive: Option<bool>,
    },
}

impl StepReport {
    /// The [`Outcome`] corresponding to stopping the trace right now.
    #[must_use]
    pub fn outcome(self) -> Outcome {
        match self {
            StepReport::Definitive(b) => Outcome::Verdict(Verdict::definitely(b)),
            StepReport::Continue {
                presumptive: Some(b),
            } => Outcome::Verdict(Verdict::presumably(b)),
            StepReport::Continue { presumptive: None } => Outcome::MoreStatesNeeded,
        }
    }
}

/// Incremental QuickLTL evaluation over a growing trace (§2.3's loop).
///
/// Feed states one at a time with [`Evaluator::observe`]; inspect the
/// running [`Evaluator::outcome`] at any point. Once a definitive verdict is
/// reached the evaluator latches: further observations are no-ops.
///
/// # Examples
///
/// ```
/// use quickltl::{Evaluator, Formula, Outcome, Verdict};
///
/// // ◇₂ p over states where p first holds in the third state.
/// let f = Formula::eventually(2u32, Formula::atom('p'));
/// let mut ev = Evaluator::new(f);
/// let trace = [false, false, true];
/// for p in trace {
///     let report = ev
///         .observe::<std::convert::Infallible>(&mut |_| Ok(p))
///         .unwrap();
///     let _ = report;
/// }
/// assert_eq!(ev.outcome(), Outcome::Verdict(Verdict::DefinitelyTrue));
/// ```
#[derive(Debug, Clone)]
pub struct Evaluator<P> {
    state: EvaluatorState<P>,
    mode: SimplifyMode,
    states_seen: usize,
    last_report: Option<StepReport>,
}

#[derive(Debug, Clone)]
enum EvaluatorState<P> {
    Running(Formula<P>),
    Done(bool),
}

impl<P> Evaluator<P>
where
    P: Clone + PartialEq,
{
    /// Creates an evaluator for `formula` with full simplification.
    pub fn new(formula: Formula<P>) -> Self {
        Evaluator {
            state: EvaluatorState::Running(formula),
            mode: SimplifyMode::Full,
            states_seen: 0,
            last_report: None,
        }
    }

    /// Creates an evaluator with an explicit [`SimplifyMode`] (ablation
    /// hook; see the `ablation_simplify` benchmark).
    pub fn with_mode(formula: Formula<P>, mode: SimplifyMode) -> Self {
        Evaluator {
            state: EvaluatorState::Running(formula),
            mode,
            states_seen: 0,
            last_report: None,
        }
    }

    /// Resumes evaluation *mid-trace* from a residual formula.
    ///
    /// Used by checkers that normally step a precomputed automaton
    /// ([`crate::automaton`]) and must fall back to plain progression when
    /// the automaton's residual space overflows its cap: the automaton
    /// state is reconstituted into the concrete residual formula, and the
    /// evaluator picks up exactly where the table left off. `states_seen`
    /// and `last_report` must reflect the observations already consumed,
    /// so that [`Evaluator::outcome`] and [`Evaluator::forced_outcome`]
    /// behave as if this evaluator had processed the whole prefix itself.
    pub fn resume(
        residual: Formula<P>,
        states_seen: usize,
        last_report: Option<StepReport>,
    ) -> Self {
        Evaluator {
            state: EvaluatorState::Running(residual),
            mode: SimplifyMode::Full,
            states_seen,
            last_report,
        }
    }

    /// Observes one state of the trace, running unroll → simplify →
    /// classify → step.
    ///
    /// `eval` evaluates an atomic proposition against the observed state,
    /// returning a plain truth value. For hosts whose atoms expand into
    /// formulae (Specstrom), use [`Evaluator::observe_expanding`]. After a
    /// definitive verdict, further calls return it unchanged without
    /// invoking `eval`.
    ///
    /// # Errors
    ///
    /// Propagates errors from `eval` (the formula is left unchanged, so the
    /// caller may retry with a repaired state).
    ///
    /// # Panics
    ///
    /// Panics if unroll-then-simplify produces a formula that is neither
    /// constant nor guarded — an internal invariant violation.
    pub fn observe<E>(
        &mut self,
        eval: &mut impl FnMut(&P) -> Result<bool, E>,
    ) -> Result<StepReport, E> {
        self.observe_expanding(&mut |p| eval(p).map(Formula::constant))
    }

    /// Observes one state, expanding atoms into formulae (see [`unroll`]).
    ///
    /// # Errors
    ///
    /// Propagates errors from `expand`.
    ///
    /// # Panics
    ///
    /// Panics if unroll-then-simplify produces a formula that is neither
    /// constant nor guarded — an internal invariant violation.
    pub fn observe_expanding<E>(
        &mut self,
        expand: &mut impl FnMut(&P) -> Result<Formula<P>, E>,
    ) -> Result<StepReport, E> {
        let formula = match &self.state {
            EvaluatorState::Done(b) => return Ok(StepReport::Definitive(*b)),
            EvaluatorState::Running(f) => f.clone(),
        };
        let unrolled = unroll(formula, expand)?;
        let simplified = simplify_with(unrolled, self.mode);
        self.states_seen += 1;
        let report = match classify(simplified)
            .expect("unroll+simplify must yield constant or guarded form")
        {
            Progress::Definitive(b) => {
                self.state = EvaluatorState::Done(b);
                StepReport::Definitive(b)
            }
            Progress::Guarded(g) => {
                let presumptive = g.presumptive();
                self.state = EvaluatorState::Running(g.step());
                StepReport::Continue { presumptive }
            }
        };
        self.last_report = Some(report);
        Ok(report)
    }

    /// The outcome of ending the trace after the states observed so far.
    ///
    /// Before any state has been observed, this is
    /// [`Outcome::MoreStatesNeeded`]: QuickLTL formulae are evaluated
    /// against non-empty traces.
    #[must_use]
    pub fn outcome(&self) -> Outcome {
        match self.last_report {
            Some(report) => report.outcome(),
            None => Outcome::MoreStatesNeeded,
        }
    }

    /// The residual formula awaiting the next state, or `None` once done.
    #[must_use]
    pub fn residual(&self) -> Option<&Formula<P>> {
        match &self.state {
            EvaluatorState::Running(f) => Some(f),
            EvaluatorState::Done(_) => None,
        }
    }

    /// The verdict a checker should report when *forced* to stop now: the
    /// regular [`Evaluator::outcome`] when available, otherwise the
    /// presumptive verdict from [`end_of_trace_default`] on the residual
    /// (see that function for when this arises).
    #[must_use]
    pub fn forced_outcome(&self) -> Outcome {
        match self.outcome() {
            Outcome::Verdict(v) => Outcome::Verdict(v),
            Outcome::MoreStatesNeeded => match (&self.state, self.states_seen) {
                (_, 0) => Outcome::MoreStatesNeeded,
                (EvaluatorState::Running(f), _) => {
                    Outcome::Verdict(Verdict::presumably(end_of_trace_default(f)))
                }
                (EvaluatorState::Done(b), _) => Outcome::Verdict(Verdict::definitely(*b)),
            },
        }
    }

    /// The number of states observed so far.
    #[must_use]
    pub fn states_seen(&self) -> usize {
        self.states_seen
    }
}

/// The end-of-trace default of a residual formula: the RV-LTL reading a
/// checker may fall back to when it is *forced* to stop while required-next
/// demands are still outstanding.
///
/// A formula like `□₃₀ ◇₄ p` over a system where `p` never again holds
/// spawns a fresh `◇₄` obligation — with an unexpired demand — at every
/// state, so no finite trace ever satisfies [`Guarded::presumptive`]'s
/// precondition. The paper specifies that demands oblige the checker to
/// keep testing but leaves the forced-stop rule open; this function gives
/// the principled fallback: evaluate the residue as if the trace ended for
/// good, i.e. with every demand waived (`□`/`R`/weak-next default true,
/// `◇`/`U`/strong-next default false, required-next recursing into its
/// obligation, atoms about the non-existent next state reading false).
///
/// Checkers should prefer [`Guarded::presumptive`] and only use this at a
/// hard stop (action budget, stuck application).
#[must_use]
pub fn end_of_trace_default<P>(f: &Formula<P>) -> bool {
    match f {
        Formula::Top => true,
        Formula::Bottom => false,
        // An atom here concerns a state that will never be produced; the
        // strong (conservative for liveness) reading is false. NNF keeps
        // negation only at atoms, so `!p` correctly reads true.
        Formula::Atom(_) => false,
        Formula::Not(inner) => !end_of_trace_default(inner),
        Formula::And(l, r) => end_of_trace_default(l) && end_of_trace_default(r),
        Formula::Or(l, r) => end_of_trace_default(l) || end_of_trace_default(r),
        Formula::Next(inner) => end_of_trace_default(inner),
        Formula::WeakNext(_) => true,
        Formula::StrongNext(_) => false,
        Formula::Always(_, _) | Formula::Release(_, _, _) => true,
        Formula::Eventually(_, _) | Formula::Until(_, _, _) => false,
    }
}

/// Checks a formula against a completed finite trace, returning the final
/// [`Outcome`].
///
/// Equivalent to feeding every state of `trace` to an [`Evaluator`] and
/// taking the outcome of the last [`StepReport`].
///
/// # Errors
///
/// Propagates the first error from `eval`.
pub fn check_trace<P, S, E>(
    formula: Formula<P>,
    trace: &[S],
    eval: &mut impl FnMut(&P, &S) -> Result<bool, E>,
) -> Result<Outcome, E>
where
    P: Clone + PartialEq,
{
    let mut evaluator = Evaluator::new(formula);
    let mut last = None;
    for state in trace {
        let report = evaluator.observe_expanding(&mut |p| eval(p, state).map(Formula::constant))?;
        if let StepReport::Definitive(_) = report {
            return Ok(report.outcome());
        }
        last = Some(report);
    }
    Ok(match last {
        Some(report) => report.outcome(),
        None => Outcome::MoreStatesNeeded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::Formula;
    use std::convert::Infallible;

    type F = Formula<char>;

    /// Evaluate an atom against a state that is a set of true propositions.
    fn holds(p: &char, state: &&str) -> Result<bool, Infallible> {
        Ok(state.contains(*p))
    }

    fn check(f: F, trace: &[&str]) -> Outcome {
        check_trace(f, trace, &mut holds).unwrap()
    }

    #[test]
    fn atom_evaluates_against_first_state() {
        assert_eq!(
            check(F::atom('p'), &["p", ""]),
            Outcome::Verdict(Verdict::DefinitelyTrue)
        );
        assert_eq!(
            check(F::atom('p'), &["", "p"]),
            Outcome::Verdict(Verdict::DefinitelyFalse)
        );
    }

    #[test]
    fn safety_violation_is_definitive_false() {
        let f = F::always(0u32, F::atom('p'));
        assert_eq!(
            check(f, &["p", "p", "", "p"]),
            Outcome::Verdict(Verdict::DefinitelyFalse)
        );
    }

    #[test]
    fn safety_unviolated_is_presumably_true() {
        let f = F::always(0u32, F::atom('p'));
        assert_eq!(
            check(f, &["p", "p", "p"]),
            Outcome::Verdict(Verdict::PresumablyTrue)
        );
    }

    #[test]
    fn liveness_fulfilled_is_definitive_true() {
        let f = F::eventually(0u32, F::atom('p'));
        assert_eq!(
            check(f, &["", "", "p"]),
            Outcome::Verdict(Verdict::DefinitelyTrue)
        );
    }

    #[test]
    fn liveness_unfulfilled_is_presumably_false() {
        let f = F::eventually(0u32, F::atom('p'));
        assert_eq!(
            check(f, &["", "", ""]),
            Outcome::Verdict(Verdict::PresumablyFalse)
        );
    }

    #[test]
    fn demands_keep_the_checker_going() {
        // ◇₂ p: with only one state and no p, a presumptive answer is not
        // yet allowed — two more states are demanded.
        let f = F::eventually(2u32, F::atom('p'));
        assert_eq!(check(f.clone(), &[""]), Outcome::MoreStatesNeeded);
        assert_eq!(check(f.clone(), &["", ""]), Outcome::MoreStatesNeeded);
        assert_eq!(
            check(f, &["", "", ""]),
            Outcome::Verdict(Verdict::PresumablyFalse)
        );
    }

    #[test]
    fn always_demand_requires_minimum_length() {
        let f = F::always(2u32, F::atom('p'));
        assert_eq!(check(f.clone(), &["p"]), Outcome::MoreStatesNeeded);
        assert_eq!(check(f.clone(), &["p", "p"]), Outcome::MoreStatesNeeded);
        assert_eq!(
            check(f, &["p", "p", "p"]),
            Outcome::Verdict(Verdict::PresumablyTrue)
        );
    }

    #[test]
    fn menu_enabled_example_from_section_2_2() {
        // □₄ ◇₂ menuEnabled: when the trace ends in a disabled state, the
        // inner demand obliges the checker to look further instead of
        // reporting the spurious presumably-false answer of §2.1 …
        let f = F::always(4u32, F::eventually(2u32, F::atom('m')));
        let ends_disabled = ["m", "", "m", "", "m", ""];
        assert_eq!(check(f.clone(), &ends_disabled), Outcome::MoreStatesNeeded);
        // … and once the menu is re-enabled within the demanded window the
        // alternating behaviour is judged presumably true.
        let ends_enabled = ["m", "", "m", "", "m", "", "m"];
        assert_eq!(
            check(f, &ends_enabled),
            Outcome::Verdict(Verdict::PresumablyTrue)
        );
        // RV-LTL (all demands zero) on the disabled-ending trace gives the
        // spurious presumably-false answer the paper criticises.
        let rv = F::always(0u32, F::eventually(0u32, F::atom('m')));
        assert_eq!(
            check(rv, &ends_disabled),
            Outcome::Verdict(Verdict::PresumablyFalse)
        );
    }

    #[test]
    fn until_discharges_definitively() {
        let f = F::until(0u32, F::atom('a'), F::atom('b'));
        assert_eq!(
            check(f.clone(), &["a", "a", "ab"]),
            Outcome::Verdict(Verdict::DefinitelyTrue)
        );
        // a stops holding before b arrives: definitively false.
        assert_eq!(
            check(f.clone(), &["a", "", "b"]),
            Outcome::Verdict(Verdict::DefinitelyFalse)
        );
        // Still waiting: presumptively false (strong-next default).
        assert_eq!(
            check(f, &["a", "a"]),
            Outcome::Verdict(Verdict::PresumablyFalse)
        );
    }

    #[test]
    fn release_holds_weakly() {
        // a R b: b must hold until (and including when) a releases it.
        let f = F::release(0u32, F::atom('a'), F::atom('b'));
        assert_eq!(
            check(f.clone(), &["b", "b", "ab"]),
            Outcome::Verdict(Verdict::DefinitelyTrue)
        );
        assert_eq!(
            check(f.clone(), &["b", "", "ab"]),
            Outcome::Verdict(Verdict::DefinitelyFalse)
        );
        assert_eq!(
            check(f, &["b", "b"]),
            Outcome::Verdict(Verdict::PresumablyTrue)
        );
    }

    #[test]
    fn next_operators_at_end_of_trace() {
        // Xw p over a single-state trace: presumably true; Xs p presumably
        // false; X! p demands another state.
        assert_eq!(
            check(F::atom('p').weak_next(), &[""]),
            Outcome::Verdict(Verdict::PresumablyTrue)
        );
        assert_eq!(
            check(F::atom('p').strong_next(), &[""]),
            Outcome::Verdict(Verdict::PresumablyFalse)
        );
        assert_eq!(check(F::atom('p').next(), &[""]), Outcome::MoreStatesNeeded);
        // With a second state, all three read the atom there.
        assert_eq!(
            check(F::atom('p').next(), &["", "p"]),
            Outcome::Verdict(Verdict::DefinitelyTrue)
        );
        assert_eq!(
            check(F::atom('p').weak_next(), &["", ""]),
            Outcome::Verdict(Verdict::DefinitelyFalse)
        );
    }

    #[test]
    fn negation_duality_through_progression() {
        // ¬◇₁ p behaves as □₁ ¬p.
        let f = F::eventually(1u32, F::atom('p')).not();
        let g = F::always(1u32, F::atom('p').not());
        for trace in [
            vec!["", ""],
            vec!["p", ""],
            vec!["", "p"],
            vec!["", "", "p"],
            vec!["", "", ""],
        ] {
            assert_eq!(
                check(f.clone(), &trace),
                check(g.clone(), &trace),
                "{trace:?}"
            );
        }
    }

    #[test]
    fn flashing_screen_example() {
        // □₀ (dark ∧ Xw light ∨ light ∧ Xw dark), §2's flashing screen,
        // with the weak next so a trace may end mid-flash.
        let body = F::atom('d')
            .and(F::atom('l').weak_next())
            .or(F::atom('l').and(F::atom('d').weak_next()));
        let f = F::always(0u32, body);
        assert_eq!(
            check(f.clone(), &["d", "l", "d", "l"]),
            Outcome::Verdict(Verdict::PresumablyTrue)
        );
        // Two lights in a row violate the alternation outright.
        assert_eq!(
            check(f.clone(), &["d", "l", "l"]),
            Outcome::Verdict(Verdict::DefinitelyFalse)
        );
        // With the strong next, the pending obligation at the end of the
        // trace reads presumably false instead.
        let strong_body = F::atom('d')
            .and(F::atom('l').strong_next())
            .or(F::atom('l').and(F::atom('d').strong_next()));
        let g = F::always(0u32, strong_body);
        assert_eq!(
            check(g, &["d", "l", "d", "l"]),
            Outcome::Verdict(Verdict::PresumablyFalse)
        );
    }

    #[test]
    fn classify_rejects_unguarded() {
        assert!(classify(F::atom('p')).is_err());
        assert!(matches!(classify(F::Top), Ok(Progress::Definitive(true))));
        let guarded = F::atom('p').next().and(F::atom('q').weak_next());
        match classify(guarded) {
            Ok(Progress::Guarded(g)) => {
                assert!(g.demands_more());
                assert_eq!(g.presumptive(), None);
            }
            other => panic!("expected guarded, got {other:?}"),
        }
    }

    #[test]
    fn guarded_presumptive_reading() {
        let g = Guarded::new(F::atom('p').weak_next().or(F::atom('q').strong_next())).unwrap();
        assert!(!g.demands_more());
        assert_eq!(g.presumptive(), Some(true));
        let g2 = Guarded::new(F::atom('p').strong_next().and(F::atom('q').weak_next())).unwrap();
        assert_eq!(g2.presumptive(), Some(false));
    }

    #[test]
    fn guarded_step_strips_one_layer() {
        let g = Guarded::new(F::atom('p').next().and(F::atom('q').weak_next())).unwrap();
        assert_eq!(g.step(), F::atom('p').and(F::atom('q')));
    }

    #[test]
    fn simplify_pushes_negations() {
        let f = F::until(3u32, F::atom('a'), F::atom('b')).not();
        let s = simplify(f);
        assert_eq!(s, F::release(3u32, F::atom('a').not(), F::atom('b').not()));
        let g = F::always(2u32, F::atom('a')).not();
        assert_eq!(simplify(g), F::eventually(2u32, F::atom('a').not()));
        let h = F::atom('a').weak_next().not();
        assert_eq!(simplify(h), F::atom('a').not().strong_next());
    }

    #[test]
    fn simplify_unit_laws() {
        assert_eq!(simplify(F::Top.and(F::atom('p'))), F::atom('p'));
        assert_eq!(simplify(F::atom('p').or(F::Top)), F::Top);
        assert_eq!(simplify(F::always(3u32, F::Top)), F::Top);
        assert_eq!(simplify(F::eventually(3u32, F::Bottom)), F::Bottom);
        assert_eq!(simplify(F::until(1u32, F::atom('p'), F::Top)), F::Top);
        assert_eq!(simplify(F::until(1u32, F::atom('p'), F::Bottom)), F::Bottom);
        assert_eq!(simplify(F::release(1u32, F::atom('p'), F::Top)), F::Top);
    }

    #[test]
    fn simplify_dedup_modes() {
        let dup = F::atom('p').next().and(F::atom('p').next());
        assert_eq!(simplify(dup.clone()), F::atom('p').next());
        assert_eq!(simplify_with(dup.clone(), SimplifyMode::NoDedup), dup);
    }

    #[test]
    fn evaluator_latches_on_definitive() {
        let mut ev = Evaluator::new(F::atom('p'));
        let r = ev.observe::<Infallible>(&mut |_| Ok(true)).unwrap();
        assert_eq!(r, StepReport::Definitive(true));
        // Further observations do not change (or even evaluate) anything.
        let r2 = ev
            .observe::<Infallible>(&mut |_| panic!("must not be called"))
            .unwrap();
        assert_eq!(r2, StepReport::Definitive(true));
        assert_eq!(ev.residual(), None);
    }

    #[test]
    fn evaluator_error_propagation() {
        #[derive(Debug, PartialEq)]
        struct Boom;
        let mut ev = Evaluator::new(F::atom('p'));
        let r = ev.observe(&mut |_| Err(Boom));
        assert_eq!(r.unwrap_err(), Boom);
        // The evaluator did not advance.
        assert_eq!(ev.states_seen(), 0);
    }

    #[test]
    fn empty_trace_needs_states() {
        assert_eq!(check(F::atom('p'), &[]), Outcome::MoreStatesNeeded);
    }

    #[test]
    fn nested_state_machine_release_pattern() {
        // exit R (edit ∨ exit): the TodoMVC editMachine skeleton (§4.1).
        let f = F::release(0u32, F::atom('x'), F::atom('e').or(F::atom('x')));
        assert_eq!(
            check(f.clone(), &["e", "e", "x"]),
            Outcome::Verdict(Verdict::DefinitelyTrue)
        );
        assert_eq!(
            check(f.clone(), &["e", "", "x"]),
            Outcome::Verdict(Verdict::DefinitelyFalse)
        );
        assert_eq!(
            check(f, &["e", "e"]),
            Outcome::Verdict(Verdict::PresumablyTrue)
        );
    }

    #[test]
    fn until_demand_counts_states() {
        // a U₃ b: after three states of a-without-b the demand is spent and
        // the answer is presumptively false; before that, more states are
        // demanded.
        let f = F::until(3u32, F::atom('a'), F::atom('b'));
        assert_eq!(check(f.clone(), &["a", "a"]), Outcome::MoreStatesNeeded);
        assert_eq!(
            check(f.clone(), &["a", "a", "a", "a"]),
            Outcome::Verdict(Verdict::PresumablyFalse)
        );
        assert_eq!(
            check(f, &["a", "a", "b"]),
            Outcome::Verdict(Verdict::DefinitelyTrue)
        );
    }

    #[test]
    fn release_demand_counts_states() {
        let f = F::release(2u32, F::atom('a'), F::atom('b'));
        assert_eq!(check(f.clone(), &["b", "b"]), Outcome::MoreStatesNeeded);
        assert_eq!(
            check(f, &["b", "b", "b"]),
            Outcome::Verdict(Verdict::PresumablyTrue)
        );
    }

    #[test]
    fn check_trace_ignores_states_after_definitive() {
        let f = F::eventually(0u32, F::atom('p'));
        // Once p is seen the remaining states are irrelevant (and would
        // otherwise flip nothing).
        assert_eq!(
            check(f, &["", "p", "", ""]),
            Outcome::Verdict(Verdict::DefinitelyTrue)
        );
    }

    #[test]
    fn observe_expanding_unrolls_fresh_formulas_at_the_same_state() {
        // Atom 'n' expands, at each state, into a fresh formula that reads
        // the *current* state: `p || Xs q`. This mimics Specstrom's
        // per-state evaluation of temporal expressions (nested state
        // machines whose let-bound values are frozen at unroll time).
        let f = F::always(0u32, F::atom('n'));
        let trace = ["p", "q", "pq"];
        let mut ev = Evaluator::new(f);
        for (i, s) in trace.iter().enumerate() {
            let report = ev
                .observe_expanding::<Infallible>(&mut |p| {
                    Ok(match p {
                        'n' => F::constant(s.contains('p')).or(F::atom('q').strong_next()),
                        q => F::constant(s.contains(*q)),
                    })
                })
                .unwrap();
            // Never definitive: □ keeps an obligation alive.
            assert!(
                matches!(report, StepReport::Continue { .. }),
                "state {i}: {report:?}"
            );
        }
        assert_eq!(ev.outcome(), Outcome::Verdict(Verdict::PresumablyTrue));
        // A state satisfying neither p now nor q next refutes the property.
        let g = F::always(0u32, F::atom('n'));
        let bad = ["p", "", ""];
        let mut ev2 = Evaluator::new(g);
        let mut last = None;
        for s in bad {
            last = Some(
                ev2.observe_expanding::<Infallible>(&mut |p| {
                    Ok(match p {
                        'n' => F::constant(s.contains('p')).or(F::atom('q').strong_next()),
                        q => F::constant(s.contains(*q)),
                    })
                })
                .unwrap(),
            );
        }
        assert_eq!(last, Some(StepReport::Definitive(false)));
    }
}
