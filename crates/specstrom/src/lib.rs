//! # Specstrom
//!
//! The Quickstrom specification language (paper §3): a small, terminating
//! language with JavaScript-adjacent syntax in which engineers write
//! QuickLTL properties, declare the actions and events of their
//! application, and issue `check` commands.
//!
//! The pipeline is [`parse_spec`] → [`mod@compile`] → a [`CompiledSpec`] the
//! checker can run. Compilation performs, in order:
//!
//! 1. **Sort checking** ([`sorts`]) — §3's function/data separation.
//! 2. **Interning + slot resolution + lowering** ([`mod@compile`]) — every
//!    identifier and field name becomes a [`quickstrom_protocol::Symbol`],
//!    every variable reference a `(depth, slot)` coordinate, and the AST a
//!    resolved IR with pre-built literal values.
//! 3. **Environment construction** ([`spec`]) — eager bindings evaluated
//!    at definition time, deferred ones captured as compiled thunks,
//!    actions/events registered with guards and timeouts.
//! 4. **Dependency analysis** ([`analysis`]) — the §3.3 selector list for
//!    executor instrumentation.
//!
//! Per-state evaluation then runs the compiled IR ([`mod@eval`]) against a
//! slot-indexed environment: no string comparison or hashing happens on
//! the formula-progression hot path. The original tree-walking
//! interpreter is preserved in [`mod@reference`] (test/bench-only), and
//! differential property tests pin `compiled ≡ reference`.
//!
//! ## Example
//!
//! ```
//! use specstrom::load;
//!
//! let compiled = load(
//!     r#"
//!     let ~stopped = `#toggle`.text == "start";
//!     action start! = click!(`#toggle`) when stopped;
//!     let ~prop = always[10] (start! in happened ==> eventually[5] !stopped);
//!     check prop;
//!     "#,
//! )
//! .unwrap();
//! assert_eq!(compiled.dependencies.len(), 1);
//! assert!(compiled.property_thunk("prop").is_some());
//! ```
//!
//! ## Evaluation control (§3.1)
//!
//! Deferred bindings (`let ~x = …`, `~param`) capture expressions
//! unevaluated and re-run them at every use, against the then-current
//! state. The paper's `evovae` example — "x shall forever have the value it
//! had initially" — type-checks and means what it should:
//!
//! ```
//! use specstrom::load;
//! let compiled = load(
//!     "fun evovae(~x) { let v = x; always (x == v) }\n\
//!      let ~p = evovae(`#field`.text);\n\
//!      check p with noop!;",
//! )
//! .unwrap();
//! assert!(compiled.property_thunk("p").is_some());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod ast;
pub mod atomc;
pub mod compile;
pub mod error;
pub mod eval;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod reference;
pub mod sorts;
pub mod spec;
pub mod value;

pub use analysis::{
    analyze_compiled, dependencies, dependencies_of, footprint_of_ir, footprint_of_thunk, line_col,
    lint, AtomFootprint, AtomInfo, Diagnostic, DiagnosticCode, PropertyAnalysis, SelectorUse,
    SpecAnalysis,
};
pub use atomc::{
    compile_atom, AtomKeyer, AtomMemo, AtomMemos, CompiledAtom, CompiledExpr, MemoEntry,
};
pub use compile::{compile_expr, initial_env, Ir};
pub use error::{EvalError, SpecError};
pub use eval::{element_record, eval_guard, expand_thunk, to_formula, EvalCtx};
pub use parser::{parse_expr, parse_spec};
pub use pretty::{pretty_expr, pretty_item, pretty_spec};
pub use spec::{
    compile, load, CheckDef, CompiledSpec, SpecAutomata, StepEntry, StepMemo, StepMemos, StepNext,
};
pub use value::{ActionValue, Binding, Builtin, Env, SlotParam, Thunk, Value};
