//! Error types for Specstrom compilation and evaluation.

use crate::ast::Span;
use std::fmt;

/// A compile-time error (lexing, parsing, name resolution, sort checking).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// Where in the source.
    pub span: Span,
    /// What went wrong.
    pub message: String,
}

impl SpecError {
    /// An error at a location.
    pub fn at(span: Span, message: impl Into<String>) -> Self {
        SpecError {
            span,
            message: message.into(),
        }
    }

    /// Renders the error with a line/column computed from `src`.
    #[must_use]
    pub fn render(&self, src: &str) -> String {
        let (line, col) = line_col(src, self.span.start);
        format!("{}:{}: {}", line, col, self.message)
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "error at bytes {}..{}: {}",
            self.span.start, self.span.end, self.message
        )
    }
}

impl std::error::Error for SpecError {}

/// A runtime evaluation error (bad types at runtime, missing state, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError {
    /// Where in the source, if known.
    pub span: Option<Span>,
    /// What went wrong.
    pub message: String,
}

impl EvalError {
    /// An error with no location.
    pub fn new(message: impl Into<String>) -> Self {
        EvalError {
            span: None,
            message: message.into(),
        }
    }

    /// An error at a location.
    pub fn at(span: Span, message: impl Into<String>) -> Self {
        EvalError {
            span: Some(span),
            message: message.into(),
        }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some(span) => write!(
                f,
                "evaluation error at bytes {}..{}: {}",
                span.start, span.end, self.message
            ),
            None => write!(f, "evaluation error: {}", self.message),
        }
    }
}

impl std::error::Error for EvalError {}

/// Computes a 1-based line and column for a byte offset.
#[must_use]
pub fn line_col(src: &str, offset: usize) -> (usize, usize) {
    let clamped = offset.min(src.len());
    let mut line = 1;
    let mut col = 1;
    for (i, c) in src.char_indices() {
        if i >= clamped {
            break;
        }
        if c == '\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    (line, col)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_computation() {
        let src = "abc\ndef\nghi";
        assert_eq!(line_col(src, 0), (1, 1));
        assert_eq!(line_col(src, 2), (1, 3));
        assert_eq!(line_col(src, 4), (2, 1));
        assert_eq!(line_col(src, 9), (3, 2));
        assert_eq!(line_col(src, 999), (3, 4));
    }

    #[test]
    fn render_includes_position() {
        let err = SpecError::at(Span::new(4, 5), "boom");
        assert_eq!(err.render("abc\ndef"), "2:1: boom");
        assert!(err.to_string().contains("boom"));
    }

    #[test]
    fn eval_error_display() {
        let e = EvalError::new("nope");
        assert_eq!(e.to_string(), "evaluation error: nope");
        let f = EvalError::at(Span::new(1, 2), "bad");
        assert!(f.to_string().contains("1..2"));
    }
}
