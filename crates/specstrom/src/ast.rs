//! The abstract syntax of Specstrom.
//!
//! Specstrom (paper §3) superficially resembles JavaScript but is far more
//! restricted: no recursion, guaranteed termination, and a two-sorted type
//! system separating functions from data. Top-level [`Item`]s introduce
//! bindings, actions/events, and `check` commands; [`Expr`]s cover values,
//! state queries (backtick selectors), and QuickLTL temporal operators.

use std::fmt;
use std::sync::Arc;

/// A source location, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Start byte offset.
    pub start: usize,
    /// End byte offset (exclusive).
    pub end: usize,
}

impl Span {
    /// A span covering `start..end`.
    #[must_use]
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both.
    #[must_use]
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Logical/temporal conjunction (lifts to formulae).
    And,
    /// Logical/temporal disjunction (lifts to formulae).
    Or,
    /// Implication `==>` (lifts to formulae).
    Implies,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Membership (`x in xs`, also `tick? in happened`).
    In,
    /// Addition / string concatenation.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Remainder.
    Mod,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::Implies => "==>",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::In => "in",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
        };
        f.write_str(s)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Logical/temporal negation.
    Not,
    /// Arithmetic negation.
    Neg,
}

/// The temporal operators of QuickLTL as surface syntax.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TemporalOp {
    /// `always[n] e` — henceforth.
    Always,
    /// `eventually[n] e` — eventually.
    Eventually,
    /// `next e` — required next.
    Next,
    /// `nextW e` — weak next.
    NextW,
    /// `nextS e` — strong next.
    NextS,
}

/// A literal constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
}

/// A `let` inside a block.
#[derive(Debug, Clone, PartialEq)]
pub struct LetStmt {
    /// Bound name.
    pub name: String,
    /// `true` for `let ~x = …` (evaluated lazily, per state).
    pub deferred: bool,
    /// The bound expression.
    pub value: Arc<Expr>,
    /// Source location of the binding.
    pub span: Span,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal.
    Lit(Literal, Span),
    /// A backtick CSS selector literal.
    Selector(String, Span),
    /// A variable reference.
    Var(String, Span),
    /// The special `happened` state variable (§3.2).
    Happened(Span),
    /// `f(a, b)`.
    Call {
        /// Callee expression.
        func: Arc<Expr>,
        /// Argument expressions.
        args: Vec<Arc<Expr>>,
        /// Location.
        span: Span,
    },
    /// Unary operator application.
    Unary {
        /// The operator.
        op: UnOp,
        /// Operand.
        expr: Arc<Expr>,
        /// Location.
        span: Span,
    },
    /// Binary operator application.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Arc<Expr>,
        /// Right operand.
        rhs: Arc<Expr>,
        /// Location.
        span: Span,
    },
    /// `obj.field`.
    Member {
        /// Object expression.
        obj: Arc<Expr>,
        /// Field name.
        field: String,
        /// Location.
        span: Span,
    },
    /// `xs[i]`.
    Index {
        /// Collection expression.
        obj: Arc<Expr>,
        /// Index expression.
        index: Arc<Expr>,
        /// Location.
        span: Span,
    },
    /// `[a, b, c]`.
    Array(Vec<Arc<Expr>>, Span),
    /// `if c { … } else { … }`.
    If {
        /// Condition (must be a plain boolean, not a formula).
        cond: Arc<Expr>,
        /// Then branch.
        then_branch: Arc<Expr>,
        /// Else branch.
        else_branch: Arc<Expr>,
        /// Location.
        span: Span,
    },
    /// `{ let x = e; …; result }`.
    Block {
        /// Leading let-statements.
        lets: Vec<LetStmt>,
        /// The block's result expression.
        result: Arc<Expr>,
        /// Location.
        span: Span,
    },
    /// A unary temporal operator with optional demand annotation.
    Temporal {
        /// Which operator.
        op: TemporalOp,
        /// The demand subscript; `None` uses the checker default (§4.1).
        demand: Option<u32>,
        /// Body.
        body: Arc<Expr>,
        /// Location.
        span: Span,
    },
    /// `a until[n] b` / `a release[n] b`.
    TemporalBin {
        /// `true` for until, `false` for release.
        until: bool,
        /// The demand subscript; `None` uses the checker default.
        demand: Option<u32>,
        /// Left operand.
        lhs: Arc<Expr>,
        /// Right operand.
        rhs: Arc<Expr>,
        /// Location.
        span: Span,
    },
}

impl Expr {
    /// The source span of this expression.
    #[must_use]
    pub fn span(&self) -> Span {
        match self {
            Expr::Lit(_, s)
            | Expr::Selector(_, s)
            | Expr::Var(_, s)
            | Expr::Happened(s)
            | Expr::Array(_, s) => *s,
            Expr::Call { span, .. }
            | Expr::Unary { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Member { span, .. }
            | Expr::Index { span, .. }
            | Expr::If { span, .. }
            | Expr::Block { span, .. }
            | Expr::Temporal { span, .. }
            | Expr::TemporalBin { span, .. } => *span,
        }
    }
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// `true` for `~x`: the argument is passed unevaluated (call-by-name),
    /// re-evaluated at each use — the evaluation-control feature of §3.1.
    pub deferred: bool,
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `let x = e;` or `let ~x = e;` or `let ~x { … }`.
    Let(LetStmt),
    /// `fun f(a, ~b) { … }`.
    Fun {
        /// Function name.
        name: String,
        /// Parameters.
        params: Vec<Param>,
        /// Body expression.
        body: Arc<Expr>,
        /// Location.
        span: Span,
    },
    /// `action name! = expr timeout t when g;` (or `action name? = …`).
    Action {
        /// Action (`…!`) or event (`…?`) name, including the suffix.
        name: String,
        /// The body, evaluating to a primitive action.
        body: Arc<Expr>,
        /// Optional timeout in milliseconds (§3.2, *Timeouts*).
        timeout: Option<Arc<Expr>>,
        /// Optional guard, evaluated per state (§3.2, *Actions*).
        guard: Option<Arc<Expr>>,
        /// Location.
        span: Span,
    },
    /// `check p1, p2 with a!, b?;`
    Check {
        /// Property names to check.
        properties: Vec<String>,
        /// Optional restriction of the allowable actions (§3.2, the
        /// `timeUp` example).
        with_actions: Option<Vec<String>>,
        /// Location.
        span: Span,
    },
}

impl Item {
    /// The name this item binds, if it binds one.
    #[must_use]
    pub fn name(&self) -> Option<&str> {
        match self {
            Item::Let(l) => Some(&l.name),
            Item::Fun { name, .. } | Item::Action { name, .. } => Some(name),
            Item::Check { .. } => None,
        }
    }

    /// The source span.
    #[must_use]
    pub fn span(&self) -> Span {
        match self {
            Item::Let(l) => l.span,
            Item::Fun { span, .. } | Item::Action { span, .. } | Item::Check { span, .. } => *span,
        }
    }
}

/// A parsed specification: a sequence of items.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Spec {
    /// The items in source order.
    pub items: Vec<Item>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.merge(b), Span::new(3, 12));
        assert_eq!(b.merge(a), Span::new(3, 12));
    }

    #[test]
    fn expr_span_projection() {
        let e = Expr::Lit(Literal::Int(1), Span::new(2, 3));
        assert_eq!(e.span(), Span::new(2, 3));
        let v = Expr::Var("x".into(), Span::new(0, 1));
        assert_eq!(v.span(), Span::new(0, 1));
    }

    #[test]
    fn item_names() {
        let item = Item::Let(LetStmt {
            name: "x".into(),
            deferred: false,
            value: Arc::new(Expr::Lit(Literal::Null, Span::default())),
            span: Span::default(),
        });
        assert_eq!(item.name(), Some("x"));
        let check = Item::Check {
            properties: vec!["p".into()],
            with_actions: None,
            span: Span::default(),
        };
        assert_eq!(check.name(), None);
    }

    #[test]
    fn binop_display() {
        assert_eq!(BinOp::Implies.to_string(), "==>");
        assert_eq!(BinOp::In.to_string(), "in");
        assert_eq!(BinOp::Mod.to_string(), "%");
    }
}
