//! Runtime values, slot-indexed environments and compiled thunks.
//!
//! Specstrom values are JSON-like data plus three domain-specific citizens:
//! CSS selectors, QuickLTL formulae (temporal expressions evaluate to
//! these), and action specifications. Functions are values too but — per
//! the §3 type system — may never be stored inside data, which the sort
//! checker enforces statically.
//!
//! Environments are persistent chains of *frames*. Unlike the original
//! one-name-per-frame, compare-by-string representation (preserved in
//! [`crate::reference`]), a frame here is a `Vec` of bindings and every
//! variable reference was resolved at compile time to a `(depth, slot)`
//! pair by [`mod@crate::compile`]: a lookup walks `depth` parent links and
//! indexes a vector — no string comparisons on the per-state hot path.
//!
//! A [`Binding`] is either an eagerly evaluated [`Value`] or a *deferred*
//! thunk (`let ~x = …`, `~param`) re-evaluated at every use against the
//! then-current state — the evaluation-control feature of §3.1.

use crate::compile::Ir;
use crate::error::EvalError;
use quickltl::Formula;
use quickstrom_protocol::{ActionKind, Selector, Symbol};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A lexical environment: a persistent chain of slot-indexed frames.
///
/// Compiled code addresses bindings as `(depth, slot)`: walk `depth`
/// frames towards the root, then index the frame's slot vector. The chain
/// is immutable and `Arc`-shared, so thunks and closures capture it by
/// cheap clone, exactly like the original linked list — only the lookup
/// got cheaper.
#[derive(Debug, Clone, Default)]
pub struct Env(Option<Arc<Frame>>);

#[derive(Debug)]
struct Frame {
    slots: Vec<Binding>,
    parent: Env,
}

impl Env {
    /// The empty environment.
    #[must_use]
    pub fn new() -> Self {
        Env(None)
    }

    /// Pushes one frame of bindings (a call's arguments, a `let`'s single
    /// binding, or the sealed global frame).
    #[must_use]
    pub fn push(&self, slots: Vec<Binding>) -> Env {
        Env(Some(Arc::new(Frame {
            slots,
            parent: self.clone(),
        })))
    }

    /// The binding at `(depth, slot)`, as resolved by the compiler.
    ///
    /// Returns `None` only if the environment does not match the shape the
    /// code was compiled against — an internal invariant violation, never
    /// a user error.
    #[must_use]
    pub fn get(&self, depth: u32, slot: u32) -> Option<&Binding> {
        let mut cur = self;
        for _ in 0..depth {
            cur = &cur.0.as_ref()?.parent;
        }
        cur.0.as_ref()?.slots.get(slot as usize)
    }

    /// A stable pointer identity for conservative thunk equality.
    pub(crate) fn ptr_id(&self) -> usize {
        self.0.as_ref().map_or(0, |rc| Arc::as_ptr(rc) as usize)
    }

    /// The top frame's bindings and parent, for crate-internal analyses
    /// that walk environment chains (`None` for the empty environment).
    pub(crate) fn split_top(&self) -> Option<(&[Binding], &Env)> {
        self.0
            .as_ref()
            .map(|frame| (frame.slots.as_slice(), &frame.parent))
    }
}

/// How a name is bound.
#[derive(Debug, Clone)]
pub enum Binding {
    /// Evaluated at definition time (`let x = …`).
    Eager(Value),
    /// Captured unevaluated (`let ~x = …`), re-evaluated per use.
    Deferred(Thunk),
}

/// An unevaluated compiled expression closed over its environment.
///
/// Thunks are also the atomic propositions of the QuickLTL formulae the
/// interpreter builds: progression expands a `Thunk` atom by evaluating its
/// compiled code against the current state.
#[derive(Clone)]
pub struct Thunk {
    /// The compiled expression to evaluate.
    pub ir: Arc<Ir>,
    /// The captured environment.
    pub env: Env,
}

impl Thunk {
    /// Creates a thunk.
    #[must_use]
    pub fn new(ir: Arc<Ir>, env: Env) -> Self {
        Thunk { ir, env }
    }

    /// The pointer pair behind this thunk's [`PartialEq`]: `(ir, env)`
    /// addresses. Two *live* thunks are equal exactly when their
    /// identities are equal, so the identity works as a hash-map key for
    /// per-atom caches — provided the map also keeps the thunk itself
    /// alive, since a freed thunk's addresses may be reused.
    #[must_use]
    pub fn identity(&self) -> (usize, usize) {
        (Arc::as_ptr(&self.ir) as usize, self.env.ptr_id())
    }
}

impl fmt::Debug for Thunk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Thunk({:?} @ env#{:x})",
            self.ir.span(),
            self.env.ptr_id()
        )
    }
}

impl fmt::Display for Thunk {
    /// Shows the underlying expression in (reconstructed) concrete syntax —
    /// this is what residual formula atoms look like in diagnostics.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::pretty::pretty_expr(&self.ir.to_expr()))
    }
}

/// Conservative equality: same compiled node and same environment chain.
/// Sound for the simplifier's idempotence dedup (`φ ∧ φ = φ`): equal thunks
/// certainly evaluate identically; unequal ones are just not merged.
impl PartialEq for Thunk {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.ir, &other.ir) && self.env.ptr_id() == other.env.ptr_id()
    }
}

impl Eq for Thunk {}

/// A compiled function parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotParam {
    /// Parameter name (diagnostics only; the body addresses it by slot).
    pub name: Symbol,
    /// `true` for `~x`: the argument is passed unevaluated (call-by-name),
    /// re-evaluated at each use — the evaluation-control feature of §3.1.
    pub deferred: bool,
}

/// A user-defined function value.
#[derive(Debug)]
pub struct ClosureData {
    /// Function name (diagnostics only).
    pub name: Symbol,
    /// Parameters, with deferredness. At a call they become one
    /// environment frame, in declaration order.
    pub params: Vec<SlotParam>,
    /// Compiled body.
    pub body: Arc<Ir>,
    /// Captured environment.
    pub env: Env,
}

/// Built-in functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Builtin {
    /// `parseInt(s)` → int or null.
    ParseInt,
    /// `parseFloat(s)` → float or null.
    ParseFloat,
    /// `length(xs_or_string)`.
    Length,
    /// `contains(xs_or_string, item)`.
    Contains,
    /// `trim(s)`.
    Trim,
    /// `startsWith(s, prefix)`.
    StartsWith,
    /// `endsWith(s, suffix)`.
    EndsWith,
    /// `map(f, xs)`.
    Map,
    /// `filter(f, xs)`.
    Filter,
    /// `all(f, xs)`.
    All,
    /// `any(f, xs)`.
    Any,
    /// `zip(xs, ys)` → list of two-element lists.
    Zip,
    /// `append(xs, x)` → the list with `x` added at the end.
    Append,
    /// `texts(sel)` → the `.text` of every match.
    Texts,
    /// `click!(sel)`.
    MkClick,
    /// `dblclick!(sel)`.
    MkDblClick,
    /// `focus!(sel)`.
    MkFocus,
    /// `input!(sel)` — type checker-generated text.
    MkInput,
    /// `keypress!(sel, key)`.
    MkKeyPress,
    /// `reload!` is an action value, not a function; see `Value::Action`.
    /// `changed?(sel)` — event constructor.
    MkChanged,
}

impl Builtin {
    /// The arity of the builtin.
    #[must_use]
    pub fn arity(self) -> usize {
        match self {
            Builtin::ParseInt
            | Builtin::ParseFloat
            | Builtin::Length
            | Builtin::Trim
            | Builtin::Texts
            | Builtin::MkClick
            | Builtin::MkDblClick
            | Builtin::MkFocus
            | Builtin::MkInput
            | Builtin::MkChanged => 1,
            Builtin::Contains
            | Builtin::StartsWith
            | Builtin::EndsWith
            | Builtin::Map
            | Builtin::Filter
            | Builtin::All
            | Builtin::Any
            | Builtin::Zip
            | Builtin::Append
            | Builtin::MkKeyPress => 2,
        }
    }

    /// Does the builtin take a function as its first argument?
    #[must_use]
    pub fn higher_order(self) -> bool {
        matches!(
            self,
            Builtin::Map | Builtin::Filter | Builtin::All | Builtin::Any
        )
    }

    /// The surface name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Builtin::ParseInt => "parseInt",
            Builtin::ParseFloat => "parseFloat",
            Builtin::Length => "length",
            Builtin::Contains => "contains",
            Builtin::Trim => "trim",
            Builtin::StartsWith => "startsWith",
            Builtin::EndsWith => "endsWith",
            Builtin::Map => "map",
            Builtin::Filter => "filter",
            Builtin::All => "all",
            Builtin::Any => "any",
            Builtin::Zip => "zip",
            Builtin::Append => "append",
            Builtin::Texts => "texts",
            Builtin::MkClick => "click!",
            Builtin::MkDblClick => "dblclick!",
            Builtin::MkFocus => "focus!",
            Builtin::MkInput => "input!",
            Builtin::MkKeyPress => "keypress!",
            Builtin::MkChanged => "changed?",
        }
    }

    /// All builtins, for seeding environments.
    #[must_use]
    pub fn all() -> &'static [Builtin] {
        &[
            Builtin::ParseInt,
            Builtin::ParseFloat,
            Builtin::Length,
            Builtin::Contains,
            Builtin::Trim,
            Builtin::StartsWith,
            Builtin::EndsWith,
            Builtin::Map,
            Builtin::Filter,
            Builtin::All,
            Builtin::Any,
            Builtin::Zip,
            Builtin::Append,
            Builtin::Texts,
            Builtin::MkClick,
            Builtin::MkDblClick,
            Builtin::MkFocus,
            Builtin::MkInput,
            Builtin::MkKeyPress,
            Builtin::MkChanged,
        ]
    }
}

/// The specification of an action or event.
///
/// `action start! = click!(`#toggle`) timeout 1000 when stopped;` evaluates
/// the right-hand side to a primitive `ActionValue`, then attaches the
/// name, timeout, and guard.
#[derive(Debug, Clone)]
pub struct ActionValue {
    /// The Specstrom name (`start!`, `tick?`), when declared.
    pub name: Option<String>,
    /// What the executor should do (actions) — `None` for pure events.
    pub kind: Option<ActionKind>,
    /// The target selector, for targeted kinds and `changed?` events.
    pub selector: Option<Selector>,
    /// Timeout in milliseconds (§3.2).
    pub timeout_ms: Option<u64>,
    /// Guard, evaluated per state.
    pub guard: Option<Thunk>,
    /// `true` for events (`…?`), `false` for user actions (`…!`).
    pub event: bool,
}

impl ActionValue {
    /// A bare built-in action (`noop!`, `reload!`): named, with a kind, no
    /// selector, timeout or guard. The single definition behind the
    /// initial environment and the checker's handling of undeclared
    /// built-ins in `with`-lists.
    #[must_use]
    pub fn constant(name: &str, kind: ActionKind) -> Self {
        ActionValue {
            name: Some(name.to_owned()),
            kind: Some(kind),
            selector: None,
            timeout_ms: None,
            guard: None,
            event: false,
        }
    }

    /// The bare built-in event of the given name (`loaded?`): no kind,
    /// selector, timeout or guard.
    #[must_use]
    pub fn builtin_event(name: &str) -> Self {
        ActionValue {
            name: Some(name.to_owned()),
            kind: None,
            selector: None,
            timeout_ms: None,
            guard: None,
            event: true,
        }
    }

    /// The display name (falls back to a primitive description).
    #[must_use]
    pub fn display_name(&self) -> String {
        match (&self.name, &self.kind) {
            (Some(n), _) => n.clone(),
            (None, Some(k)) => format!("<{k:?}>"),
            (None, None) => "<event>".to_owned(),
        }
    }
}

/// A runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A 64-bit integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A string.
    Str(Arc<str>),
    /// A list.
    List(Arc<Vec<Value>>),
    /// A record (element projections), keyed by interned field name.
    ///
    /// The pre-seeded element-field symbols sort in alphabetical order, so
    /// element records iterate exactly as the string-keyed representation
    /// did; records with later-interned keys iterate in interning order.
    Record(Arc<BTreeMap<Symbol, Value>>),
    /// A CSS selector literal.
    Selector(Selector),
    /// A QuickLTL formula over thunk atoms.
    Formula(Formula<Thunk>),
    /// A user function.
    Closure(Arc<ClosureData>),
    /// A built-in function.
    Builtin(Builtin),
    /// An action or event specification.
    Action(Arc<ActionValue>),
}

impl Value {
    /// A string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// A list value.
    #[must_use]
    pub fn list(items: Vec<Value>) -> Value {
        Value::List(Arc::new(items))
    }

    /// A short description of the value's type, for error messages.
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::List(_) => "list",
            Value::Record(_) => "record",
            Value::Selector(_) => "selector",
            Value::Formula(_) => "formula",
            Value::Closure(_) => "function",
            Value::Builtin(_) => "function",
            Value::Action(_) => "action",
        }
    }

    /// Is this a function (closure or builtin)?
    #[must_use]
    pub fn is_function(&self) -> bool {
        matches!(self, Value::Closure(_) | Value::Builtin(_))
    }

    /// Requires a boolean, with a helpful error otherwise.
    ///
    /// # Errors
    ///
    /// When the value is not a boolean.
    pub fn as_bool(&self) -> Result<bool, EvalError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(EvalError::new(format!(
                "expected a boolean, got {}",
                other.type_name()
            ))),
        }
    }

    /// Structural equality in the language's `==` sense: `null` equals only
    /// `null`, ints and floats compare numerically, actions compare by
    /// name, functions and formulae are never equal.
    #[must_use]
    pub fn loosely_equals(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => {
                #[allow(clippy::cast_precision_loss)]
                let fa = *a as f64;
                fa == *b
            }
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Selector(a), Value::Selector(b)) => a == b,
            (Value::List(a), Value::List(b)) => {
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.loosely_equals(y))
            }
            (Value::Record(a), Value::Record(b)) => {
                a.len() == b.len()
                    && a.iter()
                        .zip(b.iter())
                        .all(|((ka, va), (kb, vb))| ka == kb && va.loosely_equals(vb))
            }
            (Value::Action(a), Value::Action(b)) => a.name == b.name,
            // An action compares equal to its name string (used by
            // `a! in happened`).
            (Value::Action(a), Value::Str(s)) | (Value::Str(s), Value::Action(a)) => {
                a.name.as_deref() == Some(&**s)
            }
            _ => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(n) => write!(f, "{n}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::Record(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
            Value::Selector(sel) => write!(f, "{sel}"),
            Value::Formula(formula) => write!(f, "<formula {formula}>"),
            Value::Closure(c) => write!(f, "<fun {}>", c.name),
            Value::Builtin(b) => write!(f, "<builtin {}>", b.name()),
            Value::Action(a) => write!(f, "<action {}>", a.display_name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Span;

    fn dummy_ir() -> Arc<Ir> {
        Arc::new(Ir::Const(Value::Null, Span::default()))
    }

    #[test]
    fn env_get_walks_depth_then_slot() {
        let env = Env::new()
            .push(vec![
                Binding::Eager(Value::Int(1)),
                Binding::Eager(Value::Int(2)),
            ])
            .push(vec![Binding::Eager(Value::Int(3))]);
        match env.get(0, 0) {
            Some(Binding::Eager(Value::Int(3))) => {}
            other => panic!("unexpected {other:?}"),
        }
        match env.get(1, 1) {
            Some(Binding::Eager(Value::Int(2))) => {}
            other => panic!("unexpected {other:?}"),
        }
        assert!(env.get(0, 5).is_none());
        assert!(env.get(2, 0).is_none());
    }

    #[test]
    fn thunk_equality_is_pointer_based() {
        let ir = dummy_ir();
        let env = Env::new();
        let t1 = Thunk::new(Arc::clone(&ir), env.clone());
        let t2 = Thunk::new(Arc::clone(&ir), env.clone());
        assert_eq!(t1, t2);
        let other = dummy_ir();
        let t3 = Thunk::new(other, env);
        assert_ne!(t1, t3);
    }

    #[test]
    fn loose_equality() {
        assert!(Value::Null.loosely_equals(&Value::Null));
        assert!(!Value::Null.loosely_equals(&Value::Bool(false)));
        assert!(Value::Int(2).loosely_equals(&Value::Float(2.0)));
        assert!(Value::str("a").loosely_equals(&Value::str("a")));
        assert!(Value::list(vec![Value::Int(1)]).loosely_equals(&Value::list(vec![Value::Int(1)])));
        assert!(!Value::list(vec![Value::Int(1)]).loosely_equals(&Value::list(vec![])));
    }

    #[test]
    fn action_equals_its_name() {
        let action = Value::Action(Arc::new(ActionValue {
            name: Some("tick?".into()),
            kind: None,
            selector: None,
            timeout_ms: None,
            guard: None,
            event: true,
        }));
        assert!(action.loosely_equals(&Value::str("tick?")));
        assert!(!action.loosely_equals(&Value::str("tock?")));
    }

    #[test]
    fn type_names_and_predicates() {
        assert_eq!(Value::Int(1).type_name(), "int");
        assert!(Value::Builtin(Builtin::Map).is_function());
        assert!(!Value::Null.is_function());
        assert!(Value::Bool(true).as_bool().unwrap());
        assert!(Value::Int(1).as_bool().is_err());
    }

    #[test]
    fn builtin_arities() {
        for b in Builtin::all() {
            assert!(b.arity() >= 1 && b.arity() <= 2, "{b:?}");
            assert!(!b.name().is_empty());
        }
        assert!(Builtin::Map.higher_order());
        assert!(!Builtin::ParseInt.higher_order());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(
            Value::list(vec![Value::Int(1), Value::Int(2)]).to_string(),
            "[1, 2]"
        );
        assert_eq!(Value::str("hi").to_string(), "\"hi\"");
        assert_eq!(Value::Builtin(Builtin::Trim).to_string(), "<builtin trim>");
    }
}
