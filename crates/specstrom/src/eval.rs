//! The compiled Specstrom evaluator.
//!
//! Evaluation happens *per state*: expressions over selector queries and
//! `happened` read the current [`StateSnapshot`]; temporal operators
//! produce [`Formula`] values whose atoms are [`Thunk`]s closed over the
//! environment, to be re-evaluated at future states by formula progression.
//!
//! This module interprets the resolved IR of [`mod@crate::compile`] against
//! the slot-indexed [`Env`]: variable references are `(depth, slot)` walks
//! (no string comparisons), record fields are interned [`Symbol`]s, and
//! element projections like `` `#e`.text `` read the snapshot field
//! directly instead of materialising a full record first. The original
//! tree-walking interpreter is preserved, unchanged, in
//! [`crate::reference`] for differential testing and benchmarking.
//!
//! Two design points from the paper are load-bearing here:
//!
//! * **Evaluation control (§3.1)**: deferred bindings (`let ~x`, `~param`)
//!   are captured unevaluated and re-run at every use, so `evovae(~x) =
//!   { let v = x; always (x == v) }` freezes `v` at the state where the
//!   `always` body is unrolled while `x` stays live.
//! * **Boolean lifting**: `&&`, `||`, `==>` and `!` operate on plain
//!   booleans until a formula operand appears, at which point the whole
//!   expression is lifted into the temporal logic.

use crate::ast::{BinOp, Span, TemporalOp, UnOp};
use crate::compile::Ir;
use crate::error::EvalError;
use crate::value::{ActionValue, Binding, Builtin, ClosureData, Env, SlotParam, Thunk, Value};
use quickltl::{Demand, Formula};
use quickstrom_protocol::{sym, ActionKind, ElementState, Key, Selector, StateSnapshot, Symbol};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The context for one evaluation: the current state (if any), the default
/// demand subscript, and a fuel counter guarding against runaway expansion.
#[derive(Debug)]
pub struct EvalCtx<'a> {
    /// The current state snapshot; `None` at definition time.
    pub state: Option<&'a StateSnapshot>,
    /// The demand used for temporal operators without an explicit
    /// subscript (§4.1: "they use a user-specified default value").
    pub default_demand: u32,
    fuel: Cell<u64>,
}

impl<'a> EvalCtx<'a> {
    /// A context with a state, the given default demand, and default fuel.
    #[must_use]
    pub fn with_state(state: &'a StateSnapshot, default_demand: u32) -> Self {
        EvalCtx {
            state: Some(state),
            default_demand,
            fuel: Cell::new(1_000_000),
        }
    }

    /// A stateless context (definition-time evaluation).
    #[must_use]
    pub fn stateless(default_demand: u32) -> Self {
        EvalCtx {
            state: None,
            default_demand,
            fuel: Cell::new(1_000_000),
        }
    }

    fn burn(&self) -> Result<(), EvalError> {
        let left = self.fuel.get();
        if left == 0 {
            return Err(EvalError::new(
                "evaluation fuel exhausted — this should be impossible for a \
                 type-checked Specstrom program",
            ));
        }
        self.fuel.set(left - 1);
        Ok(())
    }

    pub(crate) fn state(&self) -> Result<&'a StateSnapshot, EvalError> {
        self.state.ok_or_else(|| {
            EvalError::new(
                "state-dependent expression evaluated outside a state context \
                 (bind it with `let ~x = …` so it is evaluated per state)",
            )
        })
    }
}

/// Evaluates a compiled expression to a value.
///
/// # Errors
///
/// Returns [`EvalError`] on runtime type mismatches, state queries without
/// a state, arithmetic errors, or fuel exhaustion.
pub fn eval(ir: &Arc<Ir>, env: &Env, ctx: &EvalCtx<'_>) -> Result<Value, EvalError> {
    ctx.burn()?;
    match ir.as_ref() {
        Ir::Const(v, _) => Ok(v.clone()),
        Ir::Var {
            depth,
            slot,
            name,
            span,
        } => match env.get(*depth, *slot) {
            Some(Binding::Eager(v)) => Ok(v.clone()),
            Some(Binding::Deferred(thunk)) => {
                let thunk = thunk.clone();
                eval(&thunk.ir, &thunk.env, ctx)
            }
            None => Err(EvalError::at(
                *span,
                format!(
                    "internal error: environment shape does not match the \
                     compiled slot for `{name}`"
                ),
            )),
        },
        Ir::Happened(_) => {
            let state = ctx.state()?;
            Ok(Value::list(
                state
                    .happened
                    .iter()
                    .map(|h| Value::str(h.as_str()))
                    .collect(),
            ))
        }
        Ir::Call { func, args, span } => {
            let callee = eval(func, env, ctx)?;
            match callee {
                Value::Closure(closure) => {
                    if closure.params.len() != args.len() {
                        return Err(EvalError::at(
                            *span,
                            format!(
                                "`{}` expects {} argument(s), got {}",
                                closure.name,
                                closure.params.len(),
                                args.len()
                            ),
                        ));
                    }
                    let mut frame = Vec::with_capacity(args.len());
                    for (param, arg) in closure.params.iter().zip(args) {
                        let binding = if param.deferred {
                            // Call-by-name: capture the argument expression
                            // in the *caller's* environment (§3.1).
                            Binding::Deferred(Thunk::new(Arc::clone(arg), env.clone()))
                        } else {
                            Binding::Eager(eval(arg, env, ctx)?)
                        };
                        frame.push(binding);
                    }
                    let call_env = closure.env.push(frame);
                    eval(&closure.body, &call_env, ctx)
                }
                Value::Builtin(builtin) => {
                    if builtin.arity() != args.len() {
                        return Err(EvalError::at(
                            *span,
                            format!(
                                "`{}` expects {} argument(s), got {}",
                                builtin.name(),
                                builtin.arity(),
                                args.len()
                            ),
                        ));
                    }
                    let mut values = Vec::with_capacity(args.len());
                    for arg in args {
                        values.push(eval(arg, env, ctx)?);
                    }
                    apply_builtin(builtin, values, ctx)
                }
                other => Err(EvalError::at(
                    *span,
                    format!("cannot call a {}", other.type_name()),
                )),
            }
        }
        Ir::Unary {
            op,
            expr: inner,
            span,
        } => {
            let v = eval(inner, env, ctx)?;
            unary_value(*op, v, *span)
        }
        Ir::Binary { op, lhs, rhs, span } => eval_binary(*op, lhs, rhs, env, ctx, *span),
        Ir::Member { obj, field, span } => {
            let base = eval(obj, env, ctx)?;
            member(base, *field, ctx, *span)
        }
        Ir::Index { obj, index, span } => {
            let base = eval(obj, env, ctx)?;
            let idx = eval(index, env, ctx)?;
            index_value(base, idx, ctx, *span)
        }
        Ir::Array(items, _) => {
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                let v = eval(item, env, ctx)?;
                if v.is_function() {
                    return Err(EvalError::at(
                        item.span(),
                        "functions may not be placed inside data structures",
                    ));
                }
                out.push(v);
            }
            Ok(Value::list(out))
        }
        Ir::If {
            cond,
            then_branch,
            else_branch,
            span,
        } => {
            let c = eval(cond, env, ctx)?;
            match c {
                Value::Bool(true) => eval(then_branch, env, ctx),
                Value::Bool(false) => eval(else_branch, env, ctx),
                Value::Formula(_) => Err(EvalError::at(
                    *span,
                    "a temporal formula cannot be an `if` condition — conditions \
                     are evaluated at a single state",
                )),
                other => Err(EvalError::at(
                    *span,
                    format!(
                        "`if` condition must be a boolean, got {}",
                        other.type_name()
                    ),
                )),
            }
        }
        Ir::Let {
            deferred,
            value,
            body,
            ..
        } => {
            let binding = if *deferred {
                Binding::Deferred(Thunk::new(Arc::clone(value), env.clone()))
            } else {
                Binding::Eager(eval(value, env, ctx)?)
            };
            let inner = env.push(vec![binding]);
            eval(body, &inner, ctx)
        }
        Ir::Temporal {
            op, demand, body, ..
        } => {
            let atom = Formula::Atom(Thunk::new(Arc::clone(body), env.clone()));
            let d = Demand(demand.unwrap_or(ctx.default_demand));
            Ok(Value::Formula(match op {
                TemporalOp::Always => Formula::Always(d, Box::new(atom)),
                TemporalOp::Eventually => Formula::Eventually(d, Box::new(atom)),
                TemporalOp::Next => atom.next(),
                TemporalOp::NextW => atom.weak_next(),
                TemporalOp::NextS => atom.strong_next(),
            }))
        }
        Ir::TemporalBin {
            until,
            demand,
            lhs,
            rhs,
            ..
        } => {
            let l = Formula::Atom(Thunk::new(Arc::clone(lhs), env.clone()));
            let r = Formula::Atom(Thunk::new(Arc::clone(rhs), env.clone()));
            let d = Demand(demand.unwrap_or(ctx.default_demand));
            Ok(Value::Formula(if *until {
                Formula::Until(d, Box::new(l), Box::new(r))
            } else {
                Formula::Release(d, Box::new(l), Box::new(r))
            }))
        }
    }
}

/// Either a plain boolean or a lifted formula — the two "logical" shapes.
pub(crate) enum Logical {
    Plain(bool),
    Lifted(Formula<Thunk>),
}

/// Applies a unary operator to an evaluated operand — shared by the
/// generic interpreter and the compiled atom evaluators
/// ([`crate::atomc`]), so both agree bit-for-bit on semantics and error
/// messages.
pub(crate) fn unary_value(op: UnOp, v: Value, span: Span) -> Result<Value, EvalError> {
    match op {
        UnOp::Not => match v {
            Value::Bool(b) => Ok(Value::Bool(!b)),
            Value::Formula(f) => Ok(Value::Formula(f.not())),
            other => Err(EvalError::at(
                span,
                format!("cannot negate a {}", other.type_name()),
            )),
        },
        UnOp::Neg => match v {
            Value::Int(n) => n
                .checked_neg()
                .map(Value::Int)
                .ok_or_else(|| EvalError::at(span, "integer overflow in negation")),
            Value::Float(x) => Ok(Value::Float(-x)),
            Value::Null => Ok(Value::Null),
            other => Err(EvalError::at(
                span,
                format!("cannot negate a {}", other.type_name()),
            )),
        },
    }
}

pub(crate) fn as_logical(v: Value, span: Span) -> Result<Logical, EvalError> {
    match v {
        Value::Bool(b) => Ok(Logical::Plain(b)),
        Value::Formula(f) => Ok(Logical::Lifted(f)),
        other => Err(EvalError::at(
            span,
            format!(
                "expected a boolean or temporal formula, got {}",
                other.type_name()
            ),
        )),
    }
}

pub(crate) fn lift(l: Logical) -> Formula<Thunk> {
    match l {
        Logical::Plain(b) => Formula::constant(b),
        Logical::Lifted(f) => f,
    }
}

#[allow(clippy::too_many_lines)]
fn eval_binary(
    op: BinOp,
    lhs: &Arc<Ir>,
    rhs: &Arc<Ir>,
    env: &Env,
    ctx: &EvalCtx<'_>,
    span: Span,
) -> Result<Value, EvalError> {
    match op {
        BinOp::And => {
            let l = as_logical(eval(lhs, env, ctx)?, lhs.span())?;
            match l {
                // Short circuit: the right operand is not evaluated.
                Logical::Plain(false) => Ok(Value::Bool(false)),
                Logical::Plain(true) => {
                    let r = as_logical(eval(rhs, env, ctx)?, rhs.span())?;
                    Ok(match r {
                        Logical::Plain(b) => Value::Bool(b),
                        Logical::Lifted(f) => Value::Formula(f),
                    })
                }
                Logical::Lifted(f) => {
                    let r = as_logical(eval(rhs, env, ctx)?, rhs.span())?;
                    Ok(Value::Formula(f.and(lift(r))))
                }
            }
        }
        BinOp::Or => {
            let l = as_logical(eval(lhs, env, ctx)?, lhs.span())?;
            match l {
                Logical::Plain(true) => Ok(Value::Bool(true)),
                Logical::Plain(false) => {
                    let r = as_logical(eval(rhs, env, ctx)?, rhs.span())?;
                    Ok(match r {
                        Logical::Plain(b) => Value::Bool(b),
                        Logical::Lifted(f) => Value::Formula(f),
                    })
                }
                Logical::Lifted(f) => {
                    let r = as_logical(eval(rhs, env, ctx)?, rhs.span())?;
                    Ok(Value::Formula(f.or(lift(r))))
                }
            }
        }
        BinOp::Implies => {
            let l = as_logical(eval(lhs, env, ctx)?, lhs.span())?;
            match l {
                Logical::Plain(false) => Ok(Value::Bool(true)),
                Logical::Plain(true) => {
                    let r = as_logical(eval(rhs, env, ctx)?, rhs.span())?;
                    Ok(match r {
                        Logical::Plain(b) => Value::Bool(b),
                        Logical::Lifted(f) => Value::Formula(f),
                    })
                }
                Logical::Lifted(f) => {
                    let r = as_logical(eval(rhs, env, ctx)?, rhs.span())?;
                    Ok(Value::Formula(f.implies(lift(r))))
                }
            }
        }
        BinOp::Eq
        | BinOp::Ne
        | BinOp::In
        | BinOp::Lt
        | BinOp::Le
        | BinOp::Gt
        | BinOp::Ge
        | BinOp::Add
        | BinOp::Sub
        | BinOp::Mul
        | BinOp::Div
        | BinOp::Mod => {
            let l = eval(lhs, env, ctx)?;
            let r = eval(rhs, env, ctx)?;
            binary_values(op, l, r, span)
        }
    }
}

/// Applies a non-short-circuiting binary operator to evaluated operands —
/// shared by the generic interpreter and the compiled atom evaluators
/// ([`crate::atomc`]). The logical operators (`&&`/`||`/`==>`) are *not*
/// handled here: they short-circuit, so each caller owns its operand
/// evaluation order.
pub(crate) fn binary_values(op: BinOp, l: Value, r: Value, span: Span) -> Result<Value, EvalError> {
    match op {
        BinOp::Eq | BinOp::Ne => {
            let eq = l.loosely_equals(&r);
            Ok(Value::Bool(if op == BinOp::Eq { eq } else { !eq }))
        }
        BinOp::In => match r {
            Value::List(items) => Ok(Value::Bool(items.iter().any(|i| i.loosely_equals(&l)))),
            Value::Str(haystack) => match l {
                Value::Str(needle) => Ok(Value::Bool(haystack.contains(&*needle))),
                other => Err(EvalError::at(
                    span,
                    format!("cannot search for {} in a string", other.type_name()),
                )),
            },
            other => Err(EvalError::at(
                span,
                format!("`in` expects a list or string, got {}", other.type_name()),
            )),
        },
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let ord = compare(&l, &r, span)?;
            Ok(Value::Bool(match (op, ord) {
                // Null (or NaN) never satisfies an ordering comparison.
                (_, None) => false,
                (BinOp::Lt, Some(o)) => o.is_lt(),
                (BinOp::Le, Some(o)) => o.is_le(),
                (BinOp::Gt, Some(o)) => o.is_gt(),
                (BinOp::Ge, Some(o)) => o.is_ge(),
                _ => unreachable!("comparison ops only"),
            }))
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => arith(op, l, r, span),
        BinOp::And | BinOp::Or | BinOp::Implies => {
            unreachable!("short-circuiting ops are handled by the caller")
        }
    }
}

/// Ordering for `<`/`<=`/`>`/`>=`. `None` means "null was involved": a
/// selector query that matched nothing propagates as an always-false
/// comparison rather than a hard error, so specifications can state
/// invariants about optional elements without defensive guards.
pub(crate) fn compare(
    l: &Value,
    r: &Value,
    span: Span,
) -> Result<Option<std::cmp::Ordering>, EvalError> {
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => Ok(Some(a.cmp(b))),
        (Value::Str(a), Value::Str(b)) => Ok(Some(a.cmp(b))),
        (Value::Float(a), Value::Float(b)) => Ok(a.partial_cmp(b)),
        (Value::Int(a), Value::Float(b)) =>
        {
            #[allow(clippy::cast_precision_loss)]
            Ok((*a as f64).partial_cmp(b))
        }
        (Value::Float(a), Value::Int(b)) =>
        {
            #[allow(clippy::cast_precision_loss)]
            Ok(a.partial_cmp(&(*b as f64)))
        }
        (Value::Null, _) | (_, Value::Null) => Ok(None),
        _ => Err(EvalError::at(
            span,
            format!("cannot compare {} with {}", l.type_name(), r.type_name()),
        )),
    }
}

pub(crate) fn arith(op: BinOp, l: Value, r: Value, span: Span) -> Result<Value, EvalError> {
    match (op, &l, &r) {
        // Null propagates through arithmetic (a missing element's
        // projection), mirroring the comparison semantics above.
        (_, Value::Null, _) | (_, _, Value::Null) => Ok(Value::Null),
        (BinOp::Add, Value::Str(a), Value::Str(b)) => Ok(Value::str(format!("{a}{b}"))),
        // String concatenation with scalars, for messages like
        // `numLeft + " items left"`.
        (BinOp::Add, Value::Str(a), Value::Int(b)) => Ok(Value::str(format!("{a}{b}"))),
        (BinOp::Add, Value::Int(a), Value::Str(b)) => Ok(Value::str(format!("{a}{b}"))),
        (BinOp::Add, Value::Str(a), Value::Float(b)) => Ok(Value::str(format!("{a}{b}"))),
        (BinOp::Add, Value::Float(a), Value::Str(b)) => Ok(Value::str(format!("{a}{b}"))),
        (_, Value::Int(a), Value::Int(b)) => {
            let out = match op {
                BinOp::Add => a.checked_add(*b),
                BinOp::Sub => a.checked_sub(*b),
                BinOp::Mul => a.checked_mul(*b),
                BinOp::Div => {
                    if *b == 0 {
                        return Err(EvalError::at(span, "division by zero"));
                    }
                    a.checked_div(*b)
                }
                BinOp::Mod => {
                    if *b == 0 {
                        return Err(EvalError::at(span, "remainder by zero"));
                    }
                    a.checked_rem(*b)
                }
                _ => unreachable!("arith ops only"),
            };
            out.map(Value::Int)
                .ok_or_else(|| EvalError::at(span, "integer overflow"))
        }
        (_, a, b) => {
            let fa = to_f64(a, span)?;
            let fb = to_f64(b, span)?;
            let out = match op {
                BinOp::Add => fa + fb,
                BinOp::Sub => fa - fb,
                BinOp::Mul => fa * fb,
                BinOp::Div => fa / fb,
                BinOp::Mod => fa % fb,
                _ => unreachable!("arith ops only"),
            };
            Ok(Value::Float(out))
        }
    }
}

fn to_f64(v: &Value, span: Span) -> Result<f64, EvalError> {
    match v {
        #[allow(clippy::cast_precision_loss)]
        Value::Int(n) => Ok(*n as f64),
        Value::Float(x) => Ok(*x),

        other => Err(EvalError::at(
            span,
            format!("arithmetic on a {}", other.type_name()),
        )),
    }
}

/// Converts an [`ElementState`] into a Specstrom record.
///
/// Field keys are the pre-seeded projection symbols and attribute keys are
/// already interned in the snapshot, so no string is hashed or compared
/// here — this used to be a `BTreeMap<String, _>` rebuild per access.
#[must_use]
pub fn element_record(element: &ElementState) -> Value {
    let mut fields = BTreeMap::new();
    fields.insert(sym::TEXT, Value::str(&element.text));
    fields.insert(sym::VALUE, Value::str(&element.value));
    fields.insert(sym::CHECKED, Value::Bool(element.checked));
    fields.insert(sym::ENABLED, Value::Bool(element.enabled));
    fields.insert(sym::VISIBLE, Value::Bool(element.visible));
    fields.insert(sym::FOCUSED, Value::Bool(element.focused));
    fields.insert(
        sym::CLASSES,
        Value::list(element.classes.iter().map(Value::str).collect()),
    );
    let attrs: BTreeMap<Symbol, Value> = element
        .attributes
        .iter()
        .map(|(k, v)| (*k, Value::str(v)))
        .collect();
    fields.insert(sym::ATTRIBUTES, Value::Record(Arc::new(attrs)));
    Value::Record(Arc::new(fields))
}

/// Projects one field of an element without building the record — the fast
/// path for `` `#e`.text ``-style accesses, which dominate specification
/// bodies.
pub(crate) fn element_field(element: &ElementState, field: Symbol) -> Option<Value> {
    Some(match field {
        f if f == sym::TEXT => Value::str(&element.text),
        f if f == sym::VALUE => Value::str(&element.value),
        f if f == sym::CHECKED => Value::Bool(element.checked),
        f if f == sym::ENABLED => Value::Bool(element.enabled),
        f if f == sym::VISIBLE => Value::Bool(element.visible),
        f if f == sym::FOCUSED => Value::Bool(element.focused),
        f if f == sym::CLASSES => Value::list(element.classes.iter().map(Value::str).collect()),
        f if f == sym::ATTRIBUTES => {
            let attrs: BTreeMap<Symbol, Value> = element
                .attributes
                .iter()
                .map(|(k, v)| (*k, Value::str(v)))
                .collect();
            Value::Record(Arc::new(attrs))
        }
        _ => return None,
    })
}

pub(crate) fn query<'s>(
    ctx: &EvalCtx<'s>,
    selector: &Selector,
    span: Span,
) -> Result<&'s [ElementState], EvalError> {
    let state = ctx.state()?;
    if let Some(elements) = state.queries.get(selector) {
        Ok(elements)
    } else {
        Err(EvalError::at(
            span,
            format!(
                "selector {selector} was not instrumented — it escaped the \
                 dependency analysis; report this as a bug"
            ),
        ))
    }
}

pub(crate) fn member(
    base: Value,
    field: Symbol,
    ctx: &EvalCtx<'_>,
    span: Span,
) -> Result<Value, EvalError> {
    match base {
        Value::Selector(selector) => {
            let elements = query(ctx, &selector, span)?;
            if field == sym::COUNT {
                return Ok(Value::Int(
                    i64::try_from(elements.len()).unwrap_or(i64::MAX),
                ));
            }
            if field == sym::PRESENT {
                return Ok(Value::Bool(!elements.is_empty()));
            }
            if field == sym::ALL {
                return Ok(Value::list(elements.iter().map(element_record).collect()));
            }
            match elements.first() {
                None => Ok(Value::Null),
                Some(first) => element_field(first, field).ok_or_else(|| {
                    EvalError::at(span, format!("unknown element projection `.{field}`"))
                }),
            }
        }
        Value::Record(fields) => Ok(fields.get(&field).cloned().unwrap_or(Value::Null)),
        // Lenient chaining: a missing element projects to null, and
        // projecting from null stays null (web-programmer ergonomics).
        Value::Null => Ok(Value::Null),
        other => Err(EvalError::at(
            span,
            format!("cannot access `.{field}` on a {}", other.type_name()),
        )),
    }
}

pub(crate) fn index_value(
    base: Value,
    idx: Value,
    ctx: &EvalCtx<'_>,
    span: Span,
) -> Result<Value, EvalError> {
    match (base, idx) {
        (Value::List(items), Value::Int(i)) => {
            let i = usize::try_from(i).ok();
            Ok(i.and_then(|i| items.get(i).cloned()).unwrap_or(Value::Null))
        }
        (Value::Selector(selector), Value::Int(i)) => {
            let elements = query(ctx, &selector, span)?;
            let i = usize::try_from(i).ok();
            Ok(i.and_then(|i| elements.get(i))
                .map(element_record)
                .unwrap_or(Value::Null))
        }
        (Value::Record(fields), Value::Str(key)) => {
            // A key never interned cannot be a field of any record; use the
            // non-inserting lookup so runtime data does not grow the table.
            Ok(Symbol::lookup(&key)
                .and_then(|sym| fields.get(&sym).cloned())
                .unwrap_or(Value::Null))
        }
        (Value::Null, _) => Ok(Value::Null),
        (base, idx) => Err(EvalError::at(
            span,
            format!(
                "cannot index a {} with a {}",
                base.type_name(),
                idx.type_name()
            ),
        )),
    }
}

/// Applies a function *value* to already-evaluated arguments (used by the
/// higher-order builtins). Deferred parameters are not supported through
/// this path — the sort checker rejects passing by-name functions to
/// builtins.
fn apply_function(f: &Value, args: Vec<Value>, ctx: &EvalCtx<'_>) -> Result<Value, EvalError> {
    match f {
        Value::Closure(closure) => {
            if closure.params.len() != args.len() {
                return Err(EvalError::new(format!(
                    "`{}` expects {} argument(s), got {}",
                    closure.name,
                    closure.params.len(),
                    args.len()
                )));
            }
            let mut frame = Vec::with_capacity(args.len());
            for (param, arg) in closure.params.iter().zip(args) {
                if param.deferred {
                    return Err(EvalError::new(format!(
                        "function `{}` with deferred parameter `~{}` cannot be \
                         passed to a higher-order builtin",
                        closure.name, param.name
                    )));
                }
                frame.push(Binding::Eager(arg));
            }
            let call_env = closure.env.push(frame);
            eval(&closure.body, &call_env, ctx)
        }
        Value::Builtin(b) => apply_builtin(*b, args, ctx),
        other => Err(EvalError::new(format!(
            "expected a function, got {}",
            other.type_name()
        ))),
    }
}

fn expect_list(v: &Value, what: &str) -> Result<Arc<Vec<Value>>, EvalError> {
    match v {
        Value::List(items) => Ok(Arc::clone(items)),
        other => Err(EvalError::new(format!(
            "{what} expects a list, got {}",
            other.type_name()
        ))),
    }
}

fn expect_selector(v: Value, what: &str) -> Result<Selector, EvalError> {
    match v {
        Value::Selector(s) => Ok(s),
        other => Err(EvalError::new(format!(
            "{what} expects a selector, got {}",
            other.type_name()
        ))),
    }
}

fn mk_action(kind: ActionKind, selector: Selector) -> Value {
    Value::Action(Arc::new(ActionValue {
        name: None,
        kind: Some(kind),
        selector: Some(selector),
        timeout_ms: None,
        guard: None,
        event: false,
    }))
}

pub(crate) fn apply_builtin(
    builtin: Builtin,
    mut args: Vec<Value>,
    ctx: &EvalCtx<'_>,
) -> Result<Value, EvalError> {
    match builtin {
        Builtin::ParseInt => Ok(match &args[0] {
            Value::Str(s) => s
                .trim()
                .parse::<i64>()
                .map(Value::Int)
                .unwrap_or(Value::Null),
            Value::Int(n) => Value::Int(*n),
            #[allow(clippy::cast_possible_truncation)]
            Value::Float(x) => Value::Int(x.trunc() as i64),
            _ => Value::Null,
        }),
        Builtin::ParseFloat => Ok(match &args[0] {
            Value::Str(s) => s
                .trim()
                .parse::<f64>()
                .map(Value::Float)
                .unwrap_or(Value::Null),
            #[allow(clippy::cast_precision_loss)]
            Value::Int(n) => Value::Float(*n as f64),
            Value::Float(x) => Value::Float(*x),
            _ => Value::Null,
        }),
        Builtin::Length => match &args[0] {
            Value::List(items) => Ok(Value::Int(i64::try_from(items.len()).unwrap_or(i64::MAX))),
            Value::Str(s) => Ok(Value::Int(
                i64::try_from(s.chars().count()).unwrap_or(i64::MAX),
            )),
            other => Err(EvalError::new(format!(
                "length expects a list or string, got {}",
                other.type_name()
            ))),
        },
        Builtin::Contains => {
            let needle = args.pop().expect("arity 2");
            match &args[0] {
                Value::List(items) => {
                    Ok(Value::Bool(items.iter().any(|i| i.loosely_equals(&needle))))
                }
                Value::Str(s) => match needle {
                    Value::Str(n) => Ok(Value::Bool(s.contains(&*n))),
                    other => Err(EvalError::new(format!(
                        "contains on a string expects a string, got {}",
                        other.type_name()
                    ))),
                },
                other => Err(EvalError::new(format!(
                    "contains expects a list or string, got {}",
                    other.type_name()
                ))),
            }
        }
        Builtin::Trim => match &args[0] {
            Value::Str(s) => Ok(Value::str(s.trim())),
            Value::Null => Ok(Value::Null),
            other => Err(EvalError::new(format!(
                "trim expects a string, got {}",
                other.type_name()
            ))),
        },
        Builtin::StartsWith | Builtin::EndsWith => {
            let suffix = args.pop().expect("arity 2");
            match (&args[0], &suffix) {
                (Value::Str(s), Value::Str(p)) => {
                    Ok(Value::Bool(if builtin == Builtin::StartsWith {
                        s.starts_with(&**p)
                    } else {
                        s.ends_with(&**p)
                    }))
                }
                _ => Err(EvalError::new("startsWith/endsWith expect two strings")),
            }
        }
        Builtin::Map => {
            let xs = expect_list(&args[1], "map")?;
            let f = &args[0];
            let mut out = Vec::with_capacity(xs.len());
            for x in xs.iter() {
                out.push(apply_function(f, vec![x.clone()], ctx)?);
            }
            Ok(Value::list(out))
        }
        Builtin::Filter => {
            let xs = expect_list(&args[1], "filter")?;
            let f = &args[0];
            let mut out = Vec::new();
            for x in xs.iter() {
                if apply_function(f, vec![x.clone()], ctx)?.as_bool()? {
                    out.push(x.clone());
                }
            }
            Ok(Value::list(out))
        }
        Builtin::All => {
            let xs = expect_list(&args[1], "all")?;
            let f = &args[0];
            for x in xs.iter() {
                if !apply_function(f, vec![x.clone()], ctx)?.as_bool()? {
                    return Ok(Value::Bool(false));
                }
            }
            Ok(Value::Bool(true))
        }
        Builtin::Any => {
            let xs = expect_list(&args[1], "any")?;
            let f = &args[0];
            for x in xs.iter() {
                if apply_function(f, vec![x.clone()], ctx)?.as_bool()? {
                    return Ok(Value::Bool(true));
                }
            }
            Ok(Value::Bool(false))
        }
        Builtin::Append => {
            let x = args.pop().expect("arity 2");
            if x.is_function() {
                return Err(EvalError::new(
                    "functions may not be placed inside data structures",
                ));
            }
            let xs = expect_list(&args[0], "append")?;
            let mut out = (*xs).clone();
            out.push(x);
            Ok(Value::list(out))
        }
        Builtin::Zip => {
            let ys = expect_list(&args[1], "zip")?;
            let xs = expect_list(&args[0], "zip")?;
            Ok(Value::list(
                xs.iter()
                    .zip(ys.iter())
                    .map(|(x, y)| Value::list(vec![x.clone(), y.clone()]))
                    .collect(),
            ))
        }
        Builtin::Texts => {
            let selector = expect_selector(args.remove(0), "texts")?;
            let elements = query(ctx, &selector, Span::default())?;
            Ok(Value::list(
                elements.iter().map(|e| Value::str(&e.text)).collect(),
            ))
        }
        Builtin::MkClick => {
            let sel = expect_selector(args.remove(0), "click!")?;
            Ok(mk_action(ActionKind::Click, sel))
        }
        Builtin::MkDblClick => {
            let sel = expect_selector(args.remove(0), "dblclick!")?;
            Ok(mk_action(ActionKind::DblClick, sel))
        }
        Builtin::MkFocus => {
            let sel = expect_selector(args.remove(0), "focus!")?;
            Ok(mk_action(ActionKind::Focus, sel))
        }
        Builtin::MkInput => {
            let sel = expect_selector(args.remove(0), "input!")?;
            Ok(mk_action(ActionKind::Input(None), sel))
        }
        Builtin::MkKeyPress => {
            let key = args.pop().expect("arity 2");
            let sel = expect_selector(args.remove(0), "keypress!")?;
            let key = match key {
                Value::Str(s) => match &*s {
                    "Enter" => Key::Enter,
                    "Escape" => Key::Escape,
                    other if other.chars().count() == 1 => {
                        Key::Char(other.chars().next().expect("len 1"))
                    }
                    other => {
                        return Err(EvalError::new(format!("unknown key {other:?}")));
                    }
                },
                other => {
                    return Err(EvalError::new(format!(
                        "keypress! expects a key string, got {}",
                        other.type_name()
                    )))
                }
            };
            Ok(mk_action(ActionKind::KeyPress(key), sel))
        }
        Builtin::MkChanged => {
            let sel = expect_selector(args.remove(0), "changed?")?;
            Ok(Value::Action(Arc::new(ActionValue {
                name: None,
                kind: None,
                selector: Some(sel),
                timeout_ms: None,
                guard: None,
                event: true,
            })))
        }
    }
}

/// Coerces a value into a formula: booleans become constants, formulae pass
/// through.
///
/// # Errors
///
/// When the value is neither.
pub fn to_formula(v: Value) -> Result<Formula<Thunk>, EvalError> {
    match v {
        Value::Bool(b) => Ok(Formula::constant(b)),
        Value::Formula(f) => Ok(f),
        other => Err(EvalError::new(format!(
            "expected a boolean or temporal formula, got {}",
            other.type_name()
        ))),
    }
}

/// Expands a thunk atom at the current state — the bridge between formula
/// progression and the interpreter.
///
/// # Errors
///
/// Propagates evaluation errors and non-logical results.
pub fn expand_thunk(thunk: &Thunk, ctx: &EvalCtx<'_>) -> Result<Formula<Thunk>, EvalError> {
    to_formula(eval(&thunk.ir, &thunk.env, ctx)?)
}

/// Evaluates a thunk expecting a plain boolean (action guards).
///
/// # Errors
///
/// Propagates evaluation errors; errors on non-boolean results.
pub fn eval_guard(thunk: &Thunk, ctx: &EvalCtx<'_>) -> Result<bool, EvalError> {
    eval(&thunk.ir, &thunk.env, ctx)?.as_bool()
}

/// Builds a closure value from a compiled `fun` item.
#[must_use]
pub fn make_closure(name: Symbol, params: Vec<SlotParam>, body: Arc<Ir>, env: Env) -> Value {
    Value::Closure(Arc::new(ClosureData {
        name,
        params,
        body,
        env,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile_expr, initial_env};
    use crate::parser::parse_expr;

    fn snapshot() -> StateSnapshot {
        let mut s = StateSnapshot::new();
        let mut toggle = ElementState::with_text("start");
        toggle.classes.push("btn".into());
        s.insert_query(Selector::new("#toggle"), vec![toggle]);
        s.insert_query(
            Selector::new("#remaining"),
            vec![ElementState::with_text("180")],
        );
        s.insert_query(
            Selector::new(".todo-list li"),
            vec![
                ElementState::with_text("walk"),
                ElementState::with_text("shop"),
            ],
        );
        s.insert_query(Selector::new("#missing"), vec![]);
        s.happened.push("loaded?".into());
        s
    }

    fn eval_str(src: &str) -> Result<Value, EvalError> {
        let snap = snapshot();
        let ctx = EvalCtx::with_state(&snap, 7);
        let ir =
            compile_expr(&parse_expr(src).unwrap()).map_err(|e| EvalError::new(e.to_string()))?;
        eval(&ir, &initial_env(), &ctx)
    }

    fn v(src: &str) -> Value {
        eval_str(src).unwrap_or_else(|e| panic!("{src}: {e}"))
    }

    fn b(src: &str) -> bool {
        match v(src) {
            Value::Bool(x) => x,
            other => panic!("{src}: expected bool, got {other}"),
        }
    }

    #[test]
    fn literals_and_arithmetic() {
        assert!(matches!(v("42"), Value::Int(42)));
        assert!(matches!(v("2 + 3 * 4"), Value::Int(14)));
        assert!(matches!(v("(2 + 3) * 4"), Value::Int(20)));
        assert!(matches!(v("7 % 3"), Value::Int(1)));
        assert!(matches!(v("-5 + 5"), Value::Int(0)));
        assert!(matches!(v("1.5 + 1"), Value::Float(x) if (x - 2.5).abs() < 1e-9));
        assert!(eval_str("1 / 0").is_err());
        assert!(matches!(v("\"a\" + \"b\""), Value::Str(s) if &*s == "ab"));
    }

    #[test]
    fn comparisons_and_equality() {
        assert!(b("1 < 2"));
        assert!(b("2 <= 2"));
        assert!(b("\"a\" < \"b\""));
        assert!(b("1 == 1.0"));
        assert!(b("null == null"));
        assert!(b("null != 0"));
        assert!(b("[1,2] == [1,2]"));
        assert!(eval_str("1 < \"a\"").is_err());
    }

    #[test]
    fn state_queries() {
        assert!(b("`#toggle`.text == \"start\""));
        assert!(b("`#toggle`.enabled"));
        assert!(b("`#toggle`.visible"));
        assert!(b("!`#toggle`.checked"));
        assert!(b("`.todo-list li`.count == 2"));
        assert!(b("`.todo-list li`.present"));
        assert!(b("!`#missing`.present"));
        assert!(b("`#missing`.text == null"));
        assert!(b("\"btn\" in `#toggle`.classes"));
    }

    #[test]
    fn parse_int_from_label() {
        assert!(matches!(v("parseInt(`#remaining`.text)"), Value::Int(180)));
        assert!(matches!(v("parseInt(\"oops\")"), Value::Null));
        assert!(matches!(v("parseFloat(\"2.5\")"), Value::Float(x) if (x - 2.5).abs() < 1e-9));
    }

    #[test]
    fn selector_all_and_indexing() {
        assert!(b("`.todo-list li`.all[0].text == \"walk\""));
        assert!(b("`.todo-list li`[1].text == \"shop\""));
        assert!(b("`.todo-list li`[9] == null"));
        assert!(b("`.todo-list li`[9].text == null"));
        assert!(b("texts(`.todo-list li`) == [\"walk\", \"shop\"]"));
    }

    #[test]
    fn happened_membership() {
        assert!(b("loaded? in happened"));
        assert!(b("\"loaded?\" in happened"));
        assert!(!b("reload! in happened"));
    }

    #[test]
    fn logical_short_circuit() {
        // The right operand would error at run time (division by zero), but
        // is never reached. (Unresolved *names* are now compile errors —
        // see `compile::tests::undefined_names_fail_at_compile_time`.)
        assert!(!b("false && 1 / 0 == 0"));
        assert!(b("true || 1 / 0 == 0"));
        assert!(b("false ==> 1 / 0 == 0"));
        assert!(eval_str("true && 1 / 0 == 0").is_err());
    }

    #[test]
    fn temporal_lifting() {
        match v("always[3] (`#toggle`.text == \"start\")") {
            Value::Formula(Formula::Always(d, _)) => assert_eq!(d, Demand(3)),
            other => panic!("unexpected {other}"),
        }
        // Omitted demand uses the context default (7 in these tests).
        match v("eventually (`#toggle`.text == \"stop\")") {
            Value::Formula(Formula::Eventually(d, _)) => assert_eq!(d, Demand(7)),
            other => panic!("unexpected {other}"),
        }
        // Mixed bool/formula conjunction lifts.
        match v("`#toggle`.enabled && next `#toggle`.enabled") {
            Value::Formula(Formula::Next(_)) => {}
            other => panic!("unexpected {other}"),
        }
        // false && formula short-circuits to a plain bool.
        assert!(!b("false && next `#toggle`.enabled"));
    }

    #[test]
    fn until_release_values() {
        match v("`#toggle`.enabled until[2] `#toggle`.checked") {
            Value::Formula(Formula::Until(d, _, _)) => assert_eq!(d, Demand(2)),
            other => panic!("unexpected {other}"),
        }
        match v("`#toggle`.enabled release `#toggle`.checked") {
            Value::Formula(Formula::Release(d, _, _)) => assert_eq!(d, Demand(7)),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn if_requires_plain_bool() {
        assert!(matches!(v("if 1 == 1 {2} else {3}"), Value::Int(2)));
        assert!(eval_str("if next true {1} else {2}").is_err());
        assert!(eval_str("if 5 {1} else {2}").is_err());
    }

    #[test]
    fn blocks_and_deferred_lets() {
        assert!(matches!(v("{ let x = 2; x * x }"), Value::Int(4)));
        // A deferred let is re-evaluated at use; with a fixed state that is
        // observationally the same, but it must not error at bind time even
        // if state-dependent and unused under a stateless context.
        let ir = compile_expr(&parse_expr("{ let ~q = `#toggle`.text; 1 }").unwrap()).unwrap();
        let ctx = EvalCtx::stateless(0);
        let out = eval(&ir, &initial_env(), &ctx).unwrap();
        assert!(matches!(out, Value::Int(1)));
        // An eager state query without state errors.
        let bad = compile_expr(&parse_expr("{ let q = `#toggle`.text; 1 }").unwrap()).unwrap();
        assert!(eval(&bad, &initial_env(), &ctx).is_err());
    }

    #[test]
    fn higher_order_builtins() {
        assert!(b("length([1,2,3]) == 3"));
        assert!(b("contains([1,2], 2)"));
        assert!(b("contains(\"hello\", \"ell\")"));
        assert!(b("trim(\"  x \") == \"x\""));
        assert!(b("startsWith(\"abc\", \"ab\")"));
        assert!(b("endsWith(\"abc\", \"bc\")"));
        assert!(b("zip([1,2],[3,4]) == [[1,3],[2,4]]"));
        // A higher-order predicate that returns non-booleans is a runtime
        // error inside any/all.
        assert!(eval_str("any(parseInt, [\"1\"])").is_err());
    }

    #[test]
    fn map_filter_all_any_with_closures() {
        // Build a closure through a spec-level `fun` by hand: body `x > 1`
        // compiled against a one-parameter frame over the globals.
        let (names, _) = crate::compile::initial_globals();
        let mut resolver = crate::compile::Resolver::new(names);
        resolver.push_scope(vec![Symbol::intern("x")]);
        let body = crate::compile::lower(&parse_expr("x > 1").unwrap(), &mut resolver).unwrap();
        resolver.pop_scope();
        let f = make_closure(
            Symbol::intern("gt1"),
            vec![SlotParam {
                name: Symbol::intern("x"),
                deferred: false,
            }],
            body,
            initial_env(),
        );
        let snap = snapshot();
        let ctx = EvalCtx::with_state(&snap, 0);
        let out = apply_function(&f, vec![Value::Int(2)], &ctx).unwrap();
        assert!(matches!(out, Value::Bool(true)));
        // map via builtin machinery
        let mapped = apply_builtin(
            Builtin::Map,
            vec![f.clone(), Value::list(vec![Value::Int(0), Value::Int(5)])],
            &ctx,
        )
        .unwrap();
        assert!(mapped.loosely_equals(&Value::list(vec![Value::Bool(false), Value::Bool(true)])));
        let all = apply_builtin(
            Builtin::All,
            vec![f.clone(), Value::list(vec![Value::Int(2), Value::Int(3)])],
            &ctx,
        )
        .unwrap();
        assert!(matches!(all, Value::Bool(true)));
        let filtered = apply_builtin(
            Builtin::Filter,
            vec![f, Value::list(vec![Value::Int(0), Value::Int(2)])],
            &ctx,
        )
        .unwrap();
        assert!(filtered.loosely_equals(&Value::list(vec![Value::Int(2)])));
    }

    #[test]
    fn action_constructors() {
        match v("click!(`#toggle`)") {
            Value::Action(a) => {
                assert_eq!(a.kind, Some(ActionKind::Click));
                assert_eq!(a.selector, Some(Selector::new("#toggle")));
                assert!(!a.event);
            }
            other => panic!("unexpected {other}"),
        }
        match v("keypress!(`input`, \"Enter\")") {
            Value::Action(a) => assert_eq!(a.kind, Some(ActionKind::KeyPress(Key::Enter))),
            other => panic!("unexpected {other}"),
        }
        match v("changed?(`#remaining`)") {
            Value::Action(a) => {
                assert!(a.event);
                assert_eq!(a.kind, None);
            }
            other => panic!("unexpected {other}"),
        }
        match v("noop!") {
            Value::Action(a) => assert_eq!(a.kind, Some(ActionKind::Noop)),
            other => panic!("unexpected {other}"),
        }
        assert!(eval_str("keypress!(`i`, \"Bogus\")").is_err());
    }

    #[test]
    fn functions_not_storable() {
        assert!(eval_str("[parseInt]").is_err());
    }

    #[test]
    fn uninstrumented_selector_is_an_error() {
        let err = eval_str("`#nope`.text").unwrap_err();
        assert!(err.message.contains("not instrumented"));
    }

    #[test]
    fn expand_thunk_bridges_to_formulas() {
        let snap = snapshot();
        let ctx = EvalCtx::with_state(&snap, 0);
        let ir = compile_expr(&parse_expr("`#toggle`.text == \"start\"").unwrap()).unwrap();
        let thunk = Thunk::new(ir, initial_env());
        assert_eq!(expand_thunk(&thunk, &ctx).unwrap(), Formula::Top);
        let ir2 = compile_expr(&parse_expr("next (`#toggle`.text == \"stop\")").unwrap()).unwrap();
        let thunk2 = Thunk::new(ir2, initial_env());
        assert!(matches!(
            expand_thunk(&thunk2, &ctx).unwrap(),
            Formula::Next(_)
        ));
    }

    #[test]
    fn null_is_lenient_in_comparisons_and_arithmetic() {
        // A selector that matched nothing propagates as null: orderings are
        // false, arithmetic stays null, equality distinguishes it.
        assert!(!b("`#missing`.text < \"a\""));
        assert!(!b("`#missing`.text >= \"a\""));
        assert!(b("parseInt(`#missing`.text) + 1 == null"));
        assert!(b("`#missing`.text == null"));
        // But comparing structurally wrong types is still an error.
        assert!(eval_str("1 < \"a\"").is_err());
    }

    #[test]
    fn record_index_by_unknown_key_is_null_and_does_not_intern() {
        assert!(b("`#toggle`.all[0][\"text\"] == \"start\""));
        assert!(b("`#toggle`.all[0][\"never-a-field-xyz\"] == null"));
        assert_eq!(Symbol::lookup("never-a-field-xyz"), None);
    }
}
