//! The two-sorted type system of Specstrom (§3).
//!
//! The paper's design brief: a type system "designed to be mostly invisible
//! to the programmer: it distinguishes only between functions and
//! non-functions, and all types are inferred". Its job is twofold:
//!
//! 1. **Termination.** Name resolution is strictly sequential (an item can
//!    only refer to earlier items), so recursion is impossible; together
//!    with the function/data separation this makes every Specstrom program
//!    terminate, which the static analysis of §3.3 relies on.
//! 2. **No function smuggling.** Functions may be passed as arguments
//!    (higher-order programming is allowed) but may not be placed inside
//!    arrays or records, compared, or used where data is expected.
//!
//! Sorts are `Val`, `Fun(params…)`, or inference variables solved by
//! unification with an occurs check (`fun apply(f) = f(f)` is rejected).

use crate::ast::Span;
use crate::ast::{Expr, Item, Spec};
use crate::error::SpecError;
use crate::value::Builtin;
use std::collections::HashMap;

/// A sort: the "type" of a Specstrom expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Sort {
    /// Data: anything storable — numbers, strings, lists, records,
    /// selectors, formulae, actions.
    Val,
    /// A function with the given parameter sorts (result is always `Val`).
    Fun(Vec<Sort>),
    /// An unsolved inference variable.
    Var(usize),
}

/// The unification state.
#[derive(Debug, Default)]
struct Solver {
    subst: Vec<Option<Sort>>,
}

impl Solver {
    fn fresh(&mut self) -> Sort {
        self.subst.push(None);
        Sort::Var(self.subst.len() - 1)
    }

    fn resolve(&self, sort: &Sort) -> Sort {
        match sort {
            Sort::Var(i) => match &self.subst[*i] {
                Some(s) => self.resolve(&s.clone()),
                None => Sort::Var(*i),
            },
            Sort::Fun(params) => Sort::Fun(params.iter().map(|p| self.resolve(p)).collect()),
            Sort::Val => Sort::Val,
        }
    }

    fn occurs(&self, var: usize, sort: &Sort) -> bool {
        match self.resolve(sort) {
            Sort::Var(j) => var == j,
            Sort::Fun(params) => params.iter().any(|p| self.occurs(var, p)),
            Sort::Val => false,
        }
    }

    fn unify(&mut self, a: &Sort, b: &Sort, span: Span) -> Result<(), SpecError> {
        let ra = self.resolve(a);
        let rb = self.resolve(b);
        match (ra, rb) {
            (Sort::Val, Sort::Val) => Ok(()),
            (Sort::Var(i), other) | (other, Sort::Var(i)) => {
                if let Sort::Var(j) = other {
                    if i == j {
                        return Ok(());
                    }
                }
                if self.occurs(i, &other) {
                    return Err(SpecError::at(
                        span,
                        "self-referential function sort (e.g. applying a function \
                         to itself) is not allowed",
                    ));
                }
                self.subst[i] = Some(other);
                Ok(())
            }
            (Sort::Fun(pa), Sort::Fun(pb)) => {
                if pa.len() != pb.len() {
                    return Err(SpecError::at(
                        span,
                        format!(
                            "function arity mismatch: {} vs {} parameters",
                            pa.len(),
                            pb.len()
                        ),
                    ));
                }
                for (x, y) in pa.iter().zip(pb.iter()) {
                    self.unify(x, y, span)?;
                }
                Ok(())
            }
            (Sort::Val, Sort::Fun(_)) | (Sort::Fun(_), Sort::Val) => Err(SpecError::at(
                span,
                "a function was used where data is expected (functions may not \
                 be stored in data structures or compared)",
            )),
        }
    }
}

fn builtin_sort(b: Builtin) -> Sort {
    if b.higher_order() {
        // map/filter/all/any: (fun(Val), Val) -> Val
        Sort::Fun(vec![Sort::Fun(vec![Sort::Val]), Sort::Val])
    } else {
        Sort::Fun(vec![Sort::Val; b.arity()])
    }
}

fn initial_scope() -> HashMap<String, Sort> {
    let mut scope = HashMap::new();
    for b in Builtin::all() {
        scope.insert(b.name().to_owned(), builtin_sort(*b));
    }
    scope.insert("noop!".to_owned(), Sort::Val);
    scope.insert("reload!".to_owned(), Sort::Val);
    scope.insert("loaded?".to_owned(), Sort::Val);
    scope
}

/// Checks a whole specification.
///
/// # Errors
///
/// Returns the first sort error, undefined-name error, or misuse of a
/// function as data.
pub fn check_spec(spec: &Spec) -> Result<(), SpecError> {
    let mut solver = Solver::default();
    let mut scope = initial_scope();
    for item in &spec.items {
        match item {
            Item::Let(stmt) => {
                let sort = infer(&stmt.value, &scope, &mut solver)?;
                scope.insert(stmt.name.clone(), sort);
            }
            Item::Fun {
                name,
                params,
                body,
                span,
            } => {
                let mut fn_scope = scope.clone();
                let mut param_sorts = Vec::with_capacity(params.len());
                for p in params {
                    let v = solver.fresh();
                    fn_scope.insert(p.name.clone(), v.clone());
                    param_sorts.push(v);
                }
                let body_sort = infer(body, &fn_scope, &mut solver)?;
                // Function bodies produce data (no function-returning
                // functions — they could smuggle functions into data).
                solver.unify(&body_sort, &Sort::Val, *span)?;
                let resolved: Vec<Sort> = param_sorts.iter().map(|p| solver.resolve(p)).collect();
                // Unconstrained parameters default to data.
                let defaulted: Vec<Sort> = resolved
                    .into_iter()
                    .map(|s| {
                        if matches!(s, Sort::Var(_)) {
                            Sort::Val
                        } else {
                            s
                        }
                    })
                    .collect();
                scope.insert(name.clone(), Sort::Fun(defaulted));
            }
            Item::Action {
                name,
                body,
                timeout,
                guard,
                span,
            } => {
                let body_sort = infer(body, &scope, &mut solver)?;
                solver.unify(&body_sort, &Sort::Val, *span)?;
                if let Some(t) = timeout {
                    let s = infer(t, &scope, &mut solver)?;
                    solver.unify(&s, &Sort::Val, t.span())?;
                }
                if let Some(g) = guard {
                    let s = infer(g, &scope, &mut solver)?;
                    solver.unify(&s, &Sort::Val, g.span())?;
                }
                scope.insert(name.clone(), Sort::Val);
            }
            Item::Check {
                properties,
                with_actions,
                span,
            } => {
                for p in properties {
                    match scope.get(p) {
                        None => {
                            return Err(SpecError::at(
                                *span,
                                format!("check references undefined property `{p}`"),
                            ))
                        }
                        Some(sort) => {
                            let s = sort.clone();
                            solver.unify(&s, &Sort::Val, *span)?;
                        }
                    }
                }
                for a in with_actions.iter().flatten() {
                    if !scope.contains_key(a) {
                        return Err(SpecError::at(
                            *span,
                            format!("check references undefined action `{a}`"),
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

fn infer(
    expr: &Expr,
    scope: &HashMap<String, Sort>,
    solver: &mut Solver,
) -> Result<Sort, SpecError> {
    match expr {
        Expr::Lit(_, _) | Expr::Selector(_, _) | Expr::Happened(_) => Ok(Sort::Val),
        Expr::Var(name, span) => scope.get(name).cloned().ok_or_else(|| {
            SpecError::at(
                *span,
                format!(
                    "undefined name `{name}` (bindings may only refer to earlier \
                     definitions — recursion is not allowed)"
                ),
            )
        }),
        Expr::Call { func, args, span } => {
            let callee = infer(func, scope, solver)?;
            let mut arg_sorts = Vec::with_capacity(args.len());
            for arg in args {
                arg_sorts.push(infer(arg, scope, solver)?);
            }
            solver.unify(&callee, &Sort::Fun(arg_sorts), *span)?;
            Ok(Sort::Val)
        }
        Expr::Unary { expr: inner, .. } => {
            let s = infer(inner, scope, solver)?;
            solver.unify(&s, &Sort::Val, inner.span())?;
            Ok(Sort::Val)
        }
        Expr::Binary { lhs, rhs, .. } => {
            let ls = infer(lhs, scope, solver)?;
            solver.unify(&ls, &Sort::Val, lhs.span())?;
            let rs = infer(rhs, scope, solver)?;
            solver.unify(&rs, &Sort::Val, rhs.span())?;
            Ok(Sort::Val)
        }
        Expr::Member { obj, .. } => {
            let s = infer(obj, scope, solver)?;
            solver.unify(&s, &Sort::Val, obj.span())?;
            Ok(Sort::Val)
        }
        Expr::Index { obj, index, .. } => {
            let s = infer(obj, scope, solver)?;
            solver.unify(&s, &Sort::Val, obj.span())?;
            let i = infer(index, scope, solver)?;
            solver.unify(&i, &Sort::Val, index.span())?;
            Ok(Sort::Val)
        }
        Expr::Array(items, _) => {
            for item in items {
                let s = infer(item, scope, solver)?;
                // Functions may not be placed inside data structures.
                solver.unify(&s, &Sort::Val, item.span())?;
            }
            Ok(Sort::Val)
        }
        Expr::If {
            cond,
            then_branch,
            else_branch,
            span,
        } => {
            let c = infer(cond, scope, solver)?;
            solver.unify(&c, &Sort::Val, cond.span())?;
            let t = infer(then_branch, scope, solver)?;
            let e = infer(else_branch, scope, solver)?;
            // Branches must agree; both must be data (an `if` returning a
            // function conditionally would defeat the analysis).
            solver.unify(&t, &e, *span)?;
            solver.unify(&t, &Sort::Val, *span)?;
            Ok(Sort::Val)
        }
        Expr::Block { lets, result, .. } => {
            let mut block_scope = scope.clone();
            for stmt in lets {
                let s = infer(&stmt.value, &block_scope, solver)?;
                block_scope.insert(stmt.name.clone(), s);
            }
            infer(result, &block_scope, solver)
        }
        Expr::Temporal { body, .. } => {
            let s = infer(body, scope, solver)?;
            solver.unify(&s, &Sort::Val, body.span())?;
            Ok(Sort::Val)
        }
        Expr::TemporalBin { lhs, rhs, .. } => {
            let ls = infer(lhs, scope, solver)?;
            solver.unify(&ls, &Sort::Val, lhs.span())?;
            let rs = infer(rhs, scope, solver)?;
            solver.unify(&rs, &Sort::Val, rhs.span())?;
            Ok(Sort::Val)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_spec;

    fn check(src: &str) -> Result<(), SpecError> {
        check_spec(&parse_spec(src).unwrap_or_else(|e| panic!("{src}: {e}")))
    }

    #[test]
    fn simple_specs_pass() {
        check("let x = 1; let y = x + 2;").unwrap();
        check("let ~started = `#t`.text == \"stop\"; check started;").unwrap();
        check("fun double(x) = x * 2; let four = double(2);").unwrap();
    }

    #[test]
    fn forward_references_are_rejected() {
        let err = check("let y = x; let x = 1;").unwrap_err();
        assert!(err.message.contains("undefined name `x`"));
        assert!(err.message.contains("recursion"));
    }

    #[test]
    fn recursion_is_impossible() {
        // A function cannot call itself: its own name is not in scope yet.
        let err = check("fun f(x) = f(x);").unwrap_err();
        assert!(err.message.contains("undefined name `f`"));
    }

    #[test]
    fn functions_cannot_hide_in_arrays() {
        let err = check("let xs = [parseInt];").unwrap_err();
        assert!(err.message.contains("function"));
    }

    #[test]
    fn functions_cannot_be_compared() {
        let err = check("let b = parseInt == parseFloat;").unwrap_err();
        assert!(err.message.contains("function"));
    }

    #[test]
    fn higher_order_is_allowed() {
        check(
            "fun isLong(s) = length(s) > 3;\n\
             let ~ok = all(isLong, texts(`li`));",
        )
        .unwrap();
        // Builtins may be passed directly too.
        check("let ns = map(parseInt, [\"1\", \"2\"]);").unwrap();
    }

    #[test]
    fn calling_data_is_rejected() {
        let err = check("let x = 1; let y = x(2);").unwrap_err();
        assert!(err.message.contains("function"));
    }

    #[test]
    fn arity_mismatches_are_caught() {
        let err = check("fun f(a, b) = a + b; let x = f(1);").unwrap_err();
        assert!(err.message.contains("arity"));
        let err2 = check("let n = parseInt(\"1\", 10);").unwrap_err();
        assert!(err2.message.contains("arity"));
    }

    #[test]
    fn self_application_is_rejected() {
        let err = check("fun apply(f) = f(f);").unwrap_err();
        assert!(err.message.contains("self-referential"));
    }

    #[test]
    fn if_branches_must_agree() {
        check("let x = if true {1} else {2};").unwrap();
        // Returning a function from a branch is rejected.
        let err = check("fun pick(c) = if c {parseInt} else {parseFloat};").unwrap_err();
        assert!(err.message.contains("function"));
    }

    #[test]
    fn check_validates_names() {
        let err = check("check nonexistent;").unwrap_err();
        assert!(err.message.contains("undefined property"));
        let err2 = check("let ~p = true; check p with ghost!;").unwrap_err();
        assert!(err2.message.contains("undefined action"));
    }

    #[test]
    fn action_items_bind_names() {
        check(
            "let ~stopped = `#t`.text == \"start\";\n\
             action start! = click!(`#t`) when stopped;\n\
             let ~p = start! in happened;\n\
             check p with start!;",
        )
        .unwrap();
    }

    #[test]
    fn egg_timer_fig8_checks() {
        let src = r#"
            let ~stopped = `#toggle`.text == "start";
            let ~started = `#toggle`.text == "stop";
            let ~time = parseInt(`#remaining`.text);
            action start! = click!(`#toggle`) when stopped;
            action stop! = click!(`#toggle`) when started;
            action wait! = noop! timeout 1100 when started;
            action tick? = changed?(`#remaining`);
            let ~ticking {
                let old = time;
                started && next (tick? in happened
                    && time == old - 1
                    && if time == 0 {stopped} else {started})
            };
            let ~waiting = started && next (wait! in happened && started);
            let ~starting = stopped && next (start! in happened
                && if time == 0 {stopped} else {started});
            let ~stopping = started && next (stop! in happened && stopped);
            let ~safety = loaded? in happened && time == 180
                && always[400] (starting || stopping || waiting || ticking);
            let ~liveness = always[400] (start! in happened ==> eventually[360] stopped);
            let ~timeUp = always[400] (start! in happened ==> eventually[360] (time == 0));
            check safety liveness;
            check timeUp with start! wait! tick?;
        "#;
        check(src).unwrap();
    }

    #[test]
    fn deferred_params_are_data_parameters() {
        check("fun evovae(~x) { let v = x; always (x == v) } let ~p = evovae(1 + 1);").unwrap();
    }
}
