//! The compilation pass: name interning, slot resolution, and lowering to
//! a resolved IR.
//!
//! The paper's checker evaluates the progressed formula once per observed
//! state — millions of times over a registry sweep — and the original
//! tree-walking interpreter paid O(scope-depth) *string comparisons* for
//! every variable reference (see [`crate::reference`], which preserves it
//! verbatim). This module runs once per specification, between the sort
//! checker and evaluation, and removes that cost from the hot path:
//!
//! 1. **Interning** — every identifier and record field name becomes a
//!    [`Symbol`] (a `u32` into the process-global table shared with the
//!    protocol layer, so snapshot field keys and evaluator field keys are
//!    the *same* symbols).
//! 2. **Slot resolution** — every variable reference is resolved to a
//!    `(depth, slot)` pair: walk `depth` environment frames, index `slot`.
//!    Undefined names become compile-time errors (the sort checker already
//!    guarantees this for full specifications).
//! 3. **Lowering** — the surface [`Expr`] tree becomes an [`Ir`] tree with
//!    literals pre-evaluated to [`Value`]s (string literals allocate their
//!    `Arc<str>` once, at compile time) and blocks desugared to nested
//!    single-binding [`Ir::Let`] nodes.
//!
//! The compiled evaluator in [`crate::eval`] interprets this IR against
//! the slot-indexed [`Env`]. Equivalence with the reference tree-walk is
//! pinned by differential property tests (`tests/properties.rs` and the
//! bundled-spec differential suite in the bench crate).

use crate::ast::{BinOp, Expr, LetStmt, Literal, Param, Span, TemporalOp, UnOp};
use crate::error::SpecError;
use crate::value::Env;
use crate::value::{ActionValue, Binding, Builtin, SlotParam, Value};
use quickstrom_protocol::{ActionKind, Selector, Symbol};
use std::sync::Arc;

/// A compiled expression: the resolved IR interpreted by [`crate::eval`].
///
/// Structurally parallel to [`Expr`], with three differences: variable
/// references carry `(depth, slot)` coordinates instead of names, field
/// names are interned [`Symbol`]s, and literals are pre-built [`Value`]s.
#[derive(Debug)]
pub enum Ir {
    /// A pre-evaluated constant (literal or selector literal).
    Const(Value, Span),
    /// A resolved variable reference: walk `depth` frames, index `slot`.
    Var {
        /// Frames to walk towards the environment root.
        depth: u32,
        /// Index into the frame's slot vector.
        slot: u32,
        /// The surface name (diagnostics only).
        name: Symbol,
        /// Location.
        span: Span,
    },
    /// The special `happened` state variable (§3.2).
    Happened(Span),
    /// `f(a, b)`.
    Call {
        /// Callee.
        func: Arc<Ir>,
        /// Arguments.
        args: Vec<Arc<Ir>>,
        /// Location.
        span: Span,
    },
    /// Unary operator application.
    Unary {
        /// The operator.
        op: UnOp,
        /// Operand.
        expr: Arc<Ir>,
        /// Location.
        span: Span,
    },
    /// Binary operator application.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Arc<Ir>,
        /// Right operand.
        rhs: Arc<Ir>,
        /// Location.
        span: Span,
    },
    /// `obj.field`, with the field name interned.
    Member {
        /// Object expression.
        obj: Arc<Ir>,
        /// Interned field name.
        field: Symbol,
        /// Location.
        span: Span,
    },
    /// `xs[i]`.
    Index {
        /// Collection expression.
        obj: Arc<Ir>,
        /// Index expression.
        index: Arc<Ir>,
        /// Location.
        span: Span,
    },
    /// `[a, b, c]`.
    Array(Vec<Arc<Ir>>, Span),
    /// `if c { … } else { … }`.
    If {
        /// Condition (must be a plain boolean, not a formula).
        cond: Arc<Ir>,
        /// Then branch.
        then_branch: Arc<Ir>,
        /// Else branch.
        else_branch: Arc<Ir>,
        /// Location.
        span: Span,
    },
    /// One block binding: `{ let x = value; body }`. Blocks with several
    /// `let`s lower to nested `Let` nodes; at run time each pushes a
    /// single-slot frame, so references resolve as `(0, 0)` within the
    /// innermost binding.
    Let {
        /// Bound name (diagnostics only).
        name: Symbol,
        /// `true` for `let ~x = …` (captured as a thunk, evaluated per
        /// use).
        deferred: bool,
        /// The bound expression.
        value: Arc<Ir>,
        /// The rest of the block.
        body: Arc<Ir>,
        /// Location of the binding.
        span: Span,
    },
    /// A unary temporal operator with optional demand annotation.
    Temporal {
        /// Which operator.
        op: TemporalOp,
        /// The demand subscript; `None` uses the checker default (§4.1).
        demand: Option<u32>,
        /// Body — captured as a thunk atom over the current environment.
        body: Arc<Ir>,
        /// Location.
        span: Span,
    },
    /// `a until[n] b` / `a release[n] b`.
    TemporalBin {
        /// `true` for until, `false` for release.
        until: bool,
        /// The demand subscript; `None` uses the checker default.
        demand: Option<u32>,
        /// Left operand.
        lhs: Arc<Ir>,
        /// Right operand.
        rhs: Arc<Ir>,
        /// Location.
        span: Span,
    },
}

impl Ir {
    /// The source span of this compiled expression.
    #[must_use]
    pub fn span(&self) -> Span {
        match self {
            Ir::Const(_, s) | Ir::Happened(s) | Ir::Array(_, s) => *s,
            Ir::Var { span, .. }
            | Ir::Call { span, .. }
            | Ir::Unary { span, .. }
            | Ir::Binary { span, .. }
            | Ir::Member { span, .. }
            | Ir::Index { span, .. }
            | Ir::If { span, .. }
            | Ir::Let { span, .. }
            | Ir::Temporal { span, .. }
            | Ir::TemporalBin { span, .. } => *span,
        }
    }

    /// Reconstructs a surface expression, for diagnostics: residual formula
    /// atoms display through [`crate::pretty::pretty_expr`] of this tree.
    ///
    /// Lowering is lossless up to block grouping (nested [`Ir::Let`]s print
    /// as one block), so the reconstruction reads like the original source.
    #[must_use]
    pub fn to_expr(&self) -> Expr {
        match self {
            Ir::Const(v, span) => const_to_expr(v, *span),
            Ir::Var { name, span, .. } => Expr::Var(name.as_str().to_owned(), *span),
            Ir::Happened(span) => Expr::Happened(*span),
            Ir::Call { func, args, span } => Expr::Call {
                func: Arc::new(func.to_expr()),
                args: args.iter().map(|a| Arc::new(a.to_expr())).collect(),
                span: *span,
            },
            Ir::Unary { op, expr, span } => Expr::Unary {
                op: *op,
                expr: Arc::new(expr.to_expr()),
                span: *span,
            },
            Ir::Binary { op, lhs, rhs, span } => Expr::Binary {
                op: *op,
                lhs: Arc::new(lhs.to_expr()),
                rhs: Arc::new(rhs.to_expr()),
                span: *span,
            },
            Ir::Member { obj, field, span } => Expr::Member {
                obj: Arc::new(obj.to_expr()),
                field: field.as_str().to_owned(),
                span: *span,
            },
            Ir::Index { obj, index, span } => Expr::Index {
                obj: Arc::new(obj.to_expr()),
                index: Arc::new(index.to_expr()),
                span: *span,
            },
            Ir::Array(items, span) => {
                Expr::Array(items.iter().map(|i| Arc::new(i.to_expr())).collect(), *span)
            }
            Ir::If {
                cond,
                then_branch,
                else_branch,
                span,
            } => Expr::If {
                cond: Arc::new(cond.to_expr()),
                then_branch: Arc::new(then_branch.to_expr()),
                else_branch: Arc::new(else_branch.to_expr()),
                span: *span,
            },
            Ir::Let { span, .. } => {
                // Re-group a chain of nested lets into one block.
                let mut lets = Vec::new();
                let mut cur = self;
                while let Ir::Let {
                    name,
                    deferred,
                    value,
                    body,
                    span,
                } = cur
                {
                    lets.push(LetStmt {
                        name: name.as_str().to_owned(),
                        deferred: *deferred,
                        value: Arc::new(value.to_expr()),
                        span: *span,
                    });
                    cur = body;
                }
                Expr::Block {
                    lets,
                    result: Arc::new(cur.to_expr()),
                    span: *span,
                }
            }
            Ir::Temporal {
                op,
                demand,
                body,
                span,
            } => Expr::Temporal {
                op: *op,
                demand: *demand,
                body: Arc::new(body.to_expr()),
                span: *span,
            },
            Ir::TemporalBin {
                until,
                demand,
                lhs,
                rhs,
                span,
            } => Expr::TemporalBin {
                until: *until,
                demand: *demand,
                lhs: Arc::new(lhs.to_expr()),
                rhs: Arc::new(rhs.to_expr()),
                span: *span,
            },
        }
    }
}

fn const_to_expr(v: &Value, span: Span) -> Expr {
    match v {
        Value::Null => Expr::Lit(Literal::Null, span),
        Value::Bool(b) => Expr::Lit(Literal::Bool(*b), span),
        Value::Int(n) => Expr::Lit(Literal::Int(*n), span),
        Value::Float(x) => Expr::Lit(Literal::Float(*x), span),
        Value::Str(s) => Expr::Lit(Literal::Str(s.to_string()), span),
        Value::Selector(sel) => Expr::Selector(sel.as_str().to_owned(), span),
        // Only literal constants are lowered to `Const`; render anything
        // else through its display form.
        other => Expr::Var(other.to_string(), span),
    }
}

/// The compile-time scope stack mirroring the run-time frame chain.
///
/// `scopes[0]` is the global frame (builtins plus top-level items, growing
/// as the specification is compiled); later entries are parameter frames
/// and single-binding `let` frames. Resolution scans innermost-out, and
/// within a frame scans slots in reverse so later bindings shadow earlier
/// ones.
#[derive(Debug)]
pub(crate) struct Resolver {
    scopes: Vec<Vec<Symbol>>,
}

impl Resolver {
    pub(crate) fn new(globals: Vec<Symbol>) -> Self {
        Resolver {
            scopes: vec![globals],
        }
    }

    /// Appends a slot to the global frame (top-level item compilation).
    pub(crate) fn define_global(&mut self, name: Symbol) {
        self.scopes[0].push(name);
    }

    pub(crate) fn push_scope(&mut self, names: Vec<Symbol>) {
        self.scopes.push(names);
    }

    pub(crate) fn pop_scope(&mut self) {
        self.scopes.pop().expect("scope stack underflow");
    }

    fn resolve(&self, name: Symbol) -> Option<(u32, u32)> {
        for (up, frame) in self.scopes.iter().rev().enumerate() {
            if let Some(slot) = frame.iter().rposition(|&n| n == name) {
                let depth = u32::try_from(up).expect("scope depth fits u32");
                let slot = u32::try_from(slot).expect("slot index fits u32");
                return Some((depth, slot));
            }
        }
        None
    }
}

/// Lowers one expression against the current scope stack.
pub(crate) fn lower(expr: &Expr, r: &mut Resolver) -> Result<Arc<Ir>, SpecError> {
    Ok(Arc::new(match expr {
        Expr::Lit(lit, span) => {
            let value = match lit {
                Literal::Null => Value::Null,
                Literal::Bool(b) => Value::Bool(*b),
                Literal::Int(n) => Value::Int(*n),
                Literal::Float(x) => Value::Float(*x),
                Literal::Str(s) => Value::str(s),
            };
            Ir::Const(value, *span)
        }
        Expr::Selector(s, span) => Ir::Const(Value::Selector(Selector::new(s)), *span),
        Expr::Var(name, span) => {
            let sym = Symbol::intern(name);
            let Some((depth, slot)) = r.resolve(sym) else {
                return Err(SpecError::at(*span, format!("undefined name `{name}`")));
            };
            Ir::Var {
                depth,
                slot,
                name: sym,
                span: *span,
            }
        }
        Expr::Happened(span) => Ir::Happened(*span),
        Expr::Call { func, args, span } => Ir::Call {
            func: lower(func, r)?,
            args: args.iter().map(|a| lower(a, r)).collect::<Result<_, _>>()?,
            span: *span,
        },
        Expr::Unary { op, expr, span } => Ir::Unary {
            op: *op,
            expr: lower(expr, r)?,
            span: *span,
        },
        Expr::Binary { op, lhs, rhs, span } => Ir::Binary {
            op: *op,
            lhs: lower(lhs, r)?,
            rhs: lower(rhs, r)?,
            span: *span,
        },
        Expr::Member { obj, field, span } => Ir::Member {
            obj: lower(obj, r)?,
            field: Symbol::intern(field),
            span: *span,
        },
        Expr::Index { obj, index, span } => Ir::Index {
            obj: lower(obj, r)?,
            index: lower(index, r)?,
            span: *span,
        },
        Expr::Array(items, span) => Ir::Array(
            items
                .iter()
                .map(|i| lower(i, r))
                .collect::<Result<_, _>>()?,
            *span,
        ),
        Expr::If {
            cond,
            then_branch,
            else_branch,
            span,
        } => Ir::If {
            cond: lower(cond, r)?,
            then_branch: lower(then_branch, r)?,
            else_branch: lower(else_branch, r)?,
            span: *span,
        },
        Expr::Block { lets, result, .. } => return lower_block(lets, result, r),
        Expr::Temporal {
            op,
            demand,
            body,
            span,
        } => Ir::Temporal {
            op: *op,
            demand: *demand,
            body: lower(body, r)?,
            span: *span,
        },
        Expr::TemporalBin {
            until,
            demand,
            lhs,
            rhs,
            span,
        } => Ir::TemporalBin {
            until: *until,
            demand: *demand,
            lhs: lower(lhs, r)?,
            rhs: lower(rhs, r)?,
            span: *span,
        },
    }))
}

/// Desugars a block into nested single-binding [`Ir::Let`]s: each `let`
/// opens a one-slot scope visible to the remaining bindings and the result.
fn lower_block(lets: &[LetStmt], result: &Expr, r: &mut Resolver) -> Result<Arc<Ir>, SpecError> {
    let Some((stmt, rest)) = lets.split_first() else {
        return lower(result, r);
    };
    let value = lower(&stmt.value, r)?;
    let name = Symbol::intern(&stmt.name);
    r.push_scope(vec![name]);
    let body = lower_block(rest, result, r);
    r.pop_scope();
    Ok(Arc::new(Ir::Let {
        name,
        deferred: stmt.deferred,
        value,
        body: body?,
        span: stmt.span,
    }))
}

/// Lowers the parameter list of a `fun` item.
pub(crate) fn lower_params(params: &[Param]) -> Vec<SlotParam> {
    params
        .iter()
        .map(|p| SlotParam {
            name: Symbol::intern(&p.name),
            deferred: p.deferred,
        })
        .collect()
}

fn constant_action(name: &str, kind: ActionKind) -> Binding {
    Binding::Eager(Value::Action(Arc::new(ActionValue::constant(name, kind))))
}

/// The initial global frame: every builtin plus the constant actions
/// `noop!`, `reload!` and the built-in `loaded?` event (§3.2), as parallel
/// name and binding vectors (same indices).
#[must_use]
pub fn initial_globals() -> (Vec<Symbol>, Vec<Binding>) {
    let mut names = Vec::new();
    let mut bindings = Vec::new();
    for b in Builtin::all() {
        names.push(Symbol::intern(b.name()));
        bindings.push(Binding::Eager(Value::Builtin(*b)));
    }
    names.push(Symbol::intern("noop!"));
    bindings.push(constant_action("noop!", ActionKind::Noop));
    names.push(Symbol::intern("reload!"));
    bindings.push(constant_action("reload!", ActionKind::Reload));
    names.push(Symbol::intern("loaded?"));
    bindings.push(Binding::Eager(Value::Action(Arc::new(
        ActionValue::builtin_event("loaded?"),
    ))));
    (names, bindings)
}

/// The initial environment: one frame holding [`initial_globals`].
///
/// This is the compiled counterpart of the reference interpreter's
/// `initial_env`; expressions compiled with [`compile_expr`] evaluate
/// against it.
#[must_use]
pub fn initial_env() -> Env {
    let (_, bindings) = initial_globals();
    Env::new().push(bindings)
}

/// Compiles a standalone expression against the initial (builtins-only)
/// scope — the entry point for tests, tools and the differential harness.
/// Specification items are compiled by [`crate::spec::compile`], which
/// grows the global scope item by item.
///
/// # Errors
///
/// Returns a [`SpecError`] for references to names that are not builtins.
pub fn compile_expr(expr: &Expr) -> Result<Arc<Ir>, SpecError> {
    let (names, _) = initial_globals();
    let mut resolver = Resolver::new(names);
    lower(expr, &mut resolver)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;
    use crate::pretty::pretty_expr;

    fn compiled(src: &str) -> Arc<Ir> {
        compile_expr(&parse_expr(src).unwrap()).unwrap_or_else(|e| panic!("{src}: {e}"))
    }

    #[test]
    fn literals_become_constants() {
        assert!(matches!(
            compiled("42").as_ref(),
            Ir::Const(Value::Int(42), _)
        ));
        match compiled("\"hi\"").as_ref() {
            Ir::Const(Value::Str(s), _) => assert_eq!(&**s, "hi"),
            other => panic!("unexpected {other:?}"),
        }
        match compiled("`#toggle`").as_ref() {
            Ir::Const(Value::Selector(sel), _) => assert_eq!(sel.as_str(), "#toggle"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn builtins_resolve_to_global_slots() {
        match compiled("parseInt").as_ref() {
            Ir::Var { depth: 0, slot, .. } => assert_eq!(*slot, 0),
            other => panic!("unexpected {other:?}"),
        }
        // `trim` is the fifth builtin.
        match compiled("trim").as_ref() {
            Ir::Var { depth: 0, slot, .. } => assert_eq!(*slot, 4),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn undefined_names_fail_at_compile_time() {
        let err = compile_expr(&parse_expr("nope").unwrap()).unwrap_err();
        assert!(err.message.contains("undefined name `nope`"));
        // Even when unreachable at run time: resolution is static.
        let err2 = compile_expr(&parse_expr("false && nope").unwrap()).unwrap_err();
        assert!(err2.message.contains("undefined name `nope`"));
    }

    #[test]
    fn block_lets_resolve_to_nested_single_slots() {
        let ir = compiled("{ let x = 1; let y = x; y }");
        let Ir::Let { value, body, .. } = ir.as_ref() else {
            panic!("expected let");
        };
        assert!(matches!(value.as_ref(), Ir::Const(Value::Int(1), _)));
        let Ir::Let {
            value: y_value,
            body: result,
            ..
        } = body.as_ref()
        else {
            panic!("expected nested let");
        };
        // `x` seen from `y`'s initialiser: one frame up would be wrong —
        // the `y` scope is not yet open while lowering its value.
        assert!(matches!(
            y_value.as_ref(),
            Ir::Var {
                depth: 0,
                slot: 0,
                ..
            }
        ));
        // `y` seen from the result: innermost frame.
        assert!(matches!(
            result.as_ref(),
            Ir::Var {
                depth: 0,
                slot: 0,
                ..
            }
        ));
    }

    #[test]
    fn shadowing_resolves_to_the_innermost_binding() {
        let ir = compiled("{ let x = 1; let x = 2; x }");
        let Ir::Let { body, .. } = ir.as_ref() else {
            panic!("expected let");
        };
        let Ir::Let { body: result, .. } = body.as_ref() else {
            panic!("expected nested let");
        };
        assert!(matches!(
            result.as_ref(),
            Ir::Var {
                depth: 0,
                slot: 0,
                ..
            }
        ));
    }

    #[test]
    fn to_expr_reconstructs_readable_source() {
        for src in [
            "1 + 2 * 3",
            "`#toggle`.text == \"start\"",
            "always[3] (`#t`.present)",
            "{ let v = 1; v + 1 }",
            "if true { 1 } else { 2 }",
            "texts(`li`)[0]",
            "a until[5] b",
        ] {
            // `a`/`b` are undefined; swap for builtins in the last case.
            let src = if src.contains("until") {
                "parseInt until[5] parseFloat"
            } else {
                src
            };
            let expr = parse_expr(src).unwrap();
            let ir = compile_expr(&expr).unwrap();
            assert_eq!(pretty_expr(&ir.to_expr()), pretty_expr(&expr), "{src}");
        }
    }
}
