//! A pretty-printer for Specstrom: renders ASTs back to concrete syntax.
//!
//! Used for diagnostics (showing residual atoms in counterexamples), for
//! `specstrom`-as-a-library tooling, and to property-test the parser: the
//! printer's output must re-parse, and printing is a fixpoint
//! (`print ∘ parse ∘ print = print`).

use crate::ast::{BinOp, Expr, Item, LetStmt, Literal, Param, Spec, TemporalOp, UnOp};
use std::fmt::Write as _;

/// Operator precedence levels, matching the parser (higher binds tighter).
fn prec(expr: &Expr) -> u8 {
    match expr {
        Expr::Binary { op, .. } => match op {
            BinOp::Implies => 1,
            BinOp::Or => 2,
            BinOp::And => 3,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::In => 5,
            BinOp::Add | BinOp::Sub => 6,
            BinOp::Mul | BinOp::Div | BinOp::Mod => 7,
        },
        Expr::TemporalBin { .. } => 4,
        Expr::Unary { .. } | Expr::Temporal { .. } => 8,
        Expr::Call { .. } | Expr::Member { .. } | Expr::Index { .. } => 9,
        _ => 10,
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out
}

fn demand_suffix(demand: Option<u32>) -> String {
    demand.map(|n| format!("[{n}]")).unwrap_or_default()
}

fn write_expr(out: &mut String, expr: &Expr, min: u8) {
    let p = prec(expr);
    if p < min {
        out.push('(');
    }
    match expr {
        Expr::Lit(lit, _) => match lit {
            Literal::Null => out.push_str("null"),
            Literal::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Literal::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Literal::Float(x) => {
                // Keep a decimal point so the literal re-parses as a float.
                if x.fract() == 0.0 && x.is_finite() {
                    let _ = write!(out, "{x:.1}");
                } else {
                    let _ = write!(out, "{x}");
                }
            }
            Literal::Str(s) => {
                let _ = write!(out, "\"{}\"", escape(s));
            }
        },
        Expr::Selector(s, _) => {
            let _ = write!(out, "`{s}`");
        }
        Expr::Var(name, _) => out.push_str(name),
        Expr::Happened(_) => out.push_str("happened"),
        Expr::Call { func, args, .. } => {
            write_expr(out, func, 9);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, a, 0);
            }
            out.push(')');
        }
        Expr::Unary { op, expr, .. } => {
            out.push_str(match op {
                UnOp::Not => "!",
                UnOp::Neg => "-",
            });
            write_expr(out, expr, 8);
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            let (lp, rp) = match op {
                // Right associative.
                BinOp::Implies => (2, 1),
                // Left associative chains.
                BinOp::Or => (2, 3),
                BinOp::And => (3, 4),
                BinOp::Add | BinOp::Sub => (6, 7),
                BinOp::Mul | BinOp::Div | BinOp::Mod => (7, 8),
                // Non-associative.
                _ => (6, 6),
            };
            write_expr(out, lhs, lp);
            let _ = write!(out, " {op} ");
            write_expr(out, rhs, rp);
        }
        Expr::Member { obj, field, .. } => {
            write_expr(out, obj, 9);
            out.push('.');
            out.push_str(field);
        }
        Expr::Index { obj, index, .. } => {
            write_expr(out, obj, 9);
            out.push('[');
            write_expr(out, index, 0);
            out.push(']');
        }
        Expr::Array(items, _) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, item, 0);
            }
            out.push(']');
        }
        Expr::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            out.push_str("if ");
            write_expr(out, cond, 0);
            out.push(' ');
            write_block_like(out, then_branch);
            out.push_str(" else ");
            if matches!(else_branch.as_ref(), Expr::If { .. }) {
                write_expr(out, else_branch, 0);
            } else {
                write_block_like(out, else_branch);
            }
        }
        Expr::Block { lets, result, .. } => {
            out.push_str("{ ");
            for l in lets {
                write_let_stmt(out, l);
                out.push(' ');
            }
            write_expr(out, result, 0);
            out.push_str(" }");
        }
        Expr::Temporal {
            op, demand, body, ..
        } => {
            let name = match op {
                TemporalOp::Always => "always",
                TemporalOp::Eventually => "eventually",
                TemporalOp::Next => "next",
                TemporalOp::NextW => "nextW",
                TemporalOp::NextS => "nextS",
            };
            out.push_str(name);
            if matches!(op, TemporalOp::Always | TemporalOp::Eventually) {
                out.push_str(&demand_suffix(*demand));
            }
            out.push(' ');
            write_expr(out, body, 8);
        }
        Expr::TemporalBin {
            until,
            demand,
            lhs,
            rhs,
            ..
        } => {
            write_expr(out, lhs, 5);
            let _ = write!(
                out,
                " {}{} ",
                if *until { "until" } else { "release" },
                demand_suffix(*demand)
            );
            // Right associative.
            write_expr(out, rhs, 4);
        }
    }
    if p < min {
        out.push(')');
    }
}

/// `if`/`else` branches must print as blocks even when the parser produced
/// a bare expression internally.
fn write_block_like(out: &mut String, expr: &Expr) {
    if matches!(expr, Expr::Block { .. }) {
        write_expr(out, expr, 0);
    } else {
        out.push_str("{ ");
        write_expr(out, expr, 0);
        out.push_str(" }");
    }
}

fn write_let_stmt(out: &mut String, stmt: &LetStmt) {
    let _ = write!(
        out,
        "let {}{} = ",
        if stmt.deferred { "~" } else { "" },
        stmt.name
    );
    write_expr(out, &stmt.value, 0);
    out.push(';');
}

fn write_params(out: &mut String, params: &[Param]) {
    for (i, p) in params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        if p.deferred {
            out.push('~');
        }
        out.push_str(&p.name);
    }
}

/// Renders one expression.
#[must_use]
pub fn pretty_expr(expr: &Expr) -> String {
    let mut out = String::new();
    write_expr(&mut out, expr, 0);
    out
}

/// Renders one item as a single line.
#[must_use]
pub fn pretty_item(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Let(stmt) => write_let_stmt(&mut out, stmt),
        Item::Fun {
            name, params, body, ..
        } => {
            let _ = write!(out, "fun {name}(");
            write_params(&mut out, params);
            out.push_str(") = ");
            write_expr(&mut out, body, 0);
            out.push(';');
        }
        Item::Action {
            name,
            body,
            timeout,
            guard,
            ..
        } => {
            let _ = write!(out, "action {name} = ");
            write_expr(&mut out, body, 0);
            if let Some(t) = timeout {
                out.push_str(" timeout ");
                write_expr(&mut out, t, 0);
            }
            if let Some(g) = guard {
                out.push_str(" when ");
                write_expr(&mut out, g, 0);
            }
            out.push(';');
        }
        Item::Check {
            properties,
            with_actions,
            ..
        } => {
            let _ = write!(out, "check {}", properties.join(", "));
            if let Some(actions) = with_actions {
                let _ = write!(out, " with {}", actions.join(", "));
            }
            out.push(';');
        }
    }
    out
}

/// Renders a whole specification, one item per line.
#[must_use]
pub fn pretty_spec(spec: &Spec) -> String {
    let mut out = String::new();
    for item in &spec.items {
        out.push_str(&pretty_item(item));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_spec};

    fn roundtrip_expr(src: &str) -> String {
        pretty_expr(&parse_expr(src).unwrap())
    }

    #[test]
    fn literals_and_operators() {
        assert_eq!(roundtrip_expr("1 + 2 * 3"), "1 + 2 * 3");
        assert_eq!(roundtrip_expr("(1 + 2) * 3"), "(1 + 2) * 3");
        assert_eq!(roundtrip_expr("a && b || c"), "a && b || c");
        assert_eq!(roundtrip_expr("a && (b || c)"), "a && (b || c)");
        assert_eq!(roundtrip_expr("!x"), "!x");
        assert_eq!(roundtrip_expr("null == null"), "null == null");
        assert_eq!(roundtrip_expr("\"a\\nb\""), "\"a\\nb\"");
        assert_eq!(roundtrip_expr("2.5 + 1.0"), "2.5 + 1.0");
    }

    #[test]
    fn temporal_printing() {
        assert_eq!(
            roundtrip_expr("always[400] (a || b)"),
            "always[400] (a || b)"
        );
        assert_eq!(roundtrip_expr("eventually x"), "eventually x");
        assert_eq!(roundtrip_expr("a until[5] b"), "a until[5] b");
        assert_eq!(roundtrip_expr("nextW (x == 1)"), "nextW (x == 1)");
        // `until` binds tighter than `&&`.
        assert_eq!(roundtrip_expr("a && b until c"), "a && b until c");
        assert_eq!(roundtrip_expr("(a && b) until c"), "(a && b) until c");
    }

    #[test]
    fn postfix_and_selectors() {
        assert_eq!(
            roundtrip_expr("`#toggle`.text == \"start\""),
            "`#toggle`.text == \"start\""
        );
        assert_eq!(
            roundtrip_expr("parseInt(`#n`.text) + 1"),
            "parseInt(`#n`.text) + 1"
        );
        assert_eq!(roundtrip_expr("xs[0].text"), "xs[0].text");
        assert_eq!(roundtrip_expr("[1, 2, 3]"), "[1, 2, 3]");
    }

    #[test]
    fn blocks_and_ifs() {
        assert_eq!(
            roundtrip_expr("{ let v = x; v + 1 }"),
            "{ let v = x; v + 1 }"
        );
        assert_eq!(
            roundtrip_expr("if a { 1 } else { 2 }"),
            "if a { 1 } else { 2 }"
        );
        assert_eq!(
            roundtrip_expr("if a {1} else if b {2} else {3}"),
            "if a { 1 } else if b { 2 } else { 3 }"
        );
    }

    #[test]
    fn items_print() {
        let spec = parse_spec(
            "let ~stopped = `#t`.text == \"start\";\n\
             fun double(x) = x * 2;\n\
             action start! = click!(`#t`) timeout 100 when stopped;\n\
             check stopped with start!;",
        )
        .unwrap();
        let printed = pretty_spec(&spec);
        assert_eq!(
            printed,
            "let ~stopped = `#t`.text == \"start\";\n\
             fun double(x) = x * 2;\n\
             action start! = click!(`#t`) timeout 100 when stopped;\n\
             check stopped with start!;\n"
        );
    }

    #[test]
    fn printing_is_a_fixpoint_on_the_bundled_specs() {
        for src in [
            include_str!("../../../specs/todomvc.strom"),
            include_str!("../../../specs/egg_timer.strom"),
            include_str!("../../../specs/counter.strom"),
            include_str!("../../../specs/menu.strom"),
        ] {
            let once = pretty_spec(&parse_spec(src).unwrap());
            let twice = pretty_spec(&parse_spec(&once).unwrap_or_else(|e| {
                panic!(
                    "printed spec failed to re-parse: {}\n{once}",
                    e.render(&once)
                )
            }));
            assert_eq!(once, twice, "printer is not a fixpoint");
        }
    }
}
