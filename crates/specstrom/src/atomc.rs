//! Atom compilation and value-keyed expansion memoization.
//!
//! Formula progression expands every live atom at every observed state —
//! millions of [`Thunk`] evaluations over a registry sweep, even though a
//! typical sweep only ever *visits* a few hundred distinct states. This
//! module removes that redundancy at two levels:
//!
//! 1. **Value-keyed memoization.** An atom's expansion is a pure function
//!    of (a) the atom itself — its compiled code and captured environment —
//!    and (b) the slice of the state its footprint can read
//!    ([`crate::analysis::AtomFootprint`]). [`AtomKeyer`] hashes (a) into a
//!    *semantic* atom key: the IR node by address (compiled once, stable
//!    for the specification's lifetime) and the environment chain by
//!    *content*, so the fresh frames each run's evaluation builds hash
//!    equal whenever they bind equal values. The checker pairs that key
//!    with a projection hash of (b) and looks the expansion up in a
//!    property-level [`AtomMemo`] shared across runs, workers, and shrink
//!    replays (the same sharing shape as `SpecAutomata`).
//! 2. **Compiled evaluators.** [`compile_atom`] lowers the common atom
//!    shapes — selector projections, comparisons, first-order builtin
//!    calls — into a closure-free [`CompiledExpr`] with selectors and
//!    bindings pre-resolved, so a memo *miss* skips the generic
//!    environment-walking interpreter too. Anything the lowering does not
//!    cover falls back to [`crate::eval::eval`] unchanged; both paths call
//!    the same value-level kernels (`member`, `compare`, `arith`,
//!    `apply_builtin`, …), so they cannot drift apart semantically.
//!
//! Correctness story: memo keys are hashes, so two different projections
//! could in principle collide. Debug builds re-expand on every hit and
//! assert the served expansion is structurally identical
//! ([`MemoEntry::matches_expansion`]); the differential suites in the
//! bench crate run in debug and exercise exactly that path. Eviction (FIFO
//! by first insertion, bounded capacity) only ever causes re-expansion,
//! never a wrong value.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::{Arc, Mutex};

use quickltl::Formula;
use quickstrom_protocol::{sym, ProjectionHash, Selector, Symbol};

use crate::analysis::{footprint_of_thunk, AtomFootprint};
use crate::ast::{BinOp, Span, UnOp};
use crate::compile::Ir;
use crate::error::EvalError;
use crate::eval::{
    apply_builtin, as_logical, binary_values, element_field, element_record, expand_thunk,
    index_value, lift, member, query, to_formula, unary_value, EvalCtx, Logical,
};
use crate::value::{Binding, Builtin, Env, Thunk, Value};

// ---------------------------------------------------------------------------
// Semantic atom keys
// ---------------------------------------------------------------------------

/// Hashes atoms into cross-run-stable *semantic* keys.
///
/// A [`Thunk`]'s pointer identity is stable within a run but useless
/// across runs: re-evaluating the same `let` or call rebuilds the same
/// environment frames at fresh addresses. The keyer therefore hashes the
/// IR node by address (evaluation only ever reuses compiled `Arc<Ir>`
/// nodes, never allocates new ones, so the address *is* the code) and the
/// environment chain by content: eager bindings hash their value
/// structurally, deferred bindings hash their captured code-plus-chain.
///
/// Environment-content hashes are memoized per frame address, which makes
/// the compile-time "snapshot" environments (every top-level item captures
/// a copy of the globals defined before it) linear to hash instead of
/// exponential. The cache is only sound while the hashed frames stay
/// alive, so the keyer's owner must pin every keyed thunk for the keyer's
/// lifetime — the checker's per-run atom-info table does exactly that.
#[derive(Debug, Default)]
pub struct AtomKeyer {
    env_hashes: HashMap<usize, u64>,
}

impl AtomKeyer {
    /// A fresh keyer with an empty environment-hash cache.
    #[must_use]
    pub fn new() -> AtomKeyer {
        AtomKeyer::default()
    }

    /// The semantic key of one atom. Deterministic within a process for
    /// live thunks; equal for thunks with the same code and
    /// content-equal environment chains.
    pub fn key(&mut self, thunk: &Thunk) -> u64 {
        let mut h = ProjectionHash::new();
        self.feed_thunk(&mut h, thunk);
        h.finish()
    }

    fn feed_thunk(&mut self, h: &mut ProjectionHash, thunk: &Thunk) {
        h.term(Arc::as_ptr(&thunk.ir) as usize as u64);
        let env_hash = self.env_hash(&thunk.env);
        h.term(env_hash);
    }

    fn env_hash(&mut self, env: &Env) -> u64 {
        let ptr = env.ptr_id();
        if ptr == 0 {
            return 0;
        }
        if let Some(&cached) = self.env_hashes.get(&ptr) {
            return cached;
        }
        // In-progress sentinel: environments are acyclic by construction
        // (frames only reference values created before them), but if a
        // cycle ever appeared this degrades to pointer hashing instead of
        // recursing forever.
        self.env_hashes.insert(ptr, (ptr as u64) | 1);
        let mut h = ProjectionHash::new();
        if let Some((slots, parent)) = env.split_top() {
            h.term(slots.len() as u64);
            for binding in slots {
                match binding {
                    Binding::Eager(v) => {
                        h.flag(false);
                        self.feed_value(&mut h, v);
                    }
                    Binding::Deferred(t) => {
                        h.flag(true);
                        self.feed_thunk(&mut h, t);
                    }
                }
            }
            let parent_hash = self.env_hash(parent);
            h.term(parent_hash);
        }
        let out = h.finish();
        self.env_hashes.insert(ptr, out);
        out
    }

    #[allow(clippy::cast_sign_loss)]
    fn feed_value(&mut self, h: &mut ProjectionHash, v: &Value) {
        match v {
            Value::Null => h.term(0x10),
            Value::Bool(b) => {
                h.term(0x11);
                h.flag(*b);
            }
            Value::Int(n) => {
                h.term(0x12);
                h.term(*n as u64);
            }
            Value::Float(x) => {
                h.term(0x13);
                h.term(x.to_bits());
            }
            Value::Str(s) => {
                h.term(0x14);
                h.text(s);
            }
            Value::List(items) => {
                h.term(0x15);
                h.term(items.len() as u64);
                for item in items.iter() {
                    self.feed_value(h, item);
                }
            }
            Value::Record(fields) => {
                h.term(0x16);
                h.term(fields.len() as u64);
                for (key, value) in fields.iter() {
                    h.text(key.as_str());
                    self.feed_value(h, value);
                }
            }
            Value::Selector(sel) => {
                h.term(0x17);
                h.text(sel.as_str());
            }
            Value::Formula(f) => {
                h.term(0x18);
                self.feed_formula(h, f);
            }
            Value::Closure(c) => {
                h.term(0x19);
                h.term(Arc::as_ptr(&c.body) as usize as u64);
                let env_hash = self.env_hash(&c.env);
                h.term(env_hash);
            }
            Value::Builtin(b) => {
                h.term(0x1A);
                h.text(b.name());
            }
            Value::Action(a) => {
                h.term(0x1B);
                h.text(a.name.as_deref().unwrap_or(""));
                h.text(
                    &a.kind
                        .as_ref()
                        .map_or_else(String::new, |k| format!("{k:?}")),
                );
                h.text(a.selector.as_ref().map_or("", Selector::as_str));
                h.term(a.timeout_ms.map_or(u64::MAX, |t| t));
                h.flag(a.event);
                match &a.guard {
                    None => h.flag(false),
                    Some(g) => {
                        h.flag(true);
                        self.feed_thunk(h, g);
                    }
                }
            }
        }
    }

    fn feed_formula(&mut self, h: &mut ProjectionHash, f: &Formula<Thunk>) {
        match f {
            Formula::Top => h.term(0x20),
            Formula::Bottom => h.term(0x21),
            Formula::Atom(t) => {
                h.term(0x22);
                self.feed_thunk(h, t);
            }
            Formula::Not(a) => {
                h.term(0x23);
                self.feed_formula(h, a);
            }
            Formula::And(a, b) => {
                h.term(0x24);
                self.feed_formula(h, a);
                self.feed_formula(h, b);
            }
            Formula::Or(a, b) => {
                h.term(0x25);
                self.feed_formula(h, a);
                self.feed_formula(h, b);
            }
            Formula::Next(a) => {
                h.term(0x26);
                self.feed_formula(h, a);
            }
            Formula::WeakNext(a) => {
                h.term(0x27);
                self.feed_formula(h, a);
            }
            Formula::StrongNext(a) => {
                h.term(0x28);
                self.feed_formula(h, a);
            }
            Formula::Always(d, a) => {
                h.term(0x29);
                h.term(u64::from(d.0));
                self.feed_formula(h, a);
            }
            Formula::Eventually(d, a) => {
                h.term(0x2A);
                h.term(u64::from(d.0));
                self.feed_formula(h, a);
            }
            Formula::Until(d, a, b) => {
                h.term(0x2B);
                h.term(u64::from(d.0));
                self.feed_formula(h, a);
                self.feed_formula(h, b);
            }
            Formula::Release(d, a, b) => {
                h.term(0x2C);
                h.term(u64::from(d.0));
                self.feed_formula(h, a);
                self.feed_formula(h, b);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Compiled atom evaluators
// ---------------------------------------------------------------------------

/// A closed, closure-free expression compiled from an atom's IR: variable
/// references are resolved through the captured environment at compile
/// time, selector projections become pre-resolved snapshot-slot reads, and
/// operators evaluate through the same value-level kernels as the generic
/// interpreter.
#[derive(Debug)]
pub enum CompiledExpr {
    /// A pre-resolved constant (literal, or an eager binding's value).
    Const(Value),
    /// The `happened` state variable.
    Happened,
    /// `` `sel`.count `` — a pre-resolved element-count read.
    QueryCount(Selector, Span),
    /// `` `sel`.present `` — a pre-resolved presence read.
    QueryPresent(Selector, Span),
    /// `` `sel`.all `` — every matched element as a record.
    QueryAll(Selector, Span),
    /// `` `sel`.field `` — a first-element projection (`Null` when the
    /// selector matches nothing).
    QueryField(Selector, Symbol, Span),
    /// `obj.field` on a computed base (record chains, null-lenient).
    Member {
        /// Base expression.
        obj: Box<CompiledExpr>,
        /// Interned field name.
        field: Symbol,
        /// Location, for error parity with the interpreter.
        span: Span,
    },
    /// `xs[i]`.
    Index {
        /// Collection expression.
        obj: Box<CompiledExpr>,
        /// Index expression.
        index: Box<CompiledExpr>,
        /// Location.
        span: Span,
    },
    /// `[a, b, c]`.
    Array(Vec<CompiledExpr>),
    /// A first-order builtin call with pre-resolved callee.
    Call {
        /// The builtin (never higher-order; arity checked at compile time).
        builtin: Builtin,
        /// Argument expressions, in order.
        args: Vec<CompiledExpr>,
    },
    /// Unary operator application.
    Unary {
        /// The operator.
        op: UnOp,
        /// Operand.
        expr: Box<CompiledExpr>,
        /// Location.
        span: Span,
    },
    /// A short-circuiting logical operator (`&&`, `||`, `==>`), with
    /// boolean lifting exactly as in the interpreter.
    Logic {
        /// The operator (only `And`/`Or`/`Implies`).
        op: BinOp,
        /// Left operand.
        lhs: Box<CompiledExpr>,
        /// Right operand.
        rhs: Box<CompiledExpr>,
        /// Left operand's source span (for lifting errors).
        lhs_span: Span,
        /// Right operand's source span.
        rhs_span: Span,
    },
    /// A non-short-circuiting binary operator (comparisons, `in`,
    /// arithmetic).
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<CompiledExpr>,
        /// Right operand.
        rhs: Box<CompiledExpr>,
        /// Location.
        span: Span,
    },
    /// `if c { … } else { … }`.
    If {
        /// Condition (must evaluate to a plain boolean).
        cond: Box<CompiledExpr>,
        /// Then branch.
        then_branch: Box<CompiledExpr>,
        /// Else branch.
        else_branch: Box<CompiledExpr>,
        /// Location.
        span: Span,
    },
}

impl CompiledExpr {
    /// Evaluates the compiled expression against a state.
    ///
    /// # Errors
    ///
    /// Exactly the errors the generic interpreter produces for the same
    /// source expression — both paths share the value-level kernels.
    pub fn eval(&self, ctx: &EvalCtx<'_>) -> Result<Value, EvalError> {
        match self {
            CompiledExpr::Const(v) => Ok(v.clone()),
            CompiledExpr::Happened => {
                let state = ctx.state()?;
                Ok(Value::list(
                    state
                        .happened
                        .iter()
                        .map(|h| Value::str(h.as_str()))
                        .collect(),
                ))
            }
            CompiledExpr::QueryCount(sel, span) => {
                let elements = query(ctx, sel, *span)?;
                Ok(Value::Int(
                    i64::try_from(elements.len()).unwrap_or(i64::MAX),
                ))
            }
            CompiledExpr::QueryPresent(sel, span) => {
                let elements = query(ctx, sel, *span)?;
                Ok(Value::Bool(!elements.is_empty()))
            }
            CompiledExpr::QueryAll(sel, span) => {
                let elements = query(ctx, sel, *span)?;
                Ok(Value::list(elements.iter().map(element_record).collect()))
            }
            CompiledExpr::QueryField(sel, field, span) => {
                let elements = query(ctx, sel, *span)?;
                match elements.first() {
                    None => Ok(Value::Null),
                    Some(first) => element_field(first, *field).ok_or_else(|| {
                        EvalError::at(*span, format!("unknown element projection `.{field}`"))
                    }),
                }
            }
            CompiledExpr::Member { obj, field, span } => {
                let base = obj.eval(ctx)?;
                member(base, *field, ctx, *span)
            }
            CompiledExpr::Index { obj, index, span } => {
                let base = obj.eval(ctx)?;
                let idx = index.eval(ctx)?;
                index_value(base, idx, ctx, *span)
            }
            CompiledExpr::Array(items) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    // No function check: the compiler rejects function
                    // constants, and no compiled node evaluates to one.
                    out.push(item.eval(ctx)?);
                }
                Ok(Value::list(out))
            }
            CompiledExpr::Call { builtin, args } => {
                let mut values = Vec::with_capacity(args.len());
                for arg in args {
                    values.push(arg.eval(ctx)?);
                }
                apply_builtin(*builtin, values, ctx)
            }
            CompiledExpr::Unary { op, expr, span } => {
                let v = expr.eval(ctx)?;
                unary_value(*op, v, *span)
            }
            CompiledExpr::Logic {
                op,
                lhs,
                rhs,
                lhs_span,
                rhs_span,
            } => {
                let l = as_logical(lhs.eval(ctx)?, *lhs_span)?;
                match (op, l) {
                    // Short circuit: the right operand is not evaluated.
                    (BinOp::And, Logical::Plain(false)) => Ok(Value::Bool(false)),
                    (BinOp::Or, Logical::Plain(true)) => Ok(Value::Bool(true)),
                    (BinOp::Implies, Logical::Plain(false)) => Ok(Value::Bool(true)),
                    (_, Logical::Plain(_)) => {
                        let r = as_logical(rhs.eval(ctx)?, *rhs_span)?;
                        Ok(match r {
                            Logical::Plain(b) => Value::Bool(b),
                            Logical::Lifted(f) => Value::Formula(f),
                        })
                    }
                    (_, Logical::Lifted(f)) => {
                        let r = lift(as_logical(rhs.eval(ctx)?, *rhs_span)?);
                        Ok(Value::Formula(match op {
                            BinOp::And => f.and(r),
                            BinOp::Or => f.or(r),
                            BinOp::Implies => f.implies(r),
                            _ => unreachable!("logic ops only"),
                        }))
                    }
                }
            }
            CompiledExpr::Binary { op, lhs, rhs, span } => {
                let l = lhs.eval(ctx)?;
                let r = rhs.eval(ctx)?;
                binary_values(*op, l, r, *span)
            }
            CompiledExpr::If {
                cond,
                then_branch,
                else_branch,
                span,
            } => {
                let c = cond.eval(ctx)?;
                match c {
                    Value::Bool(true) => then_branch.eval(ctx),
                    Value::Bool(false) => else_branch.eval(ctx),
                    Value::Formula(_) => Err(EvalError::at(
                        *span,
                        "a temporal formula cannot be an `if` condition — conditions \
                         are evaluated at a single state",
                    )),
                    other => Err(EvalError::at(
                        *span,
                        format!(
                            "`if` condition must be a boolean, got {}",
                            other.type_name()
                        ),
                    )),
                }
            }
        }
    }
}

/// The result of [`compile_atom`]: a specialized evaluator when the atom's
/// IR fits the compiled subset, the generic interpreter otherwise.
#[derive(Debug)]
pub enum CompiledAtom {
    /// The atom lowered to a closure-free [`CompiledExpr`].
    Fast(CompiledExpr),
    /// Shapes the lowering does not cover (temporal operators, `let`,
    /// closure calls, higher-order builtins): evaluate through
    /// [`crate::eval::expand_thunk`].
    Generic,
}

impl CompiledAtom {
    /// `true` when the atom compiled to the fast path.
    #[must_use]
    pub fn is_fast(&self) -> bool {
        matches!(self, CompiledAtom::Fast(_))
    }

    /// Expands the atom at the current state, through whichever evaluator
    /// applies.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors and non-logical results, identically
    /// on both paths.
    pub fn expand(&self, thunk: &Thunk, ctx: &EvalCtx<'_>) -> Result<Formula<Thunk>, EvalError> {
        match self {
            CompiledAtom::Fast(expr) => to_formula(expr.eval(ctx)?),
            CompiledAtom::Generic => expand_thunk(thunk, ctx),
        }
    }
}

/// Deferred-binding inlining depth cap — keeps compilation linear even for
/// deeply chained `let ~a = ~b; let ~b = …` definitions.
const MAX_COMPILE_DEPTH: u32 = 64;

/// Lowers one atom to a [`CompiledAtom`].
///
/// The lowering is conservative: any construct whose compiled semantics
/// could diverge from the interpreter (temporal operators, `let` frames,
/// closure calls, higher-order builtins, unresolvable bindings, function
/// or formula constants) falls back to [`CompiledAtom::Generic`].
#[must_use]
pub fn compile_atom(thunk: &Thunk) -> CompiledAtom {
    match compile_ir(&thunk.ir, &thunk.env, 0) {
        Some(expr) => CompiledAtom::Fast(expr),
        None => CompiledAtom::Generic,
    }
}

fn compile_ir(ir: &Ir, env: &Env, depth: u32) -> Option<CompiledExpr> {
    if depth > MAX_COMPILE_DEPTH {
        return None;
    }
    match ir {
        Ir::Const(v, _) => compile_const(v),
        Ir::Var { depth: d, slot, .. } => match env.get(*d, *slot)? {
            Binding::Eager(v) => compile_const(v),
            Binding::Deferred(t) => compile_ir(&t.ir, &t.env, depth + 1),
        },
        Ir::Happened(_) => Some(CompiledExpr::Happened),
        Ir::Member { obj, field, span } => {
            let base = compile_ir(obj, env, depth + 1)?;
            if let CompiledExpr::Const(Value::Selector(sel)) = &base {
                let sel = *sel;
                return Some(if *field == sym::COUNT {
                    CompiledExpr::QueryCount(sel, *span)
                } else if *field == sym::PRESENT {
                    CompiledExpr::QueryPresent(sel, *span)
                } else if *field == sym::ALL {
                    CompiledExpr::QueryAll(sel, *span)
                } else {
                    CompiledExpr::QueryField(sel, *field, *span)
                });
            }
            Some(CompiledExpr::Member {
                obj: Box::new(base),
                field: *field,
                span: *span,
            })
        }
        Ir::Index { obj, index, span } => Some(CompiledExpr::Index {
            obj: Box::new(compile_ir(obj, env, depth + 1)?),
            index: Box::new(compile_ir(index, env, depth + 1)?),
            span: *span,
        }),
        Ir::Array(items, _) => {
            let compiled = items
                .iter()
                .map(|item| compile_ir(item, env, depth + 1))
                .collect::<Option<Vec<_>>>()?;
            Some(CompiledExpr::Array(compiled))
        }
        Ir::If {
            cond,
            then_branch,
            else_branch,
            span,
        } => Some(CompiledExpr::If {
            cond: Box::new(compile_ir(cond, env, depth + 1)?),
            then_branch: Box::new(compile_ir(then_branch, env, depth + 1)?),
            else_branch: Box::new(compile_ir(else_branch, env, depth + 1)?),
            span: *span,
        }),
        Ir::Unary { op, expr, span } => Some(CompiledExpr::Unary {
            op: *op,
            expr: Box::new(compile_ir(expr, env, depth + 1)?),
            span: *span,
        }),
        Ir::Binary { op, lhs, rhs, span } => {
            let l = Box::new(compile_ir(lhs, env, depth + 1)?);
            let r = Box::new(compile_ir(rhs, env, depth + 1)?);
            Some(match op {
                BinOp::And | BinOp::Or | BinOp::Implies => CompiledExpr::Logic {
                    op: *op,
                    lhs: l,
                    rhs: r,
                    lhs_span: lhs.span(),
                    rhs_span: rhs.span(),
                },
                _ => CompiledExpr::Binary {
                    op: *op,
                    lhs: l,
                    rhs: r,
                    span: *span,
                },
            })
        }
        Ir::Call { func, args, .. } => {
            let builtin = resolve_builtin(func, env, depth + 1)?;
            // Higher-order builtins need function values (not compiled);
            // arity mismatches keep the interpreter's runtime error.
            if builtin.higher_order() || builtin.arity() != args.len() {
                return None;
            }
            let compiled = args
                .iter()
                .map(|arg| compile_ir(arg, env, depth + 1))
                .collect::<Option<Vec<_>>>()?;
            Some(CompiledExpr::Call {
                builtin,
                args: compiled,
            })
        }
        Ir::Let { .. } | Ir::Temporal { .. } | Ir::TemporalBin { .. } => None,
    }
}

fn resolve_builtin(func: &Ir, env: &Env, depth: u32) -> Option<Builtin> {
    if depth > MAX_COMPILE_DEPTH {
        return None;
    }
    match func {
        Ir::Const(Value::Builtin(b), _) => Some(*b),
        Ir::Var { depth: d, slot, .. } => match env.get(*d, *slot)? {
            Binding::Eager(Value::Builtin(b)) => Some(*b),
            Binding::Deferred(t) => resolve_builtin(&t.ir, &t.env, depth + 1),
            Binding::Eager(_) => None,
        },
        _ => None,
    }
}

/// Constants the compiled subset may carry. Functions are excluded so no
/// compiled node can ever evaluate to one (which keeps the interpreter's
/// "functions in data" checks unreachable on the fast path), and formula
/// constants are excluded because their atoms capture environments the
/// compiler does not resolve.
fn compile_const(v: &Value) -> Option<CompiledExpr> {
    fn plain_data(v: &Value) -> bool {
        match v {
            Value::Null
            | Value::Bool(_)
            | Value::Int(_)
            | Value::Float(_)
            | Value::Str(_)
            | Value::Selector(_)
            | Value::Action(_) => true,
            Value::List(items) => items.iter().all(plain_data),
            Value::Record(fields) => fields.values().all(plain_data),
            Value::Formula(_) | Value::Closure(_) | Value::Builtin(_) => false,
        }
    }
    plain_data(v).then(|| CompiledExpr::Const(v.clone()))
}

// ---------------------------------------------------------------------------
// The shared expansion memo
// ---------------------------------------------------------------------------

/// One memoized expansion: the expansion itself for stepper-style
/// consumers, plus the pre-abstracted shape (`shape[i]` refers to
/// `atoms[i]`, deduplicated by thunk identity in first-occurrence order)
/// so automaton-style consumers can build an observation without walking
/// or cloning a `Formula<Thunk>` at all. `atom` pins the source thunk,
/// keeping every address the memo key hashed alive for the entry's
/// lifetime.
#[derive(Debug)]
pub struct MemoEntry {
    /// The atom this entry was expanded from (pins its pointers).
    pub atom: Thunk,
    /// The memoized expansion.
    pub expansion: Formula<Thunk>,
    /// The expansion abstracted over its own atoms, in first-occurrence
    /// order.
    pub shape: Formula<u32>,
    /// The atoms of `expansion`, deduplicated by identity; indexed by the
    /// `shape` leaves.
    pub atoms: Vec<Thunk>,
}

impl MemoEntry {
    /// Builds an entry from a fresh expansion, abstracting the shape and
    /// deduplicating sub-atoms by identity.
    #[must_use]
    pub fn build(atom: Thunk, expansion: Formula<Thunk>) -> MemoEntry {
        let mut atoms: Vec<Thunk> = Vec::new();
        let mut ids: HashMap<(usize, usize), u32> = HashMap::new();
        let shape = expansion.clone().map_atoms(&mut |t: Thunk| {
            let identity = t.identity();
            *ids.entry(identity).or_insert_with(|| {
                atoms.push(t);
                u32::try_from(atoms.len() - 1).expect("atom count fits u32")
            })
        });
        MemoEntry {
            atom,
            expansion,
            shape,
            atoms,
        }
    }

    /// Whether a freshly computed expansion is structurally identical to
    /// this entry, modulo atom pointer identity: same shape, and
    /// pairwise-equal semantic keys for the abstracted atoms. This is the
    /// collision check behind the debug-build verify-on-hit.
    ///
    /// The comparison uses its own throwaway [`AtomKeyer`]: the pairwise
    /// check only needs key consistency *within* this call (every thunk
    /// involved is alive for its duration), and feeding `fresh`'s
    /// short-lived atoms to a longer-lived keyer would poison its
    /// per-address environment-hash cache once their frames are freed and
    /// the addresses reused.
    #[must_use]
    pub fn matches_expansion(&self, fresh: &Formula<Thunk>) -> bool {
        let mut keyer = AtomKeyer::new();
        let other = MemoEntry::build(self.atom.clone(), fresh.clone());
        if self.shape != other.shape || self.atoms.len() != other.atoms.len() {
            return false;
        }
        self.atoms
            .iter()
            .zip(&other.atoms)
            .all(|(a, b)| keyer.key(a) == keyer.key(b))
    }
}

/// A bounded, thread-shared expansion memo keyed by
/// `(semantic atom key, footprint projection hash)`.
///
/// Eviction is FIFO over first insertion, so for a fixed lookup/insert
/// sequence the contents are deterministic; under `jobs=N` the sequence
/// (and so the hit/miss counters) depends on scheduling, but a hit and a
/// miss produce semantically identical expansions, so verdicts and
/// reports do not. Re-inserting an existing key keeps the first entry
/// (the racing entries are semantically equal).
#[derive(Debug)]
pub struct AtomMemo {
    inner: Mutex<MemoInner>,
    compiled: Mutex<HashMap<u64, CompileInfo>>,
}

#[derive(Debug)]
struct MemoInner {
    map: HashMap<(u64, u64), Arc<MemoEntry>>,
    order: VecDeque<(u64, u64)>,
    capacity: usize,
}

/// The env-resolved derivations shared alongside the expansion memo: the
/// static footprint and the compiled evaluator of one semantic atom.
#[derive(Debug)]
struct CompileInfo {
    footprint: Arc<AtomFootprint>,
    compiled: Arc<CompiledAtom>,
}

impl AtomMemo {
    /// A memo bounded to `capacity` entries (at least one).
    #[must_use]
    pub fn new(capacity: usize) -> AtomMemo {
        AtomMemo {
            inner: Mutex::new(MemoInner {
                map: HashMap::new(),
                order: VecDeque::new(),
                capacity: capacity.max(1),
            }),
            compiled: Mutex::new(HashMap::new()),
        }
    }

    /// The shared derived info of the atom with semantic key `key`: its
    /// static footprint and compiled evaluator, computed on first
    /// request.
    ///
    /// Both derivations resolve variables through the atom's environment
    /// (eager bindings are inlined as constants), so they are functions
    /// of exactly what the semantic key hashes — the IR node and the
    /// environment content. Sharing them here means each distinct atom
    /// is analyzed and compiled once per property instead of once per
    /// fresh thunk identity: residual atoms allocate a fresh environment
    /// (and so a fresh identity) at every unroll, and recompiling them
    /// per identity costs more than the evaluation the memo saves. The
    /// cache is unbounded but small — one entry per distinct semantic
    /// atom, the same population the memo itself keys on.
    #[must_use]
    pub fn compile_info(&self, key: u64, thunk: &Thunk) -> (Arc<AtomFootprint>, Arc<CompiledAtom>) {
        let mut map = self.compiled.lock().expect("atom compile cache lock");
        let info = map.entry(key).or_insert_with(|| CompileInfo {
            footprint: Arc::new(footprint_of_thunk(thunk)),
            compiled: Arc::new(compile_atom(thunk)),
        });
        (Arc::clone(&info.footprint), Arc::clone(&info.compiled))
    }

    /// The entry under `key`, if present.
    #[must_use]
    pub fn lookup(&self, key: (u64, u64)) -> Option<Arc<MemoEntry>> {
        self.inner
            .lock()
            .expect("atom memo lock")
            .map
            .get(&key)
            .cloned()
    }

    /// Inserts an entry, evicting oldest-first past capacity. Returns the
    /// number of entries evicted (0 when the key was already present —
    /// the first insertion wins).
    pub fn insert(&self, key: (u64, u64), entry: MemoEntry) -> u64 {
        let mut inner = self.inner.lock().expect("atom memo lock");
        if inner.map.contains_key(&key) {
            return 0;
        }
        let mut evicted = 0;
        while inner.map.len() >= inner.capacity {
            match inner.order.pop_front() {
                Some(oldest) => {
                    if inner.map.remove(&oldest).is_some() {
                        evicted += 1;
                    }
                }
                None => break,
            }
        }
        inner.map.insert(key, Arc::new(entry));
        inner.order.push_back(key);
        evicted
    }

    /// The number of memoized expansions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("atom memo lock").map.len()
    }

    /// `true` when no expansion is memoized.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.inner.lock().expect("atom memo lock").capacity
    }
}

/// The per-specification registry of shared atom memos, keyed by
/// `(property, default demand, capacity)` — the same sharing shape as the
/// evaluation-automata registry: every run, worker, and shrink replay of
/// one property draws from (and feeds) the same memo.
#[derive(Debug, Default)]
pub struct AtomMemos {
    memos: Mutex<BTreeMap<(String, u32, usize), Arc<AtomMemo>>>,
}

impl AtomMemos {
    /// The shared memo for one property under one default demand and
    /// capacity, created on first request.
    #[must_use]
    pub fn memo(&self, property: &str, default_demand: u32, capacity: usize) -> Arc<AtomMemo> {
        let mut memos = self.memos.lock().expect("atom memo registry lock");
        Arc::clone(
            memos
                .entry((property.to_owned(), default_demand, capacity))
                .or_insert_with(|| Arc::new(AtomMemo::new(capacity))),
        )
    }

    /// How many distinct memos have been created.
    #[must_use]
    pub fn memo_count(&self) -> usize {
        self.memos.lock().expect("atom memo registry lock").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Span;
    use quickstrom_protocol::{ElementState, StateSnapshot};

    fn span() -> Span {
        Span::default()
    }

    fn eager(v: Value) -> Env {
        Env::new().push(vec![Binding::Eager(v)])
    }

    fn var(depth: u32, slot: u32) -> Arc<Ir> {
        Arc::new(Ir::Var {
            depth,
            slot,
            name: Symbol::intern("x"),
            span: span(),
        })
    }

    fn state_with(selector: &str, elements: Vec<ElementState>) -> StateSnapshot {
        let mut state = StateSnapshot::new();
        state.insert_query(Selector::new(selector), elements);
        state
    }

    fn element(text: &str) -> ElementState {
        ElementState {
            text: text.to_owned(),
            enabled: true,
            visible: true,
            ..ElementState::default()
        }
    }

    #[test]
    fn semantic_keys_ignore_frame_identity() {
        let ir = var(0, 0);
        let mut keyer = AtomKeyer::new();
        let a = Thunk::new(Arc::clone(&ir), eager(Value::Int(42)));
        let b = Thunk::new(Arc::clone(&ir), eager(Value::Int(42)));
        let c = Thunk::new(Arc::clone(&ir), eager(Value::Int(43)));
        assert_ne!(a.identity(), b.identity(), "frames are fresh allocations");
        assert_eq!(keyer.key(&a), keyer.key(&b), "content-equal environments");
        assert_ne!(keyer.key(&a), keyer.key(&c), "different bound values");
    }

    #[test]
    fn semantic_keys_distinguish_code() {
        let mut keyer = AtomKeyer::new();
        let env = eager(Value::Int(1));
        let a = Thunk::new(var(0, 0), env.clone());
        let b = Thunk::new(var(0, 0), env);
        // Two allocations of identical IR are distinct code to the keyer —
        // that only costs sharing, never correctness.
        assert_ne!(keyer.key(&a), keyer.key(&b));
    }

    #[test]
    fn semantic_keys_hash_deferred_bindings_structurally() {
        let ir = var(0, 0);
        let inner = var(1, 0);
        let mut keyer = AtomKeyer::new();
        let deferred = |n: i64| {
            Env::new().push(vec![Binding::Deferred(Thunk::new(
                Arc::clone(&inner),
                eager(Value::Int(n)),
            ))])
        };
        let a = Thunk::new(Arc::clone(&ir), deferred(7));
        let b = Thunk::new(Arc::clone(&ir), deferred(7));
        let c = Thunk::new(Arc::clone(&ir), deferred(8));
        assert_eq!(keyer.key(&a), keyer.key(&b));
        assert_ne!(keyer.key(&a), keyer.key(&c));
    }

    #[test]
    fn compiled_projection_comparison_matches_interpreter() {
        // `#status`.text == "ok"
        let sel = Value::Selector(Selector::new("#status"));
        let ir: Arc<Ir> = Arc::new(Ir::Binary {
            op: BinOp::Eq,
            lhs: Arc::new(Ir::Member {
                obj: Arc::new(Ir::Const(sel, span())),
                field: sym::TEXT,
                span: span(),
            }),
            rhs: Arc::new(Ir::Const(Value::str("ok"), span())),
            span: span(),
        });
        let thunk = Thunk::new(ir, Env::new());
        let compiled = compile_atom(&thunk);
        assert!(compiled.is_fast());

        for text in ["ok", "nope"] {
            let state = state_with("#status", vec![element(text)]);
            let ctx = EvalCtx::with_state(&state, 100);
            let fast = compiled.expand(&thunk, &ctx).unwrap();
            let generic = expand_thunk(&thunk, &ctx).unwrap();
            assert_eq!(fast, generic, "text = {text:?}");
        }
        // Missing element: null-lenient comparison on both paths.
        let state = state_with("#status", vec![]);
        let ctx = EvalCtx::with_state(&state, 100);
        assert_eq!(
            compiled.expand(&thunk, &ctx).unwrap(),
            expand_thunk(&thunk, &ctx).unwrap()
        );
    }

    #[test]
    fn compiled_builtin_call_matches_interpreter() {
        // parseInt(`#counter`.text) > 3, with the builtin resolved through
        // an eager environment binding like the global frame provides.
        let env = eager(Value::Builtin(Builtin::ParseInt));
        let ir: Arc<Ir> = Arc::new(Ir::Binary {
            op: BinOp::Gt,
            lhs: Arc::new(Ir::Call {
                func: var(0, 0),
                args: vec![Arc::new(Ir::Member {
                    obj: Arc::new(Ir::Const(
                        Value::Selector(Selector::new("#counter")),
                        span(),
                    )),
                    field: sym::TEXT,
                    span: span(),
                })],
                span: span(),
            }),
            rhs: Arc::new(Ir::Const(Value::Int(3), span())),
            span: span(),
        });
        let thunk = Thunk::new(ir, env);
        let compiled = compile_atom(&thunk);
        assert!(compiled.is_fast());
        for text in ["2", "12", "not a number"] {
            let state = state_with("#counter", vec![element(text)]);
            let ctx = EvalCtx::with_state(&state, 100);
            assert_eq!(
                compiled.expand(&thunk, &ctx).unwrap(),
                expand_thunk(&thunk, &ctx).unwrap(),
                "text = {text:?}"
            );
        }
    }

    #[test]
    fn temporal_and_let_shapes_fall_back_to_generic() {
        let body = Arc::new(Ir::Const(Value::Bool(true), span()));
        let temporal = Thunk::new(
            Arc::new(Ir::Temporal {
                op: crate::ast::TemporalOp::Always,
                demand: Some(3),
                body: Arc::clone(&body),
                span: span(),
            }),
            Env::new(),
        );
        assert!(!compile_atom(&temporal).is_fast());

        let let_ir = Thunk::new(
            Arc::new(Ir::Let {
                name: Symbol::intern("v"),
                deferred: false,
                value: Arc::clone(&body),
                body,
                span: span(),
            }),
            Env::new(),
        );
        assert!(!compile_atom(&let_ir).is_fast());
    }

    #[test]
    fn memo_entry_shape_deduplicates_atoms_by_identity() {
        let shared = Thunk::new(var(0, 0), eager(Value::Int(1)));
        let other = Thunk::new(var(0, 0), eager(Value::Int(2)));
        let expansion = Formula::Atom(shared.clone())
            .and(Formula::Atom(other.clone()).and(Formula::Atom(shared.clone())));
        let entry = MemoEntry::build(shared.clone(), expansion.clone());
        assert_eq!(entry.atoms.len(), 2, "pointer-equal atoms share one slot");
        assert_eq!(
            entry.shape,
            Formula::Atom(0u32).and(Formula::Atom(1u32).and(Formula::Atom(0u32)))
        );
        assert!(entry.matches_expansion(&expansion));
        let different = Formula::Atom(other).and(Formula::Atom(shared));
        assert!(!entry.matches_expansion(&different));
    }

    #[test]
    fn memo_eviction_is_fifo_and_bounded() {
        let memo = AtomMemo::new(2);
        let entry = || {
            let t = Thunk::new(var(0, 0), Env::new());
            MemoEntry::build(t, Formula::Top)
        };
        assert_eq!(memo.insert((1, 1), entry()), 0);
        assert_eq!(memo.insert((2, 2), entry()), 0);
        assert_eq!(memo.insert((1, 1), entry()), 0, "re-insert keeps first");
        assert_eq!(memo.len(), 2);
        assert_eq!(memo.insert((3, 3), entry()), 1, "oldest evicted");
        assert!(memo.lookup((1, 1)).is_none(), "(1,1) was first in");
        assert!(memo.lookup((2, 2)).is_some());
        assert!(memo.lookup((3, 3)).is_some());
    }

    #[test]
    fn memo_registry_shares_by_property_demand_and_capacity() {
        let memos = AtomMemos::default();
        let a = memos.memo("safety", 100, 1024);
        let b = memos.memo("safety", 100, 1024);
        let c = memos.memo("safety", 50, 1024);
        let d = memos.memo("liveness", 100, 1024);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert!(!Arc::ptr_eq(&a, &d));
        assert_eq!(memos.memo_count(), 3);
    }
}
