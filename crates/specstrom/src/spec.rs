//! Compilation: from a parsed [`Spec`] to a checkable [`CompiledSpec`].
//!
//! Compilation runs the sort checker, then the lowering pass of
//! [`mod@crate::compile`] (interning names, resolving every variable reference
//! to a `(depth, slot)` coordinate), builds the top-level environment as a
//! single slot-indexed global frame (evaluating eager bindings at
//! definition time, capturing deferred ones as compiled thunks), registers
//! actions/events with their guards and timeouts, resolves `check` items,
//! and runs the §3.3 dependency analysis.
//!
//! The global frame grows item by item; each captured environment (a
//! deferred `let`, a closure, an action guard) snapshots the prefix of the
//! frame visible at its definition, which is exactly the set of slots its
//! compiled code can reference — Specstrom has no forward references, so
//! the snapshot is always sufficient.

use crate::analysis;
use crate::ast::{Item, Spec};
use crate::compile::{self, Resolver};
use crate::error::{EvalError, SpecError};
use crate::eval::{self, EvalCtx};
use crate::parser::parse_spec;
use crate::sorts;
use crate::value::{ActionValue, Binding, Env, Thunk, Value};
use quickltl::{Formula, StateId, TransitionTable};
use quickstrom_protocol::{Selector, Symbol};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

/// A resolved `check` command: which properties to test, with which
/// allowable actions and events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckDef {
    /// Property names (bindings in the compiled environment).
    pub properties: Vec<String>,
    /// Names of user actions (`…!`) the checker may perform.
    pub actions: Vec<String>,
    /// Names of events (`…?`) the checker should recognise.
    pub events: Vec<String>,
}

/// A compiled, checkable specification.
///
/// Everything inside is immutable and `Arc`-shared, so one `CompiledSpec`
/// is shared by every worker of the parallel runtime, and all of them
/// address the same interned symbols (there is one process-global
/// interner; see [`quickstrom_protocol::Symbol`]).
#[derive(Debug)]
pub struct CompiledSpec {
    /// The sealed top-level environment: one frame holding builtins plus
    /// every item binding, addressed by slot.
    pub env: Env,
    /// The names of the global slots, in slot order (used to resolve
    /// property names handed to [`CompiledSpec::property_thunk`]).
    global_names: Vec<Symbol>,
    /// Declared actions and events by name.
    pub actions: BTreeMap<String, Arc<ActionValue>>,
    /// The resolved `check` commands, in source order.
    pub checks: Vec<CheckDef>,
    /// Every selector the specification can query (§3.3 analysis) — the
    /// `Start` message's dependency list.
    pub dependencies: Vec<Selector>,
    /// The static analysis of the compiled spec: per-property atoms and
    /// temporal skeletons, per-selector field masks, and skeleton-level
    /// diagnostics. See [`analysis::analyze_compiled`].
    pub analysis: analysis::SpecAnalysis,
    /// Lazily built evaluation automata for the spec's properties,
    /// shared across every run (and worker) that checks the same
    /// property. See [`SpecAutomata`].
    pub automata: SpecAutomata,
    /// Value-keyed atom expansion memos, shared across every run (and
    /// worker, and shrink replay) that checks the same property. See
    /// [`crate::atomc::AtomMemos`].
    pub atom_memos: crate::atomc::AtomMemos,
    /// Whole-transition step memos keyed by (automaton state, bindings
    /// signature, state-value signature), shared like the automata and
    /// atom memos. See [`StepMemos`].
    pub step_memos: StepMemos,
}

/// The per-spec registry of memoized LTL evaluation automata
/// ([`quickltl::TransitionTable`]).
///
/// One table is kept per `(property, default demand, state cap)` triple:
/// the demand changes the formulae `~` thunks expand to, and the cap is
/// part of the table's fallback contract, so neither may share states
/// with the other. Tables start from the canonical one-atom state
/// `Atom(0)` — the whole property as a single expanding atom — and grow
/// as runs encounter new residual shapes; because transitions are pure
/// functions of (state, observation shapes), sharing across concurrent
/// runs never changes a verdict, only who pays for a miss.
#[derive(Debug, Default)]
pub struct SpecAutomata {
    tables: Mutex<BTreeMap<TableKey, Arc<Mutex<TransitionTable>>>>,
}

/// The registry key: `(property name, default demand, state cap)`.
type TableKey = (String, u32, usize);

impl SpecAutomata {
    /// The shared transition table for a property at a given default
    /// demand and state cap, creating it on first request.
    #[must_use]
    pub fn table(
        &self,
        property: &str,
        default_demand: u32,
        state_cap: usize,
    ) -> Arc<Mutex<TransitionTable>> {
        let mut tables = self.tables.lock().expect("automata registry lock");
        Arc::clone(
            tables
                .entry((property.to_owned(), default_demand, state_cap))
                .or_insert_with(|| {
                    Arc::new(Mutex::new(TransitionTable::new(
                        Formula::Atom(0),
                        state_cap,
                    )))
                }),
        )
    }

    /// The number of distinct tables built so far.
    #[must_use]
    pub fn table_count(&self) -> usize {
        self.tables.lock().expect("automata registry lock").len()
    }
}

/// The per-spec registry of whole-transition step memos, one per
/// `(property, default demand, state cap)` triple — the same key that
/// selects the [`TransitionTable`] whose [`StateId`]s the memo entries
/// refer to.
///
/// See [`StepMemo`] for the cache itself and its soundness contract.
#[derive(Debug, Default)]
pub struct StepMemos {
    memos: Mutex<BTreeMap<TableKey, Arc<StepMemo>>>,
}

impl StepMemos {
    /// The shared step memo for a property at a given default demand and
    /// state cap, creating it on first request.
    ///
    /// The memo's state-value signature footprint is the union of the
    /// property's atom footprints from `analysis`; if the property was
    /// not analysed (no skeleton), the footprint degrades to every
    /// spec-observable selector with all fields plus the event list —
    /// still sound, merely a coarser signature.
    #[must_use]
    pub fn memo(
        &self,
        property: &str,
        default_demand: u32,
        state_cap: usize,
        analysis: &analysis::SpecAnalysis,
    ) -> Arc<StepMemo> {
        let mut memos = self.memos.lock().expect("step memo registry lock");
        Arc::clone(
            memos
                .entry((property.to_owned(), default_demand, state_cap))
                .or_insert_with(|| Arc::new(StepMemo::new(property_footprint(property, analysis)))),
        )
    }
}

/// The union footprint of a property's atoms (what its evaluation can
/// read from a state), falling back to "everything the spec observes"
/// when the property has no analysis entry.
fn property_footprint(
    property: &str,
    analysis: &analysis::SpecAnalysis,
) -> analysis::AtomFootprint {
    if let Some(prop) = analysis.properties.iter().find(|p| p.name == property) {
        let mut footprint = analysis::AtomFootprint::default();
        for atom in &prop.atoms {
            footprint.merge(&atom.footprint);
        }
        return footprint;
    }
    let mut footprint = analysis::AtomFootprint {
        reads_happened: true,
        ..analysis::AtomFootprint::default()
    };
    for &sel in analysis.masks.keys() {
        footprint.selectors.insert(
            sel,
            analysis::SelectorUse {
                all_fields: true,
                ..analysis::SelectorUse::default()
            },
        );
    }
    footprint
}

/// Where a memoized automaton step lands.
#[derive(Debug, Clone)]
pub enum StepNext {
    /// The step produced a definitive verdict.
    Done(bool),
    /// The step moved to `state` carrying `bindings`.
    Goto {
        /// The successor automaton state.
        state: StateId,
        /// The presumptive verdict if the trace ended here.
        presumptive: Option<bool>,
        /// The successor state's atom bindings. These are the thunks the
        /// original transition produced; for a later run replaying this
        /// entry they are *semantically equal* stand-ins for the thunks
        /// it would have built itself (atom expansion is pure, and the
        /// signature keys are content-based), so every downstream
        /// observation is identical.
        bindings: Vec<Thunk>,
        /// The bindings signature of `bindings`, so a replaying run can
        /// chain lookups without re-keying the thunks.
        bindings_sig: u64,
    },
}

/// One memoized automaton transition.
#[derive(Debug)]
pub struct StepEntry {
    /// Where the step lands.
    pub next: StepNext,
    /// How many atom expansion requests the original transition issued
    /// (its whole observation BFS). Replaying runs add this to their
    /// expansion counters so the counters stay exactly what an unmemoized
    /// engine would have reported.
    pub expansions: u64,
}

/// A whole-transition memo for one evaluation automaton: from a key
/// `(automaton state, bindings signature, state-value signature)` straight
/// to the transition's outcome, skipping atom expansion, observation, and
/// the table step entirely.
///
/// Soundness: an automaton transition is a pure function of the state's
/// formula residual (determined by the [`StateId`] and the concrete atom
/// bindings) and the observed state restricted to the property's
/// footprint. The bindings signature hashes the bindings' content-based
/// atom keys ([`crate::atomc::AtomKeyer`]) and the state-value signature
/// hashes exactly the footprint's masked projections, so key equality
/// implies the transition — and every atom-expansion delta it would
/// generate — is identical. The one observable a replay does *not*
/// reproduce bit-for-bit is the table hit/miss split: the structural
/// observation an unmemoized step would build here can differ (thunk
/// sharing shifts with atom-cache warmth) while simplifying to the same
/// interned successor, so replays may count slightly more table hits.
#[derive(Debug)]
pub struct StepMemo {
    /// The property's union atom footprint: which masked selector
    /// projections (and whether the event list) feed the state-value
    /// signature.
    pub footprint: analysis::AtomFootprint,
    entries: Mutex<HashMap<(StateId, u64, u64), Arc<StepEntry>>>,
}

/// Stop memoizing new transitions past this many entries (the memo keeps
/// serving hits). Entries are small; real traces saturate long before
/// this — the cap only bounds adversarial state spaces.
const STEP_MEMO_CAPACITY: usize = 1 << 20;

impl StepMemo {
    fn new(footprint: analysis::AtomFootprint) -> Self {
        StepMemo {
            footprint,
            entries: Mutex::new(HashMap::new()),
        }
    }

    /// The memoized transition for a key, if any.
    #[must_use]
    pub fn lookup(&self, key: (StateId, u64, u64)) -> Option<Arc<StepEntry>> {
        self.entries
            .lock()
            .expect("step memo lock")
            .get(&key)
            .cloned()
    }

    /// Records a transition, unless the memo is at capacity.
    pub fn insert(&self, key: (StateId, u64, u64), entry: StepEntry) {
        let mut entries = self.entries.lock().expect("step memo lock");
        if entries.len() < STEP_MEMO_CAPACITY {
            entries.insert(key, Arc::new(entry));
        }
    }

    /// The number of memoized transitions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.lock().expect("step memo lock").len()
    }

    /// Whether the memo is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl CompiledSpec {
    /// A thunk that evaluates the named top-level binding — the property
    /// formula handed to the checker.
    ///
    /// Works uniformly for deferred and eager bindings by evaluating a
    /// synthetic, slot-resolved variable reference in the sealed global
    /// environment.
    #[must_use]
    pub fn property_thunk(&self, name: &str) -> Option<Thunk> {
        let sym = Symbol::lookup(name)?;
        let slot = self.global_names.iter().rposition(|&n| n == sym)?;
        let ir = Arc::new(compile::Ir::Var {
            depth: 0,
            slot: u32::try_from(slot).expect("slot fits u32"),
            name: sym,
            span: crate::ast::Span::default(),
        });
        Some(Thunk::new(ir, self.env.clone()))
    }

    /// The declared action/event with the given name.
    #[must_use]
    pub fn action(&self, name: &str) -> Option<&Arc<ActionValue>> {
        self.actions.get(name)
    }
}

fn eval_error(e: EvalError, fallback: crate::ast::Span) -> SpecError {
    SpecError::at(e.span.unwrap_or(fallback), e.message)
}

/// Compiles a parsed specification.
///
/// # Errors
///
/// Returns sort errors, definition-time evaluation errors (e.g. an eager
/// top-level binding that queries state), malformed action declarations,
/// and unresolved `check` names.
#[allow(clippy::too_many_lines)]
pub fn compile(spec: &Spec) -> Result<CompiledSpec, SpecError> {
    sorts::check_spec(spec)?;
    let (mut names, mut globals) = compile::initial_globals();
    let mut resolver = Resolver::new(names.clone());
    let mut actions: BTreeMap<String, Arc<ActionValue>> = BTreeMap::new();
    let mut checks_raw = Vec::new();
    // Definition-time evaluation is stateless: anything touching the state
    // must be deferred with `~` (the evaluator's error explains this).
    let ctx = EvalCtx::stateless(0);
    // The environment visible to item `k` is the global frame truncated to
    // the slots defined before `k`; `snapshot` rebuilds it after each item.
    let snapshot = |globals: &Vec<Binding>| Env::new().push(globals.clone());
    let mut env = snapshot(&globals);

    for item in &spec.items {
        match item {
            Item::Let(stmt) => {
                let ir = compile::lower(&stmt.value, &mut resolver)?;
                let binding = if stmt.deferred {
                    Binding::Deferred(Thunk::new(ir, env.clone()))
                } else {
                    Binding::Eager(
                        eval::eval(&ir, &env, &ctx).map_err(|e| eval_error(e, stmt.span))?,
                    )
                };
                let name = Symbol::intern(&stmt.name);
                resolver.define_global(name);
                names.push(name);
                globals.push(binding);
                env = snapshot(&globals);
            }
            Item::Fun {
                name, params, body, ..
            } => {
                let slot_params = compile::lower_params(params);
                resolver.push_scope(slot_params.iter().map(|p| p.name).collect());
                let body_ir = compile::lower(body, &mut resolver);
                resolver.pop_scope();
                let name_sym = Symbol::intern(name);
                let closure = eval::make_closure(name_sym, slot_params, body_ir?, env.clone());
                resolver.define_global(name_sym);
                names.push(name_sym);
                globals.push(Binding::Eager(closure));
                env = snapshot(&globals);
            }
            Item::Action {
                name,
                body,
                timeout,
                guard,
                span,
            } => {
                let body_ir = compile::lower(body, &mut resolver)?;
                let base = eval::eval(&body_ir, &env, &ctx).map_err(|e| eval_error(e, *span))?;
                let Value::Action(base) = base else {
                    return Err(SpecError::at(
                        *span,
                        format!(
                            "action `{name}` must be built from a primitive action \
                             (click!, noop!, changed?, …), got {}",
                            base.type_name()
                        ),
                    ));
                };
                let is_event = name.ends_with('?');
                if is_event != base.event {
                    return Err(SpecError::at(
                        *span,
                        format!(
                            "`{name}` mixes conventions: `?` names must be events \
                             (changed?), `!` names must be user actions (click!, noop!, …)"
                        ),
                    ));
                }
                let timeout_ms = match timeout {
                    None => base.timeout_ms,
                    Some(t) => {
                        let t_ir = compile::lower(t, &mut resolver)?;
                        let v =
                            eval::eval(&t_ir, &env, &ctx).map_err(|e| eval_error(e, t.span()))?;
                        match v {
                            Value::Int(ms) if ms >= 0 => {
                                Some(u64::try_from(ms).expect("non-negative"))
                            }
                            other => {
                                return Err(SpecError::at(
                                    t.span(),
                                    format!(
                                        "timeout must be a non-negative integer \
                                         (milliseconds), got {}",
                                        other.type_name()
                                    ),
                                ))
                            }
                        }
                    }
                };
                let guard_thunk = match guard {
                    None => None,
                    Some(g) => Some(Thunk::new(compile::lower(g, &mut resolver)?, env.clone())),
                };
                let value = Arc::new(ActionValue {
                    name: Some(name.clone()),
                    kind: base.kind.clone(),
                    selector: base.selector,
                    timeout_ms,
                    guard: guard_thunk,
                    event: is_event,
                });
                actions.insert(name.clone(), Arc::clone(&value));
                let name_sym = Symbol::intern(name);
                resolver.define_global(name_sym);
                names.push(name_sym);
                globals.push(Binding::Eager(Value::Action(value)));
                env = snapshot(&globals);
            }
            Item::Check {
                properties,
                with_actions,
                span,
            } => {
                checks_raw.push((properties.clone(), with_actions.clone(), *span));
            }
        }
    }

    let mut checks = Vec::with_capacity(checks_raw.len());
    for (properties, with_actions, span) in checks_raw {
        let check_names: Vec<String> = match with_actions {
            Some(check_names) => check_names,
            None => actions.keys().cloned().collect(),
        };
        let mut action_names = Vec::new();
        let mut event_names = Vec::new();
        for n in check_names {
            match actions.get(&n) {
                Some(a) if a.event => event_names.push(n),
                Some(_) => action_names.push(n),
                None if n == "noop!" || n == "reload!" => action_names.push(n),
                None if n == "loaded?" => event_names.push(n),
                None => {
                    return Err(SpecError::at(
                        span,
                        format!("check references undeclared action `{n}`"),
                    ))
                }
            }
        }
        checks.push(CheckDef {
            properties,
            actions: action_names,
            events: event_names,
        });
    }

    let dependencies = analysis::dependencies(spec).into_iter().collect();

    let mut compiled = CompiledSpec {
        env,
        global_names: names,
        actions,
        checks,
        dependencies,
        analysis: analysis::SpecAnalysis::default(),
        automata: SpecAutomata::default(),
        atom_memos: crate::atomc::AtomMemos::default(),
        step_memos: StepMemos::default(),
    };
    compiled.analysis = analysis::analyze_compiled(&compiled);
    Ok(compiled)
}

/// Parses and compiles in one step.
///
/// # Errors
///
/// Returns the first lexing, parsing, sort, or compilation error.
pub fn load(src: &str) -> Result<CompiledSpec, SpecError> {
    compile(&parse_spec(src)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quickstrom_protocol::ActionKind;

    const EGG_TIMER: &str = r#"
        let ~stopped = `#toggle`.text == "start";
        let ~started = `#toggle`.text == "stop";
        let ~time = parseInt(`#remaining`.text);
        action start! = click!(`#toggle`) when stopped;
        action stop! = click!(`#toggle`) when started;
        action wait! = noop! timeout 1100 when started;
        action tick? = changed?(`#remaining`);
        let ~liveness = always[40] (start! in happened ==> eventually[36] stopped);
        check liveness;
        check liveness with start! wait! tick?;
    "#;

    #[test]
    fn compile_egg_timer() {
        let compiled = load(EGG_TIMER).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(compiled.actions.len(), 4);
        let wait = compiled.action("wait!").unwrap();
        assert_eq!(wait.kind, Some(ActionKind::Noop));
        assert_eq!(wait.timeout_ms, Some(1100));
        assert!(wait.guard.is_some());
        let tick = compiled.action("tick?").unwrap();
        assert!(tick.event);
        assert_eq!(tick.selector, Some(Selector::new("#remaining")));
        // Dependencies: both selectors.
        let deps: Vec<&str> = compiled.dependencies.iter().map(Selector::as_str).collect();
        assert_eq!(deps, vec!["#remaining", "#toggle"]);
    }

    #[test]
    fn checks_resolve_with_lists() {
        let compiled = load(EGG_TIMER).unwrap();
        assert_eq!(compiled.checks.len(), 2);
        // Unrestricted check gets all actions and events.
        assert_eq!(compiled.checks[0].actions, vec!["start!", "stop!", "wait!"]);
        assert_eq!(compiled.checks[0].events, vec!["tick?"]);
        // The restricted check keeps only the listed ones.
        assert_eq!(compiled.checks[1].actions, vec!["start!", "wait!"]);
        assert_eq!(compiled.checks[1].events, vec!["tick?"]);
    }

    #[test]
    fn property_thunk_resolves() {
        let compiled = load(EGG_TIMER).unwrap();
        assert!(compiled.property_thunk("liveness").is_some());
        assert!(compiled.property_thunk("nonexistent").is_none());
    }

    #[test]
    fn property_thunks_evaluate_against_states() {
        use quickstrom_protocol::{ElementState, StateSnapshot};
        let compiled = load(EGG_TIMER).unwrap();
        let thunk = compiled.property_thunk("stopped").unwrap();
        let mut snap = StateSnapshot::new();
        snap.insert_query(
            Selector::new("#toggle"),
            vec![ElementState::with_text("start")],
        );
        snap.insert_query(Selector::new("#remaining"), vec![]);
        let ctx = EvalCtx::with_state(&snap, 0);
        assert!(eval::eval_guard(&thunk, &ctx).unwrap());
    }

    #[test]
    fn shadowed_top_level_names_resolve_to_the_latest() {
        let compiled = load("let x = 1; let x = 2; let y = x; check y with noop!;").unwrap();
        let thunk = compiled.property_thunk("y").unwrap();
        let ctx = EvalCtx::stateless(0);
        let v = eval::eval(&thunk.ir, &thunk.env, &ctx).unwrap();
        assert!(matches!(v, Value::Int(2)));
    }

    #[test]
    fn eager_state_query_is_a_compile_error() {
        let err = load("let t = `#x`.text; check t;").unwrap_err();
        assert!(err.message.contains("state"), "{err}");
    }

    #[test]
    fn suffix_convention_is_enforced() {
        let err = load("action boom! = changed?(`#x`);").unwrap_err();
        assert!(err.message.contains("mixes conventions"));
        let err2 = load("action boom? = click!(`#x`);").unwrap_err();
        assert!(err2.message.contains("mixes conventions"));
    }

    #[test]
    fn action_body_must_be_action() {
        let err = load("action go! = 42;").unwrap_err();
        assert!(err.message.contains("primitive action"));
    }

    #[test]
    fn timeout_must_be_integer() {
        let err = load("action go! = noop! timeout \"soon\";").unwrap_err();
        assert!(err.message.contains("milliseconds"));
    }

    #[test]
    fn builtin_noop_in_with_list() {
        let compiled = load("let ~p = true; check p with noop!;").unwrap();
        assert_eq!(compiled.checks[0].actions, vec!["noop!"]);
    }

    /// The checker's parallel runtime shares one compiled spec (and the
    /// property thunks cloned out of it) across worker threads. Values are
    /// `Arc`-based and immutable after compilation, so this holds by
    /// construction — pin it at compile time.
    #[test]
    fn compiled_specs_are_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompiledSpec>();
        assert_send_sync::<crate::Thunk>();
        assert_send_sync::<crate::value::Value>();
    }
}
