//! The Specstrom parser: recursive descent with precedence climbing.
//!
//! Operator precedence, loosest to tightest:
//!
//! ```text
//! ==>                       (right associative)
//! ||
//! &&
//! until[n]  release[n]      (right associative)
//! ==  !=  <  <=  >  >=  in  (non-associative)
//! +  -
//! *  /  %
//! !  -  always[n]  eventually[n]  next  nextW  nextS   (prefix)
//! f(x)  x.f  x[i]           (postfix)
//! ```
//!
//! Demand subscripts use brackets after the operator keyword:
//! `always[400] …`, `a until[5] b`. Omitting the subscript defers to the
//! checker's configured default (§4.1).

use crate::ast::Span;
use crate::ast::{BinOp, Expr, Item, LetStmt, Literal, Param, Spec, TemporalOp, UnOp};
use crate::error::SpecError;
use crate::lexer::{lex, SpannedTok, Tok};
use std::sync::Arc;

/// Parses a complete specification source file.
///
/// # Errors
///
/// Returns the first [`SpecError`] encountered.
///
/// # Examples
///
/// ```
/// use specstrom::parse_spec;
/// let spec = parse_spec(
///     "let ~stopped = `#toggle`.text == \"start\";\n\
///      action start! = click!(`#toggle`) when stopped;\n\
///      check stopped;",
/// )
/// .unwrap();
/// assert_eq!(spec.items.len(), 3);
/// ```
pub fn parse_spec(src: &str) -> Result<Spec, SpecError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        src_len: src.len(),
    };
    let mut items = Vec::new();
    while !p.at_end() {
        items.push(p.item()?);
    }
    Ok(Spec { items })
}

/// Parses a single expression (used by tests and the REPL-style helpers).
///
/// # Errors
///
/// Returns the first [`SpecError`] encountered, including trailing input.
pub fn parse_expr(src: &str) -> Result<Arc<Expr>, SpecError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        src_len: src.len(),
    };
    let e = p.expr()?;
    if !p.at_end() {
        return Err(p.error_here("trailing input after expression"));
    }
    Ok(e)
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
    src_len: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|t| &t.tok)
    }

    fn here(&self) -> Span {
        self.toks
            .get(self.pos)
            .map_or(Span::new(self.src_len, self.src_len), |t| t.span)
    }

    fn prev_span(&self) -> Span {
        self.toks
            .get(self.pos.saturating_sub(1))
            .map_or(Span::new(self.src_len, self.src_len), |t| t.span)
    }

    fn error_here(&self, msg: impl Into<String>) -> SpecError {
        let msg = msg.into();
        match self.peek() {
            Some(tok) => SpecError::at(self.here(), format!("{msg} (found `{tok}`)")),
            None => SpecError::at(self.here(), format!("{msg} (found end of input)")),
        }
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &Tok) -> Result<Span, SpecError> {
        if self.peek() == Some(tok) {
            let span = self.here();
            self.pos += 1;
            Ok(span)
        } else {
            Err(self.error_here(format!("expected `{tok}`")))
        }
    }

    fn ident(&mut self) -> Result<(String, Span), SpecError> {
        match self.peek() {
            Some(Tok::Ident(_)) => {
                let span = self.here();
                match self.bump() {
                    Some(Tok::Ident(name)) => Ok((name, span)),
                    _ => unreachable!("peeked an identifier"),
                }
            }
            _ => Err(self.error_here("expected an identifier")),
        }
    }

    // ---------------------------------------------------------------- items

    fn item(&mut self) -> Result<Item, SpecError> {
        match self.peek() {
            Some(Tok::Let) => self.let_item(),
            Some(Tok::Fun) => self.fun_item(),
            Some(Tok::Action) => self.action_item(),
            Some(Tok::Check) => self.check_item(),
            _ => Err(self.error_here("expected `let`, `fun`, `action` or `check`")),
        }
    }

    fn let_item(&mut self) -> Result<Item, SpecError> {
        let start = self.expect(&Tok::Let)?;
        let deferred = self.eat(&Tok::Tilde);
        let (name, _) = self.ident()?;
        let value = if self.peek() == Some(&Tok::LBrace) {
            // `let ~ticking { … }` — block-bodied binding (Fig. 8).
            self.block()?
        } else {
            self.expect(&Tok::Assign)?;
            self.expr()?
        };
        let end = self.expect(&Tok::Semi).or_else(|e| {
            // Block-bodied lets may omit the semicolon.
            if matches!(value.as_ref(), Expr::Block { .. }) {
                Ok(self.prev_span())
            } else {
                Err(e)
            }
        })?;
        Ok(Item::Let(LetStmt {
            name,
            deferred,
            value,
            span: start.merge(end),
        }))
    }

    fn fun_item(&mut self) -> Result<Item, SpecError> {
        let start = self.expect(&Tok::Fun)?;
        let (name, _) = self.ident()?;
        self.expect(&Tok::LParen)?;
        let mut params = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                let deferred = self.eat(&Tok::Tilde);
                let (pname, _) = self.ident()?;
                params.push(Param {
                    name: pname,
                    deferred,
                });
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        let body = if self.peek() == Some(&Tok::LBrace) {
            let b = self.block()?;
            let _ = self.eat(&Tok::Semi);
            b
        } else {
            self.expect(&Tok::Assign)?;
            let e = self.expr()?;
            self.expect(&Tok::Semi)?;
            e
        };
        let span = start.merge(self.prev_span());
        Ok(Item::Fun {
            name,
            params,
            body,
            span,
        })
    }

    fn action_item(&mut self) -> Result<Item, SpecError> {
        let start = self.expect(&Tok::Action)?;
        let (name, name_span) = self.ident()?;
        if !name.ends_with('!') && !name.ends_with('?') {
            return Err(SpecError::at(
                name_span,
                format!("action `{name}` must end with `!` (user action) or `?` (event)"),
            ));
        }
        self.expect(&Tok::Assign)?;
        let body = self.expr()?;
        let timeout = if self.eat(&Tok::Timeout) {
            Some(self.expr()?)
        } else {
            None
        };
        let guard = if self.eat(&Tok::When) {
            Some(self.expr()?)
        } else {
            None
        };
        let end = self.expect(&Tok::Semi)?;
        Ok(Item::Action {
            name,
            body,
            timeout,
            guard,
            span: start.merge(end),
        })
    }

    fn name_list(&mut self) -> Result<Vec<String>, SpecError> {
        let mut names = Vec::new();
        while let Some(Tok::Ident(_)) = self.peek() {
            let (n, _) = self.ident()?;
            names.push(n);
            // Comma separators are optional (Fig. 8 uses spaces).
            let _ = self.eat(&Tok::Comma);
        }
        if names.is_empty() {
            return Err(self.error_here("expected one or more names"));
        }
        Ok(names)
    }

    fn check_item(&mut self) -> Result<Item, SpecError> {
        let start = self.expect(&Tok::Check)?;
        let properties = self.name_list()?;
        let with_actions = if self.eat(&Tok::With) {
            Some(self.name_list()?)
        } else {
            None
        };
        let end = self.expect(&Tok::Semi)?;
        Ok(Item::Check {
            properties,
            with_actions,
            span: start.merge(end),
        })
    }

    // ---------------------------------------------------------- expressions

    fn expr(&mut self) -> Result<Arc<Expr>, SpecError> {
        self.implies()
    }

    fn implies(&mut self) -> Result<Arc<Expr>, SpecError> {
        let lhs = self.or_expr()?;
        if self.eat(&Tok::Implies) {
            let rhs = self.implies()?;
            let span = lhs.span().merge(rhs.span());
            Ok(Arc::new(Expr::Binary {
                op: BinOp::Implies,
                lhs,
                rhs,
                span,
            }))
        } else {
            Ok(lhs)
        }
    }

    fn or_expr(&mut self) -> Result<Arc<Expr>, SpecError> {
        let mut lhs = self.and_expr()?;
        while self.eat(&Tok::OrOr) {
            let rhs = self.and_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Arc::new(Expr::Binary {
                op: BinOp::Or,
                lhs,
                rhs,
                span,
            });
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Arc<Expr>, SpecError> {
        let mut lhs = self.until_expr()?;
        while self.eat(&Tok::AndAnd) {
            let rhs = self.until_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Arc::new(Expr::Binary {
                op: BinOp::And,
                lhs,
                rhs,
                span,
            });
        }
        Ok(lhs)
    }

    fn demand(&mut self) -> Result<Option<u32>, SpecError> {
        if self.eat(&Tok::LBracket) {
            let n = match self.peek() {
                Some(Tok::Int(n)) if *n >= 0 => {
                    let v = u32::try_from(*n)
                        .map_err(|_| self.error_here("demand subscript out of range"))?;
                    self.pos += 1;
                    v
                }
                _ => return Err(self.error_here("expected a non-negative demand subscript")),
            };
            self.expect(&Tok::RBracket)?;
            Ok(Some(n))
        } else {
            Ok(None)
        }
    }

    fn until_expr(&mut self) -> Result<Arc<Expr>, SpecError> {
        let lhs = self.cmp_expr()?;
        let until = match self.peek() {
            Some(Tok::Until) => true,
            Some(Tok::Release) => false,
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let demand = self.demand()?;
        // Right associative: `a until b until c` = `a until (b until c)`.
        let rhs = self.until_expr()?;
        let span = lhs.span().merge(rhs.span());
        Ok(Arc::new(Expr::TemporalBin {
            until,
            demand,
            lhs,
            rhs,
            span,
        }))
    }

    fn cmp_expr(&mut self) -> Result<Arc<Expr>, SpecError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Some(Tok::EqEq) => BinOp::Eq,
            Some(Tok::NotEq) => BinOp::Ne,
            Some(Tok::Lt) => BinOp::Lt,
            Some(Tok::Le) => BinOp::Le,
            Some(Tok::Gt) => BinOp::Gt,
            Some(Tok::Ge) => BinOp::Ge,
            Some(Tok::In) => BinOp::In,
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.add_expr()?;
        let span = lhs.span().merge(rhs.span());
        Ok(Arc::new(Expr::Binary { op, lhs, rhs, span }))
    }

    fn add_expr(&mut self) -> Result<Arc<Expr>, SpecError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.mul_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Arc::new(Expr::Binary { op, lhs, rhs, span });
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Arc<Expr>, SpecError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                Some(Tok::Percent) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Arc::new(Expr::Binary { op, lhs, rhs, span });
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Arc<Expr>, SpecError> {
        let start = self.here();
        match self.peek() {
            Some(Tok::Bang) => {
                self.pos += 1;
                let expr = self.unary_expr()?;
                let span = start.merge(expr.span());
                Ok(Arc::new(Expr::Unary {
                    op: UnOp::Not,
                    expr,
                    span,
                }))
            }
            Some(Tok::Minus) => {
                self.pos += 1;
                let expr = self.unary_expr()?;
                let span = start.merge(expr.span());
                Ok(Arc::new(Expr::Unary {
                    op: UnOp::Neg,
                    expr,
                    span,
                }))
            }
            Some(Tok::Always) => self.temporal_prefix(TemporalOp::Always, true),
            Some(Tok::Eventually) => self.temporal_prefix(TemporalOp::Eventually, true),
            Some(Tok::Next) => self.temporal_prefix(TemporalOp::Next, false),
            Some(Tok::NextW) => self.temporal_prefix(TemporalOp::NextW, false),
            Some(Tok::NextS) => self.temporal_prefix(TemporalOp::NextS, false),
            _ => self.postfix_expr(),
        }
    }

    fn temporal_prefix(&mut self, op: TemporalOp, demanded: bool) -> Result<Arc<Expr>, SpecError> {
        let start = self.here();
        self.pos += 1;
        let demand = if demanded { self.demand()? } else { None };
        let body = self.unary_expr()?;
        let span = start.merge(body.span());
        Ok(Arc::new(Expr::Temporal {
            op,
            demand,
            body,
            span,
        }))
    }

    fn postfix_expr(&mut self) -> Result<Arc<Expr>, SpecError> {
        let mut expr = self.primary()?;
        loop {
            match self.peek() {
                Some(Tok::LParen) => {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if self.peek() != Some(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                    }
                    let end = self.expect(&Tok::RParen)?;
                    let span = expr.span().merge(end);
                    expr = Arc::new(Expr::Call {
                        func: expr,
                        args,
                        span,
                    });
                }
                Some(Tok::Dot) => {
                    self.pos += 1;
                    let (field, fspan) = self.ident()?;
                    let span = expr.span().merge(fspan);
                    expr = Arc::new(Expr::Member {
                        obj: expr,
                        field,
                        span,
                    });
                }
                Some(Tok::LBracket) => {
                    self.pos += 1;
                    let index = self.expr()?;
                    let end = self.expect(&Tok::RBracket)?;
                    let span = expr.span().merge(end);
                    expr = Arc::new(Expr::Index {
                        obj: expr,
                        index,
                        span,
                    });
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    fn primary(&mut self) -> Result<Arc<Expr>, SpecError> {
        let span = self.here();
        match self.peek() {
            Some(Tok::Int(_)) => match self.bump() {
                Some(Tok::Int(n)) => Ok(Arc::new(Expr::Lit(Literal::Int(n), span))),
                _ => unreachable!(),
            },
            Some(Tok::Float(_)) => match self.bump() {
                Some(Tok::Float(x)) => Ok(Arc::new(Expr::Lit(Literal::Float(x), span))),
                _ => unreachable!(),
            },
            Some(Tok::Str(_)) => match self.bump() {
                Some(Tok::Str(s)) => Ok(Arc::new(Expr::Lit(Literal::Str(s), span))),
                _ => unreachable!(),
            },
            Some(Tok::Selector(_)) => match self.bump() {
                Some(Tok::Selector(s)) => Ok(Arc::new(Expr::Selector(s, span))),
                _ => unreachable!(),
            },
            Some(Tok::True) => {
                self.pos += 1;
                Ok(Arc::new(Expr::Lit(Literal::Bool(true), span)))
            }
            Some(Tok::False) => {
                self.pos += 1;
                Ok(Arc::new(Expr::Lit(Literal::Bool(false), span)))
            }
            Some(Tok::Null) => {
                self.pos += 1;
                Ok(Arc::new(Expr::Lit(Literal::Null, span)))
            }
            Some(Tok::Happened) => {
                self.pos += 1;
                Ok(Arc::new(Expr::Happened(span)))
            }
            Some(Tok::Ident(_)) => {
                let (name, span) = self.ident()?;
                Ok(Arc::new(Expr::Var(name, span)))
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::LBracket) => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek() != Some(&Tok::RBracket) {
                    loop {
                        items.push(self.expr()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                }
                let end = self.expect(&Tok::RBracket)?;
                Ok(Arc::new(Expr::Array(items, span.merge(end))))
            }
            Some(Tok::If) => self.if_expr(),
            Some(Tok::LBrace) => self.block(),
            _ => Err(self.error_here("expected an expression")),
        }
    }

    fn if_expr(&mut self) -> Result<Arc<Expr>, SpecError> {
        let start = self.expect(&Tok::If)?;
        let cond = self.expr()?;
        let then_branch = self.block()?;
        self.expect(&Tok::Else)?;
        let else_branch = if self.peek() == Some(&Tok::If) {
            self.if_expr()?
        } else {
            self.block()?
        };
        let span = start.merge(else_branch.span());
        Ok(Arc::new(Expr::If {
            cond,
            then_branch,
            else_branch,
            span,
        }))
    }

    fn block(&mut self) -> Result<Arc<Expr>, SpecError> {
        let start = self.expect(&Tok::LBrace)?;
        let mut lets = Vec::new();
        while self.peek() == Some(&Tok::Let) {
            let lstart = self.here();
            self.pos += 1;
            let deferred = self.eat(&Tok::Tilde);
            let (name, _) = self.ident()?;
            self.expect(&Tok::Assign)?;
            let value = self.expr()?;
            let lend = self.expect(&Tok::Semi)?;
            lets.push(LetStmt {
                name,
                deferred,
                value,
                span: lstart.merge(lend),
            });
        }
        let result = self.expr()?;
        let end = self.expect(&Tok::RBrace)?;
        Ok(Arc::new(Expr::Block {
            lets,
            result,
            span: start.merge(end),
        }))
    }
}

// `peek2` is used by no production today but kept for the parser's
// evolution; reference it so the build stays warning-clean.
impl Parser {
    #[allow(dead_code)]
    fn lookahead_is_assign(&self) -> bool {
        self.peek2() == Some(&Tok::Assign)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expr(src: &str) -> Arc<Expr> {
        parse_expr(src).unwrap_or_else(|e| panic!("{src}: {}", e.render(src)))
    }

    #[test]
    fn precedence_shape() {
        // a || b && c parses as a || (b && c)
        match expr("a || b && c").as_ref() {
            Expr::Binary {
                op: BinOp::Or, rhs, ..
            } => {
                assert!(matches!(rhs.as_ref(), Expr::Binary { op: BinOp::And, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
        // comparison binds tighter than &&
        match expr("x == 1 && y == 2").as_ref() {
            Expr::Binary {
                op: BinOp::And,
                lhs,
                ..
            } => {
                assert!(matches!(lhs.as_ref(), Expr::Binary { op: BinOp::Eq, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn temporal_operators_with_demands() {
        match expr("always[400] ticking").as_ref() {
            Expr::Temporal {
                op: TemporalOp::Always,
                demand: Some(400),
                ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
        match expr("eventually stopped").as_ref() {
            Expr::Temporal {
                op: TemporalOp::Eventually,
                demand: None,
                ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
        match expr("a until[5] b").as_ref() {
            Expr::TemporalBin {
                until: true,
                demand: Some(5),
                ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
        match expr("exit release (edit || exit)").as_ref() {
            Expr::TemporalBin { until: false, .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn temporal_binds_tighter_than_and() {
        // a && b until c parses as a && (b until c).
        match expr("a && b until c").as_ref() {
            Expr::Binary {
                op: BinOp::And,
                rhs,
                ..
            } => {
                assert!(matches!(rhs.as_ref(), Expr::TemporalBin { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn postfix_chains() {
        match expr("`#remaining`.text").as_ref() {
            Expr::Member { obj, field, .. } => {
                assert!(matches!(obj.as_ref(), Expr::Selector(s, _) if s == "#remaining"));
                assert_eq!(field, "text");
            }
            other => panic!("unexpected {other:?}"),
        }
        match expr("parseInt(`#remaining`.text)").as_ref() {
            Expr::Call { func, args, .. } => {
                assert!(matches!(func.as_ref(), Expr::Var(n, _) if n == "parseInt"));
                assert_eq!(args.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        match expr("items[0].text").as_ref() {
            Expr::Member { obj, .. } => {
                assert!(matches!(obj.as_ref(), Expr::Index { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn if_and_blocks() {
        let e = expr("if time == 0 {stopped} else {started}");
        match e.as_ref() {
            Expr::If { then_branch, .. } => {
                assert!(matches!(then_branch.as_ref(), Expr::Block { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
        let b = expr("{ let old = time; started && next (time == old - 1) }");
        match b.as_ref() {
            Expr::Block { lets, .. } => {
                assert_eq!(lets.len(), 1);
                assert_eq!(lets[0].name, "old");
                assert!(!lets[0].deferred);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn else_if_chains() {
        let e = expr("if a {1} else if b {2} else {3}");
        match e.as_ref() {
            Expr::If { else_branch, .. } => {
                assert!(matches!(else_branch.as_ref(), Expr::If { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn happened_and_membership() {
        match expr("tick? in happened").as_ref() {
            Expr::Binary {
                op: BinOp::In,
                lhs,
                rhs,
                ..
            } => {
                assert!(matches!(lhs.as_ref(), Expr::Var(n, _) if n == "tick?"));
                assert!(matches!(rhs.as_ref(), Expr::Happened(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn egg_timer_items_parse() {
        let src = r#"
            let ~stopped = `#toggle`.text == "start";
            let ~started = `#toggle`.text == "stop";
            let ~time = parseInt(`#remaining`.text);
            action start! = click!(`#toggle`) when stopped;
            action stop! = click!(`#toggle`) when started;
            action wait! = noop! timeout 1100 when started;
            action tick? = changed?(`#remaining`);
            let ~ticking {
                let old = time;
                started && next (tick? in happened && time == old - 1)
            };
            let ~liveness = always[400] (start! in happened ==> eventually[360] stopped);
            check liveness with start! wait! tick?;
        "#;
        let spec = parse_spec(src).unwrap_or_else(|e| panic!("{}", e.render(src)));
        assert_eq!(spec.items.len(), 10);
        match &spec.items[5] {
            Item::Action {
                name,
                timeout,
                guard,
                ..
            } => {
                assert_eq!(name, "wait!");
                assert!(timeout.is_some());
                assert!(guard.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
        match &spec.items[9] {
            Item::Check {
                properties,
                with_actions,
                ..
            } => {
                assert_eq!(properties, &["liveness".to_owned()]);
                assert_eq!(
                    with_actions.as_deref(),
                    Some(&["start!".to_owned(), "wait!".to_owned(), "tick?".to_owned()][..])
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fun_items() {
        let spec = parse_spec("fun evovae(~x) { let v = x; always (x == v) }").unwrap();
        match &spec.items[0] {
            Item::Fun { name, params, .. } => {
                assert_eq!(name, "evovae");
                assert_eq!(params.len(), 1);
                assert!(params[0].deferred);
                assert_eq!(params[0].name, "x");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Expression-bodied functions need `= … ;`.
        let spec2 = parse_spec("fun double(x) = x * 2;").unwrap();
        assert!(matches!(&spec2.items[0], Item::Fun { .. }));
    }

    #[test]
    fn check_names_comma_or_space() {
        let a = parse_spec("check safety liveness;").unwrap();
        let b = parse_spec("check safety, liveness;").unwrap();
        // Same structure; spans differ by the comma.
        match (&a.items[0], &b.items[0]) {
            (
                Item::Check {
                    properties: pa,
                    with_actions: wa,
                    ..
                },
                Item::Check {
                    properties: pb,
                    with_actions: wb,
                    ..
                },
            ) => {
                assert_eq!(pa, pb);
                assert_eq!(wa, wb);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn action_names_need_suffix() {
        let err = parse_spec("action go = noop!;").unwrap_err();
        assert!(err.message.contains("must end with"));
    }

    #[test]
    fn error_messages_show_found_token() {
        let err = parse_expr("a &&").unwrap_err();
        assert!(err.message.contains("end of input"));
        let err2 = parse_spec("let x 5;").unwrap_err();
        assert!(err2.message.contains('5'));
    }

    #[test]
    fn arrays() {
        match expr("[1, 2, 3]").as_ref() {
            Expr::Array(items, _) => assert_eq!(items.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
        match expr("[]").as_ref() {
            Expr::Array(items, _) => assert!(items.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn implies_is_right_associative() {
        match expr("a ==> b ==> c").as_ref() {
            Expr::Binary {
                op: BinOp::Implies,
                rhs,
                ..
            } => {
                assert!(matches!(
                    rhs.as_ref(),
                    Expr::Binary {
                        op: BinOp::Implies,
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unary_operators() {
        match expr("!stopped").as_ref() {
            Expr::Unary { op: UnOp::Not, .. } => {}
            other => panic!("unexpected {other:?}"),
        }
        match expr("-5 + 3").as_ref() {
            Expr::Binary {
                op: BinOp::Add,
                lhs,
                ..
            } => {
                assert!(matches!(lhs.as_ref(), Expr::Unary { op: UnOp::Neg, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
