//! Static analysis of specifications (§3.3 and beyond).
//!
//! Two layers of analysis live here, one per representation:
//!
//! 1. **AST-level dependency analysis** ([`dependencies`],
//!    [`dependencies_of`]): before checking, Quickstrom must know which
//!    parts of the browser state are relevant to the properties at hand —
//!    both to instrument the running application with change listeners and
//!    to retrieve a consistent snapshot in bulk. Because Specstrom
//!    guarantees termination and has no recursion, a simple abstract
//!    interpretation suffices: we walk the binding graph from the
//!    `check`ed properties (plus the allowable actions and declared
//!    events) and collect every reachable selector literal.
//!
//! 2. **Compiled-spec analysis** ([`analyze_compiled`], stored on
//!    `CompiledSpec::analysis`): after compilation the temporal skeleton
//!    of each property is known, and each atomic proposition can be given
//!    an exact *footprint* — the selectors and element projections it can
//!    read ([`AtomFootprint`]). The footprints invert into per-selector
//!    field masks ([`FieldMask`]) that downstream consumers spend in two
//!    hot paths: the checker skips re-evaluating atoms whose selectors a
//!    snapshot delta did not touch, and the exploration engine hashes only
//!    the projections the spec observes. The same pass computes LTL-level
//!    diagnostics (vacuous implications, tautological or unsatisfiable
//!    skeletons, unreachable `until`/`eventually` branches) by running the
//!    QuickLTL simplifier over the abstracted skeleton.
//!
//! Both layers are *sound over-approximations*: any selector or
//! projection the property could read is included (a selector in a
//! dynamically dead branch may be instrumented or re-evaluated
//! unnecessarily, which costs snapshot size or evaluation time but never
//! correctness). The indirect case is covered automatically: in
//! `if `#toggle`.enabled {0} else {1}` the selector literal occurs in the
//! condition and is collected when the expression is reached.
//!
//! [`lint`] combines both layers into user-facing diagnostics with source
//! spans: unused bindings, actions never referenced by any check, and
//! selectors instrumented but never read.

use crate::ast::{BinOp, Expr, Item, LetStmt, Span, Spec, TemporalOp, UnOp};
use crate::compile::Ir;
use crate::spec::CompiledSpec;
use crate::value::{Binding, Builtin, ClosureData, Env, Thunk, Value};
use quickltl::{Demand, Formula};
use quickstrom_protocol::{sym, FieldMask, Selector, Symbol};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// Collects the selectors a set of root names (transitively) depends on.
#[derive(Debug)]
struct Collector<'a> {
    by_name: HashMap<&'a str, &'a Item>,
    visited: HashSet<&'a str>,
    selectors: BTreeSet<Selector>,
    /// First occurrence span of each selector literal, for diagnostics.
    selector_spans: BTreeMap<Selector, Span>,
}

impl<'a> Collector<'a> {
    fn new(spec: &'a Spec) -> Self {
        let mut by_name = HashMap::new();
        for item in &spec.items {
            if let Some(name) = item.name() {
                // Later bindings shadow earlier ones; keep the last.
                by_name.insert(name, item);
            }
        }
        Collector {
            by_name,
            visited: HashSet::new(),
            selectors: BTreeSet::new(),
            selector_spans: BTreeMap::new(),
        }
    }

    fn visit_name(&mut self, name: &str) {
        let Some(&item) = self.by_name.get(name) else {
            return; // builtins and undefined names carry no selectors
        };
        if !self.visited.insert(item.name().expect("named item")) {
            return;
        }
        match item {
            Item::Let(LetStmt { value, .. }) => self.visit_expr(value),
            Item::Fun { body, .. } => self.visit_expr(body),
            Item::Action {
                body,
                timeout,
                guard,
                ..
            } => {
                self.visit_expr(body);
                if let Some(t) = timeout {
                    self.visit_expr(t);
                }
                if let Some(g) = guard {
                    self.visit_expr(g);
                }
            }
            Item::Check { .. } => {}
        }
    }

    fn visit_expr(&mut self, expr: &Expr) {
        match expr {
            Expr::Selector(s, span) => {
                let sel = Selector::new(s.clone());
                self.selector_spans.entry(sel).or_insert(*span);
                self.selectors.insert(sel);
            }
            Expr::Var(name, _) => {
                let name = name.clone();
                self.visit_name(&name);
            }
            Expr::Lit(_, _) | Expr::Happened(_) => {}
            Expr::Call { func, args, .. } => {
                self.visit_expr(func);
                for a in args {
                    self.visit_expr(a);
                }
            }
            Expr::Unary { expr, .. } => self.visit_expr(expr),
            Expr::Binary { lhs, rhs, .. } => {
                self.visit_expr(lhs);
                self.visit_expr(rhs);
            }
            Expr::Member { obj, .. } => self.visit_expr(obj),
            Expr::Index { obj, index, .. } => {
                self.visit_expr(obj);
                self.visit_expr(index);
            }
            Expr::Array(items, _) => {
                for i in items {
                    self.visit_expr(i);
                }
            }
            Expr::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                self.visit_expr(cond);
                self.visit_expr(then_branch);
                self.visit_expr(else_branch);
            }
            Expr::Block { lets, result, .. } => {
                for l in lets {
                    self.visit_expr(&l.value);
                }
                self.visit_expr(result);
            }
            Expr::Temporal { body, .. } => self.visit_expr(body),
            Expr::TemporalBin { lhs, rhs, .. } => {
                self.visit_expr(lhs);
                self.visit_expr(rhs);
            }
        }
    }
}

/// The root names of a specification's `check` items: every checked
/// property plus the allowable actions (the `with`-list when given, every
/// declared action and event otherwise).
///
/// Returns `None` when the spec declares no `check` at all — a library
/// file, where "reachable from a check" is meaningless.
fn explicit_roots(spec: &Spec) -> Option<Vec<String>> {
    let mut roots: Vec<String> = Vec::new();
    let mut any_check = false;
    for item in &spec.items {
        if let Item::Check {
            properties,
            with_actions,
            ..
        } = item
        {
            any_check = true;
            roots.extend(properties.iter().cloned());
            match with_actions {
                Some(actions) => roots.extend(actions.iter().cloned()),
                None => {
                    // Unrestricted: every declared action and event may run.
                    for other in &spec.items {
                        if let Item::Action { name, .. } = other {
                            roots.push(name.clone());
                        }
                    }
                }
            }
        }
    }
    any_check.then_some(roots)
}

/// The selectors relevant to the given root names (property and action
/// names), following the binding graph transitively.
#[must_use]
pub fn dependencies_of(spec: &Spec, roots: &[String]) -> BTreeSet<Selector> {
    let mut collector = Collector::new(spec);
    for root in roots {
        collector.visit_name(root);
    }
    collector.selectors
}

/// The selectors relevant to the whole specification: everything reachable
/// from any `check` item (its properties, its allowable actions — all
/// actions and events when unrestricted).
///
/// A specification without `check` items is analysed from every item, so
/// library files still report their selector footprint.
#[must_use]
pub fn dependencies(spec: &Spec) -> BTreeSet<Selector> {
    let roots = explicit_roots(spec).unwrap_or_else(|| {
        spec.items
            .iter()
            .filter_map(|item| item.name().map(str::to_owned))
            .collect()
    });
    dependencies_of(spec, &roots)
}

// ---------------------------------------------------------------------------
// Atom footprints (compiled-spec layer)
// ---------------------------------------------------------------------------

/// Which element projections of one selector an atom can read.
///
/// The lattice per selector is `∅ ⊑ {field…} ⊑ ⊤` (`all_fields`): an
/// empty, non-`all_fields` use means only the *match list itself* is
/// observed (`.count` / `.present` / action-target enumeration), a field
/// set means exactly those projections, and `all_fields` means the
/// selector escaped precise tracking (it flowed into an opaque position)
/// so every projection must be assumed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SelectorUse {
    /// Exact projection symbols read (e.g. [`sym::TEXT`]).
    pub fields: BTreeSet<Symbol>,
    /// The selector escapes precise tracking: assume every projection.
    pub all_fields: bool,
}

impl SelectorUse {
    /// Joins another use into this one (lattice join).
    pub fn merge(&mut self, other: &SelectorUse) {
        self.all_fields |= other.all_fields;
        self.fields.extend(other.fields.iter().copied());
    }

    /// The use as a protocol-level [`FieldMask`] for spec-aware
    /// fingerprinting. Unknown field symbols degrade to [`FieldMask::ALL`]
    /// (sound: masking may only *drop* projections the spec cannot read).
    #[must_use]
    pub fn field_mask(&self) -> FieldMask {
        if self.all_fields {
            return FieldMask::ALL;
        }
        let mut mask = FieldMask::default();
        for &field in &self.fields {
            if field == sym::TEXT {
                mask.text = true;
            } else if field == sym::VALUE {
                mask.value = true;
            } else if field == sym::CHECKED {
                mask.checked = true;
            } else if field == sym::ENABLED {
                mask.enabled = true;
            } else if field == sym::VISIBLE {
                mask.visible = true;
            } else if field == sym::FOCUSED {
                mask.focused = true;
            } else if field == sym::CLASSES {
                mask.classes = true;
            } else if field == sym::ATTRIBUTES {
                mask.attributes = true;
            } else {
                return FieldMask::ALL;
            }
        }
        mask
    }
}

/// The dependency footprint of one atomic proposition: everything its
/// evaluation can read from a state.
///
/// A sound over-approximation — see the [module docs](self). Evaluation of
/// an atom is a pure function of its compiled code, captured environment,
/// the state restricted to this footprint, and (when `reads_happened`) the
/// state's event list; this purity is what makes footprint-based
/// re-evaluation skipping sound, and what the soundness property test in
/// `tests/footprint_soundness.rs` exercises.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AtomFootprint {
    /// Selectors the atom can query, each with its projection use.
    pub selectors: BTreeMap<Selector, SelectorUse>,
    /// The atom can read the `happened` event list.
    pub reads_happened: bool,
}

impl AtomFootprint {
    /// Can the atom read the given selector?
    #[must_use]
    pub fn touches(&self, selector: &Selector) -> bool {
        self.selectors.contains_key(selector)
    }

    /// Can the atom read any of the given selectors?
    #[must_use]
    pub fn touches_any(&self, changed: &[Selector]) -> bool {
        changed.iter().any(|sel| self.touches(sel))
    }

    /// Joins another footprint into this one.
    pub fn merge(&mut self, other: &AtomFootprint) {
        self.reads_happened |= other.reads_happened;
        for (sel, use_) in &other.selectors {
            self.selectors.entry(*sel).or_default().merge(use_);
        }
    }
}

/// The abstract value of an expression during the footprint walk: either a
/// statically known selector (whose projections the surrounding context
/// can refine) or anything else.
#[derive(Debug, Clone)]
enum Abs {
    Selector(Selector),
    Opaque,
}

fn is_element_field(field: Symbol) -> bool {
    field == sym::TEXT
        || field == sym::VALUE
        || field == sym::CHECKED
        || field == sym::ENABLED
        || field == sym::VISIBLE
        || field == sym::FOCUSED
        || field == sym::CLASSES
        || field == sym::ATTRIBUTES
}

/// Walks compiled code, accumulating the footprint. Abstract frames mirror
/// the environment frames evaluation would push (`let` bindings, call
/// arguments), so `Var { depth, slot }` resolution stays aligned: depths
/// inside the abstract stack resolve to [`Abs`] values, deeper ones into
/// the real captured environment.
#[derive(Default)]
struct FootprintWalker {
    fp: AtomFootprint,
    visited_thunks: HashSet<(usize, usize)>,
    visited_closures: HashSet<(usize, usize)>,
}

impl FootprintWalker {
    fn use_of(&mut self, sel: &Selector) -> &mut SelectorUse {
        self.fp.selectors.entry(*sel).or_default()
    }

    /// A selector flowing into a position the walk cannot refine must be
    /// assumed fully read.
    fn spill(&mut self, abs: &Abs) {
        if let Abs::Selector(sel) = abs {
            self.use_of(sel).all_fields = true;
        }
    }

    fn walk_deferred(&mut self, thunk: &Thunk) {
        if !self.visited_thunks.insert(thunk.identity()) {
            return;
        }
        let mut stack = Vec::new();
        let abs = self.walk(&thunk.ir, &thunk.env, &mut stack);
        self.spill(&abs);
    }

    /// Walks a closure body with every parameter opaque — for closure
    /// *values* that escape (stored in lists, passed to higher-order
    /// builtins) rather than being called at a known site.
    fn walk_closure_opaque(&mut self, closure: &Arc<ClosureData>) {
        let key = (Arc::as_ptr(&closure.body) as usize, closure.env.ptr_id());
        if !self.visited_closures.insert(key) {
            return;
        }
        let mut stack = vec![vec![Abs::Opaque; closure.params.len()]];
        let abs = self.walk(&closure.body, &closure.env, &mut stack);
        self.spill(&abs);
    }

    fn abs_value(&mut self, value: &Value) -> Abs {
        match value {
            Value::Selector(sel) => Abs::Selector(*sel),
            Value::List(items) => {
                for item in items.iter() {
                    let abs = self.abs_value(item);
                    self.spill(&abs);
                }
                Abs::Opaque
            }
            Value::Record(fields) => {
                for item in fields.values() {
                    let abs = self.abs_value(item);
                    self.spill(&abs);
                }
                Abs::Opaque
            }
            Value::Formula(f) => {
                f.for_each_atom(&mut |t| self.walk_deferred(t));
                Abs::Opaque
            }
            Value::Closure(c) => {
                self.walk_closure_opaque(c);
                Abs::Opaque
            }
            Value::Null
            | Value::Bool(_)
            | Value::Int(_)
            | Value::Float(_)
            | Value::Str(_)
            | Value::Builtin(_)
            | Value::Action(_) => Abs::Opaque,
        }
    }

    /// Resolves a callee expression to a function value when it is a plain
    /// variable bound eagerly (the common case: builtins and top-level
    /// `fun`s live in the sealed global frame).
    fn resolve_callee(&self, ir: &Ir, env: &Env, stack: &[Vec<Abs>]) -> Option<Value> {
        match ir {
            Ir::Const(v @ (Value::Builtin(_) | Value::Closure(_)), _) => Some(v.clone()),
            Ir::Var { depth, slot, .. } => {
                let depth = *depth as usize;
                if depth < stack.len() {
                    return None;
                }
                let under = u32::try_from(depth - stack.len()).ok()?;
                match env.get(under, *slot) {
                    Some(Binding::Eager(v)) if v.is_function() => Some(v.clone()),
                    _ => None,
                }
            }
            _ => None,
        }
    }

    fn walk_call(
        &mut self,
        func: &Arc<Ir>,
        args: &[Arc<Ir>],
        env: &Env,
        stack: &mut Vec<Vec<Abs>>,
    ) -> Abs {
        match self.resolve_callee(func, env, stack) {
            Some(Value::Builtin(b)) => {
                match b {
                    // `texts(sel)` reads exactly the `.text` projection.
                    Builtin::Texts => {
                        for arg in args {
                            let abs = self.walk(arg, env, stack);
                            match abs {
                                Abs::Selector(sel) => {
                                    self.use_of(&sel).fields.insert(sym::TEXT);
                                }
                                Abs::Opaque => {}
                            }
                        }
                    }
                    // Action constructors capture the selector as a target;
                    // evaluating the atom reads nothing of its elements, but
                    // the selector must stay in the footprint's key set so
                    // masking treats target enumeration as observable.
                    Builtin::MkClick
                    | Builtin::MkDblClick
                    | Builtin::MkFocus
                    | Builtin::MkInput
                    | Builtin::MkKeyPress
                    | Builtin::MkChanged => {
                        for arg in args {
                            let abs = self.walk(arg, env, stack);
                            if let Abs::Selector(sel) = abs {
                                self.use_of(&sel);
                            }
                        }
                    }
                    _ if b.higher_order() => {
                        if let Some(f_arg) = args.first() {
                            match self.resolve_callee(f_arg, env, stack) {
                                Some(Value::Closure(c)) => self.walk_closure_opaque(&c),
                                Some(Value::Builtin(_)) => {}
                                _ => {
                                    let abs = self.walk(f_arg, env, stack);
                                    self.spill(&abs);
                                }
                            }
                        }
                        for arg in args.iter().skip(1) {
                            let abs = self.walk(arg, env, stack);
                            self.spill(&abs);
                        }
                    }
                    _ => {
                        for arg in args {
                            let abs = self.walk(arg, env, stack);
                            self.spill(&abs);
                        }
                    }
                }
                Abs::Opaque
            }
            Some(Value::Closure(closure)) => {
                // Known call site: arguments become one abstract frame over
                // the closure's own captured environment, so selector
                // arguments stay refinable inside the body.
                let frame: Vec<Abs> = args.iter().map(|a| self.walk(a, env, stack)).collect();
                let mut inner = vec![frame];
                self.walk(&closure.body, &closure.env, &mut inner)
            }
            _ => {
                let abs = self.walk(func, env, stack);
                self.spill(&abs);
                for arg in args {
                    let abs = self.walk(arg, env, stack);
                    self.spill(&abs);
                }
                Abs::Opaque
            }
        }
    }

    #[allow(clippy::too_many_lines)]
    fn walk(&mut self, ir: &Ir, env: &Env, stack: &mut Vec<Vec<Abs>>) -> Abs {
        match ir {
            Ir::Const(v, _) => self.abs_value(v),
            Ir::Var { depth, slot, .. } => {
                let depth = *depth as usize;
                if depth < stack.len() {
                    let frame = &stack[stack.len() - 1 - depth];
                    return frame.get(*slot as usize).cloned().unwrap_or(Abs::Opaque);
                }
                let Ok(under) = u32::try_from(depth - stack.len()) else {
                    return Abs::Opaque;
                };
                match env.get(under, *slot) {
                    Some(Binding::Eager(v)) => {
                        let v = v.clone();
                        self.abs_value(&v)
                    }
                    Some(Binding::Deferred(t)) => {
                        let t = t.clone();
                        // A deferred selector literal refines like a direct
                        // one: each use re-evaluates to the same selector.
                        if let Ir::Const(Value::Selector(sel), _) = &*t.ir {
                            return Abs::Selector(*sel);
                        }
                        self.walk_deferred(&t);
                        Abs::Opaque
                    }
                    None => Abs::Opaque,
                }
            }
            Ir::Happened(_) => {
                self.fp.reads_happened = true;
                Abs::Opaque
            }
            Ir::Call { func, args, .. } => self.walk_call(func, args, env, stack),
            Ir::Unary { expr, .. } => {
                let abs = self.walk(expr, env, stack);
                self.spill(&abs);
                Abs::Opaque
            }
            Ir::Binary { lhs, rhs, .. } => {
                let l = self.walk(lhs, env, stack);
                self.spill(&l);
                let r = self.walk(rhs, env, stack);
                self.spill(&r);
                Abs::Opaque
            }
            Ir::Member { obj, field, .. } => {
                let abs = self.walk(obj, env, stack);
                match abs {
                    Abs::Selector(sel) => {
                        let use_ = self.use_of(&sel);
                        if *field == sym::COUNT || *field == sym::PRESENT {
                            // Match-list-only read: entry presence suffices.
                        } else if is_element_field(*field) {
                            use_.fields.insert(*field);
                        } else {
                            // `.all` materialises full element records; an
                            // unknown projection still queried the selector.
                            use_.all_fields = true;
                        }
                        Abs::Opaque
                    }
                    Abs::Opaque => Abs::Opaque,
                }
            }
            Ir::Index { obj, index, .. } => {
                let abs = self.walk(obj, env, stack);
                if let Abs::Selector(sel) = &abs {
                    // `sel[i]` materialises a full element record.
                    self.use_of(sel).all_fields = true;
                }
                let idx = self.walk(index, env, stack);
                self.spill(&idx);
                Abs::Opaque
            }
            Ir::Array(items, _) => {
                for item in items {
                    let abs = self.walk(item, env, stack);
                    self.spill(&abs);
                }
                Abs::Opaque
            }
            Ir::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                let c = self.walk(cond, env, stack);
                self.spill(&c);
                let t = self.walk(then_branch, env, stack);
                self.spill(&t);
                let e = self.walk(else_branch, env, stack);
                self.spill(&e);
                Abs::Opaque
            }
            Ir::Let { value, body, .. } => {
                // Both eager and deferred bindings: walking the bound
                // expression here over-approximates whenever it is actually
                // evaluated (now or at each use).
                let bound = self.walk(value, env, stack);
                stack.push(vec![bound]);
                let result = self.walk(body, env, stack);
                stack.pop();
                result
            }
            // Temporal bodies become sub-atoms evaluated at later states;
            // folding their reads into the enclosing atom over-approximates
            // in the time dimension, which is all masking needs.
            Ir::Temporal { body, .. } => {
                let abs = self.walk(body, env, stack);
                self.spill(&abs);
                Abs::Opaque
            }
            Ir::TemporalBin { lhs, rhs, .. } => {
                let l = self.walk(lhs, env, stack);
                self.spill(&l);
                let r = self.walk(rhs, env, stack);
                self.spill(&r);
                Abs::Opaque
            }
        }
    }
}

/// The dependency footprint of compiled code in an environment.
#[must_use]
pub fn footprint_of_ir(ir: &Arc<Ir>, env: &Env) -> AtomFootprint {
    let mut walker = FootprintWalker::default();
    let mut stack = Vec::new();
    let abs = walker.walk(ir, env, &mut stack);
    walker.spill(&abs);
    walker.fp
}

/// The dependency footprint of an atomic proposition (a thunk).
#[must_use]
pub fn footprint_of_thunk(thunk: &Thunk) -> AtomFootprint {
    footprint_of_ir(&thunk.ir, &thunk.env)
}

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

/// The kind of a spec diagnostic. Stable kebab-case codes via
/// [`DiagnosticCode::as_str`] — these are pinned by fixture tests and
/// surfaced by `evalharness lint --json`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DiagnosticCode {
    /// The property's temporal skeleton simplifies to `⊤`: it can never
    /// fail, so checking it is vacuous.
    TautologicalProperty,
    /// The property's temporal skeleton simplifies to `⊥`: it can never
    /// pass.
    UnsatisfiableProperty,
    /// An implication whose antecedent is statically false: the
    /// implication holds trivially and the consequent is never exercised.
    VacuousImplication,
    /// An `eventually` body or `until` right-hand side that is statically
    /// false: the branch can never be satisfied.
    UnreachableBranch,
    /// A `let` or `fun` binding no check ever reaches.
    UnusedBinding,
    /// A declared action or event no check ever references.
    UnusedAction,
    /// A selector that is instrumented (it appears in reachable code) but
    /// whose state no property, guard, or action target ever reads.
    UnusedSelector,
}

impl DiagnosticCode {
    /// The stable kebab-case code string.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            DiagnosticCode::TautologicalProperty => "tautological-property",
            DiagnosticCode::UnsatisfiableProperty => "unsatisfiable-property",
            DiagnosticCode::VacuousImplication => "vacuous-implication",
            DiagnosticCode::UnreachableBranch => "unreachable-branch",
            DiagnosticCode::UnusedBinding => "unused-binding",
            DiagnosticCode::UnusedAction => "unused-action",
            DiagnosticCode::UnusedSelector => "unused-selector",
        }
    }
}

impl fmt::Display for DiagnosticCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One spec diagnostic: a code, a source span (byte offsets into the spec
/// source; see [`line_col`]), and a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The diagnostic kind.
    pub code: DiagnosticCode,
    /// Byte-offset span in the spec source.
    pub span: Span,
    /// Human-readable explanation.
    pub message: String,
}

/// Converts a byte offset into a 1-based `(line, column)` pair for
/// human-readable diagnostic output.
#[must_use]
pub fn line_col(src: &str, offset: usize) -> (usize, usize) {
    let mut line = 1;
    let mut col = 1;
    for (i, ch) in src.char_indices() {
        if i >= offset {
            break;
        }
        if ch == '\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    (line, col)
}

// ---------------------------------------------------------------------------
// Spec analysis (skeletons, masks)
// ---------------------------------------------------------------------------

/// One atomic proposition of a property's temporal skeleton.
#[derive(Debug, Clone)]
pub struct AtomInfo {
    /// The atom's source expression, pretty-printed.
    pub source: String,
    /// Where the atom's code lives in the spec source.
    pub span: Span,
    /// What the atom can read.
    pub footprint: AtomFootprint,
}

/// The static analysis of one checked property.
#[derive(Debug, Clone)]
pub struct PropertyAnalysis {
    /// The property name, as written in the `check`.
    pub name: String,
    /// The atomic propositions of the skeleton, in discovery order.
    pub atoms: Vec<AtomInfo>,
    /// The temporal skeleton over atom indices into `atoms`. Statically
    /// opaque subexpressions are abstracted as atoms, so the skeleton is a
    /// sound abstraction: whatever the simplifier proves about it (for any
    /// atom valuation) holds for the real property.
    pub skeleton: Formula<usize>,
}

/// The static analysis of a compiled specification: per-property atoms and
/// skeletons, the inverted per-selector field masks, and skeleton-level
/// diagnostics. Computed once by `compile` and stored on
/// `CompiledSpec::analysis`.
#[derive(Debug, Clone, Default)]
pub struct SpecAnalysis {
    /// Analyses of the checked properties, in check order, deduplicated.
    pub properties: Vec<PropertyAnalysis>,
    /// Per-selector projection masks: the union of every atom footprint,
    /// guard footprint, and action/event target across all checks. The
    /// spec-aware fingerprint hashes exactly these projections; selectors
    /// outside this map are unobservable to the spec.
    pub masks: Arc<BTreeMap<Selector, FieldMask>>,
    /// Skeleton-level diagnostics (vacuity, unsatisfiability, unreachable
    /// branches). AST-level lints are added separately by [`lint`].
    pub diagnostics: Vec<Diagnostic>,
}

impl SpecAnalysis {
    /// Total number of atomic propositions across all analysed properties.
    #[must_use]
    pub fn atom_count(&self) -> usize {
        self.properties.iter().map(|p| p.atoms.len()).sum()
    }
}

/// Builds a property's temporal skeleton, abstracting statically opaque
/// subexpressions as atoms (deduplicated by thunk identity, mirroring the
/// evaluator's pointer-based atom equality).
struct SkeletonBuilder<'a> {
    property: &'a str,
    atoms: Vec<AtomInfo>,
    atom_ids: HashMap<(usize, usize), usize>,
    diags: Vec<Diagnostic>,
}

impl<'a> SkeletonBuilder<'a> {
    fn new(property: &'a str) -> Self {
        SkeletonBuilder {
            property,
            atoms: Vec::new(),
            atom_ids: HashMap::new(),
            diags: Vec::new(),
        }
    }

    fn leaf(&mut self, ir: &Arc<Ir>, env: &Env) -> Formula<usize> {
        let key = (Arc::as_ptr(ir) as usize, env.ptr_id());
        if let Some(&idx) = self.atom_ids.get(&key) {
            return Formula::atom(idx);
        }
        let idx = self.atoms.len();
        self.atoms.push(AtomInfo {
            source: crate::pretty::pretty_expr(&ir.to_expr()),
            span: ir.span(),
            footprint: footprint_of_ir(ir, env),
        });
        self.atom_ids.insert(key, idx);
        Formula::atom(idx)
    }

    fn thunk_leaf(&mut self, thunk: &Thunk) -> usize {
        let key = thunk.identity();
        if let Some(&idx) = self.atom_ids.get(&key) {
            return idx;
        }
        let idx = self.atoms.len();
        self.atoms.push(AtomInfo {
            source: thunk.to_string(),
            span: thunk.ir.span(),
            footprint: footprint_of_thunk(thunk),
        });
        self.atom_ids.insert(key, idx);
        idx
    }

    fn diag(&mut self, code: DiagnosticCode, span: Span, message: String) {
        self.diags.push(Diagnostic {
            code,
            span,
            message,
        });
    }

    fn build(&mut self, ir: &Arc<Ir>, env: &Env) -> Formula<usize> {
        match &**ir {
            Ir::Const(Value::Bool(b), _) => Formula::constant(*b),
            Ir::Unary {
                op: UnOp::Not,
                expr,
                ..
            } => self.build(expr, env).not(),
            Ir::Binary {
                op: op @ (BinOp::And | BinOp::Or | BinOp::Implies),
                lhs,
                rhs,
                ..
            } => {
                let l = self.build(lhs, env);
                let r = self.build(rhs, env);
                match op {
                    BinOp::And => l.and(r),
                    BinOp::Or => l.or(r),
                    BinOp::Implies => {
                        if quickltl::simplify(l.clone()).as_constant() == Some(false) {
                            self.diag(
                                DiagnosticCode::VacuousImplication,
                                lhs.span(),
                                format!(
                                    "in property `{}`: the antecedent of this implication \
                                     is statically false, so the implication always holds \
                                     and its consequent is never exercised",
                                    self.property
                                ),
                            );
                        }
                        l.implies(r)
                    }
                    _ => unreachable!("guarded by the match pattern"),
                }
            }
            Ir::Temporal {
                op, demand, body, ..
            } => {
                let b = self.build(body, env);
                // Demand values never affect constant-ness, so any stand-in
                // works for the static skeleton.
                let d = Demand(demand.unwrap_or(1));
                match op {
                    TemporalOp::Always => Formula::always(d, b),
                    TemporalOp::Eventually => {
                        if quickltl::simplify(b.clone()).as_constant() == Some(false) {
                            self.diag(
                                DiagnosticCode::UnreachableBranch,
                                body.span(),
                                format!(
                                    "in property `{}`: the body of this `eventually` is \
                                     statically false and can never be satisfied",
                                    self.property
                                ),
                            );
                        }
                        Formula::eventually(d, b)
                    }
                    TemporalOp::Next => b.next(),
                    TemporalOp::NextW => b.weak_next(),
                    TemporalOp::NextS => b.strong_next(),
                }
            }
            Ir::TemporalBin {
                until,
                demand,
                lhs,
                rhs,
                ..
            } => {
                let l = self.build(lhs, env);
                let r = self.build(rhs, env);
                let d = Demand(demand.unwrap_or(1));
                if *until && quickltl::simplify(r.clone()).as_constant() == Some(false) {
                    self.diag(
                        DiagnosticCode::UnreachableBranch,
                        rhs.span(),
                        format!(
                            "in property `{}`: the right-hand side of this `until` is \
                             statically false, so the release condition never arrives",
                            self.property
                        ),
                    );
                }
                if *until {
                    Formula::until(d, l, r)
                } else {
                    Formula::release(d, l, r)
                }
            }
            Ir::Var { depth, slot, .. } => match env.get(*depth, *slot) {
                Some(Binding::Deferred(t)) => {
                    let t = t.clone();
                    self.build(&t.ir, &t.env)
                }
                Some(Binding::Eager(Value::Bool(b))) => Formula::constant(*b),
                Some(Binding::Eager(Value::Formula(f))) => {
                    let f = f.clone();
                    f.map_atoms(&mut |t| self.thunk_leaf(&t))
                }
                _ => self.leaf(ir, env),
            },
            _ => self.leaf(ir, env),
        }
    }
}

/// The span to attach property-level diagnostics to: the property's
/// defining expression when resolvable, the synthetic reference otherwise.
fn property_root_span(thunk: &Thunk) -> Span {
    if let Ir::Var { depth, slot, .. } = &*thunk.ir {
        match thunk.env.get(*depth, *slot) {
            Some(Binding::Deferred(t)) => return t.ir.span(),
            Some(Binding::Eager(_)) | None => {}
        }
    }
    thunk.ir.span()
}

fn merge_uses(uses: &mut BTreeMap<Selector, SelectorUse>, fp: &AtomFootprint) {
    for (sel, use_) in &fp.selectors {
        uses.entry(*sel).or_default().merge(use_);
    }
}

/// Analyses a compiled specification: extracts each checked property's
/// temporal skeleton and atom footprints, inverts them into per-selector
/// field masks, and computes skeleton-level diagnostics.
///
/// Called by `compile` — consumers read the result from
/// `CompiledSpec::analysis`.
#[must_use]
pub fn analyze_compiled(compiled: &CompiledSpec) -> SpecAnalysis {
    let mut analysis = SpecAnalysis::default();
    let mut uses: BTreeMap<Selector, SelectorUse> = BTreeMap::new();
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for check in &compiled.checks {
        for prop in &check.properties {
            if !seen.insert(prop) {
                continue;
            }
            let Some(thunk) = compiled.property_thunk(prop) else {
                continue;
            };
            let mut builder = SkeletonBuilder::new(prop);
            let skeleton = builder.build(&thunk.ir, &thunk.env);
            match quickltl::simplify(skeleton.clone()).as_constant() {
                Some(true) => analysis.diagnostics.push(Diagnostic {
                    code: DiagnosticCode::TautologicalProperty,
                    span: property_root_span(&thunk),
                    message: format!(
                        "property `{prop}` simplifies to true — it can never fail, \
                         so checking it is vacuous"
                    ),
                }),
                Some(false) => analysis.diagnostics.push(Diagnostic {
                    code: DiagnosticCode::UnsatisfiableProperty,
                    span: property_root_span(&thunk),
                    message: format!("property `{prop}` simplifies to false — it can never pass"),
                }),
                None => {}
            }
            for atom in &builder.atoms {
                merge_uses(&mut uses, &atom.footprint);
            }
            analysis.diagnostics.append(&mut builder.diags);
            analysis.properties.push(PropertyAnalysis {
                name: prop.clone(),
                atoms: builder.atoms,
                skeleton,
            });
        }
        for name in check.actions.iter().chain(&check.events) {
            let Some(action) = compiled.actions.get(name) else {
                continue; // built-ins (`noop!`, `reload!`, `loaded?`)
            };
            if let Some(sel) = &action.selector {
                uses.entry(*sel).or_default();
            }
            if let Some(guard) = &action.guard {
                merge_uses(&mut uses, &footprint_of_thunk(guard));
            }
        }
    }
    analysis.masks = Arc::new(
        uses.iter()
            .map(|(sel, use_)| (*sel, use_.field_mask()))
            .collect(),
    );
    analysis
}

// ---------------------------------------------------------------------------
// Lints
// ---------------------------------------------------------------------------

/// All diagnostics for a specification: the skeleton-level diagnostics
/// from [`analyze_compiled`] plus AST-level lints — unused `let`/`fun`
/// bindings, actions and events never referenced by any check, and
/// selectors that are instrumented but never read.
///
/// A spec without any `check` item gets no unused-* lints (a library file
/// defines things for other specs to use), only skeleton diagnostics
/// (which are also empty, since there are no checked properties).
///
/// Sorted by source position.
#[must_use]
pub fn lint(spec: &Spec, compiled: &CompiledSpec) -> Vec<Diagnostic> {
    let mut diags = compiled.analysis.diagnostics.clone();
    if let Some(roots) = explicit_roots(spec) {
        let mut collector = Collector::new(spec);
        for root in &roots {
            collector.visit_name(root);
        }
        for item in &spec.items {
            let Some(name) = item.name() else { continue };
            // Shadowed duplicates share a name but only the binding the
            // collector resolves (the last) can be reached.
            let reached = collector.visited.contains(name)
                && collector
                    .by_name
                    .get(name)
                    .is_some_and(|&resolved| std::ptr::eq(resolved, item));
            if reached {
                continue;
            }
            match item {
                Item::Let(_) | Item::Fun { .. } => diags.push(Diagnostic {
                    code: DiagnosticCode::UnusedBinding,
                    span: item.span(),
                    message: format!("`{name}` is never used by any check"),
                }),
                Item::Action { .. } => diags.push(Diagnostic {
                    code: DiagnosticCode::UnusedAction,
                    span: item.span(),
                    message: format!("`{name}` is never referenced by any check"),
                }),
                Item::Check { .. } => {}
            }
        }
        for (sel, span) in &collector.selector_spans {
            if !compiled.analysis.masks.contains_key(sel) {
                diags.push(Diagnostic {
                    code: DiagnosticCode::UnusedSelector,
                    span: *span,
                    message: format!(
                        "selector `{sel}` is instrumented but no property, guard, \
                         or action target ever reads it"
                    ),
                });
            }
        }
    }
    diags.sort_by_key(|d| (d.span.start, d.span.end, d.code));
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_spec;
    use crate::spec::load;

    fn deps(src: &str) -> Vec<String> {
        dependencies(&parse_spec(src).unwrap())
            .into_iter()
            .map(|s| s.as_str().to_owned())
            .collect()
    }

    #[test]
    fn direct_dependencies() {
        let got = deps(
            "let ~stopped = `#toggle`.text == \"start\";\n\
             check stopped;",
        );
        assert_eq!(got, vec!["#toggle"]);
    }

    #[test]
    fn indirect_dependencies_through_bindings() {
        let got = deps(
            "let ~t = `#toggle`.enabled;\n\
             let ~u = if t {0} else {1};\n\
             let ~p = u == 0;\n\
             check p;",
        );
        assert_eq!(got, vec!["#toggle"]);
    }

    #[test]
    fn action_guards_and_bodies_are_included() {
        let got = deps(
            "let ~stopped = `#toggle`.text == \"start\";\n\
             action start! = click!(`#start-btn`) when stopped;\n\
             let ~p = true;\n\
             check p;",
        );
        // Unrestricted check: the action's body and guard selectors count.
        assert_eq!(got, vec!["#start-btn", "#toggle"]);
    }

    #[test]
    fn with_list_restricts_action_roots() {
        let got = deps(
            "action a! = click!(`#a`);\n\
             action b! = click!(`#b`);\n\
             let ~p = true;\n\
             check p with a!;",
        );
        assert_eq!(got, vec!["#a"]);
    }

    #[test]
    fn unreached_bindings_are_excluded() {
        let got = deps(
            "let ~unused = `#nope`.text;\n\
             let ~p = `#used`.present;\n\
             check p with noop!;",
        );
        assert_eq!(got, vec!["#used"]);
    }

    #[test]
    fn functions_are_traversed() {
        let got = deps(
            "fun firstText(s) = s;\n\
             let ~p = firstText(`#x`.text) == \"1\";\n\
             check p with noop!;",
        );
        assert_eq!(got, vec!["#x"]);
    }

    #[test]
    fn no_check_analyses_everything() {
        let got = deps("let ~a = `#one`.present; let ~b = `#two`.present;");
        assert_eq!(got, vec!["#one", "#two"]);
    }

    #[test]
    fn dependencies_of_specific_roots() {
        let spec = parse_spec(
            "let ~a = `#one`.present;\n\
             let ~b = `#two`.present;",
        )
        .unwrap();
        let got = dependencies_of(&spec, &["a".to_owned()]);
        assert_eq!(got.len(), 1);
        assert!(got.contains(&Selector::new("#one")));
    }

    // --- footprints -------------------------------------------------------

    /// The footprint of the single checked property of `src`.
    fn property_footprint(src: &str, prop: &str) -> AtomFootprint {
        let compiled = load(src).unwrap();
        let thunk = compiled.property_thunk(prop).expect("property exists");
        footprint_of_thunk(&thunk)
    }

    fn selector_use(fp: &AtomFootprint, sel: &str) -> SelectorUse {
        fp.selectors
            .get(&Selector::new(sel))
            .cloned()
            .unwrap_or_else(|| panic!("selector {sel} not in footprint {fp:?}"))
    }

    #[test]
    fn footprint_tracks_exact_fields() {
        let fp = property_footprint(
            "let ~p = `#a`.text == \"x\" && `#b`.enabled;\n\
             check p with noop!;",
            "p",
        );
        assert_eq!(
            selector_use(&fp, "#a"),
            SelectorUse {
                fields: [sym::TEXT].into_iter().collect(),
                all_fields: false
            }
        );
        assert_eq!(
            selector_use(&fp, "#b"),
            SelectorUse {
                fields: [sym::ENABLED].into_iter().collect(),
                all_fields: false
            }
        );
        assert!(!fp.reads_happened);
    }

    #[test]
    fn footprint_count_and_present_are_match_list_only() {
        let fp = property_footprint("let ~p = `#a`.count == 1 && `#b`.present; check p;", "p");
        assert_eq!(selector_use(&fp, "#a"), SelectorUse::default());
        assert_eq!(selector_use(&fp, "#b"), SelectorUse::default());
    }

    #[test]
    fn footprint_texts_builtin_reads_text() {
        let fp = property_footprint("let ~p = texts(`#list`) == [\"x\"]; check p;", "p");
        assert_eq!(
            selector_use(&fp, "#list"),
            SelectorUse {
                fields: [sym::TEXT].into_iter().collect(),
                all_fields: false
            }
        );
    }

    #[test]
    fn footprint_escaping_selector_spills_to_all_fields() {
        // `.all` materialises full element records.
        let fp = property_footprint("let ~p = length(`#rows`.all) > 0; check p;", "p");
        assert!(selector_use(&fp, "#rows").all_fields);
        // Indexing does too.
        let fp = property_footprint("let ~p = `#rows`[0] == null; check p;", "p");
        assert!(selector_use(&fp, "#rows").all_fields);
    }

    #[test]
    fn footprint_happened_is_tracked() {
        let fp = property_footprint(
            "action tick! = noop!;\n\
             let ~p = tick! in happened;\n\
             check p with tick!;",
            "p",
        );
        assert!(fp.reads_happened);
    }

    #[test]
    fn footprint_follows_bindings_and_functions() {
        let fp = property_footprint(
            "fun txt(s) = s.text;\n\
             let ~mid = txt(`#x`);\n\
             let ~p = mid == \"1\";\n\
             check p;",
            "p",
        );
        assert_eq!(
            selector_use(&fp, "#x"),
            SelectorUse {
                fields: [sym::TEXT].into_iter().collect(),
                all_fields: false
            }
        );
    }

    #[test]
    fn footprint_temporal_bodies_are_included() {
        let fp = property_footprint("let ~p = always (`#a`.visible); check p;", "p");
        assert_eq!(
            selector_use(&fp, "#a"),
            SelectorUse {
                fields: [sym::VISIBLE].into_iter().collect(),
                all_fields: false
            }
        );
    }

    // --- spec analysis ----------------------------------------------------

    #[test]
    fn analysis_masks_cover_atoms_guards_and_targets() {
        let compiled = load(
            "let ~ready = `#status`.text == \"ok\";\n\
             action go! = click!(`#go`) when ready;\n\
             let ~p = always (`#done`.visible);\n\
             check p with go!;",
        )
        .unwrap();
        let masks = &compiled.analysis.masks;
        assert!(masks.get(&Selector::new("#status")).unwrap().text);
        assert!(masks.get(&Selector::new("#done")).unwrap().visible);
        // The click target is observable (count-only mask).
        let target = masks.get(&Selector::new("#go")).unwrap();
        assert!(!target.any());
    }

    #[test]
    fn analysis_finds_tautological_property() {
        let compiled = load("let ~p = always (true || `#x`.visible); check p;").unwrap();
        let codes: Vec<_> = compiled
            .analysis
            .diagnostics
            .iter()
            .map(|d| d.code)
            .collect();
        assert!(
            codes.contains(&DiagnosticCode::TautologicalProperty),
            "{codes:?}"
        );
    }

    #[test]
    fn analysis_finds_vacuous_implication() {
        let compiled =
            load("let ~p = always ((false && `#x`.visible) ==> `#y`.visible); check p;").unwrap();
        let codes: Vec<_> = compiled
            .analysis
            .diagnostics
            .iter()
            .map(|d| d.code)
            .collect();
        assert!(
            codes.contains(&DiagnosticCode::VacuousImplication),
            "{codes:?}"
        );
    }

    #[test]
    fn analysis_clean_spec_has_no_diagnostics() {
        let compiled = load(
            "let ~p = always (`#x`.visible ==> `#y`.visible);\n\
             check p with noop!;",
        )
        .unwrap();
        assert!(compiled.analysis.diagnostics.is_empty());
        assert_eq!(compiled.analysis.atom_count(), 2);
    }

    // --- lints ------------------------------------------------------------

    fn lint_codes(src: &str) -> Vec<DiagnosticCode> {
        let spec = parse_spec(src).unwrap();
        let compiled = crate::spec::compile(&spec).unwrap();
        lint(&spec, &compiled).into_iter().map(|d| d.code).collect()
    }

    #[test]
    fn lint_unused_binding() {
        let codes = lint_codes(
            "let ~dead = `#gone`.text;\n\
             let ~p = `#x`.present;\n\
             check p with noop!;",
        );
        // The dead binding is flagged; its selector is unreachable, so it
        // is *not* additionally an unused selector (it is not instrumented).
        assert_eq!(codes, vec![DiagnosticCode::UnusedBinding]);
    }

    #[test]
    fn lint_unused_action() {
        let codes = lint_codes(
            "action a! = click!(`#a`);\n\
             action b! = click!(`#b`);\n\
             let ~p = `#x`.present;\n\
             check p with a!;",
        );
        assert_eq!(codes, vec![DiagnosticCode::UnusedAction]);
    }

    #[test]
    fn lint_unused_selector() {
        // `#noise` is reachable (instrumented) through the action's timeout
        // guard expression but its element state is never read by the
        // property or guard.
        let codes = lint_codes(
            "let ~p = if `#cond`.present {`#x`.present} else {`#x`.present};\n\
             check p with noop!;",
        );
        assert!(codes.is_empty(), "{codes:?}");
    }

    #[test]
    fn lint_clean_on_library_spec() {
        // No check: library file, no unused-* lints.
        let codes = lint_codes("let ~dead = `#gone`.text;");
        assert!(codes.is_empty(), "{codes:?}");
    }

    #[test]
    fn lint_sorted_by_position() {
        let spec = parse_spec(
            "let ~dead1 = 1;\n\
             let ~dead2 = 2;\n\
             let ~p = `#x`.present;\n\
             check p with noop!;",
        )
        .unwrap();
        let compiled = crate::spec::compile(&spec).unwrap();
        let diags = lint(&spec, &compiled);
        assert_eq!(diags.len(), 2);
        assert!(diags[0].span.start < diags[1].span.start);
        assert!(diags[0].message.contains("dead1"));
    }

    #[test]
    fn line_col_is_one_based() {
        let src = "ab\ncd";
        assert_eq!(line_col(src, 0), (1, 1));
        assert_eq!(line_col(src, 1), (1, 2));
        assert_eq!(line_col(src, 3), (2, 1));
        assert_eq!(line_col(src, 4), (2, 2));
    }
}
