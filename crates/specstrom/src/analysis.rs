//! Static dependency analysis (§3.3).
//!
//! Before checking, Quickstrom must know which parts of the browser state
//! are relevant to the properties at hand — both to instrument the running
//! application with change listeners and to retrieve a consistent snapshot
//! in bulk. Because Specstrom guarantees termination and has no recursion,
//! a simple abstract interpretation suffices: we walk the binding graph
//! from the `check`ed properties (plus the allowable actions and declared
//! events) and collect every reachable selector literal.
//!
//! This includes *indirect* dependencies automatically: in
//! `if `#toggle`.enabled {0} else {1}` the selector literal occurs in the
//! condition and is collected when the expression is reached. The result
//! is a sound over-approximation of the precise analysis: any selector the
//! property could query is included (a selector in a dynamically dead
//! branch may be instrumented unnecessarily, which costs snapshot size but
//! never correctness).

use crate::ast::{Expr, Item, LetStmt, Spec};
use quickstrom_protocol::Selector;
use std::collections::{BTreeSet, HashMap, HashSet};

/// Collects the selectors a set of root names (transitively) depends on.
#[derive(Debug)]
struct Collector<'a> {
    by_name: HashMap<&'a str, &'a Item>,
    visited: HashSet<&'a str>,
    selectors: BTreeSet<Selector>,
}

impl<'a> Collector<'a> {
    fn new(spec: &'a Spec) -> Self {
        let mut by_name = HashMap::new();
        for item in &spec.items {
            if let Some(name) = item.name() {
                // Later bindings shadow earlier ones; keep the last.
                by_name.insert(name, item);
            }
        }
        Collector {
            by_name,
            visited: HashSet::new(),
            selectors: BTreeSet::new(),
        }
    }

    fn visit_name(&mut self, name: &str) {
        let Some(&item) = self.by_name.get(name) else {
            return; // builtins and undefined names carry no selectors
        };
        if !self.visited.insert(item.name().expect("named item")) {
            return;
        }
        match item {
            Item::Let(LetStmt { value, .. }) => self.visit_expr(value),
            Item::Fun { body, .. } => self.visit_expr(body),
            Item::Action {
                body,
                timeout,
                guard,
                ..
            } => {
                self.visit_expr(body);
                if let Some(t) = timeout {
                    self.visit_expr(t);
                }
                if let Some(g) = guard {
                    self.visit_expr(g);
                }
            }
            Item::Check { .. } => {}
        }
    }

    fn visit_expr(&mut self, expr: &Expr) {
        match expr {
            Expr::Selector(s, _) => {
                self.selectors.insert(Selector::new(s.clone()));
            }
            Expr::Var(name, _) => {
                let name = name.clone();
                self.visit_name(&name);
            }
            Expr::Lit(_, _) | Expr::Happened(_) => {}
            Expr::Call { func, args, .. } => {
                self.visit_expr(func);
                for a in args {
                    self.visit_expr(a);
                }
            }
            Expr::Unary { expr, .. } => self.visit_expr(expr),
            Expr::Binary { lhs, rhs, .. } => {
                self.visit_expr(lhs);
                self.visit_expr(rhs);
            }
            Expr::Member { obj, .. } => self.visit_expr(obj),
            Expr::Index { obj, index, .. } => {
                self.visit_expr(obj);
                self.visit_expr(index);
            }
            Expr::Array(items, _) => {
                for i in items {
                    self.visit_expr(i);
                }
            }
            Expr::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                self.visit_expr(cond);
                self.visit_expr(then_branch);
                self.visit_expr(else_branch);
            }
            Expr::Block { lets, result, .. } => {
                for l in lets {
                    self.visit_expr(&l.value);
                }
                self.visit_expr(result);
            }
            Expr::Temporal { body, .. } => self.visit_expr(body),
            Expr::TemporalBin { lhs, rhs, .. } => {
                self.visit_expr(lhs);
                self.visit_expr(rhs);
            }
        }
    }
}

/// The selectors relevant to the given root names (property and action
/// names), following the binding graph transitively.
#[must_use]
pub fn dependencies_of(spec: &Spec, roots: &[String]) -> BTreeSet<Selector> {
    let mut collector = Collector::new(spec);
    for root in roots {
        collector.visit_name(root);
    }
    collector.selectors
}

/// The selectors relevant to the whole specification: everything reachable
/// from any `check` item (its properties, its allowable actions — all
/// actions and events when unrestricted).
///
/// A specification without `check` items is analysed from every item, so
/// library files still report their selector footprint.
#[must_use]
pub fn dependencies(spec: &Spec) -> BTreeSet<Selector> {
    let mut roots: Vec<String> = Vec::new();
    let mut any_check = false;
    for item in &spec.items {
        if let Item::Check {
            properties,
            with_actions,
            ..
        } = item
        {
            any_check = true;
            roots.extend(properties.iter().cloned());
            match with_actions {
                Some(actions) => roots.extend(actions.iter().cloned()),
                None => {
                    // Unrestricted: every declared action and event may run.
                    for other in &spec.items {
                        if let Item::Action { name, .. } = other {
                            roots.push(name.clone());
                        }
                    }
                }
            }
        }
    }
    if !any_check {
        for item in &spec.items {
            if let Some(name) = item.name() {
                roots.push(name.to_owned());
            }
        }
    }
    dependencies_of(spec, &roots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_spec;

    fn deps(src: &str) -> Vec<String> {
        dependencies(&parse_spec(src).unwrap())
            .into_iter()
            .map(|s| s.as_str().to_owned())
            .collect()
    }

    #[test]
    fn direct_dependencies() {
        let got = deps(
            "let ~stopped = `#toggle`.text == \"start\";\n\
             check stopped;",
        );
        assert_eq!(got, vec!["#toggle"]);
    }

    #[test]
    fn indirect_dependencies_through_bindings() {
        let got = deps(
            "let ~t = `#toggle`.enabled;\n\
             let ~u = if t {0} else {1};\n\
             let ~p = u == 0;\n\
             check p;",
        );
        assert_eq!(got, vec!["#toggle"]);
    }

    #[test]
    fn action_guards_and_bodies_are_included() {
        let got = deps(
            "let ~stopped = `#toggle`.text == \"start\";\n\
             action start! = click!(`#start-btn`) when stopped;\n\
             let ~p = true;\n\
             check p;",
        );
        // Unrestricted check: the action's body and guard selectors count.
        assert_eq!(got, vec!["#start-btn", "#toggle"]);
    }

    #[test]
    fn with_list_restricts_action_roots() {
        let got = deps(
            "action a! = click!(`#a`);\n\
             action b! = click!(`#b`);\n\
             let ~p = true;\n\
             check p with a!;",
        );
        assert_eq!(got, vec!["#a"]);
    }

    #[test]
    fn unreached_bindings_are_excluded() {
        let got = deps(
            "let ~unused = `#nope`.text;\n\
             let ~p = `#used`.present;\n\
             check p with noop!;",
        );
        assert_eq!(got, vec!["#used"]);
    }

    #[test]
    fn functions_are_traversed() {
        let got = deps(
            "fun firstText(s) = s;\n\
             let ~p = firstText(`#x`.text) == \"1\";\n\
             check p with noop!;",
        );
        assert_eq!(got, vec!["#x"]);
    }

    #[test]
    fn no_check_analyses_everything() {
        let got = deps("let ~a = `#one`.present; let ~b = `#two`.present;");
        assert_eq!(got, vec!["#one", "#two"]);
    }

    #[test]
    fn dependencies_of_specific_roots() {
        let spec = parse_spec(
            "let ~a = `#one`.present;\n\
             let ~b = `#two`.present;",
        )
        .unwrap();
        let got = dependencies_of(&spec, &["a".to_owned()]);
        assert_eq!(got.len(), 1);
        assert!(got.contains(&Selector::new("#one")));
    }
}
