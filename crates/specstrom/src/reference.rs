//! The reference tree-walking interpreter (test/bench-only).
//!
//! This module preserves, essentially verbatim, the original Specstrom
//! interpreter that walked the surface [`Expr`] tree against a linked-list
//! environment of *named* frames compared by string equality. The
//! production path now compiles specifications to a slot-resolved IR
//! ([`mod@crate::compile`]) evaluated by [`mod@crate::eval`]; this reference
//! implementation exists so that:
//!
//! * differential property tests can pin `compiled ≡ reference` on
//!   generated expressions and on the bundled specifications, and
//! * the `eval_step` benchmark can measure what the compilation pass buys
//!   on the per-state hot path.
//!
//! It is **not** part of the supported evaluation pipeline — nothing in
//! the checker depends on it — and its semantics are frozen: change the
//! production evaluator and the differential suite will tell you whether
//! the change is observable.
//!
//! The one intentional semantic difference: the production pipeline
//! rejects *undefined names* at compile time, while this interpreter
//! discovers them at evaluation time (so `false && nope` evaluates to
//! `false` here and fails to compile there). Differential tests only
//! exercise well-resolved expressions, where the two agree.

use crate::ast::{BinOp, Expr, Item, Literal, Spec, TemporalOp, UnOp};
use crate::error::EvalError;
use crate::eval::EvalCtx;
use crate::value::Builtin;
use quickltl::{Demand, Formula};
use quickstrom_protocol::{ActionKind, ElementState, Key, Selector, StateSnapshot};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A lexical environment: a persistent chain of name bindings, looked up
/// innermost-first by string comparison.
#[derive(Debug, Clone, Default)]
pub struct Env(Option<Arc<Frame>>);

#[derive(Debug)]
struct Frame {
    name: String,
    binding: Binding,
    parent: Env,
}

impl Env {
    /// The empty environment.
    #[must_use]
    pub fn new() -> Self {
        Env(None)
    }

    /// Extends the environment with one binding.
    #[must_use]
    pub fn bind(&self, name: impl Into<String>, binding: Binding) -> Env {
        Env(Some(Arc::new(Frame {
            name: name.into(),
            binding,
            parent: self.clone(),
        })))
    }

    /// Looks a name up, innermost first.
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<&Binding> {
        let mut cur = self;
        while let Some(frame) = &cur.0 {
            if frame.name == name {
                return Some(&frame.binding);
            }
            cur = &frame.parent;
        }
        None
    }

    fn ptr_id(&self) -> usize {
        self.0.as_ref().map_or(0, |rc| Arc::as_ptr(rc) as usize)
    }
}

/// How a name is bound.
#[derive(Debug, Clone)]
pub enum Binding {
    /// Evaluated at definition time (`let x = …`).
    Eager(Value),
    /// Captured unevaluated (`let ~x = …`), re-evaluated per use.
    Deferred(Thunk),
}

/// An unevaluated expression closed over its environment.
#[derive(Clone)]
pub struct Thunk {
    /// The expression to evaluate.
    pub expr: Arc<Expr>,
    /// The captured environment.
    pub env: Env,
}

impl Thunk {
    /// Creates a thunk.
    #[must_use]
    pub fn new(expr: Arc<Expr>, env: Env) -> Self {
        Thunk { expr, env }
    }
}

impl fmt::Debug for Thunk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RefThunk({:?} @ env#{:x})",
            self.expr.span(),
            self.env.ptr_id()
        )
    }
}

impl fmt::Display for Thunk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::pretty::pretty_expr(&self.expr))
    }
}

impl PartialEq for Thunk {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.expr, &other.expr) && self.env.ptr_id() == other.env.ptr_id()
    }
}

impl Eq for Thunk {}

/// A user-defined function value.
#[derive(Debug)]
pub struct ClosureData {
    /// Function name (diagnostics only).
    pub name: String,
    /// Parameters, with deferredness.
    pub params: Vec<crate::ast::Param>,
    /// Body expression.
    pub body: Arc<Expr>,
    /// Captured environment.
    pub env: Env,
}

/// The specification of an action or event (reference flavour).
#[derive(Debug, Clone)]
pub struct ActionValue {
    /// The Specstrom name (`start!`, `tick?`), when declared.
    pub name: Option<String>,
    /// What the executor should do (actions) — `None` for pure events.
    pub kind: Option<ActionKind>,
    /// The target selector, for targeted kinds and `changed?` events.
    pub selector: Option<Selector>,
    /// Timeout in milliseconds (§3.2).
    pub timeout_ms: Option<u64>,
    /// Guard, evaluated per state.
    pub guard: Option<Thunk>,
    /// `true` for events (`…?`), `false` for user actions (`…!`).
    pub event: bool,
}

/// A runtime value of the reference interpreter. Mirrors
/// [`crate::value::Value`] with string-keyed records and source-level
/// closures/thunks.
#[derive(Debug, Clone)]
pub enum Value {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A 64-bit integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A string.
    Str(Arc<str>),
    /// A list.
    List(Arc<Vec<Value>>),
    /// A record with string keys (the original representation).
    Record(Arc<BTreeMap<String, Value>>),
    /// A CSS selector literal.
    Selector(Selector),
    /// A QuickLTL formula over source-thunk atoms.
    Formula(Formula<Thunk>),
    /// A user function.
    Closure(Arc<ClosureData>),
    /// A built-in function.
    Builtin(Builtin),
    /// An action or event specification.
    Action(Arc<ActionValue>),
}

impl Value {
    /// A string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// A list value.
    #[must_use]
    pub fn list(items: Vec<Value>) -> Value {
        Value::List(Arc::new(items))
    }

    /// A short description of the value's type, for error messages.
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::List(_) => "list",
            Value::Record(_) => "record",
            Value::Selector(_) => "selector",
            Value::Formula(_) => "formula",
            Value::Closure(_) => "function",
            Value::Builtin(_) => "function",
            Value::Action(_) => "action",
        }
    }

    /// Is this a function (closure or builtin)?
    #[must_use]
    pub fn is_function(&self) -> bool {
        matches!(self, Value::Closure(_) | Value::Builtin(_))
    }

    /// Requires a boolean.
    ///
    /// # Errors
    ///
    /// When the value is not a boolean.
    pub fn as_bool(&self) -> Result<bool, EvalError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(EvalError::new(format!(
                "expected a boolean, got {}",
                other.type_name()
            ))),
        }
    }

    /// Structural equality in the language's `==` sense.
    #[must_use]
    pub fn loosely_equals(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => {
                #[allow(clippy::cast_precision_loss)]
                let fa = *a as f64;
                fa == *b
            }
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Selector(a), Value::Selector(b)) => a == b,
            (Value::List(a), Value::List(b)) => {
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.loosely_equals(y))
            }
            (Value::Record(a), Value::Record(b)) => {
                a.len() == b.len()
                    && a.iter()
                        .zip(b.iter())
                        .all(|((ka, va), (kb, vb))| ka == kb && va.loosely_equals(vb))
            }
            (Value::Action(a), Value::Action(b)) => a.name == b.name,
            (Value::Action(a), Value::Str(s)) | (Value::Str(s), Value::Action(a)) => {
                a.name.as_deref() == Some(&**s)
            }
            _ => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(n) => write!(f, "{n}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::Record(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
            Value::Selector(sel) => write!(f, "{sel}"),
            Value::Formula(formula) => write!(f, "<formula {formula}>"),
            Value::Closure(c) => write!(f, "<fun {}>", c.name),
            Value::Builtin(b) => write!(f, "<builtin {}>", b.name()),
            Value::Action(a) => match (&a.name, &a.kind) {
                (Some(n), _) => write!(f, "<action {n}>"),
                (None, Some(k)) => write!(f, "<action <{k:?}>>"),
                (None, None) => write!(f, "<action <event>>"),
            },
        }
    }
}

/// The initial environment: builtins plus the constant actions `noop!`,
/// `reload!` and the built-in `loaded?` event (§3.2).
#[must_use]
pub fn initial_env() -> Env {
    let mut env = Env::new();
    for b in Builtin::all() {
        env = env.bind(b.name(), Binding::Eager(Value::Builtin(*b)));
    }
    env = env.bind(
        "noop!",
        Binding::Eager(Value::Action(Arc::new(ActionValue {
            name: Some("noop!".into()),
            kind: Some(ActionKind::Noop),
            selector: None,
            timeout_ms: None,
            guard: None,
            event: false,
        }))),
    );
    env = env.bind(
        "reload!",
        Binding::Eager(Value::Action(Arc::new(ActionValue {
            name: Some("reload!".into()),
            kind: Some(ActionKind::Reload),
            selector: None,
            timeout_ms: None,
            guard: None,
            event: false,
        }))),
    );
    env = env.bind(
        "loaded?",
        Binding::Eager(Value::Action(Arc::new(ActionValue {
            name: Some("loaded?".into()),
            kind: None,
            selector: None,
            timeout_ms: None,
            guard: None,
            event: true,
        }))),
    );
    env
}

/// Evaluates an expression to a value (the original tree walk).
///
/// # Errors
///
/// Returns [`EvalError`] on runtime type mismatches, state queries without
/// a state, arithmetic errors, undefined names, or fuel exhaustion.
#[allow(clippy::too_many_lines)]
pub fn eval(expr: &Arc<Expr>, env: &Env, ctx: &EvalCtx<'_>) -> Result<Value, EvalError> {
    match expr.as_ref() {
        Expr::Lit(lit, _) => Ok(match lit {
            Literal::Null => Value::Null,
            Literal::Bool(b) => Value::Bool(*b),
            Literal::Int(n) => Value::Int(*n),
            Literal::Float(x) => Value::Float(*x),
            Literal::Str(s) => Value::str(s),
        }),
        Expr::Selector(s, _) => Ok(Value::Selector(Selector::new(s))),
        Expr::Var(name, span) => match env.lookup(name) {
            Some(Binding::Eager(v)) => Ok(v.clone()),
            Some(Binding::Deferred(thunk)) => {
                let thunk = thunk.clone();
                eval(&thunk.expr, &thunk.env, ctx)
            }
            None => Err(EvalError::at(*span, format!("undefined name `{name}`"))),
        },
        Expr::Happened(_) => {
            let state = state_of(ctx)?;
            Ok(Value::list(
                state
                    .happened
                    .iter()
                    .map(|h| Value::str(h.as_str()))
                    .collect(),
            ))
        }
        Expr::Call { func, args, span } => {
            let callee = eval(func, env, ctx)?;
            match callee {
                Value::Closure(closure) => {
                    if closure.params.len() != args.len() {
                        return Err(EvalError::at(
                            *span,
                            format!(
                                "`{}` expects {} argument(s), got {}",
                                closure.name,
                                closure.params.len(),
                                args.len()
                            ),
                        ));
                    }
                    let mut call_env = closure.env.clone();
                    for (param, arg) in closure.params.iter().zip(args) {
                        let binding = if param.deferred {
                            Binding::Deferred(Thunk::new(Arc::clone(arg), env.clone()))
                        } else {
                            Binding::Eager(eval(arg, env, ctx)?)
                        };
                        call_env = call_env.bind(&param.name, binding);
                    }
                    eval(&closure.body, &call_env, ctx)
                }
                Value::Builtin(builtin) => {
                    if builtin.arity() != args.len() {
                        return Err(EvalError::at(
                            *span,
                            format!(
                                "`{}` expects {} argument(s), got {}",
                                builtin.name(),
                                builtin.arity(),
                                args.len()
                            ),
                        ));
                    }
                    let mut values = Vec::with_capacity(args.len());
                    for arg in args {
                        values.push(eval(arg, env, ctx)?);
                    }
                    apply_builtin(builtin, values, ctx)
                }
                other => Err(EvalError::at(
                    *span,
                    format!("cannot call a {}", other.type_name()),
                )),
            }
        }
        Expr::Unary {
            op,
            expr: inner,
            span,
        } => {
            let v = eval(inner, env, ctx)?;
            match op {
                UnOp::Not => match v {
                    Value::Bool(b) => Ok(Value::Bool(!b)),
                    Value::Formula(f) => Ok(Value::Formula(f.not())),
                    other => Err(EvalError::at(
                        *span,
                        format!("cannot negate a {}", other.type_name()),
                    )),
                },
                UnOp::Neg => match v {
                    Value::Int(n) => n
                        .checked_neg()
                        .map(Value::Int)
                        .ok_or_else(|| EvalError::at(*span, "integer overflow in negation")),
                    Value::Float(x) => Ok(Value::Float(-x)),
                    Value::Null => Ok(Value::Null),
                    other => Err(EvalError::at(
                        *span,
                        format!("cannot negate a {}", other.type_name()),
                    )),
                },
            }
        }
        Expr::Binary { op, lhs, rhs, span } => eval_binary(*op, lhs, rhs, env, ctx, *span),
        Expr::Member { obj, field, span } => {
            let base = eval(obj, env, ctx)?;
            member(base, field, ctx, *span)
        }
        Expr::Index { obj, index, span } => {
            let base = eval(obj, env, ctx)?;
            let idx = eval(index, env, ctx)?;
            index_value(base, idx, ctx, *span)
        }
        Expr::Array(items, _) => {
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                let v = eval(item, env, ctx)?;
                if v.is_function() {
                    return Err(EvalError::at(
                        item.span(),
                        "functions may not be placed inside data structures",
                    ));
                }
                out.push(v);
            }
            Ok(Value::list(out))
        }
        Expr::If {
            cond,
            then_branch,
            else_branch,
            span,
        } => {
            let c = eval(cond, env, ctx)?;
            match c {
                Value::Bool(true) => eval(then_branch, env, ctx),
                Value::Bool(false) => eval(else_branch, env, ctx),
                Value::Formula(_) => Err(EvalError::at(
                    *span,
                    "a temporal formula cannot be an `if` condition — conditions \
                     are evaluated at a single state",
                )),
                other => Err(EvalError::at(
                    *span,
                    format!(
                        "`if` condition must be a boolean, got {}",
                        other.type_name()
                    ),
                )),
            }
        }
        Expr::Block { lets, result, .. } => {
            let mut block_env = env.clone();
            for stmt in lets {
                let binding = if stmt.deferred {
                    Binding::Deferred(Thunk::new(Arc::clone(&stmt.value), block_env.clone()))
                } else {
                    Binding::Eager(eval(&stmt.value, &block_env, ctx)?)
                };
                block_env = block_env.bind(&stmt.name, binding);
            }
            eval(result, &block_env, ctx)
        }
        Expr::Temporal {
            op, demand, body, ..
        } => {
            let atom = Formula::Atom(Thunk::new(Arc::clone(body), env.clone()));
            let d = Demand(demand.unwrap_or(ctx.default_demand));
            Ok(Value::Formula(match op {
                TemporalOp::Always => Formula::Always(d, Box::new(atom)),
                TemporalOp::Eventually => Formula::Eventually(d, Box::new(atom)),
                TemporalOp::Next => atom.next(),
                TemporalOp::NextW => atom.weak_next(),
                TemporalOp::NextS => atom.strong_next(),
            }))
        }
        Expr::TemporalBin {
            until,
            demand,
            lhs,
            rhs,
            ..
        } => {
            let l = Formula::Atom(Thunk::new(Arc::clone(lhs), env.clone()));
            let r = Formula::Atom(Thunk::new(Arc::clone(rhs), env.clone()));
            let d = Demand(demand.unwrap_or(ctx.default_demand));
            Ok(Value::Formula(if *until {
                Formula::Until(d, Box::new(l), Box::new(r))
            } else {
                Formula::Release(d, Box::new(l), Box::new(r))
            }))
        }
    }
}

fn state_of<'s>(ctx: &EvalCtx<'s>) -> Result<&'s StateSnapshot, EvalError> {
    ctx.state.ok_or_else(|| {
        EvalError::new(
            "state-dependent expression evaluated outside a state context \
             (bind it with `let ~x = …` so it is evaluated per state)",
        )
    })
}

enum Logical {
    Plain(bool),
    Lifted(Formula<Thunk>),
}

fn as_logical(v: Value, span: crate::ast::Span) -> Result<Logical, EvalError> {
    match v {
        Value::Bool(b) => Ok(Logical::Plain(b)),
        Value::Formula(f) => Ok(Logical::Lifted(f)),
        other => Err(EvalError::at(
            span,
            format!(
                "expected a boolean or temporal formula, got {}",
                other.type_name()
            ),
        )),
    }
}

fn lift(l: Logical) -> Formula<Thunk> {
    match l {
        Logical::Plain(b) => Formula::constant(b),
        Logical::Lifted(f) => f,
    }
}

#[allow(clippy::too_many_lines)]
fn eval_binary(
    op: BinOp,
    lhs: &Arc<Expr>,
    rhs: &Arc<Expr>,
    env: &Env,
    ctx: &EvalCtx<'_>,
    span: crate::ast::Span,
) -> Result<Value, EvalError> {
    match op {
        BinOp::And => {
            let l = as_logical(eval(lhs, env, ctx)?, lhs.span())?;
            match l {
                Logical::Plain(false) => Ok(Value::Bool(false)),
                Logical::Plain(true) => {
                    let r = as_logical(eval(rhs, env, ctx)?, rhs.span())?;
                    Ok(match r {
                        Logical::Plain(b) => Value::Bool(b),
                        Logical::Lifted(f) => Value::Formula(f),
                    })
                }
                Logical::Lifted(f) => {
                    let r = as_logical(eval(rhs, env, ctx)?, rhs.span())?;
                    Ok(Value::Formula(f.and(lift(r))))
                }
            }
        }
        BinOp::Or => {
            let l = as_logical(eval(lhs, env, ctx)?, lhs.span())?;
            match l {
                Logical::Plain(true) => Ok(Value::Bool(true)),
                Logical::Plain(false) => {
                    let r = as_logical(eval(rhs, env, ctx)?, rhs.span())?;
                    Ok(match r {
                        Logical::Plain(b) => Value::Bool(b),
                        Logical::Lifted(f) => Value::Formula(f),
                    })
                }
                Logical::Lifted(f) => {
                    let r = as_logical(eval(rhs, env, ctx)?, rhs.span())?;
                    Ok(Value::Formula(f.or(lift(r))))
                }
            }
        }
        BinOp::Implies => {
            let l = as_logical(eval(lhs, env, ctx)?, lhs.span())?;
            match l {
                Logical::Plain(false) => Ok(Value::Bool(true)),
                Logical::Plain(true) => {
                    let r = as_logical(eval(rhs, env, ctx)?, rhs.span())?;
                    Ok(match r {
                        Logical::Plain(b) => Value::Bool(b),
                        Logical::Lifted(f) => Value::Formula(f),
                    })
                }
                Logical::Lifted(f) => {
                    let r = as_logical(eval(rhs, env, ctx)?, rhs.span())?;
                    Ok(Value::Formula(f.implies(lift(r))))
                }
            }
        }
        BinOp::Eq | BinOp::Ne => {
            let l = eval(lhs, env, ctx)?;
            let r = eval(rhs, env, ctx)?;
            let eq = l.loosely_equals(&r);
            Ok(Value::Bool(if op == BinOp::Eq { eq } else { !eq }))
        }
        BinOp::In => {
            let l = eval(lhs, env, ctx)?;
            let r = eval(rhs, env, ctx)?;
            match r {
                Value::List(items) => Ok(Value::Bool(items.iter().any(|i| i.loosely_equals(&l)))),
                Value::Str(haystack) => match l {
                    Value::Str(needle) => Ok(Value::Bool(haystack.contains(&*needle))),
                    other => Err(EvalError::at(
                        span,
                        format!("cannot search for {} in a string", other.type_name()),
                    )),
                },
                other => Err(EvalError::at(
                    span,
                    format!("`in` expects a list or string, got {}", other.type_name()),
                )),
            }
        }
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let l = eval(lhs, env, ctx)?;
            let r = eval(rhs, env, ctx)?;
            let ord = compare(&l, &r, span)?;
            Ok(Value::Bool(match (op, ord) {
                (_, None) => false,
                (BinOp::Lt, Some(o)) => o.is_lt(),
                (BinOp::Le, Some(o)) => o.is_le(),
                (BinOp::Gt, Some(o)) => o.is_gt(),
                (BinOp::Ge, Some(o)) => o.is_ge(),
                _ => unreachable!("comparison ops only"),
            }))
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
            let l = eval(lhs, env, ctx)?;
            let r = eval(rhs, env, ctx)?;
            arith(op, l, r, span)
        }
    }
}

fn compare(
    l: &Value,
    r: &Value,
    span: crate::ast::Span,
) -> Result<Option<std::cmp::Ordering>, EvalError> {
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => Ok(Some(a.cmp(b))),
        (Value::Str(a), Value::Str(b)) => Ok(Some(a.cmp(b))),
        (Value::Float(a), Value::Float(b)) => Ok(a.partial_cmp(b)),
        (Value::Int(a), Value::Float(b)) =>
        {
            #[allow(clippy::cast_precision_loss)]
            Ok((*a as f64).partial_cmp(b))
        }
        (Value::Float(a), Value::Int(b)) =>
        {
            #[allow(clippy::cast_precision_loss)]
            Ok(a.partial_cmp(&(*b as f64)))
        }
        (Value::Null, _) | (_, Value::Null) => Ok(None),
        _ => Err(EvalError::at(
            span,
            format!("cannot compare {} with {}", l.type_name(), r.type_name()),
        )),
    }
}

fn arith(op: BinOp, l: Value, r: Value, span: crate::ast::Span) -> Result<Value, EvalError> {
    match (op, &l, &r) {
        (_, Value::Null, _) | (_, _, Value::Null) => Ok(Value::Null),
        (BinOp::Add, Value::Str(a), Value::Str(b)) => Ok(Value::str(format!("{a}{b}"))),
        (BinOp::Add, Value::Str(a), Value::Int(b)) => Ok(Value::str(format!("{a}{b}"))),
        (BinOp::Add, Value::Int(a), Value::Str(b)) => Ok(Value::str(format!("{a}{b}"))),
        (BinOp::Add, Value::Str(a), Value::Float(b)) => Ok(Value::str(format!("{a}{b}"))),
        (BinOp::Add, Value::Float(a), Value::Str(b)) => Ok(Value::str(format!("{a}{b}"))),
        (_, Value::Int(a), Value::Int(b)) => {
            let out = match op {
                BinOp::Add => a.checked_add(*b),
                BinOp::Sub => a.checked_sub(*b),
                BinOp::Mul => a.checked_mul(*b),
                BinOp::Div => {
                    if *b == 0 {
                        return Err(EvalError::at(span, "division by zero"));
                    }
                    a.checked_div(*b)
                }
                BinOp::Mod => {
                    if *b == 0 {
                        return Err(EvalError::at(span, "remainder by zero"));
                    }
                    a.checked_rem(*b)
                }
                _ => unreachable!("arith ops only"),
            };
            out.map(Value::Int)
                .ok_or_else(|| EvalError::at(span, "integer overflow"))
        }
        (_, a, b) => {
            let fa = to_f64(a, span)?;
            let fb = to_f64(b, span)?;
            let out = match op {
                BinOp::Add => fa + fb,
                BinOp::Sub => fa - fb,
                BinOp::Mul => fa * fb,
                BinOp::Div => fa / fb,
                BinOp::Mod => fa % fb,
                _ => unreachable!("arith ops only"),
            };
            Ok(Value::Float(out))
        }
    }
}

fn to_f64(v: &Value, span: crate::ast::Span) -> Result<f64, EvalError> {
    match v {
        #[allow(clippy::cast_precision_loss)]
        Value::Int(n) => Ok(*n as f64),
        Value::Float(x) => Ok(*x),
        other => Err(EvalError::at(
            span,
            format!("arithmetic on a {}", other.type_name()),
        )),
    }
}

/// Converts an [`ElementState`] into a string-keyed record, re-hashing
/// every field name — the cost the compiled path eliminates.
#[must_use]
pub fn element_record(element: &ElementState) -> Value {
    let mut fields = BTreeMap::new();
    fields.insert("text".to_owned(), Value::str(&element.text));
    fields.insert("value".to_owned(), Value::str(&element.value));
    fields.insert("checked".to_owned(), Value::Bool(element.checked));
    fields.insert("enabled".to_owned(), Value::Bool(element.enabled));
    fields.insert("visible".to_owned(), Value::Bool(element.visible));
    fields.insert("focused".to_owned(), Value::Bool(element.focused));
    fields.insert(
        "classes".to_owned(),
        Value::list(element.classes.iter().map(Value::str).collect()),
    );
    let attrs: BTreeMap<String, Value> = element
        .attributes
        .iter()
        .map(|(k, v)| (k.as_str().to_owned(), Value::str(v)))
        .collect();
    fields.insert("attributes".to_owned(), Value::Record(Arc::new(attrs)));
    Value::Record(Arc::new(fields))
}

fn query<'s>(
    ctx: &EvalCtx<'s>,
    selector: &Selector,
    span: crate::ast::Span,
) -> Result<&'s [ElementState], EvalError> {
    let state = state_of(ctx)?;
    if let Some(elements) = state.queries.get(selector) {
        Ok(elements)
    } else {
        Err(EvalError::at(
            span,
            format!(
                "selector {selector} was not instrumented — it escaped the \
                 dependency analysis; report this as a bug"
            ),
        ))
    }
}

fn member(
    base: Value,
    field: &str,
    ctx: &EvalCtx<'_>,
    span: crate::ast::Span,
) -> Result<Value, EvalError> {
    match base {
        Value::Selector(selector) => {
            let elements = query(ctx, &selector, span)?;
            match field {
                "count" => Ok(Value::Int(
                    i64::try_from(elements.len()).unwrap_or(i64::MAX),
                )),
                "present" => Ok(Value::Bool(!elements.is_empty())),
                "all" => Ok(Value::list(elements.iter().map(element_record).collect())),
                projection => match elements.first() {
                    None => Ok(Value::Null),
                    Some(first) => {
                        let record = element_record(first);
                        match &record {
                            Value::Record(fields) => match fields.get(projection) {
                                Some(v) => Ok(v.clone()),
                                None => Err(EvalError::at(
                                    span,
                                    format!("unknown element projection `.{projection}`"),
                                )),
                            },
                            _ => unreachable!("element_record returns a record"),
                        }
                    }
                },
            }
        }
        Value::Record(fields) => Ok(fields.get(field).cloned().unwrap_or(Value::Null)),
        Value::Null => Ok(Value::Null),
        other => Err(EvalError::at(
            span,
            format!("cannot access `.{field}` on a {}", other.type_name()),
        )),
    }
}

fn index_value(
    base: Value,
    idx: Value,
    ctx: &EvalCtx<'_>,
    span: crate::ast::Span,
) -> Result<Value, EvalError> {
    match (base, idx) {
        (Value::List(items), Value::Int(i)) => {
            let i = usize::try_from(i).ok();
            Ok(i.and_then(|i| items.get(i).cloned()).unwrap_or(Value::Null))
        }
        (Value::Selector(selector), Value::Int(i)) => {
            let elements = query(ctx, &selector, span)?;
            let i = usize::try_from(i).ok();
            Ok(i.and_then(|i| elements.get(i))
                .map(element_record)
                .unwrap_or(Value::Null))
        }
        (Value::Record(fields), Value::Str(key)) => {
            Ok(fields.get(&*key).cloned().unwrap_or(Value::Null))
        }
        (Value::Null, _) => Ok(Value::Null),
        (base, idx) => Err(EvalError::at(
            span,
            format!(
                "cannot index a {} with a {}",
                base.type_name(),
                idx.type_name()
            ),
        )),
    }
}

fn apply_function(f: &Value, args: Vec<Value>, ctx: &EvalCtx<'_>) -> Result<Value, EvalError> {
    match f {
        Value::Closure(closure) => {
            if closure.params.len() != args.len() {
                return Err(EvalError::new(format!(
                    "`{}` expects {} argument(s), got {}",
                    closure.name,
                    closure.params.len(),
                    args.len()
                )));
            }
            let mut call_env = closure.env.clone();
            for (param, arg) in closure.params.iter().zip(args) {
                if param.deferred {
                    return Err(EvalError::new(format!(
                        "function `{}` with deferred parameter `~{}` cannot be \
                         passed to a higher-order builtin",
                        closure.name, param.name
                    )));
                }
                call_env = call_env.bind(&param.name, Binding::Eager(arg));
            }
            eval(&closure.body, &call_env, ctx)
        }
        Value::Builtin(b) => apply_builtin(*b, args, ctx),
        other => Err(EvalError::new(format!(
            "expected a function, got {}",
            other.type_name()
        ))),
    }
}

fn expect_list(v: &Value, what: &str) -> Result<Arc<Vec<Value>>, EvalError> {
    match v {
        Value::List(items) => Ok(Arc::clone(items)),
        other => Err(EvalError::new(format!(
            "{what} expects a list, got {}",
            other.type_name()
        ))),
    }
}

fn expect_selector(v: Value, what: &str) -> Result<Selector, EvalError> {
    match v {
        Value::Selector(s) => Ok(s),
        other => Err(EvalError::new(format!(
            "{what} expects a selector, got {}",
            other.type_name()
        ))),
    }
}

fn mk_action(kind: ActionKind, selector: Selector) -> Value {
    Value::Action(Arc::new(ActionValue {
        name: None,
        kind: Some(kind),
        selector: Some(selector),
        timeout_ms: None,
        guard: None,
        event: false,
    }))
}

#[allow(clippy::too_many_lines)]
fn apply_builtin(
    builtin: Builtin,
    mut args: Vec<Value>,
    ctx: &EvalCtx<'_>,
) -> Result<Value, EvalError> {
    match builtin {
        Builtin::ParseInt => Ok(match &args[0] {
            Value::Str(s) => s
                .trim()
                .parse::<i64>()
                .map(Value::Int)
                .unwrap_or(Value::Null),
            Value::Int(n) => Value::Int(*n),
            #[allow(clippy::cast_possible_truncation)]
            Value::Float(x) => Value::Int(x.trunc() as i64),
            _ => Value::Null,
        }),
        Builtin::ParseFloat => Ok(match &args[0] {
            Value::Str(s) => s
                .trim()
                .parse::<f64>()
                .map(Value::Float)
                .unwrap_or(Value::Null),
            #[allow(clippy::cast_precision_loss)]
            Value::Int(n) => Value::Float(*n as f64),
            Value::Float(x) => Value::Float(*x),
            _ => Value::Null,
        }),
        Builtin::Length => match &args[0] {
            Value::List(items) => Ok(Value::Int(i64::try_from(items.len()).unwrap_or(i64::MAX))),
            Value::Str(s) => Ok(Value::Int(
                i64::try_from(s.chars().count()).unwrap_or(i64::MAX),
            )),
            other => Err(EvalError::new(format!(
                "length expects a list or string, got {}",
                other.type_name()
            ))),
        },
        Builtin::Contains => {
            let needle = args.pop().expect("arity 2");
            match &args[0] {
                Value::List(items) => {
                    Ok(Value::Bool(items.iter().any(|i| i.loosely_equals(&needle))))
                }
                Value::Str(s) => match needle {
                    Value::Str(n) => Ok(Value::Bool(s.contains(&*n))),
                    other => Err(EvalError::new(format!(
                        "contains on a string expects a string, got {}",
                        other.type_name()
                    ))),
                },
                other => Err(EvalError::new(format!(
                    "contains expects a list or string, got {}",
                    other.type_name()
                ))),
            }
        }
        Builtin::Trim => match &args[0] {
            Value::Str(s) => Ok(Value::str(s.trim())),
            Value::Null => Ok(Value::Null),
            other => Err(EvalError::new(format!(
                "trim expects a string, got {}",
                other.type_name()
            ))),
        },
        Builtin::StartsWith | Builtin::EndsWith => {
            let suffix = args.pop().expect("arity 2");
            match (&args[0], &suffix) {
                (Value::Str(s), Value::Str(p)) => {
                    Ok(Value::Bool(if builtin == Builtin::StartsWith {
                        s.starts_with(&**p)
                    } else {
                        s.ends_with(&**p)
                    }))
                }
                _ => Err(EvalError::new("startsWith/endsWith expect two strings")),
            }
        }
        Builtin::Map => {
            let xs = expect_list(&args[1], "map")?;
            let f = &args[0];
            let mut out = Vec::with_capacity(xs.len());
            for x in xs.iter() {
                out.push(apply_function(f, vec![x.clone()], ctx)?);
            }
            Ok(Value::list(out))
        }
        Builtin::Filter => {
            let xs = expect_list(&args[1], "filter")?;
            let f = &args[0];
            let mut out = Vec::new();
            for x in xs.iter() {
                if apply_function(f, vec![x.clone()], ctx)?.as_bool()? {
                    out.push(x.clone());
                }
            }
            Ok(Value::list(out))
        }
        Builtin::All => {
            let xs = expect_list(&args[1], "all")?;
            let f = &args[0];
            for x in xs.iter() {
                if !apply_function(f, vec![x.clone()], ctx)?.as_bool()? {
                    return Ok(Value::Bool(false));
                }
            }
            Ok(Value::Bool(true))
        }
        Builtin::Any => {
            let xs = expect_list(&args[1], "any")?;
            let f = &args[0];
            for x in xs.iter() {
                if apply_function(f, vec![x.clone()], ctx)?.as_bool()? {
                    return Ok(Value::Bool(true));
                }
            }
            Ok(Value::Bool(false))
        }
        Builtin::Append => {
            let x = args.pop().expect("arity 2");
            if x.is_function() {
                return Err(EvalError::new(
                    "functions may not be placed inside data structures",
                ));
            }
            let xs = expect_list(&args[0], "append")?;
            let mut out = (*xs).clone();
            out.push(x);
            Ok(Value::list(out))
        }
        Builtin::Zip => {
            let ys = expect_list(&args[1], "zip")?;
            let xs = expect_list(&args[0], "zip")?;
            Ok(Value::list(
                xs.iter()
                    .zip(ys.iter())
                    .map(|(x, y)| Value::list(vec![x.clone(), y.clone()]))
                    .collect(),
            ))
        }
        Builtin::Texts => {
            let selector = expect_selector(args.remove(0), "texts")?;
            let elements = query(ctx, &selector, crate::ast::Span::default())?;
            Ok(Value::list(
                elements.iter().map(|e| Value::str(&e.text)).collect(),
            ))
        }
        Builtin::MkClick => {
            let sel = expect_selector(args.remove(0), "click!")?;
            Ok(mk_action(ActionKind::Click, sel))
        }
        Builtin::MkDblClick => {
            let sel = expect_selector(args.remove(0), "dblclick!")?;
            Ok(mk_action(ActionKind::DblClick, sel))
        }
        Builtin::MkFocus => {
            let sel = expect_selector(args.remove(0), "focus!")?;
            Ok(mk_action(ActionKind::Focus, sel))
        }
        Builtin::MkInput => {
            let sel = expect_selector(args.remove(0), "input!")?;
            Ok(mk_action(ActionKind::Input(None), sel))
        }
        Builtin::MkKeyPress => {
            let key = args.pop().expect("arity 2");
            let sel = expect_selector(args.remove(0), "keypress!")?;
            let key = match key {
                Value::Str(s) => match &*s {
                    "Enter" => Key::Enter,
                    "Escape" => Key::Escape,
                    other if other.chars().count() == 1 => {
                        Key::Char(other.chars().next().expect("len 1"))
                    }
                    other => {
                        return Err(EvalError::new(format!("unknown key {other:?}")));
                    }
                },
                other => {
                    return Err(EvalError::new(format!(
                        "keypress! expects a key string, got {}",
                        other.type_name()
                    )))
                }
            };
            Ok(mk_action(ActionKind::KeyPress(key), sel))
        }
        Builtin::MkChanged => {
            let sel = expect_selector(args.remove(0), "changed?")?;
            Ok(Value::Action(Arc::new(ActionValue {
                name: None,
                kind: None,
                selector: Some(sel),
                timeout_ms: None,
                guard: None,
                event: true,
            })))
        }
    }
}

/// Coerces a value into a formula: booleans become constants, formulae pass
/// through.
///
/// # Errors
///
/// When the value is neither.
pub fn to_formula(v: Value) -> Result<Formula<Thunk>, EvalError> {
    match v {
        Value::Bool(b) => Ok(Formula::constant(b)),
        Value::Formula(f) => Ok(f),
        other => Err(EvalError::new(format!(
            "expected a boolean or temporal formula, got {}",
            other.type_name()
        ))),
    }
}

/// Expands a thunk atom at the current state — the reference counterpart of
/// [`crate::eval::expand_thunk`].
///
/// # Errors
///
/// Propagates evaluation errors and non-logical results.
pub fn expand_thunk(thunk: &Thunk, ctx: &EvalCtx<'_>) -> Result<Formula<Thunk>, EvalError> {
    to_formula(eval(&thunk.expr, &thunk.env, ctx)?)
}

/// The reference counterpart of a compiled specification: the top-level
/// environment built by the original item-by-item `bind` loop.
#[derive(Debug)]
pub struct RefCompiled {
    /// The top-level environment (builtins + all item bindings).
    pub env: Env,
}

impl RefCompiled {
    /// A thunk that evaluates the named top-level binding.
    #[must_use]
    pub fn property_thunk(&self, name: &str) -> Option<Thunk> {
        self.env.lookup(name)?;
        let expr = Arc::new(Expr::Var(name.to_owned(), crate::ast::Span::default()));
        Some(Thunk::new(expr, self.env.clone()))
    }
}

/// Builds the reference top-level environment for a parsed specification —
/// the original definition-time loop of `spec::compile`, without action
/// registration or dependency analysis (which are unchanged between the
/// pipelines).
///
/// # Errors
///
/// Returns definition-time evaluation errors (e.g. an eager top-level
/// binding that queries state).
pub fn compile_env(spec: &Spec) -> Result<RefCompiled, EvalError> {
    let mut env = initial_env();
    let ctx = EvalCtx::stateless(0);
    for item in &spec.items {
        match item {
            Item::Let(stmt) => {
                let binding = if stmt.deferred {
                    Binding::Deferred(Thunk::new(Arc::clone(&stmt.value), env.clone()))
                } else {
                    Binding::Eager(eval(&stmt.value, &env, &ctx)?)
                };
                env = env.bind(&stmt.name, binding);
            }
            Item::Fun {
                name, params, body, ..
            } => {
                let closure = Value::Closure(Arc::new(ClosureData {
                    name: name.clone(),
                    params: params.clone(),
                    body: Arc::clone(body),
                    env: env.clone(),
                }));
                env = env.bind(name, Binding::Eager(closure));
            }
            Item::Action {
                name,
                body,
                timeout,
                guard,
                ..
            } => {
                let base = eval(body, &env, &ctx)?;
                let Value::Action(base) = base else {
                    return Err(EvalError::new(format!(
                        "action `{name}` must be built from a primitive action"
                    )));
                };
                let timeout_ms = match timeout {
                    None => base.timeout_ms,
                    Some(t) => match eval(t, &env, &ctx)? {
                        Value::Int(ms) if ms >= 0 => Some(u64::try_from(ms).expect("non-negative")),
                        other => {
                            return Err(EvalError::new(format!(
                                "timeout must be a non-negative integer, got {}",
                                other.type_name()
                            )))
                        }
                    },
                };
                let guard_thunk = guard
                    .as_ref()
                    .map(|g| Thunk::new(Arc::clone(g), env.clone()));
                let value = Arc::new(ActionValue {
                    name: Some(name.clone()),
                    kind: base.kind.clone(),
                    selector: base.selector,
                    timeout_ms,
                    guard: guard_thunk,
                    event: name.ends_with('?'),
                });
                env = env.bind(name, Binding::Eager(Value::Action(value)));
            }
            Item::Check { .. } => {}
        }
    }
    Ok(RefCompiled { env })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_spec};

    fn snapshot() -> StateSnapshot {
        let mut s = StateSnapshot::new();
        s.insert_query(
            Selector::new("#toggle"),
            vec![ElementState::with_text("start")],
        );
        s.happened.push("loaded?".into());
        s
    }

    fn v(src: &str) -> Value {
        let snap = snapshot();
        let ctx = EvalCtx::with_state(&snap, 7);
        let expr = parse_expr(src).unwrap();
        eval(&expr, &initial_env(), &ctx).unwrap_or_else(|e| panic!("{src}: {e}"))
    }

    #[test]
    fn reference_evaluates_the_basics() {
        assert!(matches!(v("2 + 3 * 4"), Value::Int(14)));
        assert!(matches!(
            v("`#toggle`.text == \"start\""),
            Value::Bool(true)
        ));
        assert!(matches!(v("loaded? in happened"), Value::Bool(true)));
        assert!(matches!(v("{ let x = 2; x * x }"), Value::Int(4)));
    }

    #[test]
    fn reference_keeps_runtime_name_errors() {
        // The historical behaviour the compiled pipeline tightened: an
        // undefined name behind a short-circuit is only found if reached.
        let snap = snapshot();
        let ctx = EvalCtx::with_state(&snap, 0);
        let expr = parse_expr("false && nope").unwrap();
        let out = eval(&expr, &initial_env(), &ctx).unwrap();
        assert!(matches!(out, Value::Bool(false)));
        let reached = parse_expr("true && nope").unwrap();
        assert!(eval(&reached, &initial_env(), &ctx).is_err());
    }

    #[test]
    fn reference_spec_env_builds_property_thunks() {
        let spec = parse_spec(
            "let ~stopped = `#toggle`.text == \"start\";\n\
             action start! = click!(`#toggle`) when stopped;\n\
             check stopped with start!;",
        )
        .unwrap();
        let compiled = compile_env(&spec).unwrap();
        let thunk = compiled.property_thunk("stopped").unwrap();
        let snap = snapshot();
        let ctx = EvalCtx::with_state(&snap, 0);
        assert_eq!(expand_thunk(&thunk, &ctx).unwrap(), Formula::Top);
        assert!(compiled.property_thunk("missing").is_none());
    }
}
