//! The Specstrom lexer.
//!
//! Notable lexical rules:
//!
//! * Identifiers may end in `!` (user actions) or `?` (events), per the
//!   paper's naming convention (§3.2) — `start!`, `tick?`. A trailing `!`
//!   is only consumed when not followed by `=` (so `x != y` lexes as
//!   inequality).
//! * Backtick-quoted strings are CSS selector literals: `` `#toggle` ``.
//! * `//` starts a line comment.

use crate::ast::Span;
use crate::error::SpecError;
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// An identifier, possibly with a `!`/`?` suffix.
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// A double-quoted string literal.
    Str(String),
    /// A backtick selector literal.
    Selector(String),
    // Keywords.
    /// `let`
    Let,
    /// `fun`
    Fun,
    /// `action`
    Action,
    /// `check`
    Check,
    /// `with`
    With,
    /// `when`
    When,
    /// `timeout`
    Timeout,
    /// `if`
    If,
    /// `else`
    Else,
    /// `in`
    In,
    /// `true`
    True,
    /// `false`
    False,
    /// `null`
    Null,
    /// `always`
    Always,
    /// `eventually`
    Eventually,
    /// `until`
    Until,
    /// `release`
    Release,
    /// `next`
    Next,
    /// `nextW`
    NextW,
    /// `nextS`
    NextS,
    /// `happened`
    Happened,
    // Punctuation.
    /// `~`
    Tilde,
    /// `=`
    Assign,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `!`
    Bang,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `==>`
    Implies,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(n) => write!(f, "{n}"),
            Tok::Float(x) => write!(f, "{x}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Selector(s) => write!(f, "`{s}`"),
            other => {
                let s = match other {
                    Tok::Let => "let",
                    Tok::Fun => "fun",
                    Tok::Action => "action",
                    Tok::Check => "check",
                    Tok::With => "with",
                    Tok::When => "when",
                    Tok::Timeout => "timeout",
                    Tok::If => "if",
                    Tok::Else => "else",
                    Tok::In => "in",
                    Tok::True => "true",
                    Tok::False => "false",
                    Tok::Null => "null",
                    Tok::Always => "always",
                    Tok::Eventually => "eventually",
                    Tok::Until => "until",
                    Tok::Release => "release",
                    Tok::Next => "next",
                    Tok::NextW => "nextW",
                    Tok::NextS => "nextS",
                    Tok::Happened => "happened",
                    Tok::Tilde => "~",
                    Tok::Assign => "=",
                    Tok::Semi => ";",
                    Tok::Comma => ",",
                    Tok::Dot => ".",
                    Tok::LParen => "(",
                    Tok::RParen => ")",
                    Tok::LBrace => "{",
                    Tok::RBrace => "}",
                    Tok::LBracket => "[",
                    Tok::RBracket => "]",
                    Tok::Bang => "!",
                    Tok::AndAnd => "&&",
                    Tok::OrOr => "||",
                    Tok::Implies => "==>",
                    Tok::EqEq => "==",
                    Tok::NotEq => "!=",
                    Tok::Lt => "<",
                    Tok::Le => "<=",
                    Tok::Gt => ">",
                    Tok::Ge => ">=",
                    Tok::Plus => "+",
                    Tok::Minus => "-",
                    Tok::Star => "*",
                    Tok::Slash => "/",
                    Tok::Percent => "%",
                    _ => unreachable!(),
                };
                f.write_str(s)
            }
        }
    }
}

/// A token paired with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// Where it came from.
    pub span: Span,
}

fn keyword(word: &str) -> Option<Tok> {
    Some(match word {
        "let" => Tok::Let,
        "fun" => Tok::Fun,
        "action" => Tok::Action,
        "check" => Tok::Check,
        "with" => Tok::With,
        "when" => Tok::When,
        "timeout" => Tok::Timeout,
        "if" => Tok::If,
        "else" => Tok::Else,
        "in" => Tok::In,
        "true" => Tok::True,
        "false" => Tok::False,
        "null" => Tok::Null,
        "always" => Tok::Always,
        "eventually" => Tok::Eventually,
        "until" => Tok::Until,
        "release" => Tok::Release,
        "next" => Tok::Next,
        "nextW" => Tok::NextW,
        "nextS" => Tok::NextS,
        "happened" => Tok::Happened,
        _ => return None,
    })
}

/// Lexes a whole source file.
///
/// # Errors
///
/// Returns a [`SpecError`] for unterminated strings/selectors, malformed
/// numbers, or unexpected characters.
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, SpecError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        let start = pos;
        let c = bytes[pos] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                pos += 1;
            }
            '/' if bytes.get(pos + 1) == Some(&b'/') => {
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            }
            '`' => {
                pos += 1;
                let content_start = pos;
                while pos < bytes.len() && bytes[pos] != b'`' {
                    pos += 1;
                }
                if pos >= bytes.len() {
                    return Err(SpecError::at(
                        Span::new(start, pos),
                        "unterminated selector literal",
                    ));
                }
                let content = src[content_start..pos].to_owned();
                pos += 1;
                toks.push(SpannedTok {
                    tok: Tok::Selector(content),
                    span: Span::new(start, pos),
                });
            }
            '"' => {
                pos += 1;
                let mut out = String::new();
                loop {
                    if pos >= bytes.len() {
                        return Err(SpecError::at(
                            Span::new(start, pos),
                            "unterminated string literal",
                        ));
                    }
                    match bytes[pos] {
                        b'"' => {
                            pos += 1;
                            break;
                        }
                        b'\\' => {
                            pos += 1;
                            let esc = bytes.get(pos).copied().ok_or_else(|| {
                                SpecError::at(Span::new(start, pos), "unterminated escape")
                            })?;
                            out.push(match esc {
                                b'n' => '\n',
                                b't' => '\t',
                                b'\\' => '\\',
                                b'"' => '"',
                                other => {
                                    return Err(SpecError::at(
                                        Span::new(pos - 1, pos + 1),
                                        format!("unknown escape \\{}", other as char),
                                    ))
                                }
                            });
                            pos += 1;
                        }
                        _ => {
                            let ch = src[pos..].chars().next().expect("in bounds");
                            out.push(ch);
                            pos += ch.len_utf8();
                        }
                    }
                }
                toks.push(SpannedTok {
                    tok: Tok::Str(out),
                    span: Span::new(start, pos),
                });
            }
            '0'..='9' => {
                while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                    pos += 1;
                }
                let is_float =
                    pos + 1 < bytes.len() && bytes[pos] == b'.' && bytes[pos + 1].is_ascii_digit();
                if is_float {
                    pos += 1;
                    while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                        pos += 1;
                    }
                    let text = &src[start..pos];
                    let value: f64 = text.parse().map_err(|_| {
                        SpecError::at(Span::new(start, pos), format!("bad float {text}"))
                    })?;
                    toks.push(SpannedTok {
                        tok: Tok::Float(value),
                        span: Span::new(start, pos),
                    });
                } else {
                    let text = &src[start..pos];
                    let value: i64 = text.parse().map_err(|_| {
                        SpecError::at(
                            Span::new(start, pos),
                            format!("integer out of range {text}"),
                        )
                    })?;
                    toks.push(SpannedTok {
                        tok: Tok::Int(value),
                        span: Span::new(start, pos),
                    });
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                while pos < bytes.len()
                    && ((bytes[pos] as char).is_ascii_alphanumeric() || bytes[pos] == b'_')
                {
                    pos += 1;
                }
                // `!`/`?` suffix for action/event names — but `x!=y` must
                // lex as `x` `!=` `y`.
                if pos < bytes.len()
                    && (bytes[pos] == b'?'
                        || (bytes[pos] == b'!' && bytes.get(pos + 1) != Some(&b'=')))
                {
                    pos += 1;
                }
                let word = &src[start..pos];
                let tok = keyword(word).unwrap_or_else(|| Tok::Ident(word.to_owned()));
                toks.push(SpannedTok {
                    tok,
                    span: Span::new(start, pos),
                });
            }
            _ => {
                let two = bytes.get(pos..pos + 2).map(|b| (b[0], b[1]));
                let three = bytes.get(pos..pos + 3);
                let (tok, len) = if three == Some(b"==>") {
                    (Tok::Implies, 3)
                } else {
                    match two {
                        Some((b'&', b'&')) => (Tok::AndAnd, 2),
                        Some((b'|', b'|')) => (Tok::OrOr, 2),
                        Some((b'=', b'=')) => (Tok::EqEq, 2),
                        Some((b'!', b'=')) => (Tok::NotEq, 2),
                        Some((b'<', b'=')) => (Tok::Le, 2),
                        Some((b'>', b'=')) => (Tok::Ge, 2),
                        _ => match c {
                            '~' => (Tok::Tilde, 1),
                            '=' => (Tok::Assign, 1),
                            ';' => (Tok::Semi, 1),
                            ',' => (Tok::Comma, 1),
                            '.' => (Tok::Dot, 1),
                            '(' => (Tok::LParen, 1),
                            ')' => (Tok::RParen, 1),
                            '{' => (Tok::LBrace, 1),
                            '}' => (Tok::RBrace, 1),
                            '[' => (Tok::LBracket, 1),
                            ']' => (Tok::RBracket, 1),
                            '!' => (Tok::Bang, 1),
                            '<' => (Tok::Lt, 1),
                            '>' => (Tok::Gt, 1),
                            '+' => (Tok::Plus, 1),
                            '-' => (Tok::Minus, 1),
                            '*' => (Tok::Star, 1),
                            '/' => (Tok::Slash, 1),
                            '%' => (Tok::Percent, 1),
                            other => {
                                return Err(SpecError::at(
                                    Span::new(pos, pos + 1),
                                    format!("unexpected character {other:?}"),
                                ))
                            }
                        },
                    }
                };
                toks.push(SpannedTok {
                    tok,
                    span: Span::new(pos, pos + len),
                });
                pos += len;
            }
        }
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn idents_with_suffixes() {
        assert_eq!(
            toks("start! stop! tick? wait"),
            vec![
                Tok::Ident("start!".into()),
                Tok::Ident("stop!".into()),
                Tok::Ident("tick?".into()),
                Tok::Ident("wait".into()),
            ]
        );
    }

    #[test]
    fn bang_equals_is_inequality() {
        assert_eq!(
            toks("x != y"),
            vec![Tok::Ident("x".into()), Tok::NotEq, Tok::Ident("y".into())]
        );
        assert_eq!(
            toks("x!=y"),
            vec![Tok::Ident("x".into()), Tok::NotEq, Tok::Ident("y".into())]
        );
        // But a unary bang after an ident boundary still works.
        assert_eq!(toks("!x"), vec![Tok::Bang, Tok::Ident("x".into())]);
    }

    #[test]
    fn selector_literals() {
        assert_eq!(
            toks("`#toggle`.text"),
            vec![
                Tok::Selector("#toggle".into()),
                Tok::Dot,
                Tok::Ident("text".into())
            ]
        );
        assert!(lex("`oops").is_err());
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(toks(r#""start""#), vec![Tok::Str("start".into())]);
        assert_eq!(toks(r#""a\nb\"c""#), vec![Tok::Str("a\nb\"c".into())]);
        assert!(lex(r#""unterminated"#).is_err());
        assert!(lex(r#""bad \q escape""#).is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("42 3.5 180"),
            vec![Tok::Int(42), Tok::Float(3.5), Tok::Int(180)]
        );
        // `1.` is Int then Dot (member access on ints is an eval error).
        assert_eq!(
            toks("1.x"),
            vec![Tok::Int(1), Tok::Dot, Tok::Ident("x".into())]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("let x = 1; // the answer\nlet"),
            vec![
                Tok::Let,
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Int(1),
                Tok::Semi,
                Tok::Let
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("a && b || c ==> d == e"),
            vec![
                Tok::Ident("a".into()),
                Tok::AndAnd,
                Tok::Ident("b".into()),
                Tok::OrOr,
                Tok::Ident("c".into()),
                Tok::Implies,
                Tok::Ident("d".into()),
                Tok::EqEq,
                Tok::Ident("e".into()),
            ]
        );
    }

    #[test]
    fn keywords_vs_idents() {
        assert_eq!(
            toks("always eventually untilx next happened"),
            vec![
                Tok::Always,
                Tok::Eventually,
                Tok::Ident("untilx".into()),
                Tok::Next,
                Tok::Happened
            ]
        );
    }

    #[test]
    fn spans_are_accurate() {
        let ts = lex("let x").unwrap();
        assert_eq!(ts[0].span, Span::new(0, 3));
        assert_eq!(ts[1].span, Span::new(4, 5));
    }

    #[test]
    fn unexpected_character() {
        let err = lex("let @").unwrap_err();
        assert!(err.to_string().contains('@'));
    }
}
